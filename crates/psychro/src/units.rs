//! Thermodynamic unit newtypes.
//!
//! Every quantity exchanged between BubbleZERO subsystems is wrapped in a
//! dedicated newtype so that a water flow rate can never be passed where an
//! air flow rate is expected, a Kelvin where a Celsius is expected, and so
//! on. The wrappers are `Copy` and essentially free.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Implements the boilerplate shared by all scalar unit newtypes: a
/// constructor, an accessor, `Display`, and ordering helpers.
macro_rules! scalar_unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw `f64` value in this unit.
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw `f64` value.
            #[must_use]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Returns the absolute value in the same unit.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns `true` if the value is finite (neither NaN nor ±∞).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps the value into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[must_use]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                assert!(lo.0 <= hi.0, "clamp bounds inverted: {} > {}", lo, hi);
                Self(self.0.clamp(lo.0, hi.0))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.3}{}", self.0, $suffix)
            }
        }

        impl From<f64> for $name {
            fn from(value: f64) -> Self {
                Self(value)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl bz_state::Persist for $name {
            fn save(&self, w: &mut bz_state::Writer) {
                w.put_f64(self.0);
            }

            fn load(r: &mut bz_state::Reader<'_>) -> Result<Self, bz_state::StateError> {
                Ok(Self(r.take_f64()?))
            }
        }
    };
}

/// Adds same-type addition/subtraction and summation to a unit newtype,
/// appropriate for extensive quantities (energy, mass, flow, power).
macro_rules! additive_unit {
    ($name:ident) => {
        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }
    };
}

scalar_unit!(
    /// A temperature in degrees Celsius.
    Celsius,
    "°C"
);

scalar_unit!(
    /// An absolute temperature in Kelvin.
    Kelvin,
    "K"
);

scalar_unit!(
    /// A temperature difference in Kelvin (equivalently, Celsius degrees).
    DeltaCelsius,
    "ΔK"
);

scalar_unit!(
    /// A relative humidity or other percentage in `[0, 100]`.
    Percent,
    "%"
);

scalar_unit!(
    /// An absolute pressure in Pascals.
    Pascals,
    "Pa"
);

scalar_unit!(
    /// A humidity ratio: kilograms of water vapor per kilogram of dry air.
    KgPerKg,
    " kg/kg"
);

scalar_unit!(
    /// A gas concentration in parts per million (used for CO₂).
    Ppm,
    " ppm"
);

scalar_unit!(
    /// A thermal or electrical power in Watts.
    Watts,
    " W"
);

scalar_unit!(
    /// An energy in Joules.
    Joules,
    " J"
);

scalar_unit!(
    /// A mass in kilograms.
    Kilograms,
    " kg"
);

scalar_unit!(
    /// A mass flow rate in kilograms per second.
    KgPerSecond,
    " kg/s"
);

scalar_unit!(
    /// A volumetric flow rate in cubic meters per second.
    CubicMetersPerSecond,
    " m³/s"
);

scalar_unit!(
    /// A control voltage (the BubbleZERO DC pumps take 0–5 V).
    Volts,
    " V"
);

scalar_unit!(
    /// A duration in seconds (plain physics durations; the discrete
    /// simulation clock uses `bz_simcore::SimTime` instead).
    Seconds,
    " s"
);

additive_unit!(DeltaCelsius);
additive_unit!(Percent);
additive_unit!(Pascals);
additive_unit!(KgPerKg);
additive_unit!(Ppm);
additive_unit!(Watts);
additive_unit!(Joules);
additive_unit!(Kilograms);
additive_unit!(KgPerSecond);
additive_unit!(CubicMetersPerSecond);
additive_unit!(Volts);
additive_unit!(Seconds);

impl Celsius {
    /// Converts this temperature to Kelvin.
    #[must_use]
    pub fn to_kelvin(self) -> Kelvin {
        Kelvin::new(self.0 + 273.15)
    }
}

impl Kelvin {
    /// Converts this absolute temperature to Celsius.
    #[must_use]
    pub fn to_celsius(self) -> Celsius {
        Celsius::new(self.0 - 273.15)
    }
}

impl Sub for Celsius {
    type Output = DeltaCelsius;
    fn sub(self, rhs: Self) -> DeltaCelsius {
        DeltaCelsius::new(self.0 - rhs.0)
    }
}

impl Add<DeltaCelsius> for Celsius {
    type Output = Celsius;
    fn add(self, rhs: DeltaCelsius) -> Celsius {
        Celsius::new(self.0 + rhs.get())
    }
}

impl Sub<DeltaCelsius> for Celsius {
    type Output = Celsius;
    fn sub(self, rhs: DeltaCelsius) -> Celsius {
        Celsius::new(self.0 - rhs.get())
    }
}

impl Sub for Kelvin {
    type Output = DeltaCelsius;
    fn sub(self, rhs: Self) -> DeltaCelsius {
        DeltaCelsius::new(self.0 - rhs.0)
    }
}

impl Percent {
    /// Converts a percentage to the equivalent fraction in `[0, 1]`.
    #[must_use]
    pub fn as_fraction(self) -> f64 {
        self.0 / 100.0
    }

    /// Builds a percentage from a fraction in `[0, 1]`.
    #[must_use]
    pub fn from_fraction(fraction: f64) -> Self {
        Self(fraction * 100.0)
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.0 * rhs.get())
    }
}

impl Div<Watts> for Joules {
    type Output = Seconds;
    fn div(self, rhs: Watts) -> Seconds {
        Seconds::new(self.0 / rhs.get())
    }
}

impl Div<Watts> for Watts {
    type Output = f64;
    fn div(self, rhs: Watts) -> f64 {
        self.0 / rhs.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn celsius_kelvin_round_trip() {
        let t = Celsius::new(25.0);
        assert!((t.to_kelvin().get() - 298.15).abs() < 1e-12);
        assert!((t.to_kelvin().to_celsius().get() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn celsius_difference_is_delta() {
        let dt = Celsius::new(28.9) - Celsius::new(25.0);
        assert!((dt.get() - 3.9).abs() < 1e-12);
    }

    #[test]
    fn celsius_plus_delta() {
        let t = Celsius::new(18.0) + DeltaCelsius::new(-2.0);
        assert!((t.get() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn percent_fraction_round_trip() {
        let p = Percent::new(65.0);
        assert!((p.as_fraction() - 0.65).abs() < 1e-12);
        assert!((Percent::from_fraction(0.65).get() - 65.0).abs() < 1e-12);
    }

    #[test]
    fn watts_times_seconds_is_joules() {
        let e = Watts::new(54.0e-3) * Seconds::new(2.0);
        assert!((e.get() - 0.108).abs() < 1e-12);
    }

    #[test]
    fn joules_over_watts_is_seconds() {
        let t = Joules::new(100.0) / Watts::new(25.0);
        assert!((t.get() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn clamp_orders_bounds() {
        let v = Watts::new(7.0).clamp(Watts::new(0.0), Watts::new(5.0));
        assert!((v.get() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "clamp bounds inverted")]
    fn clamp_panics_on_inverted_bounds() {
        let _ = Watts::new(1.0).clamp(Watts::new(5.0), Watts::new(0.0));
    }

    #[test]
    fn additive_units_sum() {
        let total: Watts = [Watts::new(1.0), Watts::new(2.5)].into_iter().sum();
        assert!((total.get() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn display_includes_suffix() {
        assert_eq!(format!("{}", Celsius::new(25.0)), "25.000°C");
        assert_eq!(format!("{}", Watts::new(1.5)), "1.500 W");
    }

    #[test]
    fn min_max_behave() {
        let a = Celsius::new(18.0);
        let b = Celsius::new(20.5);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }
}
