//! The Magnus dew-point approximation used throughout the paper.
//!
//! §III-B of the paper gives the dew point of air at temperature `T` and
//! relative humidity `H` as
//!
//! ```text
//!               a · [ ln(H/100) + b·T/(a + T) ]
//! T_dew(T, H) = --------------------------------
//!               b − ln(H/100) − b·T/(a + T)
//! ```
//!
//! with `a = 243.12` and `b = 17.62` (the Magnus parameters over water,
//! valid roughly from −45 °C to +60 °C). This module implements that formula,
//! its inverse, and the associated saturation vapor pressure curve.

use crate::error::PsychroError;
use crate::units::{Celsius, Pascals, Percent};

/// Magnus parameter `a` in Celsius (the paper's value).
pub const MAGNUS_A: f64 = 243.12;

/// Magnus parameter `b`, dimensionless (the paper's value).
pub const MAGNUS_B: f64 = 17.62;

/// Saturation vapor pressure over water at 0 °C, in Pascals.
const P_SAT_AT_ZERO: f64 = 611.2;

/// The Magnus exponent `γ(T, H) = ln(H/100) + b·T/(a + T)`.
fn gamma(temperature: Celsius, relative_humidity: Percent) -> f64 {
    let t = temperature.get();
    relative_humidity.as_fraction().ln() + MAGNUS_B * t / (MAGNUS_A + t)
}

/// Computes the dew point of moist air via the paper's Magnus formula.
///
/// The dew point is the temperature to which the air must be cooled, at
/// constant pressure and water content, for condensation to begin. The
/// radiant-cooling module compares its mixed-water temperature against the
/// ceiling-surface dew point computed with exactly this formula.
///
/// # Panics
///
/// Panics if `relative_humidity` is not in `(0, 100]` — use
/// [`dew_point_checked`] to handle untrusted input.
///
/// # Example
///
/// ```
/// use bz_psychro::{dew_point, Celsius, Percent};
///
/// // Saturated air dews at its own temperature.
/// let dew = dew_point(Celsius::new(25.0), Percent::new(100.0));
/// assert!((dew.get() - 25.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn dew_point(temperature: Celsius, relative_humidity: Percent) -> Celsius {
    dew_point_checked(temperature, relative_humidity)
        .expect("relative humidity must be in (0, 100]")
}

/// Fallible variant of [`dew_point`].
///
/// # Errors
///
/// Returns [`PsychroError::HumidityOutOfRange`] if `relative_humidity` is
/// not in `(0, 100]`, and [`PsychroError::TemperatureOutOfRange`] if
/// `temperature` is outside the Magnus validity range of −45 °C to +60 °C.
pub fn dew_point_checked(
    temperature: Celsius,
    relative_humidity: Percent,
) -> Result<Celsius, PsychroError> {
    let h = relative_humidity.get();
    if !(h > 0.0 && h <= 100.0) {
        return Err(PsychroError::HumidityOutOfRange(h));
    }
    let t = temperature.get();
    if !(-45.0..=60.0).contains(&t) {
        return Err(PsychroError::TemperatureOutOfRange(t));
    }
    let g = gamma(temperature, relative_humidity);
    Ok(Celsius::new(MAGNUS_A * g / (MAGNUS_B - g)))
}

/// Inverts the Magnus formula: the relative humidity of air at
/// `temperature` whose dew point is `dew`.
///
/// Values are clamped to at most 100 % (a dew point above the dry-bulb
/// temperature is physically supersaturated).
///
/// # Example
///
/// ```
/// use bz_psychro::{dew_point, relative_humidity_from_dew_point, Celsius, Percent};
///
/// let t = Celsius::new(25.0);
/// let h = Percent::new(60.0);
/// let recovered = relative_humidity_from_dew_point(t, dew_point(t, h));
/// assert!((recovered.get() - 60.0).abs() < 1e-6);
/// ```
#[must_use]
pub fn relative_humidity_from_dew_point(temperature: Celsius, dew: Celsius) -> Percent {
    let t = temperature.get();
    let d = dew.get();
    let ln_h = MAGNUS_B * d / (MAGNUS_A + d) - MAGNUS_B * t / (MAGNUS_A + t);
    Percent::from_fraction(ln_h.exp().min(1.0))
}

/// Saturation vapor pressure over water at `temperature`, via the Magnus
/// curve consistent with [`dew_point`].
///
/// # Example
///
/// ```
/// use bz_psychro::{saturation_vapor_pressure, Celsius};
///
/// // ~3.17 kPa at 25 °C.
/// let p = saturation_vapor_pressure(Celsius::new(25.0));
/// assert!((p.get() - 3170.0).abs() < 30.0);
/// ```
#[must_use]
pub fn saturation_vapor_pressure(temperature: Celsius) -> Pascals {
    let t = temperature.get();
    Pascals::new(P_SAT_AT_ZERO * (MAGNUS_B * t / (MAGNUS_A + t)).exp())
}

/// Partial pressure of water vapor in air at `temperature` and
/// `relative_humidity`.
#[must_use]
pub fn vapor_pressure(temperature: Celsius, relative_humidity: Percent) -> Pascals {
    saturation_vapor_pressure(temperature) * relative_humidity.as_fraction()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_boundary_condition() {
        // The paper's outdoor condition: 28.9 °C with a 27.4 °C dew point.
        // That corresponds to ~92% relative humidity.
        let rh = relative_humidity_from_dew_point(Celsius::new(28.9), Celsius::new(27.4));
        assert!((rh.get() - 91.6).abs() < 1.0, "expected ~92% RH, got {rh}");
        let dew = dew_point(Celsius::new(28.9), rh);
        assert!((dew.get() - 27.4).abs() < 1e-6);
    }

    #[test]
    fn target_condition_is_about_65_percent() {
        // 25 °C / 18 °C dew point (the trial's target) is ~65% RH.
        let rh = relative_humidity_from_dew_point(Celsius::new(25.0), Celsius::new(18.0));
        assert!((rh.get() - 65.2).abs() < 1.0, "got {rh}");
    }

    #[test]
    fn dew_point_below_dry_bulb_when_unsaturated() {
        for t in [10.0, 20.0, 30.0, 40.0] {
            for h in [10.0, 40.0, 70.0, 99.0] {
                let dew = dew_point(Celsius::new(t), Percent::new(h));
                assert!(dew.get() < t, "dew {dew} not below {t}°C at {h}%");
            }
        }
    }

    #[test]
    fn dew_point_monotone_in_humidity() {
        let t = Celsius::new(25.0);
        let mut previous = f64::NEG_INFINITY;
        for h in (5..=100).step_by(5) {
            let dew = dew_point(t, Percent::new(f64::from(h))).get();
            assert!(dew > previous);
            previous = dew;
        }
    }

    #[test]
    fn checked_rejects_bad_humidity() {
        assert_eq!(
            dew_point_checked(Celsius::new(25.0), Percent::new(0.0)),
            Err(PsychroError::HumidityOutOfRange(0.0))
        );
        assert_eq!(
            dew_point_checked(Celsius::new(25.0), Percent::new(120.0)),
            Err(PsychroError::HumidityOutOfRange(120.0))
        );
        assert!(dew_point_checked(Celsius::new(25.0), Percent::new(-5.0)).is_err());
    }

    #[test]
    fn checked_rejects_bad_temperature() {
        assert!(dew_point_checked(Celsius::new(-60.0), Percent::new(50.0)).is_err());
        assert!(dew_point_checked(Celsius::new(80.0), Percent::new(50.0)).is_err());
    }

    #[test]
    #[should_panic(expected = "relative humidity")]
    fn panicking_variant_panics() {
        let _ = dew_point(Celsius::new(25.0), Percent::new(0.0));
    }

    #[test]
    fn saturation_pressure_reference_points() {
        // Well-known reference values for the Magnus curve.
        let p0 = saturation_vapor_pressure(Celsius::new(0.0)).get();
        assert!((p0 - 611.2).abs() < 1e-9);
        let p20 = saturation_vapor_pressure(Celsius::new(20.0)).get();
        assert!((p20 - 2333.0).abs() < 30.0, "got {p20}");
        let p30 = saturation_vapor_pressure(Celsius::new(30.0)).get();
        assert!((p30 - 4245.0).abs() < 60.0, "got {p30}");
    }

    #[test]
    fn vapor_pressure_scales_with_humidity() {
        let t = Celsius::new(25.0);
        let half = vapor_pressure(t, Percent::new(50.0)).get();
        let full = vapor_pressure(t, Percent::new(100.0)).get();
        assert!((half * 2.0 - full).abs() < 1e-9);
    }

    #[test]
    fn humidity_round_trip_is_clamped_at_saturation() {
        // A dew point above dry bulb must clamp to 100%.
        let rh = relative_humidity_from_dew_point(Celsius::new(20.0), Celsius::new(25.0));
        assert!((rh.get() - 100.0).abs() < 1e-9);
    }
}
