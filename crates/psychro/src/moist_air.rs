//! Moist-air property relations (humidity ratio, enthalpy, density).
//!
//! The thermal plant tracks zone moisture as a humidity ratio (kg of water
//! vapor per kg of dry air) because that quantity is conserved under mixing;
//! the sensors and controllers speak in relative humidity and dew point.
//! This module provides the conversions between the two descriptions plus
//! the enthalpy and density relations the airbox coil model needs.

use crate::error::PsychroError;
use crate::magnus::{saturation_vapor_pressure, vapor_pressure};
use crate::units::{Celsius, KgPerKg, Pascals, Percent};

/// Standard atmospheric pressure at sea level, Pascals.
pub const STANDARD_PRESSURE: Pascals = Pascals::new(101_325.0);

/// Specific heat of dry air at constant pressure, J/(kg·K).
pub const CP_DRY_AIR: f64 = 1_005.0;

/// Specific heat of water vapor at constant pressure, J/(kg·K).
pub const CP_WATER_VAPOR: f64 = 1_860.0;

/// Ratio of molar masses of water to dry air.
const EPSILON: f64 = 0.621_945;

/// Specific gas constant of dry air, J/(kg·K).
const R_DRY_AIR: f64 = 287.055;

/// Humidity ratio of moist air given the vapor partial pressure and the
/// total pressure.
///
/// # Panics
///
/// Panics if `vapor` is not strictly less than `total` (a physical
/// impossibility for moist air at the conditions BubbleZERO operates in).
#[must_use]
pub fn humidity_ratio_from_vapor_pressure(vapor: Pascals, total: Pascals) -> KgPerKg {
    assert!(
        vapor.get() < total.get(),
        "vapor pressure {vapor} must be below total pressure {total}"
    );
    KgPerKg::new(EPSILON * vapor.get() / (total.get() - vapor.get()))
}

/// Vapor partial pressure corresponding to a humidity ratio at `total`
/// pressure. Inverse of [`humidity_ratio_from_vapor_pressure`].
///
/// # Errors
///
/// Returns [`PsychroError::NegativeHumidityRatio`] when `ratio` is negative.
pub fn vapor_pressure_from_humidity_ratio(
    ratio: KgPerKg,
    total: Pascals,
) -> Result<Pascals, PsychroError> {
    let w = ratio.get();
    if w < 0.0 {
        return Err(PsychroError::NegativeHumidityRatio(w));
    }
    Ok(Pascals::new(total.get() * w / (EPSILON + w)))
}

/// Humidity ratio of air at `temperature` and `relative_humidity` under
/// standard pressure.
///
/// # Example
///
/// ```
/// use bz_psychro::{humidity_ratio_from_rh, Celsius, Percent};
///
/// // Tropical outdoor air (28.9 °C, ~92% RH) holds ~23 g of water per kg.
/// let w = humidity_ratio_from_rh(Celsius::new(28.9), Percent::new(92.0));
/// assert!((w.get() - 0.023).abs() < 0.001);
/// ```
#[must_use]
pub fn humidity_ratio_from_rh(temperature: Celsius, relative_humidity: Percent) -> KgPerKg {
    humidity_ratio_from_vapor_pressure(
        vapor_pressure(temperature, relative_humidity),
        STANDARD_PRESSURE,
    )
}

/// Humidity ratio of air whose dew point is `dew`, independent of its
/// dry-bulb temperature (the water content is fixed by the dew point alone).
#[must_use]
pub fn humidity_ratio_from_dew_point(dew: Celsius) -> KgPerKg {
    humidity_ratio_from_vapor_pressure(saturation_vapor_pressure(dew), STANDARD_PRESSURE)
}

/// Relative humidity of air at `temperature` carrying humidity ratio
/// `ratio`, clamped to at most 100 %.
///
/// # Errors
///
/// Returns [`PsychroError::NegativeHumidityRatio`] when `ratio` is negative.
pub fn relative_humidity_from_humidity_ratio(
    temperature: Celsius,
    ratio: KgPerKg,
) -> Result<Percent, PsychroError> {
    let vapor = vapor_pressure_from_humidity_ratio(ratio, STANDARD_PRESSURE)?;
    let saturation = saturation_vapor_pressure(temperature);
    Ok(Percent::from_fraction(
        (vapor.get() / saturation.get()).min(1.0),
    ))
}

/// Specific enthalpy of moist air in J per kg of dry air, relative to 0 °C
/// dry air. Includes the latent heat carried by the vapor.
#[must_use]
pub fn moist_air_enthalpy(temperature: Celsius, ratio: KgPerKg) -> f64 {
    let t = temperature.get();
    let w = ratio.get();
    CP_DRY_AIR * t + w * (latent_heat_of_vaporization(Celsius::new(0.0)) + CP_WATER_VAPOR * t)
}

/// Latent heat of vaporization of water at `temperature`, J/kg.
///
/// A linear fit adequate over the HVAC range: 2.501 MJ/kg at 0 °C falling
/// ~2.36 kJ/kg per Kelvin.
#[must_use]
pub fn latent_heat_of_vaporization(temperature: Celsius) -> f64 {
    2_501_000.0 - 2_360.0 * temperature.get()
}

/// Density of dry air at `temperature` under standard pressure, kg/m³.
#[must_use]
pub fn dry_air_density(temperature: Celsius) -> f64 {
    STANDARD_PRESSURE.get() / (R_DRY_AIR * temperature.to_kelvin().get())
}

/// Specific volume of moist air, m³ per kg of dry air, at standard
/// pressure (the ideal-gas relation with the vapor partial pressure
/// displacing dry air).
///
/// # Panics
///
/// Panics if `ratio` is negative.
#[must_use]
pub fn moist_air_specific_volume(temperature: Celsius, ratio: KgPerKg) -> f64 {
    let vapor = vapor_pressure_from_humidity_ratio(ratio, STANDARD_PRESSURE)
        .expect("humidity ratio must be non-negative");
    R_DRY_AIR * temperature.to_kelvin().get() / (STANDARD_PRESSURE.get() - vapor.get())
}

/// Thermodynamic wet-bulb temperature, solved iteratively from the
/// adiabatic-saturation balance
/// `w = ((h_fg − c_pw·t_wb)·w_s(t_wb) − c_pa·(t − t_wb)) / (h_fg + c_pv·t − c_pw·t_wb)`
/// (ASHRAE Fundamentals form), via bisection between the dew point and the
/// dry-bulb temperature.
///
/// # Panics
///
/// Panics if `ratio` is negative.
#[must_use]
pub fn wet_bulb_temperature(temperature: Celsius, ratio: KgPerKg) -> Celsius {
    assert!(ratio.get() >= 0.0, "humidity ratio must be non-negative");
    const CP_LIQUID_WATER: f64 = 4_186.0;
    let t = temperature.get();
    let w = ratio.get();

    // Saturated humidity ratio at a candidate wet-bulb temperature.
    let w_s = |twb: f64| {
        humidity_ratio_from_vapor_pressure(
            saturation_vapor_pressure(Celsius::new(twb)),
            STANDARD_PRESSURE,
        )
        .get()
    };
    // Residual of the adiabatic-saturation balance: positive when the
    // candidate wet bulb is too warm.
    let residual = |twb: f64| {
        let h_fg = latent_heat_of_vaporization(Celsius::new(0.0));
        let numerator =
            (h_fg - (CP_LIQUID_WATER - CP_WATER_VAPOR) * twb) * w_s(twb) - CP_DRY_AIR * (t - twb);
        let denominator = h_fg + CP_WATER_VAPOR * t - CP_LIQUID_WATER * twb;
        numerator / denominator - w
    };

    // The wet bulb lies between an arbitrary cold floor and the dry bulb.
    let mut lo = t - 40.0;
    let mut hi = t;
    for _ in 0..60 {
        let mid = (lo + hi) / 2.0;
        if residual(mid) > 0.0 {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Celsius::new((lo + hi) / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::magnus::dew_point;

    #[test]
    fn humidity_ratio_reference_values() {
        // ASHRAE-style reference: saturated air at 25 °C holds ~20 g/kg.
        let w = humidity_ratio_from_rh(Celsius::new(25.0), Percent::new(100.0));
        assert!((w.get() - 0.0202).abs() < 0.0005, "got {w}");
        // The trial target (18 °C dew point) is ~13 g/kg.
        let w = humidity_ratio_from_dew_point(Celsius::new(18.0));
        assert!((w.get() - 0.0130).abs() < 0.0004, "got {w}");
    }

    #[test]
    fn vapor_pressure_round_trip() {
        let w = KgPerKg::new(0.015);
        let p = vapor_pressure_from_humidity_ratio(w, STANDARD_PRESSURE).unwrap();
        let w2 = humidity_ratio_from_vapor_pressure(p, STANDARD_PRESSURE);
        assert!((w.get() - w2.get()).abs() < 1e-12);
    }

    #[test]
    fn negative_ratio_is_rejected() {
        assert!(
            vapor_pressure_from_humidity_ratio(KgPerKg::new(-0.01), STANDARD_PRESSURE).is_err()
        );
        assert!(
            relative_humidity_from_humidity_ratio(Celsius::new(25.0), KgPerKg::new(-0.01)).is_err()
        );
    }

    #[test]
    fn rh_ratio_round_trip() {
        let t = Celsius::new(28.9);
        let rh = Percent::new(70.0);
        let w = humidity_ratio_from_rh(t, rh);
        let rh2 = relative_humidity_from_humidity_ratio(t, w).unwrap();
        assert!((rh.get() - rh2.get()).abs() < 1e-9);
    }

    #[test]
    fn dew_point_fixes_water_content() {
        // Air at different dry-bulb temperatures but identical dew points
        // must carry the same humidity ratio.
        let dew = Celsius::new(18.0);
        let w_direct = humidity_ratio_from_dew_point(dew);
        let rh = crate::magnus::relative_humidity_from_dew_point(Celsius::new(30.0), dew);
        let w_via_rh = humidity_ratio_from_rh(Celsius::new(30.0), rh);
        assert!((w_direct.get() - w_via_rh.get()).abs() < 1e-6);
    }

    #[test]
    fn dew_of_ratio_round_trip() {
        // humidity ratio -> RH at some temperature -> dew point recovers
        // the defining dew point.
        let dew_in = Celsius::new(21.5);
        let w = humidity_ratio_from_dew_point(dew_in);
        let rh = relative_humidity_from_humidity_ratio(Celsius::new(27.0), w).unwrap();
        let dew_out = dew_point(Celsius::new(27.0), rh);
        assert!((dew_in.get() - dew_out.get()).abs() < 1e-6);
    }

    #[test]
    fn enthalpy_increases_with_temperature_and_moisture() {
        let h_dry = moist_air_enthalpy(Celsius::new(25.0), KgPerKg::new(0.0));
        let h_humid = moist_air_enthalpy(Celsius::new(25.0), KgPerKg::new(0.02));
        let h_hot = moist_air_enthalpy(Celsius::new(30.0), KgPerKg::new(0.0));
        assert!(h_humid > h_dry);
        assert!(h_hot > h_dry);
        // 20 g/kg of moisture adds roughly 50 kJ/kg of latent enthalpy.
        assert!((h_humid - h_dry - 0.02 * 2_501_000.0).abs() < 2_000.0);
    }

    #[test]
    fn air_density_reference() {
        // ~1.184 kg/m³ at 25 °C.
        let rho = dry_air_density(Celsius::new(25.0));
        assert!((rho - 1.184).abs() < 0.005, "got {rho}");
    }

    #[test]
    fn latent_heat_reference() {
        assert!((latent_heat_of_vaporization(Celsius::new(0.0)) - 2_501_000.0).abs() < 1.0);
        // ~2.43 MJ/kg at 30 °C.
        let l = latent_heat_of_vaporization(Celsius::new(30.0));
        assert!((l - 2_430_000.0).abs() < 5_000.0, "got {l}");
    }

    #[test]
    fn specific_volume_reference() {
        // ~0.872 m³/kg dry air at 28.9 °C, w = 0.0233 (ASHRAE chart zone).
        let v = moist_air_specific_volume(Celsius::new(28.9), KgPerKg::new(0.0233));
        assert!((v - 0.887).abs() < 0.02, "got {v}");
        // Dry air is denser (smaller volume).
        let v_dry = moist_air_specific_volume(Celsius::new(28.9), KgPerKg::new(0.0));
        assert!(v_dry < v);
    }

    #[test]
    fn wet_bulb_between_dew_point_and_dry_bulb() {
        for (t, dew) in [(28.9, 27.4), (25.0, 18.0), (30.0, 10.0)] {
            let w = humidity_ratio_from_dew_point(Celsius::new(dew));
            let twb = wet_bulb_temperature(Celsius::new(t), w).get();
            assert!(twb > dew - 0.3, "wet bulb {twb} below dew {dew}");
            assert!(twb < t + 1e-9, "wet bulb {twb} above dry bulb {t}");
        }
    }

    #[test]
    fn wet_bulb_equals_dry_bulb_at_saturation() {
        let t = Celsius::new(24.0);
        let w = humidity_ratio_from_dew_point(t);
        let twb = wet_bulb_temperature(t, w).get();
        assert!((twb - 24.0).abs() < 0.15, "got {twb}");
    }

    #[test]
    fn wet_bulb_reference_point() {
        // Classic psychrometric reference: 25 °C, 50% RH → wet bulb ≈ 17.9 °C.
        let w = humidity_ratio_from_rh(Celsius::new(25.0), Percent::new(50.0));
        let twb = wet_bulb_temperature(Celsius::new(25.0), w).get();
        assert!((twb - 17.9).abs() < 0.5, "got {twb}");
    }

    #[test]
    #[should_panic(expected = "must be below total pressure")]
    fn supercritical_vapor_pressure_panics() {
        let _ = humidity_ratio_from_vapor_pressure(Pascals::new(200_000.0), STANDARD_PRESSURE);
    }
}
