//! Batch psychrometric kernels operating over zone slices.
//!
//! The thermal plant evaluates the same property functions for every
//! subspace each tick. These kernels take parallel `f64` slices (one
//! element per zone) and evaluate the scalar kernels element-wise in a
//! single pass, giving the compiler a tight, branch-free loop to
//! auto-vectorize and sparing the per-call overhead of the newtype
//! wrappers.
//!
//! # Bit-exactness contract
//!
//! Every function here performs **exactly the arithmetic of its scalar
//! counterpart, in the same operation order, element by element**. Rust
//! floating-point semantics are strict (no fast-math reassociation), so
//! batch results are bit-identical to scalar results — the property the
//! scalar-parity suite in `crates/thermal` and `crates/core` locks down.
//! Anything interpolated or approximated lives in [`crate::cache`]
//! instead, off the simulation path.

use crate::magnus::saturation_vapor_pressure;
use crate::moist_air::{
    dry_air_density, moist_air_enthalpy, relative_humidity_from_humidity_ratio,
    vapor_pressure_from_humidity_ratio, STANDARD_PRESSURE,
};
use crate::units::{Celsius, KgPerKg};

/// Asserts the parallel-slice contract shared by every batch kernel.
macro_rules! same_len {
    ($a:expr, $b:expr) => {
        assert_eq!(
            $a.len(),
            $b.len(),
            "batch kernel slices must have equal lengths"
        );
    };
}

/// Batch Magnus saturation vapor pressure: `out[i] = p_ws(temps_c[i])`
/// in Pa.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn saturation_vapor_pressure_batch(temps_c: &[f64], out: &mut [f64]) {
    same_len!(temps_c, out);
    for (t, o) in temps_c.iter().zip(out.iter_mut()) {
        *o = saturation_vapor_pressure(Celsius::new(*t)).get();
    }
}

/// Batch vapor pressure from humidity ratio at standard pressure:
/// `out[i] = p_w(ratios[i])` in Pa.
///
/// # Panics
///
/// Panics if the slices have different lengths or any ratio is negative.
pub fn vapor_pressure_batch(ratios: &[f64], out: &mut [f64]) {
    same_len!(ratios, out);
    for (w, o) in ratios.iter().zip(out.iter_mut()) {
        *o = vapor_pressure_from_humidity_ratio(KgPerKg::new(*w), STANDARD_PRESSURE)
            .expect("humidity ratio must be non-negative")
            .get();
    }
}

/// Batch relative humidity from humidity ratio:
/// `out[i] = rh(temps_c[i], ratios[i])` in percent.
///
/// # Panics
///
/// Panics if the slices have different lengths or any ratio is negative.
pub fn relative_humidity_batch(temps_c: &[f64], ratios: &[f64], out: &mut [f64]) {
    same_len!(temps_c, out);
    same_len!(ratios, out);
    for ((t, w), o) in temps_c.iter().zip(ratios.iter()).zip(out.iter_mut()) {
        *o = relative_humidity_from_humidity_ratio(Celsius::new(*t), KgPerKg::new(*w))
            .expect("humidity ratio must be non-negative")
            .get();
    }
}

/// Batch moist-air specific enthalpy:
/// `out[i] = h(temps_c[i], ratios[i])` in J per kg dry air.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn moist_air_enthalpy_batch(temps_c: &[f64], ratios: &[f64], out: &mut [f64]) {
    same_len!(temps_c, out);
    same_len!(ratios, out);
    for ((t, w), o) in temps_c.iter().zip(ratios.iter()).zip(out.iter_mut()) {
        *o = moist_air_enthalpy(Celsius::new(*t), KgPerKg::new(*w));
    }
}

/// Batch dry-air density at standard pressure:
/// `out[i] = rho(temps_c[i])` in kg/m³.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dry_air_density_batch(temps_c: &[f64], out: &mut [f64]) {
    same_len!(temps_c, out);
    for (t, o) in temps_c.iter().zip(out.iter_mut()) {
        *o = dry_air_density(Celsius::new(*t));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Percent;

    const TEMPS: [f64; 4] = [18.5, 24.0, 28.9, 31.2];
    const RATIOS: [f64; 4] = [0.009, 0.0136, 0.0233, 0.0258];

    #[test]
    fn saturation_pressure_matches_scalar_bitwise() {
        let mut out = [0.0; 4];
        saturation_vapor_pressure_batch(&TEMPS, &mut out);
        for (t, o) in TEMPS.iter().zip(out.iter()) {
            let scalar = saturation_vapor_pressure(Celsius::new(*t)).get();
            assert_eq!(scalar.to_bits(), o.to_bits());
        }
    }

    #[test]
    fn vapor_pressure_matches_scalar_bitwise() {
        let mut out = [0.0; 4];
        vapor_pressure_batch(&RATIOS, &mut out);
        for (w, o) in RATIOS.iter().zip(out.iter()) {
            let scalar = vapor_pressure_from_humidity_ratio(KgPerKg::new(*w), STANDARD_PRESSURE)
                .unwrap()
                .get();
            assert_eq!(scalar.to_bits(), o.to_bits());
        }
    }

    #[test]
    fn relative_humidity_matches_scalar_bitwise() {
        let mut out = [0.0; 4];
        relative_humidity_batch(&TEMPS, &RATIOS, &mut out);
        for i in 0..4 {
            let scalar = relative_humidity_from_humidity_ratio(
                Celsius::new(TEMPS[i]),
                KgPerKg::new(RATIOS[i]),
            )
            .unwrap();
            assert_eq!(scalar.get().to_bits(), out[i].to_bits());
            // Sanity: these are real humidity percentages.
            let _typed = Percent::new(out[i]);
            assert!(out[i] > 0.0 && out[i] <= 100.0);
        }
    }

    #[test]
    fn enthalpy_matches_scalar_bitwise() {
        let mut out = [0.0; 4];
        moist_air_enthalpy_batch(&TEMPS, &RATIOS, &mut out);
        for i in 0..4 {
            let scalar = moist_air_enthalpy(Celsius::new(TEMPS[i]), KgPerKg::new(RATIOS[i]));
            assert_eq!(scalar.to_bits(), out[i].to_bits());
        }
    }

    #[test]
    fn density_matches_scalar_bitwise() {
        let mut out = [0.0; 4];
        dry_air_density_batch(&TEMPS, &mut out);
        for (t, o) in TEMPS.iter().zip(out.iter()) {
            assert_eq!(dry_air_density(Celsius::new(*t)).to_bits(), o.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn mismatched_lengths_panic() {
        let mut out = [0.0; 3];
        saturation_vapor_pressure_batch(&TEMPS, &mut out);
    }
}
