//! Liquid-water properties for the hydronic loops.
//!
//! The paper computes removed heat as `P = c · F · (T_retn − T_supp)` where
//! `c` is "a constant related to the water thermal capacity and density".
//! These helpers provide that constant and its ingredients.

use crate::units::Celsius;

/// Specific heat of liquid water, J/(kg·K), at hydronic temperatures.
pub const CP_WATER: f64 = 4_186.0;

/// Density of liquid water at `temperature`, kg/m³.
///
/// Quadratic fit around the 4 °C maximum, accurate to ~0.1 kg/m³ over the
/// 0–40 °C range the chilled-water loops operate in.
#[must_use]
pub fn water_density(temperature: Celsius) -> f64 {
    let t = temperature.get();
    1_000.0 - 0.0063 * (t - 4.0).powi(2)
}

/// Specific heat of liquid water at `temperature`, J/(kg·K).
///
/// Essentially flat over the hydronic range; a tiny linear correction keeps
/// energy balances honest.
#[must_use]
pub fn water_specific_heat(temperature: Celsius) -> f64 {
    CP_WATER - 0.6 * (temperature.get() - 20.0)
}

/// The paper's constant `c`: volumetric heat capacity of water in
/// J/(m³·K) at `temperature` (density × specific heat). Multiplying by a
/// volumetric flow in m³/s and a temperature difference in Kelvin yields
/// Watts.
#[must_use]
pub fn water_volumetric_heat_capacity(temperature: Celsius) -> f64 {
    water_density(temperature) * water_specific_heat(temperature)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_peaks_near_four_degrees() {
        let at_4 = water_density(Celsius::new(4.0));
        assert!(at_4 > water_density(Celsius::new(0.0)));
        assert!(at_4 > water_density(Celsius::new(20.0)));
        assert!((at_4 - 1_000.0).abs() < 0.01);
    }

    #[test]
    fn density_reference_at_18c() {
        // ~998.6 kg/m³ at 18 °C (the radiant supply temperature).
        let rho = water_density(Celsius::new(18.0));
        assert!((rho - 998.7).abs() < 0.8, "got {rho}");
    }

    #[test]
    fn specific_heat_near_4186() {
        for t in [8.0, 18.0, 25.0] {
            let cp = water_specific_heat(Celsius::new(t));
            assert!((cp - 4_186.0).abs() < 15.0, "got {cp} at {t}°C");
        }
    }

    #[test]
    fn volumetric_capacity_magnitude() {
        // ~4.18 MJ/(m³·K).
        let c = water_volumetric_heat_capacity(Celsius::new(18.0));
        assert!((c - 4.18e6).abs() < 0.03e6, "got {c}");
    }
}
