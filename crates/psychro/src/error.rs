//! Error type for psychrometric computations.

use std::error::Error;
use std::fmt;

/// An error produced by a psychrometric property function.
///
/// The property functions are total over the physically meaningful domain;
/// this error is returned by the `_checked` variants when an input falls
/// outside that domain (e.g. a non-positive relative humidity, for which a
/// dew point does not exist).
#[derive(Debug, Clone, PartialEq)]
pub enum PsychroError {
    /// Relative humidity must lie in `(0, 100]` percent for a dew point to
    /// exist; carries the offending value in percent.
    HumidityOutOfRange(f64),
    /// Temperature is outside the validity range of the Magnus
    /// approximation (roughly −45 °C to +60 °C); carries the offending
    /// value in Celsius.
    TemperatureOutOfRange(f64),
    /// A humidity ratio was negative; carries the offending value in kg/kg.
    NegativeHumidityRatio(f64),
}

impl fmt::Display for PsychroError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::HumidityOutOfRange(h) => {
                write!(f, "relative humidity {h}% is outside (0, 100]")
            }
            Self::TemperatureOutOfRange(t) => {
                write!(f, "temperature {t}°C is outside the Magnus validity range")
            }
            Self::NegativeHumidityRatio(w) => {
                write!(f, "humidity ratio {w} kg/kg is negative")
            }
        }
    }
}

impl Error for PsychroError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let messages = [
            PsychroError::HumidityOutOfRange(120.0).to_string(),
            PsychroError::TemperatureOutOfRange(-80.0).to_string(),
            PsychroError::NegativeHumidityRatio(-0.1).to_string(),
        ];
        for msg in messages {
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PsychroError>();
    }
}
