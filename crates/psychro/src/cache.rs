//! Cached Magnus saturation-pressure lookup.
//!
//! The Magnus curve [`saturation_vapor_pressure`] costs one `exp` per
//! call. For analytics and benchmark workloads that evaluate it millions
//! of times over a narrow band, [`SaturationCache`] trades one table
//! build for O(1) interpolated lookups with a proven relative-error
//! bound ([`SaturationCache::MAX_REL_ERROR`]).
//!
//! The cache is deterministic: the table is a pure function of the
//! Magnus constants, so two caches always answer identically. It is
//! **not** used on the simulation hot path — the tick loop keeps the
//! exact scalar/batch kernels so metric exports stay bit-identical —
//! but it is the reference design for consumers that can tolerate the
//! documented tolerance, and `cargo bench -p bz-bench` quantifies what
//! that tolerance buys.

use crate::magnus::saturation_vapor_pressure;
use crate::units::{Celsius, Pascals};

/// Deterministic interpolation table over the Magnus saturation curve.
#[derive(Debug, Clone)]
pub struct SaturationCache {
    /// Pre-evaluated `p_ws` at `MIN_C + i * STEP_C`.
    table: Vec<f64>,
}

impl SaturationCache {
    /// Lower edge of the cached band, °C. Covers everything the lab,
    /// weather, and chiller loops produce with margin.
    pub const MIN_C: f64 = -10.0;
    /// Upper edge of the cached band, °C (the Magnus validity ceiling).
    pub const MAX_C: f64 = 60.0;
    /// Grid spacing, °C.
    pub const STEP_C: f64 = 0.05;
    /// Guaranteed relative-error bound of [`lookup`](Self::lookup)
    /// inside the band, proven by `interpolation_error_stays_in_bound`.
    ///
    /// Linear interpolation of a convex curve over a step `h` has error
    /// at most `h²·max|f''|/8`; for the Magnus curve on [−10, 60] °C
    /// with `h = 0.05` K that works out to under 2×10⁻⁶ relative — the
    /// constant here keeps an order-of-magnitude margin on top.
    pub const MAX_REL_ERROR: f64 = 2e-5;

    /// Number of grid points (inclusive of both edges).
    fn len() -> usize {
        let span = (Self::MAX_C - Self::MIN_C) / Self::STEP_C;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let n = span.round() as usize;
        n + 1
    }

    /// Builds the table by evaluating the exact Magnus curve at every
    /// grid point.
    #[must_use]
    pub fn new() -> Self {
        let table = (0..Self::len())
            .map(|i| {
                let t = Self::MIN_C + i as f64 * Self::STEP_C;
                saturation_vapor_pressure(Celsius::new(t)).get()
            })
            .collect();
        Self { table }
    }

    /// Interpolated saturation vapor pressure at `temperature`.
    ///
    /// Inside `[MIN_C, MAX_C]` the result is within
    /// [`MAX_REL_ERROR`](Self::MAX_REL_ERROR) of the exact curve.
    /// Outside the band the call falls back to the exact kernel, so the
    /// cache never extrapolates.
    #[must_use]
    pub fn lookup(&self, temperature: Celsius) -> Pascals {
        let t = temperature.get();
        if !(Self::MIN_C..=Self::MAX_C).contains(&t) {
            return saturation_vapor_pressure(temperature);
        }
        let pos = (t - Self::MIN_C) / Self::STEP_C;
        // `pos >= 0` inside the band, where truncation *is* floor — the
        // cast alone avoids an out-of-line libm `floor` per lookup.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let i = (pos as usize).min(self.table.len() - 2);
        let frac = pos - i as f64;
        let lo = self.table[i];
        let hi = self.table[i + 1];
        Pascals::new(lo + (hi - lo) * frac)
    }

    /// Batch variant of [`lookup`](Self::lookup):
    /// `out[i] = lookup(temps_c[i])` in Pa.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn lookup_batch(&self, temps_c: &[f64], out: &mut [f64]) {
        assert_eq!(
            temps_c.len(),
            out.len(),
            "batch kernel slices must have equal lengths"
        );
        for (t, o) in temps_c.iter().zip(out.iter_mut()) {
            *o = self.lookup(Celsius::new(*t)).get();
        }
    }
}

impl Default for SaturationCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_the_expected_size() {
        let cache = SaturationCache::new();
        assert_eq!(cache.table.len(), 1401);
    }

    #[test]
    fn grid_points_are_exact() {
        let cache = SaturationCache::new();
        for t in [-10.0, 0.0, 25.0, 60.0] {
            let exact = saturation_vapor_pressure(Celsius::new(t)).get();
            let cached = cache.lookup(Celsius::new(t)).get();
            assert!(
                (cached - exact).abs() / exact < 1e-12,
                "grid point {t}°C: cached {cached}, exact {exact}"
            );
        }
    }

    #[test]
    fn interpolation_error_stays_in_bound() {
        // The exactness-tolerance proof: scan the band densely at
        // off-grid points (11 interior offsets per step) and check every
        // lookup against the exact Magnus kernel.
        let cache = SaturationCache::new();
        let mut worst = 0.0_f64;
        let mut t = SaturationCache::MIN_C;
        while t < SaturationCache::MAX_C {
            for k in 1..12 {
                let probe = t + SaturationCache::STEP_C * f64::from(k) / 12.0;
                if probe >= SaturationCache::MAX_C {
                    break;
                }
                let exact = saturation_vapor_pressure(Celsius::new(probe)).get();
                let cached = cache.lookup(Celsius::new(probe)).get();
                worst = worst.max((cached - exact).abs() / exact);
            }
            t += SaturationCache::STEP_C;
        }
        assert!(
            worst < SaturationCache::MAX_REL_ERROR,
            "worst relative error {worst:e} exceeds the documented bound"
        );
    }

    #[test]
    fn out_of_band_falls_back_to_exact() {
        let cache = SaturationCache::new();
        for t in [-30.0, 75.0] {
            let exact = saturation_vapor_pressure(Celsius::new(t)).get();
            let cached = cache.lookup(Celsius::new(t)).get();
            assert_eq!(exact.to_bits(), cached.to_bits());
        }
    }

    #[test]
    fn batch_lookup_matches_scalar_lookup() {
        let cache = SaturationCache::new();
        let temps = [12.3, 24.7, 31.9];
        let mut out = [0.0; 3];
        cache.lookup_batch(&temps, &mut out);
        for (t, o) in temps.iter().zip(out.iter()) {
            assert_eq!(cache.lookup(Celsius::new(*t)).get().to_bits(), o.to_bits());
        }
    }
}
