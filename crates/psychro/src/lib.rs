//! Psychrometric properties, thermodynamic unit newtypes, and exergy math.
//!
//! This crate is the physical foundation of the BubbleZERO reproduction.
//! Every temperature, humidity, pressure, flow, and power quantity that moves
//! between the thermal plant, the controllers, and the sensor network is
//! expressed with dedicated unit newtypes ([`Celsius`], [`Percent`],
//! [`Watts`], …), and every moist-air property the paper's control logic
//! depends on (most importantly the Magnus dew-point formula from §III-B
//! of the paper, [`dew_point`]) lives here.
//!
//! # Example
//!
//! Compute the dew point the radiant-cooling controller uses to decide its
//! mixed-water temperature target:
//!
//! ```
//! use bz_psychro::{Celsius, Percent, dew_point};
//!
//! let room = Celsius::new(25.0);
//! let humidity = Percent::new(65.0);
//! let dew = dew_point(room, humidity);
//! assert!(dew < room);
//! assert!((dew.get() - 18.0).abs() < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cache;
mod error;
mod exergy;
mod magnus;
mod moist_air;
mod units;
mod water;

pub use cache::SaturationCache;
pub use error::PsychroError;
pub use exergy::{carnot_cop_cooling, carnot_cop_heating, exergy_of_heat, CarnotChiller};
pub use magnus::{
    dew_point, dew_point_checked, relative_humidity_from_dew_point, saturation_vapor_pressure,
    vapor_pressure, MAGNUS_A, MAGNUS_B,
};
pub use moist_air::{
    dry_air_density, humidity_ratio_from_dew_point, humidity_ratio_from_rh,
    humidity_ratio_from_vapor_pressure, latent_heat_of_vaporization, moist_air_enthalpy,
    moist_air_specific_volume, relative_humidity_from_humidity_ratio,
    vapor_pressure_from_humidity_ratio, wet_bulb_temperature, CP_DRY_AIR, CP_WATER_VAPOR,
    STANDARD_PRESSURE,
};
pub use units::{
    Celsius, CubicMetersPerSecond, DeltaCelsius, Joules, Kelvin, KgPerKg, KgPerSecond, Kilograms,
    Pascals, Percent, Ppm, Seconds, Volts, Watts,
};
pub use water::{water_density, water_specific_heat, water_volumetric_heat_capacity, CP_WATER};
