//! Exergy and ideal-cycle (Carnot) relations.
//!
//! §II of the paper defines the exergy of a heat flux `Q` moved at working
//! temperature `T` relative to a room at reference temperature `T₀` as
//! `Ex = Q·(1 − T/T₀)`: the smaller the temperature gradient, the less work
//! the thermodynamic cycle must consume. The Carnot-fraction chiller model
//! built on these relations is what makes 18 °C water cheaper to produce
//! than 8 °C water, which is the entire economic argument of BubbleZERO.

use crate::units::{Kelvin, Watts};

/// Exergy content of a heat flux `heat` moved at absolute working
/// temperature `working` relative to the reference `reference`
/// (`Ex = Q·(1 − T/T₀)`, the paper's Equation in §II).
///
/// The sign convention follows the paper: for cooling (working temperature
/// below the reference), the exergy is positive and grows with the gradient.
///
/// # Example
///
/// ```
/// use bz_psychro::{exergy_of_heat, Celsius, Watts};
///
/// let room = Celsius::new(25.0).to_kelvin();
/// let q = Watts::new(1000.0);
/// // Moving 1 kW with 18 °C water takes far less exergy than with 8 °C air.
/// let high_temp = exergy_of_heat(q, Celsius::new(18.0).to_kelvin(), room);
/// let low_temp = exergy_of_heat(q, Celsius::new(8.0).to_kelvin(), room);
/// assert!(high_temp.get() < low_temp.get());
/// ```
#[must_use]
pub fn exergy_of_heat(heat: Watts, working: Kelvin, reference: Kelvin) -> Watts {
    heat * (1.0 - working.get() / reference.get()).abs()
}

/// Ideal (Carnot) coefficient of performance for a cooling cycle lifting
/// heat from `evaporator` to `condenser`: `COP = T_evap / (T_cond − T_evap)`.
///
/// # Panics
///
/// Panics if `condenser` is not strictly warmer than `evaporator` (the cycle
/// would require no work, and the formula diverges).
#[must_use]
pub fn carnot_cop_cooling(evaporator: Kelvin, condenser: Kelvin) -> f64 {
    let lift = condenser.get() - evaporator.get();
    assert!(
        lift > 0.0,
        "condenser ({condenser}) must be warmer than evaporator ({evaporator})"
    );
    evaporator.get() / lift
}

/// Ideal (Carnot) coefficient of performance for a *heating* cycle
/// delivering heat at `condenser` drawn from `evaporator`:
/// `COP = T_cond / (T_cond − T_evap)`. The same low-exergy argument the
/// paper makes for cooling applies in reverse — §VI notes water-based
/// radiant *heating* as the companion application: a 28 °C radiant floor
/// needs far less compressor work per Watt than a 45 °C radiator loop.
///
/// # Panics
///
/// Panics if `condenser` is not strictly warmer than `evaporator`.
#[must_use]
pub fn carnot_cop_heating(evaporator: Kelvin, condenser: Kelvin) -> f64 {
    let lift = condenser.get() - evaporator.get();
    assert!(
        lift > 0.0,
        "condenser ({condenser}) must be warmer than evaporator ({evaporator})"
    );
    condenser.get() / lift
}

/// A vapor-compression chiller modeled as a fixed fraction of the Carnot
/// limit.
///
/// Real chillers achieve 25–45 % of Carnot; the fraction (the "second-law
/// efficiency") is the single calibration constant in the COP story. With
/// an efficiency of 0.30 and a 35 °C tropical condenser this model gives
/// COP ≈ 4.5 at 16 °C evaporation (18 °C water) and ≈ 2.9 at 6 °C
/// evaporation (8 °C water), matching Fig. 11 of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CarnotChiller {
    /// Fraction of the Carnot COP the machine achieves, in `(0, 1]`.
    efficiency: f64,
    /// Condenser absolute temperature (heat-rejection side).
    condenser: Kelvin,
}

impl CarnotChiller {
    /// Creates a chiller model with the given second-law `efficiency` and
    /// heat-rejection (condenser) temperature.
    ///
    /// # Panics
    ///
    /// Panics if `efficiency` is not in `(0, 1]`.
    #[must_use]
    pub fn new(efficiency: f64, condenser: Kelvin) -> Self {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "second-law efficiency {efficiency} must be in (0, 1]"
        );
        Self {
            efficiency,
            condenser,
        }
    }

    /// The second-law efficiency fraction.
    #[must_use]
    pub fn efficiency(&self) -> f64 {
        self.efficiency
    }

    /// The condenser temperature.
    #[must_use]
    pub fn condenser(&self) -> Kelvin {
        self.condenser
    }

    /// Actual COP when evaporating at `evaporator`.
    ///
    /// # Panics
    ///
    /// Panics if `evaporator` is not colder than the condenser.
    #[must_use]
    pub fn cop(&self, evaporator: Kelvin) -> f64 {
        self.efficiency * carnot_cop_cooling(evaporator, self.condenser)
    }

    /// Electrical power required to move `heat` of cooling duty while
    /// evaporating at `evaporator`.
    ///
    /// # Panics
    ///
    /// Panics if `evaporator` is not colder than the condenser.
    #[must_use]
    pub fn electrical_power(&self, heat: Watts, evaporator: Kelvin) -> Watts {
        heat / self.cop(evaporator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Celsius;

    fn tropical_chiller() -> CarnotChiller {
        CarnotChiller::new(0.30, Celsius::new(35.0).to_kelvin())
    }

    #[test]
    fn exergy_grows_with_gradient() {
        let room = Celsius::new(25.0).to_kelvin();
        let q = Watts::new(1_000.0);
        let ex18 = exergy_of_heat(q, Celsius::new(18.0).to_kelvin(), room);
        let ex8 = exergy_of_heat(q, Celsius::new(8.0).to_kelvin(), room);
        assert!(ex18.get() < ex8.get());
        // 18 °C vs 25 °C room: 1 − 291.15/298.15 ≈ 2.35% of Q.
        assert!((ex18.get() - 23.5).abs() < 0.2, "got {ex18}");
    }

    #[test]
    fn exergy_zero_at_reference() {
        let room = Celsius::new(25.0).to_kelvin();
        let ex = exergy_of_heat(Watts::new(500.0), room, room);
        assert!(ex.get().abs() < 1e-9);
    }

    #[test]
    fn heating_cop_favors_low_supply_temperatures() {
        // Outdoor source at 5 °C: a 28 °C radiant surface beats a 45 °C
        // radiator loop on ideal COP by ~75%.
        let source = Celsius::new(5.0).to_kelvin();
        let radiant = carnot_cop_heating(source, Celsius::new(28.0).to_kelvin());
        let radiator = carnot_cop_heating(source, Celsius::new(45.0).to_kelvin());
        assert!(
            radiant > radiator * 1.6,
            "radiant {radiant} vs radiator {radiator}"
        );
        // Reference: 301.15/23 ≈ 13.1.
        assert!((radiant - 13.09).abs() < 0.05);
    }

    #[test]
    fn heating_and_cooling_cops_differ_by_one() {
        // Thermodynamic identity: COP_heat = COP_cool + 1.
        let evap = Celsius::new(5.0).to_kelvin();
        let cond = Celsius::new(35.0).to_kelvin();
        let heat = carnot_cop_heating(evap, cond);
        let cool = carnot_cop_cooling(evap, cond);
        assert!((heat - cool - 1.0).abs() < 1e-9);
    }

    #[test]
    fn carnot_reference_value() {
        // 16 °C evap, 35 °C cond: 289.15 / 19 ≈ 15.2.
        let cop = carnot_cop_cooling(
            Celsius::new(16.0).to_kelvin(),
            Celsius::new(35.0).to_kelvin(),
        );
        assert!((cop - 15.22).abs() < 0.05, "got {cop}");
    }

    #[test]
    #[should_panic(expected = "must be warmer")]
    fn carnot_rejects_inverted_lift() {
        let _ = carnot_cop_cooling(
            Celsius::new(35.0).to_kelvin(),
            Celsius::new(16.0).to_kelvin(),
        );
    }

    #[test]
    fn chiller_matches_paper_cops() {
        let chiller = tropical_chiller();
        // 18 °C supply water → evaporator ~16 °C → COP ≈ 4.5 (paper: 4.52).
        let cop_radiant = chiller.cop(Celsius::new(16.0).to_kelvin());
        assert!((cop_radiant - 4.52).abs() < 0.15, "got {cop_radiant}");
        // 8 °C supply water → evaporator ~6 °C → COP ≈ 2.9 (paper: 2.82).
        let cop_vent = chiller.cop(Celsius::new(6.0).to_kelvin());
        assert!((cop_vent - 2.89).abs() < 0.15, "got {cop_vent}");
    }

    #[test]
    fn electrical_power_is_heat_over_cop() {
        let chiller = tropical_chiller();
        let evap = Celsius::new(16.0).to_kelvin();
        let p = chiller.electrical_power(Watts::new(964.8), evap);
        assert!((p.get() - 964.8 / chiller.cop(evap)).abs() < 1e-9);
        // Should land near the paper's 213.4 W for the radiant module.
        assert!((p.get() - 213.4).abs() < 10.0, "got {p}");
    }

    #[test]
    #[should_panic(expected = "second-law efficiency")]
    fn chiller_rejects_bad_efficiency() {
        let _ = CarnotChiller::new(1.5, Celsius::new(35.0).to_kelvin());
    }

    #[test]
    fn chiller_cop_improves_with_warmer_evaporator() {
        let chiller = tropical_chiller();
        let mut previous = 0.0;
        for t in [2.0, 6.0, 10.0, 14.0, 18.0] {
            let cop = chiller.cop(Celsius::new(t).to_kelvin());
            assert!(cop > previous);
            previous = cop;
        }
    }
}
