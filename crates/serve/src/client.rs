//! A small blocking HTTP/1.1 client over one keep-alive connection.
//!
//! Backs the load generator and the integration tests. One [`Client`]
//! is one TCP connection; requests on it are strictly sequential, which
//! is exactly the closed-loop shape the load generator wants (N
//! connections = N concurrent requests in flight).

use std::io::{self, BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One response as it came off the wire.
#[derive(Debug, Clone)]
pub struct WireResponse {
    /// HTTP status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl WireResponse {
    /// First value of header `name` (lowercase), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy).
    #[must_use]
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A blocking keep-alive HTTP client on one connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Returns any socket error from connecting.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request and reads its response.
    ///
    /// # Errors
    ///
    /// Returns transport errors and malformed-response errors.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<WireResponse> {
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nhost: bz-serve\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )?;
        self.writer.write_all(body)?;
        self.writer.flush()?;
        self.read_response()
    }

    /// `GET path`, expecting a 2xx status.
    ///
    /// # Errors
    ///
    /// Transport errors, plus an [`ErrorKind::Other`] error carrying the
    /// response body on a non-2xx status.
    pub fn get_ok(&mut self, path: &str) -> io::Result<WireResponse> {
        expect_ok(self.request("GET", path, b"")?)
    }

    /// `POST path` with a JSON body, expecting a 2xx status.
    ///
    /// # Errors
    ///
    /// Transport errors, plus an [`ErrorKind::Other`] error carrying the
    /// response body on a non-2xx status.
    pub fn post_ok(&mut self, path: &str, body: &str) -> io::Result<WireResponse> {
        expect_ok(self.request("POST", path, body.as_bytes())?)
    }

    fn read_response(&mut self) -> io::Result<WireResponse> {
        let status_line = self.read_line()?;
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| bad(format!("malformed status line '{status_line}'")))?;
        let mut headers = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(bad(format!("malformed header line '{line}'")));
            };
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }
        let content_length = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .map(|(_, v)| v.parse::<usize>())
            .transpose()
            .map_err(|_| bad("unparsable content-length".to_owned()))?
            .unwrap_or(0);
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(WireResponse {
            status,
            headers,
            body,
        })
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }
}

fn expect_ok(response: WireResponse) -> io::Result<WireResponse> {
    if (200..300).contains(&response.status) {
        Ok(response)
    } else {
        Err(io::Error::other(format!(
            "HTTP {}: {}",
            response.status,
            response.text()
        )))
    }
}

fn bad(message: String) -> io::Error {
    io::Error::new(ErrorKind::InvalidData, message)
}
