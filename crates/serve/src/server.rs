//! The TCP server: a fixed worker pool over `std::net::TcpListener`,
//! an HTTP router onto the tenant registry, and graceful shutdown with
//! final per-tenant checkpoints.
//!
//! Concurrency model: the accept thread hands connections to `threads`
//! workers over an MPSC channel; each worker owns one connection at a
//! time and serves keep-alive requests on it until the peer closes,
//! errors, or shutdown is requested. Tenant state is behind the sharded
//! registry locks plus one mutex per tenant, so requests for different
//! tenants proceed fully in parallel.
//!
//! Shutdown (SIGINT/SIGTERM or `POST /admin/shutdown`): the listener
//! stops accepting, in-flight connections finish their current request,
//! workers drain and join, and every live tenant is checkpointed into
//! the configured directory via the atomic temp → fsync → rename path.

use std::io::{self, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use crate::http::{self, json_escape, json_f64, Request, Response};
use crate::tenants::{build_tenant, Registry, Tenant};

/// How long a worker blocks on an idle keep-alive connection before
/// re-checking the shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(200);

/// How long the accept thread sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7033` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads serving connections.
    pub threads: usize,
    /// Per-tenant bound on concurrently admitted requests; beyond it
    /// requests are shed with 429.
    pub max_inflight: u32,
    /// Where final per-tenant checkpoints go on graceful shutdown
    /// (`None` skips them).
    pub checkpoint_dir: Option<PathBuf>,
    /// Suppress startup/shutdown prints.
    pub quiet: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7033".to_owned(),
            threads: 8,
            max_inflight: 4,
            checkpoint_dir: None,
            quiet: false,
        }
    }
}

/// What a graceful shutdown left behind.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Tenants live at shutdown.
    pub tenants: usize,
    /// Requests served over the server's lifetime.
    pub requests: u64,
    /// Requests shed (429) over the server's lifetime.
    pub shed: u64,
    /// Final checkpoints written, in name order.
    pub checkpoints: Vec<PathBuf>,
}

/// Shared state every worker sees.
struct Shared {
    registry: Registry,
    shutdown: AtomicBool,
    requests: AtomicU64,
    shed: AtomicU64,
    max_inflight: u32,
}

/// A handle that can request shutdown from another thread (the CLI's
/// signal path and the tests use this).
#[derive(Clone)]
pub struct ShutdownHandle(Arc<Shared>);

impl ShutdownHandle {
    /// Asks the server to stop accepting, drain, and exit `run`.
    pub fn request_shutdown(&self) {
        self.0.shutdown.store(true, Ordering::SeqCst);
    }

    /// True once shutdown has been requested.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.0.shutdown.load(Ordering::SeqCst)
    }
}

/// The bound server, ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    config: ServeConfig,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and builds the shared state.
    ///
    /// # Errors
    ///
    /// Returns any socket error from binding.
    pub fn bind(config: ServeConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            registry: Registry::new(),
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            max_inflight: config.max_inflight.max(1),
        });
        Ok(Self {
            listener,
            local_addr,
            config,
            shared,
        })
    }

    /// The address the listener actually bound (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that can request shutdown from another thread.
    #[must_use]
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shared))
    }

    /// Serves until shutdown is requested (admin endpoint, handle, or a
    /// delivered SIGINT/SIGTERM if [`install_signal_handlers`] ran),
    /// then drains, writes final checkpoints, and reports.
    ///
    /// # Errors
    ///
    /// Returns socket errors from the accept loop and checkpoint I/O
    /// errors from the final drain.
    pub fn run(self) -> io::Result<ShutdownReport> {
        self.listener.set_nonblocking(true)?;
        let (sender, receiver) = mpsc::channel::<TcpStream>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers: Vec<_> = (0..self.config.threads.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let shared = Arc::clone(&self.shared);
                std::thread::Builder::new()
                    .name(format!("bz-serve-{i}"))
                    .spawn(move || worker_loop(&receiver, &shared))
                    .expect("spawning a worker thread")
            })
            .collect();

        if !self.config.quiet {
            println!("bz-serve listening on {}", self.local_addr);
        }
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) || signal_requested() {
                self.shared.shutdown.store(true, Ordering::SeqCst);
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // Bounded read timeout so idle keep-alive connections
                    // notice shutdown at request boundaries.
                    let _ = stream.set_read_timeout(Some(IDLE_POLL));
                    let _ = stream.set_nodelay(true);
                    if sender.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Drain: close the channel, let workers finish their connections.
        drop(sender);
        for worker in workers {
            let _ = worker.join();
        }

        let tenants = self.shared.registry.all();
        let mut checkpoints = Vec::new();
        if let Some(dir) = &self.config.checkpoint_dir {
            std::fs::create_dir_all(dir)?;
            for tenant in &tenants {
                let path = dir.join(format!("tenant-{}.bzck", tenant.name));
                tenant
                    .snapshot()
                    .write_atomic(&path)
                    .map_err(|e| io::Error::other(e.to_string()))?;
                checkpoints.push(path);
            }
        }
        let report = ShutdownReport {
            tenants: tenants.len(),
            requests: self.shared.requests.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            checkpoints,
        };
        if !self.config.quiet {
            println!(
                "bz-serve drained: {} tenants, {} requests served, {} shed, {} checkpoints",
                report.tenants,
                report.requests,
                report.shed,
                report.checkpoints.len()
            );
        }
        Ok(report)
    }
}

fn worker_loop(receiver: &Mutex<mpsc::Receiver<TcpStream>>, shared: &Shared) {
    loop {
        let stream = {
            let guard = receiver
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.recv()
        };
        let Ok(stream) = stream else {
            return; // channel closed: shutdown drain
        };
        let _ = serve_connection(stream, shared);
    }
}

/// Serves one connection's keep-alive request sequence.
fn serve_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        let request = match http::read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return Ok(()), // peer closed cleanly
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue; // idle keep-alive poll
            }
            Err(e) if e.kind() == ErrorKind::InvalidData => {
                let response = Response::error(400, &e.to_string());
                let _ = response.write_to(&mut writer, false);
                return Ok(());
            }
            Err(_) => return Ok(()), // torn connection
        };
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let shutting_down = shared.shutdown.load(Ordering::SeqCst);
        let keep_alive = !request.wants_close() && !shutting_down;
        let response = route(&request, shared);
        response.write_to(&mut writer, keep_alive)?;
        writer.flush()?;
        if !keep_alive {
            return Ok(());
        }
    }
}

/// Dispatches one request against the registry.
fn route(request: &Request, shared: &Shared) -> Response {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Response::json(200, "{\"ok\":true}".to_owned()),
        ("GET", ["stats"]) => Response::json(
            200,
            format!(
                "{{\"tenants\":{},\"requests\":{},\"shed\":{}}}",
                shared.registry.len(),
                shared.requests.load(Ordering::Relaxed),
                shared.shed.load(Ordering::Relaxed)
            ),
        ),
        ("POST", ["admin", "shutdown"]) => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Response::json(200, "{\"ok\":true,\"draining\":true}".to_owned())
        }
        ("POST", ["tenants"]) => create_tenant(request, shared),
        ("GET", ["tenants"]) => list_tenants(shared),
        (method, ["tenants", name]) => match (method, shared.registry.get(name)) {
            (_, None) => not_found(name),
            ("GET", Some(tenant)) => Response::json(200, tenant_status(&tenant)),
            ("DELETE", Some(_)) => {
                shared.registry.remove(name);
                Response {
                    status: 204,
                    content_type: "application/json",
                    headers: Vec::new(),
                    body: Vec::new(),
                }
            }
            _ => method_not_allowed(),
        },
        (method, ["tenants", name, action]) => match shared.registry.get(name) {
            None => not_found(name),
            Some(tenant) => {
                let Some(_permit) = tenant.admit(shared.max_inflight) else {
                    shared.shed.fetch_add(1, Ordering::Relaxed);
                    return Response::error(
                        429,
                        &format!("tenant '{name}' is at its in-flight bound; retry"),
                    );
                };
                tenant_action(method, action, request, &tenant)
            }
        },
        _ => Response::error(404, &format!("no route for {}", request.path)),
    }
}

fn tenant_action(method: &str, action: &str, request: &Request, tenant: &Tenant) -> Response {
    match (method, action) {
        ("POST", "step") => {
            let minutes = match body_u64(request, "minutes", 1) {
                Ok(minutes) => minutes,
                Err(response) => return *response,
            };
            let stepped = tenant.step_minutes(minutes);
            step_report(tenant, stepped)
        }
        ("POST", "advance") => {
            let target = match body_u64(request, "to_minute", tenant.total_minutes) {
                Ok(target) => target,
                Err(response) => return *response,
            };
            let stepped = tenant.advance_to_minute(target);
            step_report(tenant, stepped)
        }
        ("POST", "observe") => {
            let body = String::from_utf8_lossy(&request.body);
            let doc = match bz_core::json::Json::parse(&body) {
                Ok(doc) => doc,
                Err(e) => return Response::error(400, &e.to_string()),
            };
            let Some(name) = doc.field("name").and_then(bz_core::json::Json::as_str) else {
                return Response::error(400, "missing string field 'name'");
            };
            let Some(value) = doc.field("value").and_then(bz_core::json::Json::as_f64) else {
                return Response::error(400, "missing number field 'value'");
            };
            tenant.ingest(name, value);
            Response::json(
                200,
                format!("{{\"ok\":true,\"now_ms\":{}}}", tenant.now_ms()),
            )
        }
        ("GET", "setpoints") => match tenant.readback() {
            Some(readback) => Response::json(200, readback_json(&readback)),
            None => Response::error(
                409,
                &format!(
                    "tenant '{}' runs the {} scenario, which exposes status only",
                    tenant.name, tenant.scenario
                ),
            ),
        },
        ("GET", "metrics") => Response::jsonl(200, tenant.metrics_jsonl()),
        ("GET", "telemetry") => {
            let from = request
                .query_param("from")
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(0);
            let (lines, next) = tenant.telemetry_from(from);
            Response::jsonl(200, lines).with_header("x-bz-next-cursor", next.to_string())
        }
        ("GET", "snapshot") => Response::octets(200, tenant.snapshot().to_wire_bytes())
            .with_header("x-bz-config-crc", format!("{:016x}", tenant.config_crc)),
        ("POST", "restore") => {
            let checkpoint = match bz_state::Checkpoint::from_wire_bytes(&request.body) {
                Ok(checkpoint) => checkpoint,
                Err(e) => return Response::error(400, &e.to_string()),
            };
            match tenant.restore(&checkpoint) {
                Ok(()) => Response::json(
                    200,
                    format!(
                        "{{\"ok\":true,\"minute\":{},\"now_ms\":{}}}",
                        tenant.minute(),
                        tenant.now_ms()
                    ),
                ),
                Err(message) => Response::error(409, &message),
            }
        }
        _ => method_not_allowed(),
    }
}

fn create_tenant(request: &Request, shared: &Shared) -> Response {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Response::error(503, "server is draining");
    }
    let body = String::from_utf8_lossy(&request.body);
    let tenant = match build_tenant(&body) {
        Ok(tenant) => tenant,
        Err(e) => return Response::error(e.status, &e.message),
    };
    match shared.registry.insert(tenant) {
        Ok(tenant) => Response::json(201, tenant_status(&tenant)),
        Err(e) => Response::error(e.status, &e.message),
    }
}

fn list_tenants(shared: &Shared) -> Response {
    let tenants = shared.registry.all();
    let mut body = String::from("{\"tenants\":[");
    for (i, tenant) in tenants.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push('"');
        body.push_str(&json_escape(&tenant.name));
        body.push('"');
    }
    body.push_str(&format!("],\"count\":{}}}", tenants.len()));
    Response::json(200, body)
}

fn tenant_status(tenant: &Tenant) -> String {
    format!(
        "{{\"name\":\"{}\",\"scenario\":\"{}\",\"now_ms\":{},\"minute\":{},\
         \"total_minutes\":{},\"done\":{},\"config_crc\":\"{:016x}\",\"shed\":{}}}",
        json_escape(&tenant.name),
        json_escape(&tenant.scenario),
        tenant.now_ms(),
        tenant.minute(),
        tenant.total_minutes,
        tenant.is_done(),
        tenant.config_crc,
        tenant.shed.load(Ordering::Relaxed)
    )
}

fn step_report(tenant: &Tenant, stepped: u64) -> Response {
    Response::json(
        200,
        format!(
            "{{\"stepped\":{stepped},\"minute\":{},\"now_ms\":{},\"done\":{}}}",
            tenant.minute(),
            tenant.now_ms(),
            tenant.is_done()
        ),
    )
}

fn readback_json(readback: &bz_core::session::SetpointReadback) -> String {
    let mut body = format!("{{\"now_ms\":{},", readback.now_ms);
    body.push_str("\"zone_temp_c\":[");
    push_f64s(&mut body, &readback.zone_temp_c);
    body.push_str("],\"zone_dew_c\":[");
    push_f64s(&mut body, &readback.zone_dew_c);
    body.push_str("],\"radiant_v\":[");
    for (i, (supply, recycle)) in readback.radiant_v.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"supply\":{},\"recycle\":{}}}",
            json_f64(*supply),
            json_f64(*recycle)
        ));
    }
    body.push_str("],\"airboxes\":[");
    for (i, airbox) in readback.airboxes.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"coil_pump_v\":{},\"fan\":\"{}\",\"flap_open\":{}}}",
            json_f64(airbox.coil_pump_v),
            airbox.fan,
            airbox.flap_open
        ));
    }
    body.push_str(&format!("],\"strategy\":\"{}\"}}", readback.strategy));
    body
}

fn push_f64s(body: &mut String, values: &[f64]) {
    for (i, value) in values.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&json_f64(*value));
    }
}

/// Reads `{"<field>": N}` from the request body, defaulting when the
/// body is empty or the field is absent.
fn body_u64(request: &Request, field: &str, default: u64) -> Result<u64, Box<Response>> {
    if request.body.is_empty() {
        return Ok(default);
    }
    let body = String::from_utf8_lossy(&request.body);
    let doc = bz_core::json::Json::parse(&body)
        .map_err(|e| Box::new(Response::error(400, &e.to_string())))?;
    match doc.field(field) {
        None => Ok(default),
        Some(value) => match value.as_f64() {
            Some(n) if n >= 0.0 && n.fract() == 0.0 => Ok(n as u64),
            _ => Err(Box::new(Response::error(
                400,
                &format!("'{field}' must be a non-negative integer"),
            ))),
        },
    }
}

fn not_found(name: &str) -> Response {
    Response::error(404, &format!("no tenant named '{name}'"))
}

fn method_not_allowed() -> Response {
    Response::error(405, "method not allowed on this route")
}

#[cfg(unix)]
mod signals {
    //! Minimal libc-free signal hook: `signal(2)` via a raw FFI
    //! declaration, flipping one process-wide flag the accept loop
    //! polls. `bz_core` forbids unsafe code, so this single unsafe
    //! block lives here in the serve layer.

    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }

    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

/// Routes SIGINT and SIGTERM into a graceful drain of any running
/// server in this process. Call once before [`Server::run`].
pub fn install_signal_handlers() {
    #[cfg(unix)]
    signals::install();
}

fn signal_requested() -> bool {
    #[cfg(unix)]
    {
        signals::requested()
    }
    #[cfg(not(unix))]
    {
        false
    }
}
