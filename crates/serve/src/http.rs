//! A minimal, dependency-free HTTP/1.1 codec.
//!
//! The workspace is offline (no tokio/hyper), so the server hand-rolls
//! exactly the slice of HTTP it needs: request-line + headers parsing,
//! `Content-Length`-framed bodies, keep-alive, and fixed-status
//! responses. The codec is deliberately strict — malformed framing is an
//! error, never a guess — because the load generator drives it at tens of
//! thousands of requests per second and a desynchronized connection would
//! corrupt every later exchange on it.

use std::io::{self, BufRead, Write};

/// Largest accepted header section, bytes (request line + all headers).
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Largest accepted request body, bytes. Snapshot uploads of big tenants
/// are a few MB; this leaves generous headroom without letting one
/// connection exhaust memory.
pub const MAX_BODY_BYTES: usize = 256 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercase (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// Decoded path component of the target (no query string).
    pub path: String,
    /// Query parameters in document order.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of query parameter `name`, if present.
    #[must_use]
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (HTTP/1.1 defaults to keep-alive).
    #[must_use]
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Reads one request off `reader`. Returns `Ok(None)` on a clean EOF
/// before any request bytes (the peer closed an idle keep-alive
/// connection), an error for malformed or oversized framing.
///
/// # Errors
///
/// Returns an [`io::Error`] for transport failures, torn requests, and
/// protocol violations (bad request line, oversized headers/body,
/// unparsable `Content-Length`).
pub fn read_request<R: BufRead>(reader: &mut R) -> io::Result<Option<Request>> {
    let Some(request_line) = read_header_line(reader, true)? else {
        return Ok(None);
    };
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(bad(format!("malformed request line '{request_line}'"))),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(bad(format!("unsupported protocol version '{version}'")));
    }

    let mut headers = Vec::new();
    let mut header_bytes = request_line.len();
    loop {
        let Some(line) = read_header_line(reader, false)? else {
            return Err(bad("connection closed mid-headers"));
        };
        if line.is_empty() {
            break;
        }
        header_bytes += line.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(bad("header section too large"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad(format!("malformed header line '{line}'")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| bad(format!("unparsable content-length '{v}'")))?,
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(bad(format!(
            "request body of {content_length} bytes exceeds the limit"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path, parse_query(query)),
        None => (target, Vec::new()),
    };
    Ok(Some(Request {
        method: method.to_ascii_uppercase(),
        path: path.to_owned(),
        query,
        headers,
        body,
    }))
}

/// Reads one CRLF- (or LF-) terminated header line. `Ok(None)` on EOF;
/// `at_start` makes EOF-before-bytes a clean `None` instead of an error.
fn read_header_line<R: BufRead>(reader: &mut R, at_start: bool) -> io::Result<Option<String>> {
    let mut line = Vec::with_capacity(64);
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte)? {
            0 => {
                if line.is_empty() && at_start {
                    return Ok(None);
                }
                return if line.is_empty() {
                    Ok(None)
                } else {
                    Err(bad("connection closed mid-line"))
                };
            }
            _ => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map(Some)
                        .map_err(|_| bad("non-UTF-8 header line"));
                }
                if line.len() >= MAX_HEADER_BYTES {
                    return Err(bad("header line too long"));
                }
                line.push(byte[0]);
            }
        }
    }
}

fn parse_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_owned(), v.to_owned()),
            None => (pair.to_owned(), String::new()),
        })
        .collect()
}

fn bad(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

/// One response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra `(name, value)` headers.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response from already-serialized text.
    #[must_use]
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A newline-delimited-JSON (JSONL) response.
    #[must_use]
    pub fn jsonl(status: u16, body: Vec<u8>) -> Self {
        Self {
            status,
            content_type: "application/x-ndjson",
            headers: Vec::new(),
            body,
        }
    }

    /// A binary response (snapshot downloads).
    #[must_use]
    pub fn octets(status: u16, body: Vec<u8>) -> Self {
        Self {
            status,
            content_type: "application/octet-stream",
            headers: Vec::new(),
            body,
        }
    }

    /// An error response: `{"error": "<message>"}`.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Self {
        Self::json(
            status,
            format!("{{\"error\":\"{}\"}}", json_escape(message)),
        )
    }

    /// Adds a header and returns the response (builder style).
    #[must_use]
    pub fn with_header(mut self, name: &str, value: String) -> Self {
        self.headers.push((name.to_owned(), value));
        self
    }

    /// Serializes the response onto `writer`, announcing keep-alive or
    /// close per `keep_alive`.
    ///
    /// # Errors
    ///
    /// Returns any transport error.
    pub fn write_to<W: Write>(&self, writer: &mut W, keep_alive: bool) -> io::Result<()> {
        write!(
            writer,
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )?;
        for (name, value) in &self.headers {
            write!(writer, "{name}: {value}\r\n")?;
        }
        writer.write_all(b"\r\n")?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

/// The reason phrase for the status codes this server emits.
#[must_use]
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Escapes `text` for embedding in a JSON string literal.
#[must_use]
pub fn json_escape(text: &str) -> String {
    let mut escaped = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => escaped.push_str("\\\""),
            '\\' => escaped.push_str("\\\\"),
            '\n' => escaped.push_str("\\n"),
            '\r' => escaped.push_str("\\r"),
            '\t' => escaped.push_str("\\t"),
            c if (c as u32) < 0x20 => escaped.push_str(&format!("\\u{:04x}", c as u32)),
            c => escaped.push(c),
        }
    }
    escaped
}

/// Formats an `f64` as a JSON number (`null` for non-finite values).
#[must_use]
pub fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &str) -> io::Result<Option<Request>> {
        read_request(&mut BufReader::new(text.as_bytes()))
    }

    #[test]
    fn parses_a_request_with_body_and_query() {
        let request = parse(
            "POST /tenants/t1/step?minutes=5&dry= HTTP/1.1\r\n\
             Host: x\r\nContent-Length: 4\r\n\r\nbody",
        )
        .unwrap()
        .unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/tenants/t1/step");
        assert_eq!(request.query_param("minutes"), Some("5"));
        assert_eq!(request.query_param("dry"), Some(""));
        assert_eq!(request.header("host"), Some("x"));
        assert_eq!(request.body, b"body");
        assert!(!request.wants_close());
    }

    #[test]
    fn keep_alive_reads_back_to_back_requests() {
        let text = "GET /healthz HTTP/1.1\r\n\r\nGET /stats HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut reader = BufReader::new(text.as_bytes());
        let first = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(first.path, "/healthz");
        let second = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(second.path, "/stats");
        assert!(second.wants_close());
        assert!(read_request(&mut reader).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn malformed_framing_is_an_error_not_a_guess() {
        assert!(parse("GARBAGE\r\n\r\n").is_err());
        assert!(parse("GET /x SPDY/3\r\n\r\n").is_err());
        assert!(parse("GET /x HTTP/1.1\r\nbad header\r\n\r\n").is_err());
        assert!(parse("GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n").is_err());
        // Torn body: declared 10, only 4 present.
        assert!(parse("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nbody").is_err());
    }

    #[test]
    fn response_round_trips_through_the_parser_shape() {
        let mut wire = Vec::new();
        Response::json(200, "{\"ok\":true}".to_owned())
            .with_header("x-bz-cursor", "17".to_owned())
            .write_to(&mut wire, true)
            .unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 11\r\n"), "{text}");
        assert!(text.contains("connection: keep-alive\r\n"), "{text}");
        assert!(text.contains("x-bz-cursor: 17\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"), "{text}");
    }

    #[test]
    fn error_bodies_escape_the_message() {
        let response = Response::error(400, "bad \"name\"");
        assert_eq!(response.body, b"{\"error\":\"bad \\\"name\\\"\"}");
    }
}
