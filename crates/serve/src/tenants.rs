//! Tenant lifecycle: parsing create requests, the per-tenant simulation
//! driver, and the sharded registry the worker threads go through.
//!
//! One tenant is one independent simulated building. Three scenario
//! families are hosted, each behind the same driver API:
//!
//! * `trial` / `network` / `endurance` — the sweep scenarios, built with
//!   the exact construction recipe of `bzctl trial` and `bzctl sweep`
//!   ([`bz_bench::sweep::build_system`]) and driven through
//!   [`bz_core::session::TenantSession`];
//! * `chaos` — a fault-injection run from the `bzctl chaos` scenario
//!   JSON ([`ChaosScenario::from_json`]);
//! * `mpc` — a strategy run from the `bzctl mpc` scenario JSON
//!   ([`MpcScenario::from_json`]), reactive or MPC-controlled.
//!
//! Every tenant records into its own isolated [`bz_obs::Handle`], so
//! concurrent tenants share no mutable metric state and each tenant's
//! JSONL export is byte-identical to the same scenario run offline.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use bz_bench::sweep::{self, RunSpec};
use bz_core::chaos::{ChaosRun, ChaosScenario};
use bz_core::json::Json;
use bz_core::session::{SetpointReadback, TenantSession};
use bz_predict::compare::{begin_strategy, StrategySession};
use bz_predict::MpcScenario;
use bz_simcore::NoiseKernel;

/// Checkpoint `kind` tag of every serve-side snapshot (wire downloads and
/// the graceful-shutdown final checkpoints).
pub const CHECKPOINT_KIND: &str = "serve";

/// Shards of the tenant map. Requests for different tenants contend only
/// on their shard's read lock, never on one global map lock.
const SHARD_COUNT: usize = 64;

/// The simulation driver behind one tenant.
enum Driver {
    /// A sweep-family scenario driven through the externally-paced core
    /// session API.
    Sim(TenantSession),
    /// A fault-injection run.
    Chaos(ChaosRun),
    /// A strategy (reactive or MPC) run.
    Mpc(StrategySession),
}

impl Driver {
    fn now_ms(&self) -> u64 {
        match self {
            Self::Sim(s) => s.now_ms(),
            Self::Chaos(s) => s.now_ms(),
            Self::Mpc(s) => s.now_ms(),
        }
    }

    fn is_done(&self) -> bool {
        match self {
            Self::Sim(s) => s.is_done(),
            Self::Chaos(s) => s.is_done(),
            Self::Mpc(s) => s.is_done(),
        }
    }

    fn step_minute(&mut self) {
        match self {
            Self::Sim(s) => s.step_minute(),
            Self::Chaos(s) => s.step_minute(),
            Self::Mpc(s) => s.step_minute(),
        }
    }

    fn save_state(&self, w: &mut bz_state::Writer) {
        match self {
            Self::Sim(s) => s.save_state(w),
            Self::Chaos(s) => s.save_state(w),
            Self::Mpc(s) => s.save_state(w),
        }
    }

    fn load_state(&mut self, r: &mut bz_state::Reader<'_>) -> Result<(), bz_state::StateError> {
        match self {
            Self::Sim(s) => s.load_state(r),
            Self::Chaos(s) => s.load_state(r),
            Self::Mpc(s) => s.load_state(r),
        }
    }

    fn readback(&self) -> Option<SetpointReadback> {
        match self {
            Self::Sim(s) => Some(s.readback()),
            _ => None,
        }
    }

    fn ingest(&mut self, name: &str, value: f64, obs: &bz_obs::Handle) {
        match self {
            Self::Sim(s) => s.ingest_observation(name, value),
            driver => obs.gauge_set(format!("ingest.{name}"), driver.now_ms(), value),
        }
    }
}

/// A failed tenant-create request, with the HTTP status it maps to.
#[derive(Debug)]
pub struct CreateError {
    /// Suggested HTTP status (400 for malformed specs, 409 for clashes).
    pub status: u16,
    /// Human-readable reason.
    pub message: String,
}

impl CreateError {
    fn bad(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
        }
    }
}

/// One hosted tenant. The simulation lives behind a `Mutex` — every
/// stepping or snapshot operation is exclusive per tenant — while the
/// metadata and the admission counter are lock-free reads.
pub struct Tenant {
    /// Tenant name (unique across the registry).
    pub name: String,
    /// Scenario family label (`trial`, `network`, `endurance`, `chaos`,
    /// `mpc`).
    pub scenario: String,
    /// Canonical identity string: everything that shapes the simulation
    /// (scenario, seed, duration, grid point, noise-kernel version). Its
    /// CRC-64 gates snapshot restore.
    pub identity: String,
    /// CRC-64 of [`identity`](Self::identity).
    pub config_crc: u64,
    /// Scenario duration, minutes.
    pub total_minutes: u64,
    /// The tenant's isolated metrics handle.
    pub obs: bz_obs::Handle,
    driver: Mutex<Driver>,
    inflight: AtomicU32,
    /// Requests shed on this tenant by the admission bound.
    pub shed: AtomicU64,
}

impl std::fmt::Debug for Tenant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tenant")
            .field("name", &self.name)
            .field("identity", &self.identity)
            .finish_non_exhaustive()
    }
}

/// RAII admission permit: holding one counts against the tenant's
/// bounded in-flight budget; dropping it releases the slot.
pub struct Permit<'a> {
    tenant: &'a Tenant,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.tenant.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

impl Tenant {
    /// Tries to admit one request under the per-tenant in-flight bound.
    /// `None` means the tenant's queue is full and the request must be
    /// shed with a 429 (the shed counter is already incremented).
    pub fn admit(&self, max_inflight: u32) -> Option<Permit<'_>> {
        let prior = self.inflight.fetch_add(1, Ordering::AcqRel);
        if prior >= max_inflight {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            self.shed.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        Some(Permit { tenant: self })
    }

    /// Runs `f` with exclusive access to the tenant's simulation.
    fn with_driver<T>(&self, f: impl FnOnce(&mut Driver) -> T) -> T {
        let mut guard = match self.driver.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut guard)
    }

    /// Simulated milliseconds completed.
    #[must_use]
    pub fn now_ms(&self) -> u64 {
        self.with_driver(|d| d.now_ms())
    }

    /// Whole simulated minutes completed.
    #[must_use]
    pub fn minute(&self) -> u64 {
        self.now_ms() / 60_000
    }

    /// True once the scenario duration has fully run.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.with_driver(|d| d.is_done())
    }

    /// Advances up to `minutes` simulated minutes (stopping early at the
    /// scenario end) and returns how many were actually stepped.
    pub fn step_minutes(&self, minutes: u64) -> u64 {
        self.with_driver(|d| {
            let mut stepped = 0;
            while stepped < minutes && !d.is_done() {
                d.step_minute();
                stepped += 1;
            }
            stepped
        })
    }

    /// Advances until simulated minute `target` (clamped to the scenario
    /// end) and returns how many minutes were stepped.
    pub fn advance_to_minute(&self, target: u64) -> u64 {
        self.with_driver(|d| {
            let mut stepped = 0;
            while d.now_ms() / 60_000 < target && !d.is_done() {
                d.step_minute();
                stepped += 1;
            }
            stepped
        })
    }

    /// Records one externally observed sensor reading into the tenant's
    /// registry (gauge `ingest.<name>` at the current simulated time).
    pub fn ingest(&self, name: &str, value: f64) {
        self.with_driver(|d| d.ingest(name, value, &self.obs));
    }

    /// The setpoint/actuation readback, for scenario families that
    /// expose one (the sweep family; chaos and mpc report status only).
    #[must_use]
    pub fn readback(&self) -> Option<SetpointReadback> {
        self.with_driver(|d| d.readback())
    }

    /// The tenant's full metrics export (buffered events + totals tail),
    /// byte-identical to the offline run of the same scenario.
    #[must_use]
    pub fn metrics_jsonl(&self) -> Vec<u8> {
        // Hold the driver lock so the export cannot interleave with a
        // concurrent step on the same tenant.
        self.with_driver(|_| {
            let mut bytes = Vec::new();
            self.obs
                .write_jsonl(&mut bytes)
                .expect("writing to a Vec cannot fail");
            bytes
        })
    }

    /// Incremental telemetry tap: buffered event lines from cursor
    /// `from`, plus the new cursor.
    #[must_use]
    pub fn telemetry_from(&self, from: usize) -> (Vec<u8>, usize) {
        self.with_driver(|_| {
            let mut bytes = Vec::new();
            let next = self
                .obs
                .write_events_from(from, &mut bytes)
                .expect("writing to a Vec cannot fail");
            (bytes, next)
        })
    }

    /// Serializes the tenant into a BZCK checkpoint envelope stamped
    /// with its config identity.
    #[must_use]
    pub fn snapshot(&self) -> bz_state::Checkpoint {
        self.with_driver(|d| {
            let mut w = bz_state::Writer::new();
            d.save_state(&mut w);
            bz_state::Checkpoint {
                meta: bz_state::CheckpointMeta {
                    kind: CHECKPOINT_KIND.to_owned(),
                    tick_ms: d.now_ms(),
                    config_crc: self.config_crc,
                    label: self.identity.clone(),
                },
                payload: w.into_bytes(),
            }
        })
    }

    /// Restores the tenant from a checkpoint envelope. The envelope's
    /// config identity must match this tenant's — a snapshot of a
    /// different scenario, seed, duration, or noise-kernel version is
    /// refused, naming both identities.
    ///
    /// # Errors
    ///
    /// Returns a message (and implied 409) for identity mismatches and
    /// undecodable payloads.
    pub fn restore(&self, checkpoint: &bz_state::Checkpoint) -> Result<(), String> {
        if checkpoint.meta.kind != CHECKPOINT_KIND {
            return Err(format!(
                "checkpoint was written by '{}', not the serve layer; refusing to restore",
                checkpoint.meta.kind
            ));
        }
        if checkpoint.meta.config_crc != self.config_crc {
            return Err(format!(
                "checkpoint was taken under a different configuration ('{}', this tenant is \
                 '{}'); refusing to restore",
                checkpoint.meta.label, self.identity
            ));
        }
        self.with_driver(|d| {
            let mut r = bz_state::Reader::new(&checkpoint.payload);
            d.load_state(&mut r)
                .map_err(|e| format!("snapshot failed to restore: {e}"))
        })
    }
}

/// Parses and builds a tenant from a create-request JSON document.
///
/// The document names the tenant and scenario family and carries the
/// scenario parameters inline:
///
/// ```json
/// {"name": "b-001", "scenario": "trial", "seed": 7, "minutes": 105}
/// {"name": "g-001", "scenario": "trial", "seed": 7, "minutes": 10,
///  "grid": "dew-margin-k=0.5"}
/// {"name": "c-001", "scenario": "chaos", "bundled": true}
/// {"name": "m-001", "scenario": "mpc", "strategy": "mpc", "bundled": true}
/// ```
///
/// For `chaos` and `mpc` without `"bundled": true`, the same document is
/// handed to the `bzctl chaos` / `bzctl mpc` scenario parsers, so every
/// field those scenario files support works here unchanged.
///
/// # Errors
///
/// Returns a [`CreateError`] (status 400) for malformed documents.
pub fn build_tenant(body: &str) -> Result<Tenant, CreateError> {
    let root = Json::parse(body).map_err(|e| CreateError::bad(e.to_string()))?;
    let name = root
        .field("name")
        .and_then(Json::as_str)
        .ok_or_else(|| CreateError::bad("missing string field 'name'"))?
        .to_owned();
    if name.is_empty()
        || name.len() > 128
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
    {
        return Err(CreateError::bad(
            "'name' must be 1-128 chars of [A-Za-z0-9._-]",
        ));
    }
    let scenario = root
        .field("scenario")
        .and_then(Json::as_str)
        .unwrap_or("trial");
    let noise = NoiseKernel::from_env();
    let integer = |field: &str, default: u64| -> Result<u64, CreateError> {
        match root.field(field) {
            None => Ok(default),
            Some(v) => match v.as_f64() {
                Some(n) if n >= 0.0 && n.fract() == 0.0 => Ok(n as u64),
                _ => Err(CreateError::bad(format!(
                    "'{field}' must be a non-negative integer"
                ))),
            },
        }
    };

    match scenario {
        "trial" | "network" | "endurance" => {
            let seed = integer("seed", 0x5EED_0001)?;
            let minutes = integer("minutes", 105)?;
            if minutes == 0 {
                return Err(CreateError::bad("'minutes' must be positive"));
            }
            let grid = match root.field("grid") {
                Some(v) => {
                    let spec = v
                        .as_str()
                        .ok_or_else(|| CreateError::bad("'grid' must be a string"))?;
                    let points = sweep::parse_grid(spec).map_err(CreateError::bad)?;
                    if points.len() != 1 {
                        return Err(CreateError::bad(
                            "'grid' must name exactly one point (single values per axis)",
                        ));
                    }
                    points.into_iter().next().expect("one point")
                }
                None => Vec::new(),
            };
            let spec = RunSpec {
                index: 0,
                scenario: sweep::Scenario::parse(scenario).map_err(CreateError::bad)?,
                seed,
                minutes,
                params: grid,
            };
            let obs = bz_obs::Handle::isolated();
            let system = sweep::build_system(&spec, obs.clone()).map_err(CreateError::bad)?;
            let identity = format!("serve {} minutes={minutes} noise={noise}", spec.label());
            Ok(tenant(
                name,
                scenario,
                identity,
                minutes,
                obs.clone(),
                Driver::Sim(TenantSession::new(system, obs, minutes)),
            ))
        }
        "chaos" => {
            let scenario_cfg = if is_bundled(&root) {
                ChaosScenario::bundled_basic()
            } else {
                ChaosScenario::from_json(body).map_err(|e| CreateError::bad(e.to_string()))?
            };
            let minutes = scenario_cfg.duration.as_millis() / 60_000;
            let identity = format!(
                "serve chaos {} seed={} minutes={minutes} noise={noise}",
                scenario_cfg.name, scenario_cfg.seed
            );
            let obs = bz_obs::Handle::isolated();
            let run = scenario_cfg.begin_with_obs(obs.clone());
            Ok(tenant(
                name,
                "chaos",
                identity,
                minutes,
                obs,
                Driver::Chaos(run),
            ))
        }
        "mpc" => {
            let scenario_cfg = if is_bundled(&root) {
                MpcScenario::bundled_office()
            } else {
                MpcScenario::from_json(body).map_err(|e| CreateError::bad(e.to_string()))?
            };
            let strategy = root
                .field("strategy")
                .and_then(Json::as_str)
                .unwrap_or("mpc");
            let mpc = match strategy {
                "mpc" => Some(bz_predict::MpcConfig::office()),
                "reactive" => None,
                other => {
                    return Err(CreateError::bad(format!(
                        "'strategy' must be mpc or reactive, not '{other}'"
                    )))
                }
            };
            let minutes = scenario_cfg.duration.as_millis() / 60_000;
            let identity = format!(
                "serve mpc {} seed={} minutes={minutes} strategy={strategy} noise={noise}",
                scenario_cfg.name, scenario_cfg.seed
            );
            let session = begin_strategy(&scenario_cfg, mpc);
            let obs = session.obs().clone();
            Ok(tenant(
                name,
                "mpc",
                identity,
                minutes,
                obs,
                Driver::Mpc(session),
            ))
        }
        other => Err(CreateError::bad(format!(
            "unknown scenario '{other}' (expected trial, network, endurance, chaos, or mpc)"
        ))),
    }
}

fn is_bundled(root: &Json) -> bool {
    matches!(root.field("bundled"), Some(Json::Bool(true)))
}

fn tenant(
    name: String,
    scenario: &str,
    identity: String,
    total_minutes: u64,
    obs: bz_obs::Handle,
    driver: Driver,
) -> Tenant {
    let config_crc = bz_state::crc64::checksum(identity.as_bytes());
    Tenant {
        name,
        scenario: scenario.to_owned(),
        identity,
        config_crc,
        total_minutes,
        obs,
        driver: Mutex::new(driver),
        inflight: AtomicU32::new(0),
        shed: AtomicU64::new(0),
    }
}

/// The sharded tenant map. Lookups take one shard's read lock;
/// create/delete take that shard's write lock. The total count is
/// maintained separately so `/stats` never sweeps the shards.
pub struct Registry {
    shards: Vec<RwLock<HashMap<String, Arc<Tenant>>>>,
    count: AtomicUsize,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            count: AtomicUsize::new(0),
        }
    }

    fn shard(&self, name: &str) -> &RwLock<HashMap<String, Arc<Tenant>>> {
        // FNV-1a over the name; any stable spread works.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(hash as usize) % SHARD_COUNT]
    }

    /// Inserts a tenant. Fails (with the existing tenant left in place)
    /// when the name is taken.
    ///
    /// # Errors
    ///
    /// Returns a 409-flavored [`CreateError`] on a name clash.
    pub fn insert(&self, tenant: Tenant) -> Result<Arc<Tenant>, CreateError> {
        let shard = self.shard(&tenant.name);
        let mut guard = shard
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if guard.contains_key(&tenant.name) {
            return Err(CreateError {
                status: 409,
                message: format!("tenant '{}' already exists", tenant.name),
            });
        }
        let tenant = Arc::new(tenant);
        guard.insert(tenant.name.clone(), Arc::clone(&tenant));
        self.count.fetch_add(1, Ordering::AcqRel);
        Ok(tenant)
    }

    /// Looks a tenant up by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Arc<Tenant>> {
        self.shard(name)
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(name)
            .cloned()
    }

    /// Removes a tenant by name, returning it if it existed.
    pub fn remove(&self, name: &str) -> Option<Arc<Tenant>> {
        let removed = self
            .shard(name)
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(name);
        if removed.is_some() {
            self.count.fetch_sub(1, Ordering::AcqRel);
        }
        removed
    }

    /// Number of live tenants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Acquire)
    }

    /// True when no tenants are hosted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every live tenant, sorted by name (the order final checkpoints
    /// are written in, so shutdown output is deterministic).
    #[must_use]
    pub fn all(&self) -> Vec<Arc<Tenant>> {
        let mut tenants: Vec<Arc<Tenant>> = self
            .shards
            .iter()
            .flat_map(|shard| {
                shard
                    .read()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .values()
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        tenants.sort_by(|a, b| a.name.cmp(&b.name));
        tenants
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trial_tenant(name: &str, seed: u64, minutes: u64) -> Tenant {
        build_tenant(&format!(
            "{{\"name\":\"{name}\",\"scenario\":\"trial\",\"seed\":{seed},\"minutes\":{minutes}}}"
        ))
        .unwrap()
    }

    #[test]
    fn create_validates_names_and_scenarios() {
        for bad in [
            "{}",
            "{\"name\":\"\"}",
            "{\"name\":\"a b\"}",
            "{\"name\":\"x\",\"scenario\":\"nope\"}",
            "{\"name\":\"x\",\"minutes\":0}",
            "{\"name\":\"x\",\"grid\":\"dew-margin-k=0.1,0.2\"}",
        ] {
            let err = build_tenant(bad).unwrap_err();
            assert_eq!(err.status, 400, "{bad}: {}", err.message);
        }
    }

    #[test]
    fn wire_identity_embeds_everything_that_shapes_the_run() {
        let a = trial_tenant("a", 7, 10);
        let b = trial_tenant("b", 8, 10);
        let c = trial_tenant("c", 7, 11);
        assert_ne!(a.config_crc, b.config_crc, "seed is part of the identity");
        assert_ne!(
            a.config_crc, c.config_crc,
            "duration is part of the identity"
        );
        assert!(a.identity.contains("noise="), "noise version is recorded");
    }

    #[test]
    fn stepped_tenant_exports_the_offline_bytes() {
        let tenant = trial_tenant("t", 7, 3);
        assert_eq!(tenant.step_minutes(99), 3, "clamped at the scenario end");
        assert!(tenant.is_done());
        let offline = sweep::run_one(&RunSpec {
            index: 0,
            scenario: sweep::Scenario::Trial,
            seed: 7,
            minutes: 3,
            params: Vec::new(),
        })
        .unwrap();
        assert_eq!(tenant.metrics_jsonl(), offline.metrics_jsonl);
    }

    #[test]
    fn snapshot_restore_round_trips_into_identical_continuation() {
        let uninterrupted = trial_tenant("u", 9, 4);
        uninterrupted.step_minutes(4);
        let expected = uninterrupted.metrics_jsonl();

        let source = trial_tenant("s", 9, 4);
        source.step_minutes(2);
        let snapshot = source.snapshot();
        assert_eq!(snapshot.meta.kind, CHECKPOINT_KIND);
        assert_eq!(snapshot.meta.tick_ms, 120_000);

        let target = trial_tenant("t", 9, 4);
        target.restore(&snapshot).unwrap();
        assert_eq!(target.minute(), 2);
        target.step_minutes(2);
        assert_eq!(target.metrics_jsonl(), expected);
    }

    #[test]
    fn restore_refuses_foreign_identities() {
        let source = trial_tenant("s", 9, 4);
        let snapshot = source.snapshot();
        let other_seed = trial_tenant("o", 10, 4);
        let err = other_seed.restore(&snapshot).unwrap_err();
        assert!(err.contains("different configuration"), "{err}");
        assert!(err.contains("s0009"), "names the stored identity: {err}");

        let mut foreign = snapshot.clone();
        foreign.meta.kind = "trial".to_owned();
        let err = source.restore(&foreign).unwrap_err();
        assert!(err.contains("not the serve layer"), "{err}");
    }

    #[test]
    fn admission_bound_sheds_and_releases() {
        let tenant = trial_tenant("t", 1, 1);
        let first = tenant.admit(2).expect("slot 1");
        let _second = tenant.admit(2).expect("slot 2");
        assert!(tenant.admit(2).is_none(), "third is shed");
        assert_eq!(tenant.shed.load(Ordering::Relaxed), 1);
        drop(first);
        assert!(tenant.admit(2).is_some(), "released slot re-admits");
    }

    #[test]
    fn registry_insert_get_remove_counts() {
        let registry = Registry::new();
        assert!(registry.is_empty());
        for i in 0..10 {
            registry
                .insert(trial_tenant(&format!("t-{i}"), 1, 1))
                .unwrap();
        }
        assert_eq!(registry.len(), 10);
        let clash = registry.insert(trial_tenant("t-3", 1, 1)).unwrap_err();
        assert_eq!(clash.status, 409);
        assert!(registry.get("t-3").is_some());
        assert!(registry.remove("t-3").is_some());
        assert!(registry.get("t-3").is_none());
        assert_eq!(registry.len(), 9);
        let names: Vec<String> = registry.all().iter().map(|t| t.name.clone()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "all() is name-sorted");
    }

    #[test]
    fn chaos_and_mpc_tenants_build_from_bundled_scenarios() {
        let chaos =
            build_tenant("{\"name\":\"c\",\"scenario\":\"chaos\",\"bundled\":true}").unwrap();
        assert_eq!(chaos.scenario, "chaos");
        assert_eq!(chaos.total_minutes, 110);
        chaos.step_minutes(1);
        assert_eq!(chaos.minute(), 1);
        assert!(chaos.readback().is_none(), "chaos reports status only");

        let mpc = build_tenant(
            "{\"name\":\"m\",\"scenario\":\"mpc\",\"strategy\":\"reactive\",\"bundled\":true}",
        )
        .unwrap();
        assert_eq!(mpc.total_minutes, 270);
        mpc.step_minutes(1);
        let (lines, cursor) = mpc.telemetry_from(0);
        assert!(cursor > 0, "a stepped tenant has telemetry");
        assert!(!lines.is_empty());
    }

    #[test]
    fn ingest_is_telemetry_only() {
        let tenant = trial_tenant("t", 7, 2);
        tenant.step_minutes(1);
        tenant.ingest("room.temp_c", 24.0);
        assert_eq!(tenant.obs.snapshot().gauges["ingest.room.temp_c"], 24.0);
    }
}
