//! `bz-serve` — the multi-tenant control-plane service behind
//! `bzctl serve`.
//!
//! The workspace is offline (no tokio, no hyper), so the service is
//! built from the standard library alone: a hand-rolled HTTP/1.1 codec
//! ([`http`]), a sharded-lock tenant registry over the deterministic
//! simulation drivers ([`tenants`]), and a thread-pool TCP server with
//! graceful drain and final checkpoints ([`server`]). A small blocking
//! client ([`client`]) backs the load generator and the integration
//! tests.
//!
//! The contract that makes the service useful for the reproduction:
//! a tenant driven over the wire produces **byte-identical** JSONL
//! telemetry to the same scenario run offline with `bzctl trial` —
//! the wire is pacing, not physics.

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod load;
pub mod server;
pub mod tenants;

pub use client::Client;
pub use server::{ServeConfig, Server, ShutdownReport};
pub use tenants::{build_tenant, Registry, Tenant};
