//! The `bzctl loadgen` driver: closed-loop load against a running
//! `bzctl serve` instance.
//!
//! Two modes share the connection machinery:
//!
//! * [`run`] — the load test: create `tenants` simulated buildings,
//!   then drive them all to `minutes_per_tenant` with `connections`
//!   closed-loop clients, timing every request. The percentile summary
//!   and the `BENCH_0010.json` record come from [`bz_bench::load`].
//! * [`mirror`] — the determinism probe: create ONE tenant, drive it to
//!   completion over the wire, download its JSONL export. CI diffs the
//!   result byte-for-byte against the same scenario run offline with
//!   `bzctl trial`.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bz_bench::load::{summarize, LoadReport};

use crate::client::Client;

/// Load-test parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:7033`.
    pub addr: String,
    /// Tenants to create and drive.
    pub tenants: usize,
    /// Closed-loop client connections.
    pub connections: usize,
    /// Simulated minutes to advance each tenant.
    pub minutes_per_tenant: u64,
    /// Seed of tenant 0 (tenant `i` uses `seed_base + i`).
    pub seed_base: u64,
    /// Simulated minutes per step request.
    pub step_minutes: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7033".to_owned(),
            tenants: 1_000,
            connections: 16,
            minutes_per_tenant: 2,
            seed_base: 0x10AD_0001,
            step_minutes: 1,
        }
    }
}

/// Runs the closed-loop load test and reports latency percentiles.
///
/// Tenants are named `lg-<i>` and left on the server afterwards (so a
/// follow-up `/stats` or shutdown checkpoint still sees them); rerunning
/// against the same server continues the same tenants if their config
/// matches, and fails on create conflicts otherwise.
///
/// # Errors
///
/// Returns connection errors and unexpected (non-200/429) statuses.
pub fn run(config: &LoadgenConfig) -> io::Result<LoadReport> {
    let tenants = config.tenants.max(1);
    let connections = config.connections.max(1).min(tenants);
    let minutes = config.minutes_per_tenant.max(1);
    let step = config.step_minutes.max(1);

    // Phase 1: create all tenants, sharded across the connections.
    fan_out(connections, tenants, |_, range| {
        let mut client = Client::connect(&config.addr)?;
        for i in range {
            let body = format!(
                "{{\"name\":\"lg-{i}\",\"scenario\":\"trial\",\"seed\":{},\"minutes\":{minutes}}}",
                config.seed_base + i as u64
            );
            let response = client.request("POST", "/tenants", body.as_bytes())?;
            // 409 = the tenant survived an earlier loadgen run; fine.
            if response.status != 201 && response.status != 409 {
                return Err(io::Error::other(format!(
                    "creating lg-{i}: HTTP {}: {}",
                    response.status,
                    response.text()
                )));
            }
        }
        Ok(Vec::new())
    })?;

    // Phase 2: drive every tenant to the target, timing each request.
    let shed = Arc::new(AtomicU64::new(0));
    let advanced = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let per_thread = fan_out(connections, tenants, |_, range| {
        let mut client = Client::connect(&config.addr)?;
        let mut samples = Vec::new();
        let mut pending: Vec<usize> = range.collect();
        while !pending.is_empty() {
            let mut still_pending = Vec::new();
            for i in pending {
                let body = format!("{{\"minutes\":{step}}}");
                let begin = Instant::now();
                let response =
                    client.request("POST", &format!("/tenants/lg-{i}/step"), body.as_bytes())?;
                samples.push(u64::try_from(begin.elapsed().as_nanos()).unwrap_or(u64::MAX));
                match response.status {
                    200 => {
                        let text = response.text();
                        if let Some(stepped) = field_u64(&text, "stepped") {
                            advanced.fetch_add(stepped, Ordering::Relaxed);
                        }
                        if !text.contains("\"done\":true") {
                            still_pending.push(i);
                        }
                    }
                    429 => {
                        shed.fetch_add(1, Ordering::Relaxed);
                        still_pending.push(i); // retry next round
                    }
                    other => {
                        return Err(io::Error::other(format!(
                            "stepping lg-{i}: HTTP {other}: {}",
                            response.text()
                        )))
                    }
                }
            }
            pending = still_pending;
        }
        Ok(samples)
    })?;
    let wall_seconds = started.elapsed().as_secs_f64();

    let mut samples: Vec<u64> = per_thread.into_iter().flatten().collect();
    let requests = samples.len() as u64;
    Ok(LoadReport {
        tenants,
        connections,
        minutes_per_tenant: minutes,
        requests,
        shed: shed.load(Ordering::Relaxed),
        wall_seconds,
        requests_per_second: if wall_seconds > 0.0 {
            requests as f64 / wall_seconds
        } else {
            0.0
        },
        sim_minutes: advanced.load(Ordering::Relaxed),
        latency: summarize(&mut samples),
    })
}

/// Drives one `trial` tenant to completion over the wire and returns
/// its full JSONL export — the bytes CI diffs against `bzctl trial`.
///
/// # Errors
///
/// Returns connection errors and non-2xx statuses.
pub fn mirror(addr: &str, seed: u64, minutes: u64, name: &str) -> io::Result<Vec<u8>> {
    let mut client = Client::connect(addr)?;
    client.post_ok(
        "/tenants",
        &format!(
            "{{\"name\":\"{name}\",\"scenario\":\"trial\",\"seed\":{seed},\"minutes\":{minutes}}}"
        ),
    )?;
    // Mixed pacing on purpose: single steps, then a bulk advance — the
    // export must not depend on how the wire paced the run.
    client.post_ok(&format!("/tenants/{name}/step"), "{\"minutes\":1}")?;
    client.post_ok(&format!("/tenants/{name}/advance"), "")?;
    Ok(client.get_ok(&format!("/tenants/{name}/metrics"))?.body)
}

/// Splits `items` across `threads` workers, runs `work(thread, range)`
/// on each, joins, and concatenates the per-thread sample vectors.
fn fan_out(
    threads: usize,
    items: usize,
    work: impl Fn(usize, std::ops::Range<usize>) -> io::Result<Vec<u64>> + Send + Sync,
) -> io::Result<Vec<Vec<u64>>> {
    let results: Vec<io::Result<Vec<u64>>> = std::thread::scope(|scope| {
        let work = &work;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = items * t / threads;
                let hi = items * (t + 1) / threads;
                scope.spawn(move || work(t, lo..hi))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen worker"))
            .collect()
    });
    let mut collected = Vec::with_capacity(results.len());
    for result in results {
        collected.push(result?);
    }
    Ok(collected)
}

/// Extracts `"field":N` from a flat JSON object (loadgen replies are
/// simple enough that full parsing would be overhead in the hot loop).
fn field_u64(text: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_extraction_reads_flat_replies() {
        let text = "{\"stepped\":3,\"minute\":5,\"done\":false}";
        assert_eq!(field_u64(text, "stepped"), Some(3));
        assert_eq!(field_u64(text, "minute"), Some(5));
        assert_eq!(field_u64(text, "missing"), None);
    }
}
