//! End-to-end tests over a real TCP socket: the determinism contract
//! (wire-driven tenants export the offline bytes), snapshot/restore
//! across server instances, backpressure shedding, and graceful
//! shutdown with final checkpoints.

use std::net::SocketAddr;
use std::thread::JoinHandle;

use bz_serve::server::ShutdownReport;
use bz_serve::{Client, ServeConfig, Server};

/// A server running on its own thread, torn down via the shutdown
/// handle when the test is done.
struct TestServer {
    addr: SocketAddr,
    handle: bz_serve::server::ShutdownHandle,
    thread: JoinHandle<std::io::Result<ShutdownReport>>,
}

fn start(config: ServeConfig) -> TestServer {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        quiet: true,
        ..config
    })
    .expect("binding a loopback listener");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let thread = std::thread::spawn(move || server.run());
    TestServer {
        addr,
        handle,
        thread,
    }
}

impl TestServer {
    fn client(&self) -> Client {
        Client::connect(self.addr).expect("connecting to the test server")
    }

    fn stop(self) -> ShutdownReport {
        self.handle.request_shutdown();
        self.thread
            .join()
            .expect("server thread")
            .expect("clean shutdown")
    }
}

#[test]
fn wire_driven_tenant_exports_the_offline_bytes() {
    let server = start(ServeConfig::default());
    let mut client = server.client();

    client
        .post_ok(
            "/tenants",
            "{\"name\":\"det\",\"scenario\":\"trial\",\"seed\":7,\"minutes\":5}",
        )
        .unwrap();
    // Drive it over the wire in mixed-size steps.
    client
        .post_ok("/tenants/det/step", "{\"minutes\":2}")
        .unwrap();
    client
        .post_ok("/tenants/det/advance", "{\"to_minute\":5}")
        .unwrap();
    let status = client.get_ok("/tenants/det").unwrap().text();
    assert!(status.contains("\"done\":true"), "{status}");
    let wire = client.get_ok("/tenants/det/metrics").unwrap().body;

    let offline = bz_bench::sweep::run_one(&bz_bench::sweep::RunSpec {
        index: 0,
        scenario: bz_bench::sweep::Scenario::Trial,
        seed: 7,
        minutes: 5,
        params: Vec::new(),
    })
    .unwrap();
    assert_eq!(
        wire, offline.metrics_jsonl,
        "wire pacing must not change a single exported byte"
    );
    server.stop();
}

#[test]
fn snapshot_restores_across_server_instances() {
    let source = start(ServeConfig::default());
    let spec = "{\"name\":\"mig\",\"scenario\":\"trial\",\"seed\":11,\"minutes\":4}";
    let mut client = source.client();
    client.post_ok("/tenants", spec).unwrap();
    client
        .post_ok("/tenants/mig/step", "{\"minutes\":2}")
        .unwrap();
    let snapshot = client.get_ok("/tenants/mig/snapshot").unwrap();
    let crc = snapshot.header("x-bz-config-crc").unwrap().to_owned();
    let envelope = snapshot.body;
    source.stop();

    // A brand-new server instance: create the same config, restore the
    // envelope, finish the run.
    let target = start(ServeConfig::default());
    let mut client = target.client();
    let created = client.post_ok("/tenants", spec).unwrap().text();
    assert!(created.contains(&crc), "same config ⇒ same identity CRC");
    let restored = client
        .request("POST", "/tenants/mig/restore", &envelope)
        .unwrap();
    assert_eq!(restored.status, 200, "{}", restored.text());
    assert!(restored.text().contains("\"minute\":2"));
    client.post_ok("/tenants/mig/advance", "").unwrap();
    let migrated = client.get_ok("/tenants/mig/metrics").unwrap().body;
    target.stop();

    let offline = bz_bench::sweep::run_one(&bz_bench::sweep::RunSpec {
        index: 0,
        scenario: bz_bench::sweep::Scenario::Trial,
        seed: 11,
        minutes: 4,
        params: Vec::new(),
    })
    .unwrap();
    assert_eq!(
        migrated, offline.metrics_jsonl,
        "a restore over the wire must continue byte-identically"
    );
}

#[test]
fn restore_refuses_a_snapshot_of_a_different_config() {
    let server = start(ServeConfig::default());
    let mut client = server.client();
    client
        .post_ok("/tenants", "{\"name\":\"a\",\"seed\":1,\"minutes\":3}")
        .unwrap();
    client
        .post_ok("/tenants", "{\"name\":\"b\",\"seed\":2,\"minutes\":3}")
        .unwrap();
    let envelope = client.get_ok("/tenants/a/snapshot").unwrap().body;
    let refused = client
        .request("POST", "/tenants/b/restore", &envelope)
        .unwrap();
    assert_eq!(refused.status, 409, "{}", refused.text());
    assert!(refused.text().contains("different configuration"));
    server.stop();
}

#[test]
fn telemetry_tap_pages_through_the_event_stream() {
    let server = start(ServeConfig::default());
    let mut client = server.client();
    client
        .post_ok("/tenants", "{\"name\":\"t\",\"seed\":3,\"minutes\":3}")
        .unwrap();
    client
        .post_ok("/tenants/t/step", "{\"minutes\":1}")
        .unwrap();
    let first = client.get_ok("/tenants/t/telemetry?from=0").unwrap();
    let cursor: usize = first.header("x-bz-next-cursor").unwrap().parse().unwrap();
    assert!(cursor > 0);
    assert!(!first.body.is_empty());

    client.post_ok("/tenants/t/advance", "").unwrap();
    let rest = client
        .get_ok(&format!("/tenants/t/telemetry?from={cursor}"))
        .unwrap();
    let full = client.get_ok("/tenants/t/metrics").unwrap().body;
    let mut stitched = first.body.clone();
    stitched.extend_from_slice(&rest.body);
    assert!(
        full.starts_with(&stitched),
        "paged telemetry must reassemble into the export's event prefix"
    );
    server.stop();
}

#[test]
fn shutdown_writes_final_checkpoints() {
    let dir = std::env::temp_dir().join(format!("bz-serve-shutdown-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = start(ServeConfig {
        checkpoint_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let mut client = server.client();
    client
        .post_ok("/tenants", "{\"name\":\"ck-1\",\"seed\":5,\"minutes\":3}")
        .unwrap();
    client
        .post_ok("/tenants", "{\"name\":\"ck-2\",\"seed\":6,\"minutes\":3}")
        .unwrap();
    client
        .post_ok("/tenants/ck-1/step", "{\"minutes\":2}")
        .unwrap();
    // Shutdown over the wire, like an operator would.
    client.post_ok("/admin/shutdown", "").unwrap();
    let report = server.thread.join().unwrap().unwrap();
    assert_eq!(report.tenants, 2);
    assert_eq!(report.checkpoints.len(), 2);

    let envelope = bz_state::Checkpoint::read(&dir.join("tenant-ck-1.bzck")).unwrap();
    assert_eq!(envelope.meta.kind, "serve");
    assert_eq!(envelope.meta.tick_ms, 120_000, "checkpointed mid-run state");
    assert!(envelope.meta.label.contains("noise="));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn admission_bound_sheds_with_429_under_load() {
    let server = start(ServeConfig {
        max_inflight: 1,
        threads: 8,
        ..ServeConfig::default()
    });
    let mut client = server.client();
    client
        .post_ok(
            "/tenants",
            "{\"name\":\"hot\",\"scenario\":\"trial\",\"seed\":9,\"minutes\":60}",
        )
        .unwrap();

    // Hammer one tenant from several connections; with a bound of one
    // in-flight request, some must be shed with 429 and the server must
    // stay consistent throughout.
    let addr = server.addr;
    let handles: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut shed = 0u64;
                for _ in 0..20 {
                    let response = client
                        .request("POST", "/tenants/hot/step", b"{\"minutes\":1}")
                        .unwrap();
                    match response.status {
                        200 => {}
                        429 => shed += 1,
                        other => panic!("unexpected status {other}: {}", response.text()),
                    }
                }
                shed
            })
        })
        .collect();
    let shed: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(
        shed > 0,
        "4 hammering connections against a bound of 1 must shed"
    );

    let stats = client.get_ok("/stats").unwrap().text();
    assert!(stats.contains(&format!("\"shed\":{shed}")), "{stats}");
    server.stop();
}

#[test]
fn unknown_routes_and_tenants_are_clean_errors() {
    let server = start(ServeConfig::default());
    let mut client = server.client();
    assert_eq!(client.request("GET", "/nope", b"").unwrap().status, 404);
    assert_eq!(
        client.request("GET", "/tenants/ghost", b"").unwrap().status,
        404
    );
    assert_eq!(
        client
            .request("PATCH", "/tenants/ghost", b"")
            .unwrap()
            .status,
        404
    );
    let bad = client.request("POST", "/tenants", b"{").unwrap();
    assert_eq!(bad.status, 400);
    client
        .post_ok("/tenants", "{\"name\":\"x\",\"seed\":1,\"minutes\":2}")
        .unwrap();
    assert_eq!(
        client.request("PATCH", "/tenants/x", b"").unwrap().status,
        405
    );
    let dup = client
        .request(
            "POST",
            "/tenants",
            b"{\"name\":\"x\",\"seed\":1,\"minutes\":2}",
        )
        .unwrap();
    assert_eq!(dup.status, 409);
    assert_eq!(
        client.request("DELETE", "/tenants/x", b"").unwrap().status,
        204
    );
    assert_eq!(
        client.request("GET", "/tenants/x", b"").unwrap().status,
        404
    );
    server.stop();
}
