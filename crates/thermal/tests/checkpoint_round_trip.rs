//! Checkpoint round-trip: a plant restored mid-run into a fresh process
//! must continue bit-identically to the original — zone physics, water
//! loops, weather wander, every sensor's noise stream, and the stuck-at
//! fault latches all resume exactly where they left off.

use bz_psychro::{Celsius, Volts};
use bz_simcore::SimDuration;
use bz_simcore::SimTime;
use bz_state::{Reader, Writer};
use bz_thermal::airbox::FanLevel;
use bz_thermal::plant::{
    ActuatorCommands, AirboxActuation, PlantConfig, RadiantLoopCommand, ThermalPlant,
};
use bz_thermal::sensors::{SensorFault, SensorFaultEvent, SensorFaultSchedule, SensorTarget};
use bz_thermal::zone::SubspaceId;

fn live_commands() -> ActuatorCommands {
    ActuatorCommands {
        radiant: [RadiantLoopCommand {
            supply_voltage: Volts::new(3.2),
            recycle_voltage: Volts::new(2.1),
        }; 2],
        airboxes: [AirboxActuation {
            coil_pump_voltage: Volts::new(4.0),
            fan: FanLevel::L3,
            flap_open: true,
        }; 4],
    }
}

/// Drives one step and returns everything observable: ground truth plus
/// every sensor reading (which also advances every sensor noise stream).
fn drive(plant: &mut ThermalPlant) -> Vec<f64> {
    plant.step(SimDuration::from_secs(1), &live_commands());
    let mut out = Vec::new();
    for id in SubspaceId::ALL {
        let s = plant.zone_state(id);
        out.extend([s.temperature.get(), s.humidity_ratio.get(), s.co2.get()]);
        let (t, rh) = plant.read_room(id);
        out.extend([t.get(), rh.get()]);
        out.push(plant.read_co2(id).get());
    }
    for panel in 0..2 {
        out.push(plant.read_mixed_temp(panel).get());
        out.push(plant.read_return_temp(panel).get());
        out.push(plant.read_mixed_flow(panel));
        for (t, rh) in plant.read_ceiling(panel) {
            out.extend([t.get(), rh.get()]);
        }
    }
    for airbox in 0..4 {
        let (t, rh) = plant.read_airbox_outlet(airbox);
        out.extend([t.get(), rh.get(), plant.read_coil_flow(airbox)]);
    }
    out.push(plant.read_supply_temp().get());
    out.push(plant.read_vent_supply_temp().get());
    let telemetry = plant.telemetry();
    out.extend([
        telemetry.radiant_heat_removed_w,
        telemetry.vent_heat_removed_w,
        telemetry.radiant_chiller_w,
        telemetry.vent_chiller_w,
        telemetry.pump_power_w,
        telemetry.fan_power_w,
    ]);
    let meters = plant.meters();
    out.extend([meters.radiant_chiller.get(), meters.pumps.get()]);
    out
}

fn config_with_sensor_faults() -> PlantConfig {
    let mut config = PlantConfig::bubble_zero_lab();
    // An active stuck-at plus a noise burst exercise the stuck latch and
    // the fault RNG across the checkpoint boundary.
    config.sensor_faults = SensorFaultSchedule::new(vec![
        SensorFaultEvent {
            at: SimTime::from_secs(30),
            repaired_at: None,
            target: SensorTarget::Room(1),
            fault: SensorFault::StuckAt,
        },
        SensorFaultEvent {
            at: SimTime::from_secs(10),
            repaired_at: None,
            target: SensorTarget::Co2(2),
            fault: SensorFault::NoiseBurst { sd: 25.0 },
        },
        SensorFaultEvent {
            at: SimTime::from_secs(40),
            repaired_at: None,
            target: SensorTarget::Ceiling(7),
            fault: SensorFault::DriftRamp { per_hour: 2.0 },
        },
    ]);
    config
}

#[test]
fn restored_plant_continues_bit_identically() {
    let config = config_with_sensor_faults();

    let mut original = ThermalPlant::new(config.clone()).with_obs(bz_obs::Handle::isolated());
    for _ in 0..120 {
        let _ = drive(&mut original);
    }

    let mut w = Writer::new();
    original.save_state(&mut w);
    let bytes = w.into_bytes();

    // "Fresh process": a brand-new plant from the same config, state
    // overwritten from the checkpoint.
    let mut restored = ThermalPlant::new(config).with_obs(bz_obs::Handle::isolated());
    restored
        .load_state(&mut Reader::new(&bytes))
        .expect("saved plant state decodes");
    assert_eq!(restored.now(), original.now());

    for step in 0..240 {
        let a = drive(&mut original);
        let b = drive(&mut restored);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "step {step}, observable {i}: original {x:?} != restored {y:?}"
            );
        }
    }
}

#[test]
fn saving_twice_without_stepping_is_stable() {
    let mut plant =
        ThermalPlant::new(PlantConfig::bubble_zero_lab()).with_obs(bz_obs::Handle::isolated());
    for _ in 0..50 {
        let _ = drive(&mut plant);
    }
    let mut w1 = Writer::new();
    plant.save_state(&mut w1);
    let mut w2 = Writer::new();
    plant.save_state(&mut w2);
    // Saving is read-only: two consecutive snapshots are byte-identical.
    assert_eq!(w1.into_bytes(), w2.into_bytes());
}

#[test]
fn corrupted_plant_state_errors_cleanly() {
    let mut plant =
        ThermalPlant::new(PlantConfig::bubble_zero_lab()).with_obs(bz_obs::Handle::isolated());
    let _ = drive(&mut plant);
    let mut w = Writer::new();
    plant.save_state(&mut w);
    let bytes = w.into_bytes();
    // Truncation at any of a few depths must error, never panic.
    for cut in [0, 1, 8, bytes.len() / 2, bytes.len() - 1] {
        let mut fresh =
            ThermalPlant::new(PlantConfig::bubble_zero_lab()).with_obs(bz_obs::Handle::isolated());
        assert!(fresh.load_state(&mut Reader::new(&bytes[..cut])).is_err());
    }
}

#[test]
fn restore_carries_initial_indoor_changes() {
    // Guard against a restore that silently keeps constructor state: a
    // checkpoint taken after warm-up must overwrite a fresh plant's
    // initial condition.
    let mut config = PlantConfig::bubble_zero_lab();
    config.initial_indoor = (Celsius::new(31.0), Celsius::new(27.9));
    let mut warm = ThermalPlant::new(config.clone()).with_obs(bz_obs::Handle::isolated());
    for _ in 0..600 {
        warm.step(SimDuration::from_secs(1), &live_commands());
    }
    let mut w = Writer::new();
    warm.save_state(&mut w);
    let bytes = w.into_bytes();

    let mut fresh = ThermalPlant::new(config).with_obs(bz_obs::Handle::isolated());
    let before = fresh.zone_state(SubspaceId::S1).temperature;
    fresh
        .load_state(&mut Reader::new(&bytes))
        .expect("saved plant state decodes");
    let after = fresh.zone_state(SubspaceId::S1).temperature;
    assert_ne!(before.get().to_bits(), after.get().to_bits());
    assert_eq!(
        after.get().to_bits(),
        warm.zone_state(SubspaceId::S1).temperature.get().to_bits()
    );
}
