//! Property tests: [`FaultSchedule::apply`] must be a pure function of
//! the *set* of scheduled events — never of the order they were pushed —
//! so chaos scenarios parsed from JSON behave identically however the
//! file lists its faults.

use bz_psychro::Volts;
use bz_simcore::SimTime;
use bz_thermal::airbox::FanLevel;
use bz_thermal::faults::{ActuatorFault, FaultEvent, FaultSchedule};
use bz_thermal::plant::{ActuatorCommands, AirboxActuation, RadiantLoopCommand};
use proptest::prelude::*;

fn live_commands() -> ActuatorCommands {
    ActuatorCommands {
        radiant: [RadiantLoopCommand {
            supply_voltage: Volts::new(3.0),
            recycle_voltage: Volts::new(2.0),
        }; 2],
        airboxes: [AirboxActuation {
            coil_pump_voltage: Volts::new(4.0),
            fan: FanLevel::L3,
            flap_open: true,
        }; 4],
    }
}

/// Decodes one generated tuple into a fault event. `repair_offset_s` of
/// zero means the fault is permanent.
fn decode(kind: u8, index: usize, level: u8, at_s: u64, repair_offset_s: u64) -> FaultEvent {
    let level = match level % 5 {
        0 => FanLevel::Off,
        1 => FanLevel::L1,
        2 => FanLevel::L2,
        3 => FanLevel::L3,
        _ => FanLevel::L4,
    };
    let fault = match kind % 5 {
        0 => ActuatorFault::FanStuck {
            airbox: index % 4,
            level,
        },
        1 => ActuatorFault::CoilPumpDead { airbox: index % 4 },
        2 => ActuatorFault::SupplyPumpDead { panel: index % 2 },
        3 => ActuatorFault::RecyclePumpDead { panel: index % 2 },
        _ => ActuatorFault::FlapJammedClosed { airbox: index % 4 },
    };
    FaultEvent {
        at: SimTime::from_secs(at_s),
        repaired_at: (repair_offset_s > 0).then(|| SimTime::from_secs(at_s + repair_offset_s)),
        fault,
    }
}

proptest! {
    #[test]
    fn apply_is_invariant_under_event_permutation(
        raw in proptest::collection::vec(
            (0u8..5, 0usize..4, 0u8..5, 0u64..7_200, 0u64..3_600),
            0..12,
        ),
        probe_s in 0u64..10_800,
        rotation in 0usize..12,
    ) {
        let events: Vec<FaultEvent> = raw
            .iter()
            .map(|&(kind, index, level, at_s, repair)| decode(kind, index, level, at_s, repair))
            .collect();
        let commands = live_commands();
        let now = SimTime::from_secs(probe_s);
        let baseline = FaultSchedule::new(events.clone()).apply(&commands, now);

        let mut reversed = events.clone();
        reversed.reverse();
        prop_assert_eq!(
            FaultSchedule::new(reversed).apply(&commands, now),
            baseline
        );

        let mut rotated = events.clone();
        if !rotated.is_empty() {
            let mid = rotation % rotated.len();
            rotated.rotate_left(mid);
        }
        prop_assert_eq!(
            FaultSchedule::new(rotated).apply(&commands, now),
            baseline
        );
    }

    #[test]
    fn apply_never_invents_actuation(
        raw in proptest::collection::vec(
            (0u8..5, 0usize..4, 0u8..5, 0u64..7_200, 0u64..3_600),
            0..12,
        ),
        probe_s in 0u64..10_800,
    ) {
        // A fault can only *suppress* or *pin* an actuator: pump voltages
        // never exceed the commanded ones, and a schedule with no active
        // window is an exact pass-through.
        let events: Vec<FaultEvent> = raw
            .iter()
            .map(|&(kind, index, level, at_s, repair)| decode(kind, index, level, at_s, repair))
            .collect();
        let schedule = FaultSchedule::new(events);
        let commands = live_commands();
        let now = SimTime::from_secs(probe_s);
        let effective = schedule.apply(&commands, now);
        if !schedule.any_active(now) {
            prop_assert_eq!(effective, commands);
        } else {
            for (applied, commanded) in effective.radiant.iter().zip(commands.radiant.iter()) {
                prop_assert!(applied.supply_voltage.get() <= commanded.supply_voltage.get());
                prop_assert!(applied.recycle_voltage.get() <= commanded.recycle_voltage.get());
            }
            for (applied, commanded) in effective.airboxes.iter().zip(commands.airboxes.iter()) {
                prop_assert!(
                    applied.coil_pump_voltage.get() <= commanded.coil_pump_voltage.get()
                );
                prop_assert!(commanded.flap_open || !applied.flap_open);
            }
        }
    }
}
