//! Zone (subspace) air states and their dynamics.
//!
//! The BubbleZERO laboratory is one 60 m³ space logically divided into four
//! equal subspaces (§III-A, Figure 2), each served by its own airbox /
//! CO₂-flap pair. Each subspace is modeled as a well-mixed air volume with
//! three states — dry-bulb temperature, humidity ratio, and CO₂
//! concentration — coupled to its neighbours by turbulent mixing and to the
//! outdoors by envelope conduction and (during door/window events)
//! bulk air exchange.

use bz_psychro::{
    dew_point, dry_air_density, humidity_ratio_from_dew_point, latent_heat_of_vaporization,
    relative_humidity_from_humidity_ratio, Celsius, KgPerKg, Percent, Ppm, CP_DRY_AIR,
};

/// Identifier of one of the four equal subspaces of the laboratory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SubspaceId {
    /// Subspace 1 (contains the door).
    S1,
    /// Subspace 2 (adjacent to the door).
    S2,
    /// Subspace 3.
    S3,
    /// Subspace 4.
    S4,
}

impl SubspaceId {
    /// All four subspaces, in order.
    pub const ALL: [SubspaceId; 4] = [Self::S1, Self::S2, Self::S3, Self::S4];

    /// Zero-based index of this subspace.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Self::S1 => 0,
            Self::S2 => 1,
            Self::S3 => 2,
            Self::S4 => 3,
        }
    }

    /// Subspace from a zero-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not in `0..4`.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        Self::ALL[index]
    }

    /// Human-readable label matching the paper's figures ("Subsp1" …).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::S1 => "Subsp1",
            Self::S2 => "Subsp2",
            Self::S3 => "Subsp3",
            Self::S4 => "Subsp4",
        }
    }

    /// Which ceiling panel serves this subspace: panel 0 spans subspaces
    /// 1–2, panel 1 spans subspaces 3–4 (two panels, §III-B).
    #[must_use]
    pub fn panel(self) -> usize {
        match self {
            Self::S1 | Self::S2 => 0,
            Self::S3 | Self::S4 => 1,
        }
    }
}

impl std::fmt::Display for SubspaceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Instantaneous air state of one subspace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AirState {
    /// Dry-bulb temperature.
    pub temperature: Celsius,
    /// Humidity ratio (kg water vapor / kg dry air).
    pub humidity_ratio: KgPerKg,
    /// CO₂ concentration.
    pub co2: Ppm,
}

impl AirState {
    /// Builds an air state from temperature, *dew point*, and CO₂ — the
    /// description used throughout the paper.
    #[must_use]
    pub fn from_dew_point(temperature: Celsius, dew: Celsius, co2: Ppm) -> Self {
        Self {
            temperature,
            humidity_ratio: humidity_ratio_from_dew_point(dew),
            co2,
        }
    }

    /// Relative humidity implied by this state.
    #[must_use]
    pub fn relative_humidity(&self) -> Percent {
        relative_humidity_from_humidity_ratio(self.temperature, self.humidity_ratio)
            .expect("zone humidity ratio is non-negative")
    }

    /// Dew point implied by this state.
    #[must_use]
    pub fn dew_point(&self) -> Celsius {
        let rh = self.relative_humidity();
        // Fully saturated (or super-saturated) air dews at its own
        // temperature.
        if rh.get() >= 100.0 {
            self.temperature
        } else {
            dew_point(self.temperature, rh)
        }
    }
}

/// Static parameters of one subspace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneParams {
    /// Air volume, m³ (15 m³ for a quarter of the 60 m³ lab).
    pub volume_m3: f64,
    /// Envelope conductance to outdoors, W/K. The lab's insulated facades
    /// and double glazing put this around 35–45 W/K per subspace.
    pub envelope_ua: f64,
    /// Effective thermal-mass multiplier: interior surfaces and furniture
    /// add heat capacity beyond the air itself.
    pub thermal_mass_factor: f64,
    /// Constant internal sensible gain (equipment, lighting, solar through
    /// the double glazing), W.
    pub internal_gain_w: f64,
    /// Background infiltration air exchange with outdoors, m³/s (cracks,
    /// envelope leakage — small for the sealed container lab).
    pub infiltration_m3s: f64,
}

impl ZoneParams {
    /// Calibrated parameters for a quarter of the BubbleZERO laboratory.
    ///
    /// Calibration targets (§V): steady-state radiant extraction of
    /// ~965 W across 4 subspaces at ΔT ≈ 4–10 K against the outdoors, and
    /// a 30-minute pull-down from 28.9 °C to 25 °C.
    #[must_use]
    pub fn bubble_zero_subspace() -> Self {
        Self {
            volume_m3: 15.0,
            envelope_ua: 38.0,
            thermal_mass_factor: 3.0,
            internal_gain_w: 95.0,
            infiltration_m3s: 0.0002,
        }
    }

    /// Dry-air mass contained in the zone at `temperature`, kg.
    #[must_use]
    pub fn air_mass(&self, temperature: Celsius) -> f64 {
        self.volume_m3 * dry_air_density(temperature)
    }

    /// Effective heat capacity of the zone, J/K.
    #[must_use]
    pub fn heat_capacity(&self, temperature: Celsius) -> f64 {
        self.air_mass(temperature) * CP_DRY_AIR * self.thermal_mass_factor
    }

    /// Physics-derived prior for a reduced-order *rate* model of the
    /// zone, used to seed recursive least squares in `bz-predict` before
    /// any sensed data has arrived (read-only calibration hook — the
    /// identifier never reads live zone state).
    ///
    /// Returns `[θ_rad, θ_vent, θ_env, θ_occ, θ_bias]` for the surrogate
    ///
    /// ```text
    /// dT/dt ≈ θ_rad·u_rad + θ_vent·u_vent + θ_env·(T_out − T)
    ///         + θ_occ·occupants + θ_bias      [K/s]
    /// ```
    ///
    /// where `u_rad ∈ [0, 1]` is normalized radiant loop flow,
    /// `u_vent` is airbox fan flow in m³/s, `radiant_capacity_w` is the
    /// sensible extraction this subspace sees at full radiant flow, and
    /// `occupant_sensible_w` is one occupant's sensible gain.
    #[must_use]
    pub fn surrogate_prior(&self, radiant_capacity_w: f64, occupant_sensible_w: f64) -> [f64; 5] {
        // Nominal supply-to-room delta for ventilation air; the airboxes
        // deliver dehumidified air a few kelvin below the room.
        const VENT_SUPPLY_DELTA_K: f64 = 5.0;
        let reference = Celsius::new(25.0);
        let capacity = self.heat_capacity(reference);
        [
            -radiant_capacity_w / capacity,
            -VENT_SUPPLY_DELTA_K * dry_air_density(reference) * CP_DRY_AIR / capacity,
            self.envelope_ua / capacity,
            occupant_sensible_w / capacity,
            self.internal_gain_w / capacity,
        ]
    }
}

/// Per-step exogenous inputs applied to a zone by the plant assembly.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ZoneInputs {
    /// Net sensible heat added by HVAC surfaces (radiant panels are
    /// negative — they remove heat), W.
    pub hvac_sensible_w: f64,
    /// Moisture removed from the zone air by HVAC surfaces (panel
    /// condensation), kg/s — non-negative, subtracted from the balance.
    pub hvac_condensation_kg_s: f64,
    /// Occupant sensible heat, W.
    pub occupant_sensible_w: f64,
    /// Occupant latent moisture release, kg/s.
    pub occupant_latent_kg_s: f64,
    /// Occupant CO₂ generation, m³/s of pure CO₂.
    pub occupant_co2_m3s: f64,
    /// Ventilation supply air flow into the zone, m³/s (matched by an
    /// equal exhaust of zone air through the CO₂ flap).
    pub ventilation_m3s: f64,
    /// Temperature of the ventilation supply air.
    pub ventilation_temp: Celsius,
    /// Humidity ratio of the ventilation supply air.
    pub ventilation_ratio: KgPerKg,
    /// CO₂ concentration of the ventilation supply air.
    pub ventilation_co2: Ppm,
    /// Bulk air exchange with outdoors from open doors/windows, m³/s.
    pub opening_exchange_m3s: f64,
}

/// One subspace: parameters plus mutable air state.
#[derive(Debug, Clone)]
pub struct Zone {
    /// Static parameters.
    params: ZoneParams,
    /// Current air state.
    state: AirState,
}

impl Zone {
    /// Creates a zone with the given parameters and initial state.
    #[must_use]
    pub fn new(params: ZoneParams, initial: AirState) -> Self {
        Self {
            params,
            state: initial,
        }
    }

    /// Current air state.
    #[must_use]
    pub fn state(&self) -> AirState {
        self.state
    }

    /// Static parameters.
    #[must_use]
    pub fn params(&self) -> &ZoneParams {
        &self.params
    }

    /// Advances the zone by `dt_s` seconds under the given inputs and
    /// boundary conditions. `neighbor_exchange` is a pre-computed list of
    /// `(mix_flow_m3s, neighbor_state)` pairs describing turbulent exchange
    /// with adjacent subspaces.
    ///
    /// Explicit Euler is adequate: with the calibrated parameters the
    /// fastest time constant (ventilation flush of a 15 m³ volume at
    /// ~0.03 m³/s) is ~500 s, three orders above the 1 s step.
    pub fn step(
        &mut self,
        dt_s: f64,
        inputs: &ZoneInputs,
        outdoor: AirState,
        neighbor_exchange: &[(f64, AirState)],
    ) {
        let rho = dry_air_density(self.state.temperature);
        self.step_with_density(dt_s, inputs, outdoor, neighbor_exchange, rho);
    }

    /// [`step`](Self::step) with the zone-air density supplied by the
    /// caller — the hook the batched stepper uses after evaluating the
    /// density kernel for all subspaces in one pass. `rho` must be the
    /// dry-air density at the zone's current temperature; passing the
    /// value `dry_air_density(state.temperature)` returns makes this
    /// bit-identical to [`step`](Self::step).
    pub fn step_with_density(
        &mut self,
        dt_s: f64,
        inputs: &ZoneInputs,
        outdoor: AirState,
        neighbor_exchange: &[(f64, AirState)],
        rho: f64,
    ) {
        debug_assert!(dt_s > 0.0 && dt_s.is_finite());
        // Same arithmetic as `ZoneParams::air_mass`/`heat_capacity`, with
        // the shared density factored out.
        let air_mass = self.params.volume_m3 * rho;
        let heat_capacity = air_mass * CP_DRY_AIR * self.params.thermal_mass_factor;
        let t = self.state.temperature.get();

        // --- Sensible energy balance -------------------------------------
        let mut q = inputs.hvac_sensible_w + inputs.occupant_sensible_w;
        q += self.params.internal_gain_w;
        q += self.params.envelope_ua * (outdoor.temperature.get() - t);

        // Air exchanged with outdoors: infiltration + door/window openings.
        let outdoor_exchange = self.params.infiltration_m3s + inputs.opening_exchange_m3s;
        q += outdoor_exchange * rho * CP_DRY_AIR * (outdoor.temperature.get() - t);

        // Ventilation supply (the same mass leaves through the flap at
        // zone conditions, hence the simple delta form).
        q += inputs.ventilation_m3s * rho * CP_DRY_AIR * (inputs.ventilation_temp.get() - t);

        // Inter-zone turbulent mixing.
        for &(flow, neighbor) in neighbor_exchange {
            q += flow * rho * CP_DRY_AIR * (neighbor.temperature.get() - t);
        }

        // Latent coupling of moisture exchange is carried in the moisture
        // balance below; condensed water never forms in the zone air
        // itself (the panels handle surface condensation separately).
        let new_t = t + q * dt_s / heat_capacity;

        // --- Moisture balance --------------------------------------------
        let w = self.state.humidity_ratio.get();
        let mut dw = (inputs.occupant_latent_kg_s - inputs.hvac_condensation_kg_s) / air_mass;
        dw += outdoor_exchange * rho / air_mass * (outdoor.humidity_ratio.get() - w);
        dw += inputs.ventilation_m3s * rho / air_mass * (inputs.ventilation_ratio.get() - w);
        for &(flow, neighbor) in neighbor_exchange {
            dw += flow * rho / air_mass * (neighbor.humidity_ratio.get() - w);
        }
        let new_w = (w + dw * dt_s).max(0.0);

        // --- CO₂ balance ---------------------------------------------------
        // Concentrations in ppm; occupant generation of pure CO₂ converts
        // via 1 m³ CO₂ into V m³ of air = 1e6/V ppm.
        let c = self.state.co2.get();
        let volume = self.params.volume_m3;
        let mut dc = inputs.occupant_co2_m3s * 1.0e6 / volume;
        dc += outdoor_exchange / volume * (outdoor.co2.get() - c);
        dc += inputs.ventilation_m3s / volume * (inputs.ventilation_co2.get() - c);
        for &(flow, neighbor) in neighbor_exchange {
            dc += flow / volume * (neighbor.co2.get() - c);
        }
        let new_c = (c + dc * dt_s).max(0.0);

        self.state = AirState {
            temperature: Celsius::new(new_t),
            humidity_ratio: KgPerKg::new(new_w),
            co2: Ppm::new(new_c),
        };
    }

    /// Sensible heat the zone air would release if cooled by `delta`
    /// Kelvin — used by tests and the baseline sizing code.
    #[must_use]
    pub fn sensible_capacity(&self, delta: f64) -> f64 {
        self.params.heat_capacity(self.state.temperature) * delta
    }

    /// Latent heat associated with condensing the zone down to
    /// `target_ratio`, J (zero if already drier).
    #[must_use]
    pub fn latent_energy_above(&self, target_ratio: KgPerKg) -> f64 {
        let excess = (self.state.humidity_ratio.get() - target_ratio.get()).max(0.0);
        excess
            * self.params.air_mass(self.state.temperature)
            * latent_heat_of_vaporization(self.state.temperature)
    }
}

// --- Checkpoint support --------------------------------------------------

bz_state::persist_unit_enum!(SubspaceId { S1, S2, S3, S4 });
bz_state::persist_struct!(AirState {
    temperature,
    humidity_ratio,
    co2,
});
bz_state::persist_struct!(ZoneParams {
    volume_m3,
    envelope_ua,
    thermal_mass_factor,
    internal_gain_w,
    infiltration_m3s,
});
bz_state::persist_struct!(ZoneInputs {
    hvac_sensible_w,
    hvac_condensation_kg_s,
    occupant_sensible_w,
    occupant_latent_kg_s,
    occupant_co2_m3s,
    ventilation_m3s,
    ventilation_temp,
    ventilation_ratio,
    ventilation_co2,
    opening_exchange_m3s,
});
bz_state::persist_struct!(Zone { params, state });

#[cfg(test)]
mod tests {
    use super::*;
    use bz_psychro::Ppm;

    fn tropical_outdoor() -> AirState {
        AirState::from_dew_point(Celsius::new(28.9), Celsius::new(27.4), Ppm::new(410.0))
    }

    fn fresh_zone(t: f64, dew: f64) -> Zone {
        Zone::new(
            ZoneParams::bubble_zero_subspace(),
            AirState::from_dew_point(Celsius::new(t), Celsius::new(dew), Ppm::new(500.0)),
        )
    }

    #[test]
    fn subspace_ids_round_trip() {
        for id in SubspaceId::ALL {
            assert_eq!(SubspaceId::from_index(id.index()), id);
        }
        assert_eq!(SubspaceId::S1.label(), "Subsp1");
        assert_eq!(SubspaceId::S1.panel(), 0);
        assert_eq!(SubspaceId::S2.panel(), 0);
        assert_eq!(SubspaceId::S3.panel(), 1);
        assert_eq!(SubspaceId::S4.panel(), 1);
    }

    #[test]
    fn surrogate_prior_has_physical_signs_and_scale() {
        let params = ZoneParams::bubble_zero_subspace();
        let [rad, vent, env, occ, bias] = params.surrogate_prior(240.0, 70.0);
        // Cooling inputs pull the temperature down; loads push it up.
        assert!(rad < 0.0 && vent < 0.0);
        assert!(env > 0.0 && occ > 0.0 && bias > 0.0);
        // Full radiant flow on ~54 kJ/K of effective mass: a few mK/s.
        assert!((-rad - 240.0 / params.heat_capacity(Celsius::new(25.0))).abs() < 1e-12);
        assert!(-rad > 1e-3 && -rad < 1e-2, "θ_rad {rad}");
        // Envelope coupling is UA/C.
        assert!(
            (env - params.envelope_ua / params.heat_capacity(Celsius::new(25.0))).abs() < 1e-12
        );
    }

    #[test]
    fn air_state_dew_point_round_trip() {
        let s = AirState::from_dew_point(Celsius::new(25.0), Celsius::new(18.0), Ppm::new(400.0));
        assert!((s.dew_point().get() - 18.0).abs() < 1e-6);
        assert!((s.relative_humidity().get() - 65.2).abs() < 1.0);
    }

    #[test]
    fn saturated_state_dews_at_own_temperature() {
        let s = AirState {
            temperature: Celsius::new(20.0),
            humidity_ratio: humidity_ratio_from_dew_point(Celsius::new(25.0)),
            co2: Ppm::new(400.0),
        };
        assert!((s.dew_point().get() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn idle_zone_drifts_toward_outdoor() {
        let mut zone = fresh_zone(25.0, 18.0);
        let outdoor = tropical_outdoor();
        for _ in 0..3_600 {
            zone.step(1.0, &ZoneInputs::default(), outdoor, &[]);
        }
        let s = zone.state();
        assert!(
            s.temperature.get() > 26.0,
            "zone should warm toward outdoors, got {}",
            s.temperature
        );
        // Internal gains (equipment + solar through glazing) hold the idle
        // room a couple of Kelvin above the outdoors.
        assert!(s.temperature.get() < outdoor.temperature.get() + 3.5);
        // Infiltration slowly humidifies the room toward the outdoor dew.
        assert!(s.dew_point().get() > 18.0);
    }

    #[test]
    fn hvac_extraction_cools_the_zone() {
        let mut zone = fresh_zone(28.9, 27.4);
        let inputs = ZoneInputs {
            hvac_sensible_w: -400.0,
            ..ZoneInputs::default()
        };
        for _ in 0..1_800 {
            zone.step(1.0, &inputs, tropical_outdoor(), &[]);
        }
        assert!(
            zone.state().temperature.get() < 26.5,
            "got {}",
            zone.state().temperature
        );
    }

    #[test]
    fn dry_ventilation_dries_the_zone() {
        let mut zone = fresh_zone(25.0, 24.0);
        let supply =
            AirState::from_dew_point(Celsius::new(14.0), Celsius::new(14.0), Ppm::new(410.0));
        let inputs = ZoneInputs {
            ventilation_m3s: 0.03,
            ventilation_temp: supply.temperature,
            ventilation_ratio: supply.humidity_ratio,
            ventilation_co2: supply.co2,
            ..ZoneInputs::default()
        };
        let before = zone.state().dew_point().get();
        for _ in 0..1_800 {
            zone.step(1.0, &inputs, tropical_outdoor(), &[]);
        }
        let after = zone.state().dew_point().get();
        assert!(after < before - 3.0, "dew {before} -> {after}");
    }

    #[test]
    fn occupants_raise_co2_and_moisture() {
        let mut zone = fresh_zone(25.0, 18.0);
        let inputs = ZoneInputs {
            occupant_sensible_w: 70.0,
            occupant_latent_kg_s: 5.0e-5, // ~one seated adult
            occupant_co2_m3s: 5.2e-6,
            ..ZoneInputs::default()
        };
        let c0 = zone.state().co2.get();
        let w0 = zone.state().humidity_ratio.get();
        for _ in 0..600 {
            zone.step(1.0, &inputs, tropical_outdoor(), &[]);
        }
        assert!(zone.state().co2.get() > c0 + 50.0);
        assert!(zone.state().humidity_ratio.get() > w0);
    }

    #[test]
    fn door_opening_pulls_zone_toward_outdoor_fast() {
        let mut zone = fresh_zone(25.0, 18.0);
        let inputs = ZoneInputs {
            opening_exchange_m3s: 0.25,
            ..ZoneInputs::default()
        };
        for _ in 0..120 {
            zone.step(1.0, &inputs, tropical_outdoor(), &[]);
        }
        // Two minutes of open door at 0.25 m³/s turns over the subspace
        // air twice; the dew point should have risen by several degrees.
        assert!(zone.state().dew_point().get() > 22.0, "{:?}", zone.state());
    }

    #[test]
    fn neighbor_mixing_equalizes_temperature() {
        let mut cold = fresh_zone(22.0, 15.0);
        let hot_state =
            AirState::from_dew_point(Celsius::new(28.0), Celsius::new(20.0), Ppm::new(600.0));
        for _ in 0..1_200 {
            cold.step(1.0, &ZoneInputs::default(), hot_state, &[(0.05, hot_state)]);
        }
        assert!(cold.state().temperature.get() > 26.0);
        assert!(cold.state().co2.get() > 540.0);
    }

    #[test]
    fn moisture_never_goes_negative() {
        let mut zone = fresh_zone(25.0, 5.0);
        let bone_dry = AirState {
            temperature: Celsius::new(14.0),
            humidity_ratio: KgPerKg::new(0.0),
            co2: Ppm::new(0.0),
        };
        let inputs = ZoneInputs {
            ventilation_m3s: 0.5,
            ventilation_temp: bone_dry.temperature,
            ventilation_ratio: bone_dry.humidity_ratio,
            ventilation_co2: bone_dry.co2,
            ..ZoneInputs::default()
        };
        for _ in 0..10_000 {
            zone.step(1.0, &inputs, bone_dry, &[]);
        }
        assert!(zone.state().humidity_ratio.get() >= 0.0);
        assert!(zone.state().co2.get() >= 0.0);
    }

    #[test]
    fn heat_capacity_scales_with_mass_factor() {
        let mut p = ZoneParams::bubble_zero_subspace();
        let base = p.heat_capacity(Celsius::new(25.0));
        p.thermal_mass_factor *= 2.0;
        assert!((p.heat_capacity(Celsius::new(25.0)) - 2.0 * base).abs() < 1e-6);
    }

    #[test]
    fn latent_energy_above_zero_when_drier() {
        let zone = fresh_zone(25.0, 15.0);
        let target = humidity_ratio_from_dew_point(Celsius::new(18.0));
        assert_eq!(zone.latent_energy_above(target), 0.0);
        let humid = fresh_zone(25.0, 24.0);
        assert!(humid.latent_energy_above(target) > 0.0);
    }
}
