//! Airbox dehumidifier/ventilation units and their CO₂ exhaust flaps.
//!
//! Each subspace has one airbox (four DC fans, a damper, a filter, and a
//! three-pipe copper coil circulated with 8 °C water) paired with a
//! CO₂flap exhaust (§III-C). The airbox inhales outdoor air, dehumidifies
//! it across the cold coil — condensing water vapor out — and blows the
//! dried air into its subspace while the flap exhausts an equal volume of
//! room air.
//!
//! The coil uses the classic bypass-factor model: the outlet is a blend of
//! air that touched the coil surface (leaving saturated at the apparatus
//! dew point, slightly above the water temperature) and air that bypassed
//! it. The bypass fraction shrinks as coil water flow rises, which is the
//! physical basis for the paper's observation that "the flow rate of the
//! circulated water ... is linearly proportional to the dew point of the
//! air".

use bz_psychro::{
    dry_air_density, humidity_ratio_from_dew_point, moist_air_enthalpy,
    water_volumetric_heat_capacity, Celsius, KgPerKg, Ppm,
};

use crate::zone::AirState;

/// Discrete speed settings of the four DC fans in an airbox.
///
/// The paper's driver looks up "the best matched DC fan speed for the
/// given F_vent" from the hardware specification; these are the
/// specification's operating points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum FanLevel {
    /// Fans stopped, damper closed.
    #[default]
    Off,
    /// Lowest speed.
    L1,
    /// Medium-low speed.
    L2,
    /// Medium-high speed.
    L3,
    /// Full speed.
    L4,
}

impl FanLevel {
    /// All levels in ascending order.
    pub const ALL: [FanLevel; 5] = [Self::Off, Self::L1, Self::L2, Self::L3, Self::L4];

    /// Supply air volume at this level, m³/s.
    #[must_use]
    pub fn flow_m3s(self) -> f64 {
        match self {
            Self::Off => 0.0,
            Self::L1 => 0.0045,
            Self::L2 => 0.009,
            Self::L3 => 0.016,
            Self::L4 => 0.024,
        }
    }

    /// Electrical power of the fan set at this level, W.
    #[must_use]
    pub fn power_w(self) -> f64 {
        match self {
            Self::Off => 0.0,
            Self::L1 => 2.5,
            Self::L2 => 5.0,
            Self::L3 => 9.0,
            Self::L4 => 15.0,
        }
    }

    /// The lowest level whose flow meets or exceeds `required_m3s`
    /// (saturating at [`FanLevel::L4`]). This is the "lookup the best
    /// matched DC fan speed" step of §III-C.
    #[must_use]
    pub fn for_flow(required_m3s: f64) -> Self {
        if required_m3s <= 0.0 {
            return Self::Off;
        }
        for level in [Self::L1, Self::L2, Self::L3, Self::L4] {
            if level.flow_m3s() >= required_m3s {
                return level;
            }
        }
        Self::L4
    }
}

/// Static parameters of one airbox.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AirboxParams {
    /// Coil conductance at design water flow, W/K.
    pub coil_ua: f64,
    /// Design coil water flow for the conductance above, m³/s.
    pub design_water_flow_m3s: f64,
    /// Temperature approach of the coil surface above the entering water
    /// temperature, K (finite coil area + tube resistance).
    pub apparatus_approach_k: f64,
    /// Fraction of fan flow that leaks through a closed flap/damper.
    pub closed_flap_leakage: f64,
}

impl AirboxParams {
    /// Calibrated parameters for a BubbleZERO airbox (3 copper pipes,
    /// ~0.5 m² of effective coil surface). The conductance is sized so the
    /// outlet dew point spans ~15–21 °C across the coil pump's control
    /// range at full fan flow — a smooth, controllable response rather
    /// than an oversized on/off coil.
    #[must_use]
    pub fn bubble_zero_airbox() -> Self {
        Self {
            coil_ua: 45.0,
            design_water_flow_m3s: 5.0e-5,
            apparatus_approach_k: 2.0,
            closed_flap_leakage: 0.1,
        }
    }
}

/// Commands applied to one airbox for a step.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AirboxCommand {
    /// Fan speed setting.
    pub fan: FanLevel,
    /// Coil water flow, m³/s (set by the coil pump voltage upstream).
    pub coil_water_flow_m3s: f64,
    /// Whether the paired CO₂flap is driven open.
    pub flap_open: bool,
}

/// Result of advancing one airbox for a step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AirboxStep {
    /// Conditioned supply air delivered to the subspace.
    pub supply: AirState,
    /// Effective supply air flow after damper/flap gating, m³/s.
    pub supply_flow_m3s: f64,
    /// Water condensed out of the processed air, kg (this step).
    pub condensate_kg: f64,
    /// Total (sensible + latent) heat rejected into the coil water, W.
    pub heat_to_water_w: f64,
    /// Coil water return temperature.
    pub water_return_temp: Celsius,
    /// Fan electrical power, W.
    pub fan_power_w: f64,
}

/// One airbox unit.
#[derive(Debug, Clone)]
pub struct Airbox {
    params: AirboxParams,
    total_condensate_kg: f64,
}

impl Airbox {
    /// Creates an airbox.
    #[must_use]
    pub fn new(params: AirboxParams) -> Self {
        Self {
            params,
            total_condensate_kg: 0.0,
        }
    }

    /// The parameters in use.
    #[must_use]
    pub fn params(&self) -> &AirboxParams {
        &self.params
    }

    /// Total condensate drained since start, kg.
    #[must_use]
    pub fn total_condensate(&self) -> f64 {
        self.total_condensate_kg
    }

    /// Coil bypass factor at the given air and water flows: the fraction
    /// of the air stream that leaves at inlet conditions.
    #[must_use]
    pub fn bypass_factor(&self, air_flow_m3s: f64, water_flow_m3s: f64) -> f64 {
        if air_flow_m3s <= 0.0 || water_flow_m3s <= 0.0 {
            return 1.0;
        }
        let ua =
            self.params.coil_ua * (water_flow_m3s / self.params.design_water_flow_m3s).powf(0.6);
        let c_air = air_flow_m3s * dry_air_density(Celsius::new(25.0)) * bz_psychro::CP_DRY_AIR;
        (-ua / c_air).exp()
    }

    /// Processes outdoor air through the coil for `dt_s` seconds.
    ///
    /// `outdoor` is the inhaled air, `water_in` the coil water supply
    /// temperature (nominally 8 °C from the ventilation tank).
    pub fn step(
        &mut self,
        dt_s: f64,
        command: &AirboxCommand,
        outdoor: AirState,
        water_in: Celsius,
    ) -> AirboxStep {
        debug_assert!(dt_s > 0.0);
        debug_assert!(command.coil_water_flow_m3s >= 0.0);

        let raw_flow = command.fan.flow_m3s();
        let supply_flow = if command.flap_open {
            raw_flow
        } else {
            raw_flow * self.params.closed_flap_leakage
        };

        if supply_flow <= 0.0 {
            return AirboxStep {
                supply: outdoor,
                supply_flow_m3s: 0.0,
                condensate_kg: 0.0,
                heat_to_water_w: 0.0,
                water_return_temp: water_in,
                fan_power_w: command.fan.power_w(),
            };
        }

        let bypass = self.bypass_factor(supply_flow, command.coil_water_flow_m3s);
        let contact = 1.0 - bypass;

        // Apparatus dew point: the effective coil-surface condition.
        let t_adp = Celsius::new(water_in.get() + self.params.apparatus_approach_k);
        let w_adp = humidity_ratio_from_dew_point(t_adp).get();

        let t_in = outdoor.temperature.get();
        let w_in = outdoor.humidity_ratio.get();

        let t_out = bypass * t_in + contact * t_adp.get();
        // Contacted air leaves saturated at the ADP only if it was moister
        // than saturation there; dry inlet air keeps its moisture.
        let w_out = bypass * w_in + contact * w_in.min(w_adp);

        let rho = dry_air_density(outdoor.temperature);
        let mass_flow = supply_flow * rho;
        let condensate_rate = mass_flow * (w_in - w_out).max(0.0);

        // Total coil duty from the enthalpy drop of the processed air.
        let h_in = moist_air_enthalpy(outdoor.temperature, KgPerKg::new(w_in));
        let h_out = moist_air_enthalpy(Celsius::new(t_out), KgPerKg::new(w_out));
        let q_water = (mass_flow * (h_in - h_out)).max(0.0);

        let return_temp = if command.coil_water_flow_m3s > 0.0 {
            let c_w = command.coil_water_flow_m3s * water_volumetric_heat_capacity(water_in);
            Celsius::new(water_in.get() + q_water / c_w)
        } else {
            water_in
        };

        self.total_condensate_kg += condensate_rate * dt_s;

        AirboxStep {
            supply: AirState {
                temperature: Celsius::new(t_out),
                humidity_ratio: KgPerKg::new(w_out),
                co2: Ppm::new(outdoor.co2.get()),
            },
            supply_flow_m3s: supply_flow,
            condensate_kg: condensate_rate * dt_s,
            heat_to_water_w: q_water,
            water_return_temp: return_temp,
            fan_power_w: command.fan.power_w(),
        }
    }
}

// --- Checkpoint support --------------------------------------------------

bz_state::persist_unit_enum!(FanLevel {
    Off,
    L1,
    L2,
    L3,
    L4
});
bz_state::persist_struct!(AirboxParams {
    coil_ua,
    design_water_flow_m3s,
    apparatus_approach_k,
    closed_flap_leakage,
});
bz_state::persist_struct!(Airbox {
    params,
    total_condensate_kg,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn tropical() -> AirState {
        AirState::from_dew_point(Celsius::new(28.9), Celsius::new(27.4), Ppm::new(410.0))
    }

    fn full_command() -> AirboxCommand {
        AirboxCommand {
            fan: FanLevel::L4,
            coil_water_flow_m3s: 5.0e-5,
            flap_open: true,
        }
    }

    #[test]
    fn fan_levels_are_monotone() {
        let flows: Vec<f64> = FanLevel::ALL.iter().map(|l| l.flow_m3s()).collect();
        assert!(flows.windows(2).all(|w| w[1] > w[0]));
        let powers: Vec<f64> = FanLevel::ALL.iter().map(|l| l.power_w()).collect();
        assert!(powers.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn fan_lookup_picks_lowest_sufficient_level() {
        assert_eq!(FanLevel::for_flow(0.0), FanLevel::Off);
        assert_eq!(FanLevel::for_flow(-1.0), FanLevel::Off);
        assert_eq!(FanLevel::for_flow(0.001), FanLevel::L1);
        assert_eq!(FanLevel::for_flow(0.009), FanLevel::L2);
        assert_eq!(FanLevel::for_flow(0.012), FanLevel::L3);
        assert_eq!(FanLevel::for_flow(0.017), FanLevel::L4);
        assert_eq!(FanLevel::for_flow(1.0), FanLevel::L4); // saturates
    }

    #[test]
    fn coil_dries_and_cools_tropical_air() {
        let mut airbox = Airbox::new(AirboxParams::bubble_zero_airbox());
        let step = airbox.step(1.0, &full_command(), tropical(), Celsius::new(8.0));
        assert!(step.supply.temperature.get() < 20.0, "{:?}", step.supply);
        let dew_out = step.supply.dew_point().get();
        assert!(dew_out < 18.0, "output dew {dew_out}");
        assert!(step.condensate_kg > 0.0);
        assert!(step.heat_to_water_w > 50.0);
        assert!(step.water_return_temp.get() > 8.0);
        assert!(airbox.total_condensate() > 0.0);
    }

    #[test]
    fn more_water_flow_gives_lower_output_dew() {
        // The monotone relationship the ventilation PID exploits.
        let mut airbox = Airbox::new(AirboxParams::bubble_zero_airbox());
        let mut dew_at = |water: f64| {
            let cmd = AirboxCommand {
                coil_water_flow_m3s: water,
                ..full_command()
            };
            airbox
                .step(1.0, &cmd, tropical(), Celsius::new(8.0))
                .supply
                .dew_point()
                .get()
        };
        let d1 = dew_at(1.0e-5);
        let d2 = dew_at(2.5e-5);
        let d3 = dew_at(5.0e-5);
        assert!(d1 > d2 && d2 > d3, "dews {d1}, {d2}, {d3}");
    }

    #[test]
    fn no_water_flow_means_no_conditioning() {
        let mut airbox = Airbox::new(AirboxParams::bubble_zero_airbox());
        let cmd = AirboxCommand {
            coil_water_flow_m3s: 0.0,
            ..full_command()
        };
        let step = airbox.step(1.0, &cmd, tropical(), Celsius::new(8.0));
        assert!((step.supply.temperature.get() - 28.9).abs() < 1e-9);
        assert_eq!(step.condensate_kg, 0.0);
        assert_eq!(step.heat_to_water_w, 0.0);
    }

    #[test]
    fn fans_off_delivers_nothing() {
        let mut airbox = Airbox::new(AirboxParams::bubble_zero_airbox());
        let cmd = AirboxCommand {
            fan: FanLevel::Off,
            ..full_command()
        };
        let step = airbox.step(1.0, &cmd, tropical(), Celsius::new(8.0));
        assert_eq!(step.supply_flow_m3s, 0.0);
        assert_eq!(step.fan_power_w, 0.0);
        assert_eq!(step.heat_to_water_w, 0.0);
    }

    #[test]
    fn closed_flap_throttles_flow() {
        let mut airbox = Airbox::new(AirboxParams::bubble_zero_airbox());
        let open = airbox.step(1.0, &full_command(), tropical(), Celsius::new(8.0));
        let cmd = AirboxCommand {
            flap_open: false,
            ..full_command()
        };
        let closed = airbox.step(1.0, &cmd, tropical(), Celsius::new(8.0));
        assert!(closed.supply_flow_m3s < 0.2 * open.supply_flow_m3s);
    }

    #[test]
    fn dry_inlet_air_is_not_dehumidified() {
        let mut airbox = Airbox::new(AirboxParams::bubble_zero_airbox());
        // Already dry air (dew point 5 °C, below the 10 °C ADP).
        let dry = AirState::from_dew_point(Celsius::new(25.0), Celsius::new(5.0), Ppm::new(410.0));
        let step = airbox.step(1.0, &full_command(), dry, Celsius::new(8.0));
        // Condensate is zero up to float rounding in the blend arithmetic.
        assert!(step.condensate_kg < 1e-12, "{}", step.condensate_kg);
        assert!((step.supply.humidity_ratio.get() - dry.humidity_ratio.get()).abs() < 1e-12);
        // Still cools sensibly.
        assert!(step.supply.temperature.get() < 25.0);
    }

    #[test]
    fn bypass_factor_bounds() {
        let airbox = Airbox::new(AirboxParams::bubble_zero_airbox());
        assert_eq!(airbox.bypass_factor(0.0, 5.0e-5), 1.0);
        assert_eq!(airbox.bypass_factor(0.02, 0.0), 1.0);
        let b = airbox.bypass_factor(0.024, 5.0e-5);
        assert!(b > 0.0 && b < 0.4, "bypass {b}");
        // Slower air = more contact time = lower bypass.
        assert!(airbox.bypass_factor(0.0045, 5.0e-5) < b);
    }

    #[test]
    fn energy_balance_water_side() {
        let mut airbox = Airbox::new(AirboxParams::bubble_zero_airbox());
        let step = airbox.step(1.0, &full_command(), tropical(), Celsius::new(8.0));
        // Water-side pickup equals total duty / (flow·c).
        let c_w = 5.0e-5 * water_volumetric_heat_capacity(Celsius::new(8.0));
        let expected_rise = step.heat_to_water_w / c_w;
        assert!((step.water_return_temp.get() - 8.0 - expected_rise).abs() < 1e-9);
    }

    #[test]
    fn supply_co2_matches_outdoor() {
        let mut airbox = Airbox::new(AirboxParams::bubble_zero_airbox());
        let step = airbox.step(1.0, &full_command(), tropical(), Celsius::new(8.0));
        assert_eq!(step.supply.co2, Ppm::new(410.0));
    }
}
