//! Building-physics substrate for the BubbleZERO reproduction.
//!
//! The paper evaluates its HVAC control on a physical laboratory built from
//! two shipping containers (60 m³ = 6 m × 5 m × 2 m, organized into four
//! equal subspaces). This crate replaces that hardware with a calibrated
//! lumped-parameter simulation that exposes the *same control surface* the
//! deployed system had:
//!
//! - per-subspace air states (temperature, humidity, CO₂) observable only
//!   through noisy [`sensors`],
//! - two radiant ceiling [`panel`]s fed by a mixing [`hydronics`] loop with
//!   a supply pump and a recycle pump (0–5 V inputs),
//! - four [`airbox`] dehumidifier/ventilation units with 8 °C cooling
//!   coils, DC fans, and CO₂ exhaust flaps,
//! - chilled-water tanks kept cold by Carnot-fraction [`chiller`]s with
//!   electrical power metering,
//! - a tropical [`weather`] boundary, [`occupancy`] loads, and the paper's
//!   scripted door/window [`disturbance`]s.
//!
//! [`plant::ThermalPlant`] assembles the pieces and advances them on a
//! fixed 1 s step driven by the `bz-simcore` clock.
//!
//! # Example
//!
//! ```
//! use bz_simcore::SimDuration;
//! use bz_thermal::plant::{ActuatorCommands, PlantConfig, ThermalPlant};
//!
//! let mut plant = ThermalPlant::new(PlantConfig::bubble_zero_lab());
//! // One minute with everything off: the room stays warm.
//! for _ in 0..60 {
//!     plant.step(SimDuration::from_secs(1), &ActuatorCommands::all_off());
//! }
//! assert!(plant.zone_temperature(bz_thermal::zone::SubspaceId::S1).get() > 27.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod airbox;
pub mod chiller;
pub mod comfort;
pub mod disturbance;
pub mod faults;
pub mod hydronics;
pub mod occupancy;
pub mod panel;
pub mod plant;
pub mod sensors;
pub mod weather;
pub mod zone;
pub mod zone_batch;
