//! The assembled BubbleZERO thermal plant.
//!
//! [`ThermalPlant`] wires together the four subspace zones, the two radiant
//! ceiling panels with their supply/recycle mixing loops, the shared 18 °C
//! radiant tank, the 8 °C ventilation tank feeding the four airbox coils,
//! both chillers, the weather boundary, occupants, and the scripted
//! door/window disturbances. It advances on a fixed step under a set of
//! [`ActuatorCommands`] — the exact signals the paper's control boards
//! produce (pump voltages, fan levels, flap positions) — and exposes the
//! plant state only through the noisy sensor models of [`crate::sensors`].

use bz_psychro::{
    water_volumetric_heat_capacity, Celsius, Joules, Percent, Ppm, Seconds, Volts, Watts,
};
use bz_simcore::{NoiseKernel, Rng, SimDuration, SimTime};

use crate::airbox::{Airbox, AirboxCommand, AirboxParams, FanLevel};
use crate::chiller::{ChillerConfig, TankChiller};
use crate::disturbance::DisturbanceSchedule;
use crate::faults::FaultSchedule;
use crate::hydronics::{mix_supply_and_recycle, Pump, Tank};
use crate::occupancy::OccupancySchedule;
use crate::panel::{PanelParams, RadiantPanel};
use crate::sensors::{
    Co2Sensor, FlowSensor, HumiditySensor, SensorFault, SensorFaultSchedule, SensorTarget,
    TemperatureSensor,
};
use crate::weather::{Weather, WeatherConfig};
use crate::zone::{AirState, SubspaceId, Zone, ZoneInputs, ZoneParams};

/// Pump voltages for one radiant mixing loop (Figure 3's two pumps).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RadiantLoopCommand {
    /// Supply pump voltage (draws from the 18 °C tank), 0–5 V.
    pub supply_voltage: Volts,
    /// Recycle pump voltage (redirects warm return water), 0–5 V.
    pub recycle_voltage: Volts,
}

/// Commands for one airbox / CO₂flap pair.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AirboxActuation {
    /// Coil water pump voltage, 0–5 V.
    pub coil_pump_voltage: Volts,
    /// Fan speed setting.
    pub fan: FanLevel,
    /// Whether the CO₂flap is driven open.
    pub flap_open: bool,
}

/// The complete actuator command set for one plant step.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ActuatorCommands {
    /// One command per ceiling panel loop.
    pub radiant: [RadiantLoopCommand; 2],
    /// One command per subspace airbox.
    pub airboxes: [AirboxActuation; 4],
}

impl ActuatorCommands {
    /// Everything off: pumps stopped, fans stopped, flaps closed.
    #[must_use]
    pub fn all_off() -> Self {
        Self::default()
    }
}

/// Telemetry produced by the most recent plant step (ground truth — the
/// controllers must use the sensor interface instead).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StepTelemetry {
    /// Heat removed from the room by the radiant loops this step, W,
    /// computed with the paper's water-side formula c·F·(T_retn − T_supp).
    pub radiant_heat_removed_w: f64,
    /// Heat removed from the inhaled air by the airbox coils, W.
    pub vent_heat_removed_w: f64,
    /// Radiant chiller electrical draw, W.
    pub radiant_chiller_w: f64,
    /// Ventilation chiller electrical draw, W.
    pub vent_chiller_w: f64,
    /// Total pump electrical draw, W.
    pub pump_power_w: f64,
    /// Total fan electrical draw, W.
    pub fan_power_w: f64,
    /// Condensate formed on panel surfaces this step, kg (should be 0).
    pub panel_condensate_kg: f64,
    /// Condensate drained from the airbox coils this step, kg (normal).
    pub airbox_condensate_kg: f64,
}

/// Integrated energy meters (resettable, for steady-state COP windows).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyMeters {
    /// Radiant heat removed, J.
    pub radiant_removed: Joules,
    /// Ventilation heat removed, J.
    pub vent_removed: Joules,
    /// Radiant chiller electrical energy, J.
    pub radiant_chiller: Joules,
    /// Ventilation chiller electrical energy, J.
    pub vent_chiller: Joules,
    /// Pump electrical energy, J.
    pub pumps: Joules,
    /// Fan electrical energy, J.
    pub fans: Joules,
    /// Time accumulated by the meters, s.
    pub elapsed: Seconds,
}

/// Full plant configuration.
#[derive(Debug, Clone)]
pub struct PlantConfig {
    /// Parameters shared by the four subspaces.
    pub zone: ZoneParams,
    /// Parameters shared by the two ceiling panels.
    pub panel: PanelParams,
    /// Parameters shared by the four airboxes.
    pub airbox: AirboxParams,
    /// Radiant (18 °C) chiller configuration.
    pub radiant_chiller: ChillerConfig,
    /// Ventilation (8 °C) chiller configuration.
    pub vent_chiller: ChillerConfig,
    /// Weather boundary.
    pub weather: WeatherConfig,
    /// Scripted door/window events.
    pub disturbances: DisturbanceSchedule,
    /// Scripted actuator faults.
    pub faults: FaultSchedule,
    /// Scripted sensor faults.
    pub sensor_faults: SensorFaultSchedule,
    /// Scripted occupancy.
    pub occupancy: OccupancySchedule,
    /// Turbulent mixing flow between adjacent subspaces, m³/s.
    pub interzone_mixing_m3s: f64,
    /// Initial indoor state (the paper's trial starts with indoor ≈
    /// outdoor).
    pub initial_indoor: (Celsius, Celsius),
    /// Initial indoor CO₂, ppm.
    pub initial_co2: f64,
    /// RNG seed for weather wander and sensor noise.
    pub seed: u64,
    /// Which versioned normal sampler every plant RNG (weather wander,
    /// sensor noise, fault perturbations) uses. Byte-identity of exports
    /// is guaranteed *within* a version, not across versions; `V1`
    /// reproduces all pre-seam exports. Defaults to the `BZ_NOISE`
    /// environment variable (V2 when unset).
    pub noise: NoiseKernel,
    /// Forces the scalar reference paths (per-zone stepping, full
    /// two-channel sensor reads, per-read psychrometrics) instead of the
    /// batched/skipping fast paths. Both produce bit-identical results —
    /// this switch exists so the parity suites can prove it and so a
    /// suspicious run can be re-executed on the original code path.
    /// Defaults to the `BZ_SCALAR_REFERENCE` environment variable.
    pub scalar_reference: bool,
}

impl PlantConfig {
    /// The calibrated BubbleZERO laboratory on the paper's trial afternoon
    /// (disturbances are left empty; scenarios add their own scripts).
    #[must_use]
    pub fn bubble_zero_lab() -> Self {
        Self {
            zone: ZoneParams::bubble_zero_subspace(),
            panel: PanelParams::bubble_zero_panel(),
            airbox: AirboxParams::bubble_zero_airbox(),
            radiant_chiller: ChillerConfig::radiant_18c(),
            vent_chiller: ChillerConfig::ventilation_8c(),
            weather: WeatherConfig::singapore_afternoon(),
            disturbances: DisturbanceSchedule::none(),
            faults: FaultSchedule::none(),
            sensor_faults: SensorFaultSchedule::none(),
            occupancy: OccupancySchedule::empty(),
            interzone_mixing_m3s: 0.04,
            initial_indoor: (Celsius::new(28.9), Celsius::new(27.4)),
            initial_co2: 520.0,
            seed: 0xB0BB_1E2E,
            noise: NoiseKernel::from_env(),
            scalar_reference: scalar_reference_default(),
        }
    }

    /// Same lab with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Same lab with a disturbance script.
    #[must_use]
    pub fn with_disturbances(mut self, disturbances: DisturbanceSchedule) -> Self {
        self.disturbances = disturbances;
        self
    }

    /// Same lab with an occupancy script.
    #[must_use]
    pub fn with_occupancy(mut self, occupancy: OccupancySchedule) -> Self {
        self.occupancy = occupancy;
        self
    }

    /// Same lab with an actuator-fault script.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = faults;
        self
    }

    /// Same lab with a sensor-fault script.
    #[must_use]
    pub fn with_sensor_faults(mut self, sensor_faults: SensorFaultSchedule) -> Self {
        self.sensor_faults = sensor_faults;
        self
    }

    /// Same lab with the scalar-reference switch set explicitly (see
    /// [`PlantConfig::scalar_reference`]).
    #[must_use]
    pub fn with_scalar_reference(mut self, scalar_reference: bool) -> Self {
        self.scalar_reference = scalar_reference;
        self
    }

    /// Same lab with the noise kernel pinned explicitly (see
    /// [`PlantConfig::noise`]).
    #[must_use]
    pub fn with_noise(mut self, noise: NoiseKernel) -> Self {
        self.noise = noise;
        self
    }
}

/// Whether `BZ_SCALAR_REFERENCE` asks for the scalar reference paths
/// (any non-empty value other than `0` counts as set).
#[must_use]
pub fn scalar_reference_default() -> bool {
    std::env::var_os("BZ_SCALAR_REFERENCE").is_some_and(|v| !v.is_empty() && v != "0")
}

/// The sensor instruments attached to the plant.
#[derive(Debug, Clone)]
struct Instruments {
    /// Room air temperature+RH sensor per subspace.
    room: [HumiditySensor; 4],
    /// Six ceiling-surface-air sensors per panel (3 under each served
    /// subspace), as in Figure 4(b).
    ceiling: Vec<HumiditySensor>,
    /// Pipe temperature sensors: per panel [T_mix, T_rcyc], plus the two
    /// tank supply temperatures.
    pipe_mix: [TemperatureSensor; 2],
    pipe_return: [TemperatureSensor; 2],
    tank_supply: TemperatureSensor,
    vent_supply: TemperatureSensor,
    /// Flow sensors: per panel [F_mix, F_supp, F_rcyc].
    flow: Vec<FlowSensor>,
    /// Airbox outlet SHT75 per airbox.
    outlet: [HumiditySensor; 4],
    /// Coil flow sensor per airbox.
    coil_flow: [FlowSensor; 4],
    /// CO₂ sensor per subspace (on the CO₂flap boards).
    co2: [Co2Sensor; 4],
}

impl Instruments {
    fn new(rng: &mut Rng) -> Self {
        Self {
            room: std::array::from_fn(|_| HumiditySensor::new(rng)),
            ceiling: (0..12).map(|_| HumiditySensor::new(rng)).collect(),
            pipe_mix: std::array::from_fn(|_| TemperatureSensor::new(rng)),
            pipe_return: std::array::from_fn(|_| TemperatureSensor::new(rng)),
            tank_supply: TemperatureSensor::new(rng),
            vent_supply: TemperatureSensor::new(rng),
            flow: (0..6).map(|_| FlowSensor::new(rng)).collect(),
            outlet: std::array::from_fn(|_| HumiditySensor::new(rng)),
            coil_flow: std::array::from_fn(|_| FlowSensor::new(rng)),
            co2: std::array::from_fn(|_| Co2Sensor::new(rng)),
        }
    }
}

/// Which cached slot a coalesced psychrometric result lands in.
#[derive(Debug, Clone, Copy)]
enum ReadSlot {
    /// Room RH for subspace `s`.
    Room(usize),
    /// Near-ceiling RH for `panel * 2 + half` (the three sensors under
    /// one served subspace share the same blended air state, so one
    /// evaluation serves all three).
    Half(usize),
    /// Airbox outlet RH for airbox `a`.
    Outlet(usize),
}

/// Per-tick cache of the psychrometric *truth* values behind
/// same-timestamp sensor reads.
///
/// Zone and outlet air states only change inside [`ThermalPlant::step`],
/// so every sensor read between two steps sees the same underlying air —
/// and the relative humidity behind those reads is a pure function of
/// that air. [`ThermalPlant::coalesce_reads`] evaluates all of a tick's
/// RH truths in one `bz_psychro` batch pass (deduplicating the shared
/// near-ceiling states) and the read methods fan the results out. A read
/// whose slot was not coalesced falls back to the identical scalar
/// computation, so the cache can only change *cost*, never bytes. The
/// scratch vectors are reused across ticks; the cache is derived state
/// and is never checkpointed.
#[derive(Debug, Clone, Default)]
struct ReadPass {
    /// Tick the cached values were computed for.
    tick: Option<SimTime>,
    room_rh: [Option<f64>; 4],
    half_rh: [Option<f64>; 4],
    outlet_rh: [Option<f64>; 4],
    temps: Vec<f64>,
    ratios: Vec<f64>,
    rh: Vec<f64>,
    slots: Vec<ReadSlot>,
}

impl ReadPass {
    fn valid(&self, now: SimTime) -> bool {
        self.tick == Some(now)
    }

    fn room(&self, now: SimTime, s: usize) -> Option<f64> {
        if self.valid(now) {
            self.room_rh[s]
        } else {
            None
        }
    }

    fn half(&self, now: SimTime, h: usize) -> Option<f64> {
        if self.valid(now) {
            self.half_rh[h]
        } else {
            None
        }
    }

    fn outlet(&self, now: SimTime, a: usize) -> Option<f64> {
        if self.valid(now) {
            self.outlet_rh[a]
        } else {
            None
        }
    }
}

/// State of one radiant mixing loop between steps.
#[derive(Debug, Clone, Copy)]
struct LoopState {
    /// Water temperature in the return pipe (from the last step).
    return_temp: Celsius,
    /// Mixed temperature and flow achieved on the last step.
    mixed_temp: Celsius,
    mixed_flow_m3s: f64,
    supply_flow_m3s: f64,
    recycle_flow_m3s: f64,
}

/// The assembled laboratory.
#[derive(Debug, Clone)]
pub struct ThermalPlant {
    config: PlantConfig,
    now: SimTime,
    weather: Weather,
    outdoor: AirState,
    zones: [Zone; 4],
    panels: [RadiantPanel; 2],
    loops: [LoopState; 2],
    radiant_tank: Tank,
    vent_tank: Tank,
    radiant_chiller: TankChiller,
    vent_chiller: TankChiller,
    supply_pumps: [Pump; 2],
    recycle_pumps: [Pump; 2],
    coil_pumps: [Pump; 4],
    airboxes: [Airbox; 4],
    /// Last airbox outlet states (for the outlet sensors).
    outlet_states: [AirState; 4],
    /// Last coil water flows (for the coil flow sensors).
    coil_flows: [f64; 4],
    instruments: Instruments,
    telemetry: StepTelemetry,
    meters: EnergyMeters,
    last_zone_inputs: [ZoneInputs; 4],
    /// RNG for sensor-fault noise bursts (separate stream so fault
    /// scenarios don't shift the healthy sensors' noise draws).
    sensor_fault_rng: Rng,
    /// Latched output per (target, channel) for stuck-at faults: the first
    /// value read while the fault is active.
    stuck_latch: std::collections::BTreeMap<(SensorTarget, u8), f64>,
    /// Per-tick coalesced psychrometrics for sensor reads (derived cache,
    /// never persisted).
    read_pass: ReadPass,
    obs: bz_obs::Handle,
}

/// Adjacent-subspace pairs in the 2×2 layout (S1 S2 / S3 S4).
const ADJACENCY: [(usize, usize); 4] = [(0, 1), (2, 3), (0, 2), (1, 3)];

impl ThermalPlant {
    /// Builds the plant in its initial condition.
    #[must_use]
    pub fn new(config: PlantConfig) -> Self {
        let mut rng = Rng::seed_from(config.seed).with_kernel(config.noise);
        let mut weather = Weather::new(config.weather, rng.fork());
        let outdoor = weather.sample(SimTime::ZERO);
        let (t0, dew0) = config.initial_indoor;
        let indoor = AirState::from_dew_point(t0, dew0, Ppm::new(config.initial_co2));
        let zones = std::array::from_fn(|_| Zone::new(config.zone, indoor));
        let panels = std::array::from_fn(|_| RadiantPanel::new(config.panel, t0));
        let radiant_tank = Tank::new(0.2, config.radiant_chiller.setpoint);
        let vent_tank = Tank::new(0.15, config.vent_chiller.setpoint);
        let loops = [LoopState {
            return_temp: config.radiant_chiller.setpoint,
            mixed_temp: config.radiant_chiller.setpoint,
            mixed_flow_m3s: 0.0,
            supply_flow_m3s: 0.0,
            recycle_flow_m3s: 0.0,
        }; 2];
        let instruments = Instruments::new(&mut rng);
        let sensor_fault_rng = rng.fork();
        Self {
            radiant_chiller: TankChiller::new(config.radiant_chiller),
            vent_chiller: TankChiller::new(config.vent_chiller),
            config,
            now: SimTime::ZERO,
            weather,
            outdoor,
            zones,
            panels,
            loops,
            radiant_tank,
            vent_tank,
            supply_pumps: [Pump::radiant_loop(); 2],
            recycle_pumps: [Pump::radiant_loop(); 2],
            coil_pumps: [Pump::airbox_coil(); 4],
            airboxes: std::array::from_fn(|_| Airbox::new(AirboxParams::bubble_zero_airbox())),
            outlet_states: [indoor; 4],
            coil_flows: [0.0; 4],
            instruments,
            telemetry: StepTelemetry::default(),
            meters: EnergyMeters::default(),
            last_zone_inputs: Default::default(),
            sensor_fault_rng,
            stuck_latch: std::collections::BTreeMap::new(),
            read_pass: ReadPass::default(),
            obs: bz_obs::Handle::global(),
        }
    }

    /// Redirects this plant's spans and gauges to `obs` (per-run
    /// isolation).
    #[must_use]
    pub fn with_obs(mut self, obs: bz_obs::Handle) -> Self {
        self.obs = obs;
        self
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The configuration the plant was built with.
    #[must_use]
    pub fn config(&self) -> &PlantConfig {
        &self.config
    }

    /// Advances the plant by `dt` under `commands`.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is zero.
    pub fn step(&mut self, dt: SimDuration, commands: &ActuatorCommands) {
        assert!(!dt.is_zero(), "plant step must advance time");
        let step_span = self.obs.span("thermal.plant.step", self.now.as_millis());
        let dt_s = dt.as_secs_f64();
        self.now += dt;
        // Zone/outlet air is about to change: drop the coalesced-read cache.
        self.read_pass.tick = None;
        self.outdoor = self.weather.sample(self.now);

        // Physical actuators apply their faults regardless of commands.
        let commands = &self.config.faults.apply(commands, self.now);

        let opening = self.config.disturbances.exchange_at(self.now);
        let rates = self.config.occupancy.rates();

        let mut telemetry = StepTelemetry::default();

        // --- Radiant loops ------------------------------------------------
        let panel_span = self.obs.span("thermal.panels.step", self.now.as_millis());
        let mut hvac_sensible = [0.0f64; 4];
        let mut hvac_condensation = [0.0f64; 4];
        for panel_idx in 0..2 {
            let cmd = commands.radiant[panel_idx];
            let supply_flow = self.supply_pumps[panel_idx].flow(cmd.supply_voltage);
            let recycle_flow = self.recycle_pumps[panel_idx].flow(cmd.recycle_voltage);
            telemetry.pump_power_w += self.supply_pumps[panel_idx]
                .electrical_power(cmd.supply_voltage)
                + self.recycle_pumps[panel_idx].electrical_power(cmd.recycle_voltage);

            let loop_state = &mut self.loops[panel_idx];
            let zone_a = 2 * panel_idx;
            let zone_b = zone_a + 1;
            let zone_states = [self.zones[zone_a].state(), self.zones[zone_b].state()];

            match mix_supply_and_recycle(
                supply_flow,
                recycle_flow,
                self.radiant_tank.temperature(),
                loop_state.return_temp,
            ) {
                Some(mix) => {
                    let step = self.panels[panel_idx].step(
                        dt_s,
                        mix.mixed_temp,
                        mix.mixed_flow_m3s,
                        zone_states,
                    );
                    hvac_sensible[zone_a] -= step.heat_from_zones_w[0];
                    hvac_sensible[zone_b] -= step.heat_from_zones_w[1];
                    hvac_condensation[zone_a] += step.zone_condensation_kg_s[0];
                    hvac_condensation[zone_b] += step.zone_condensation_kg_s[1];
                    telemetry.panel_condensate_kg += step.condensate_kg;

                    // Paper's water-side accounting: c·F·(T_retn − T_supp)
                    // on the tank loop.
                    let c = water_volumetric_heat_capacity(self.radiant_tank.temperature());
                    telemetry.radiant_heat_removed_w += c
                        * mix.tank_flow_m3s
                        * (step.water_return_temp.get() - self.radiant_tank.temperature().get());

                    self.radiant_tank
                        .mix_return(mix.tank_flow_m3s, step.water_return_temp, dt_s);
                    loop_state.return_temp = step.water_return_temp;
                    loop_state.mixed_temp = mix.mixed_temp;
                    loop_state.mixed_flow_m3s = mix.mixed_flow_m3s;
                    loop_state.supply_flow_m3s = supply_flow;
                    loop_state.recycle_flow_m3s = recycle_flow;
                }
                None => {
                    // Stagnant loop: the panel floats against the room.
                    let step =
                        self.panels[panel_idx].step(dt_s, loop_state.mixed_temp, 0.0, zone_states);
                    hvac_sensible[zone_a] -= step.heat_from_zones_w[0];
                    hvac_sensible[zone_b] -= step.heat_from_zones_w[1];
                    hvac_condensation[zone_a] += step.zone_condensation_kg_s[0];
                    hvac_condensation[zone_b] += step.zone_condensation_kg_s[1];
                    telemetry.panel_condensate_kg += step.condensate_kg;
                    loop_state.mixed_flow_m3s = 0.0;
                    loop_state.supply_flow_m3s = 0.0;
                    loop_state.recycle_flow_m3s = 0.0;
                }
            }
        }

        panel_span.exit(self.now.as_millis());

        // --- Airboxes -----------------------------------------------------
        let mut zone_inputs: [ZoneInputs; 4] = Default::default();
        for (i, inputs) in zone_inputs.iter_mut().enumerate() {
            let act = commands.airboxes[i];
            let coil_flow = self.coil_pumps[i].flow(act.coil_pump_voltage);
            self.coil_flows[i] = coil_flow;
            telemetry.pump_power_w += self.coil_pumps[i].electrical_power(act.coil_pump_voltage);

            let command = AirboxCommand {
                fan: act.fan,
                coil_water_flow_m3s: coil_flow,
                flap_open: act.flap_open,
            };
            let step =
                self.airboxes[i].step(dt_s, &command, self.outdoor, self.vent_tank.temperature());
            telemetry.fan_power_w += step.fan_power_w;
            telemetry.vent_heat_removed_w += step.heat_to_water_w;
            telemetry.airbox_condensate_kg += step.condensate_kg;
            self.outlet_states[i] = step.supply;

            if coil_flow > 0.0 {
                self.vent_tank
                    .mix_return(coil_flow, step.water_return_temp, dt_s);
            }

            let subspace = SubspaceId::from_index(i);
            let headcount = f64::from(self.config.occupancy.headcount(subspace, self.now));
            *inputs = ZoneInputs {
                hvac_sensible_w: hvac_sensible[i],
                hvac_condensation_kg_s: hvac_condensation[i],
                occupant_sensible_w: headcount * rates.sensible_w,
                occupant_latent_kg_s: headcount * rates.latent_kg_s,
                occupant_co2_m3s: headcount * rates.co2_m3s,
                ventilation_m3s: step.supply_flow_m3s,
                ventilation_temp: step.supply.temperature,
                ventilation_ratio: step.supply.humidity_ratio,
                ventilation_co2: step.supply.co2,
                opening_exchange_m3s: opening[i],
            };
        }

        // --- Zones (using pre-step neighbor states for symmetry) ----------
        let zone_span = self.obs.span("thermal.zones.step", self.now.as_millis());
        self.last_zone_inputs = zone_inputs;
        let pre_states: [AirState; 4] = std::array::from_fn(|i| self.zones[i].state());
        if self.config.scalar_reference {
            // Scalar reference path: per-zone stepping with the neighbour
            // list rebuilt from the adjacency scan each tick. The batched
            // path below is bit-identical (`zone_batch` tests plus the
            // plant parity test prove it); this branch stays as the
            // re-executable original.
            for (i, zone) in self.zones.iter_mut().enumerate() {
                let neighbors: Vec<(f64, AirState)> = ADJACENCY
                    .iter()
                    .filter_map(|&(a, b)| {
                        if a == i {
                            Some((self.config.interzone_mixing_m3s, pre_states[b]))
                        } else if b == i {
                            Some((self.config.interzone_mixing_m3s, pre_states[a]))
                        } else {
                            None
                        }
                    })
                    .collect();
                zone.step(dt_s, &zone_inputs[i], self.outdoor, &neighbors);
            }
        } else {
            crate::zone_batch::step_zones(
                &mut self.zones,
                dt_s,
                &zone_inputs,
                self.outdoor,
                self.config.interzone_mixing_m3s,
            );
        }

        zone_span.exit(self.now.as_millis());

        // --- Tanks and chillers --------------------------------------------
        // Standby gains: tanks sit in the warm plant room.
        let room_mean = pre_states.iter().map(|s| s.temperature.get()).sum::<f64>() / 4.0;
        self.radiant_tank.apply_heat(
            1.5 * (room_mean - self.radiant_tank.temperature().get()),
            dt_s,
        );
        self.vent_tank
            .apply_heat(1.5 * (room_mean - self.vent_tank.temperature().get()), dt_s);

        self.radiant_chiller.regulate(&mut self.radiant_tank, dt_s);
        self.vent_chiller.regulate(&mut self.vent_tank, dt_s);
        telemetry.radiant_chiller_w = self.radiant_chiller.electrical_power().get();
        telemetry.vent_chiller_w = self.vent_chiller.electrical_power().get();
        self.obs.gauge_set(
            "thermal.chiller.radiant_w",
            self.now.as_millis(),
            telemetry.radiant_chiller_w,
        );
        self.obs.gauge_set(
            "thermal.chiller.vent_w",
            self.now.as_millis(),
            telemetry.vent_chiller_w,
        );

        // --- Meters ---------------------------------------------------------
        let dt_sec = Seconds::new(dt_s);
        self.meters.radiant_removed += Watts::new(telemetry.radiant_heat_removed_w) * dt_sec;
        self.meters.vent_removed += Watts::new(telemetry.vent_heat_removed_w) * dt_sec;
        self.meters.radiant_chiller += Watts::new(telemetry.radiant_chiller_w) * dt_sec;
        self.meters.vent_chiller += Watts::new(telemetry.vent_chiller_w) * dt_sec;
        self.meters.pumps += Watts::new(telemetry.pump_power_w) * dt_sec;
        self.meters.fans += Watts::new(telemetry.fan_power_w) * dt_sec;
        self.meters.elapsed += dt_sec;

        self.telemetry = telemetry;
        step_span.exit(self.now.as_millis());
    }

    // --- Ground-truth accessors (for assertions and figures, not control) --

    /// True air state of a subspace.
    #[must_use]
    pub fn zone_state(&self, id: SubspaceId) -> AirState {
        self.zones[id.index()].state()
    }

    /// True dry-bulb temperature of a subspace.
    #[must_use]
    pub fn zone_temperature(&self, id: SubspaceId) -> Celsius {
        self.zone_state(id).temperature
    }

    /// True dew point of a subspace.
    #[must_use]
    pub fn zone_dew_point(&self, id: SubspaceId) -> Celsius {
        self.zone_state(id).dew_point()
    }

    /// Current outdoor air state.
    #[must_use]
    pub fn outdoor(&self) -> AirState {
        self.outdoor
    }

    /// True panel surface temperature.
    #[must_use]
    pub fn panel_surface(&self, panel: usize) -> Celsius {
        self.panels[panel].surface_temperature()
    }

    /// Total condensate ever formed on the panels, kg.
    #[must_use]
    pub fn panel_condensate_total(&self) -> f64 {
        self.panels.iter().map(RadiantPanel::total_condensate).sum()
    }

    /// True radiant tank temperature.
    #[must_use]
    pub fn radiant_tank_temperature(&self) -> Celsius {
        self.radiant_tank.temperature()
    }

    /// True ventilation tank temperature.
    #[must_use]
    pub fn vent_tank_temperature(&self) -> Celsius {
        self.vent_tank.temperature()
    }

    /// True mixed-water temperature entering a panel.
    #[must_use]
    pub fn loop_mixed_temp(&self, panel: usize) -> Celsius {
        self.loops[panel].mixed_temp
    }

    /// True mixed flow through a panel, m³/s.
    #[must_use]
    pub fn loop_mixed_flow(&self, panel: usize) -> f64 {
        self.loops[panel].mixed_flow_m3s
    }

    /// True outlet air state of an airbox after the last step.
    #[must_use]
    pub fn airbox_outlet_state(&self, airbox: usize) -> AirState {
        self.outlet_states[airbox]
    }

    /// True coil water flow of an airbox after the last step, m³/s.
    #[must_use]
    pub fn airbox_coil_flow(&self, airbox: usize) -> f64 {
        self.coil_flows[airbox]
    }

    /// The exogenous inputs applied to each zone on the most recent step
    /// (diagnostics).
    #[must_use]
    pub fn last_zone_inputs(&self) -> &[ZoneInputs; 4] {
        &self.last_zone_inputs
    }

    /// Telemetry of the most recent step.
    #[must_use]
    pub fn telemetry(&self) -> &StepTelemetry {
        &self.telemetry
    }

    /// Integrated energy meters.
    #[must_use]
    pub fn meters(&self) -> &EnergyMeters {
        &self.meters
    }

    /// Resets the integrated meters (for steady-state windows) — both the
    /// plant meters and the chillers' internal meters.
    pub fn reset_meters(&mut self) {
        self.meters = EnergyMeters::default();
        self.radiant_chiller.reset_meters();
        self.vent_chiller.reset_meters();
    }

    // --- Sensor interface (what the control boards see) --------------------

    /// Pre-computes, in one batched `bz_psychro` pass, the
    /// relative-humidity truth values behind the sensor reads the caller
    /// is about to issue at the current tick: `rooms[s]` marks the room
    /// SHT75 of subspace `s`, `ceiling_halves[panel * 2 + half]` the
    /// three ceiling SHT75s sharing one served subspace's near-ceiling
    /// air, and `outlets[a]` the airbox outlet SHT75s. The tick driver
    /// calls this once per drained event batch so ~14 scalar per-event
    /// psychrometric evaluations collapse into a single pass over at most
    /// 12 deduplicated states.
    ///
    /// Purely an evaluation-order change: each cached value is the exact
    /// scalar computation the read would have performed, reads whose slot
    /// was not requested fall back to that scalar computation, and the
    /// scalar-reference path ignores the cache entirely — so exports are
    /// byte-identical with or without coalescing.
    pub fn coalesce_reads(
        &mut self,
        rooms: [bool; 4],
        ceiling_halves: [bool; 4],
        outlets: [bool; 4],
    ) {
        if self.config.scalar_reference {
            return;
        }
        let pass = &mut self.read_pass;
        pass.tick = Some(self.now);
        pass.room_rh = [None; 4];
        pass.half_rh = [None; 4];
        pass.outlet_rh = [None; 4];
        pass.temps.clear();
        pass.ratios.clear();
        pass.slots.clear();
        for (s, requested) in rooms.iter().enumerate() {
            if *requested {
                let state = self.zones[s].state();
                pass.temps.push(state.temperature.get());
                pass.ratios.push(state.humidity_ratio.get());
                pass.slots.push(ReadSlot::Room(s));
            }
        }
        for (h, requested) in ceiling_halves.iter().enumerate() {
            if *requested {
                let (panel, half) = (h / 2, h % 2);
                let state = self.zones[2 * panel + half].state();
                let surface = self.panels[panel].surface_temperature();
                // Must match the per-read blend in `read_ceiling_sensor_rh`
                // operation for operation.
                let near_t = 0.7 * state.temperature.get() + 0.3 * surface.get();
                pass.temps.push(near_t);
                pass.ratios.push(state.humidity_ratio.get());
                pass.slots.push(ReadSlot::Half(h));
            }
        }
        for (a, requested) in outlets.iter().enumerate() {
            if *requested {
                let state = self.outlet_states[a];
                pass.temps.push(state.temperature.get());
                pass.ratios.push(state.humidity_ratio.get());
                pass.slots.push(ReadSlot::Outlet(a));
            }
        }
        if pass.slots.is_empty() {
            return;
        }
        pass.rh.clear();
        pass.rh.resize(pass.slots.len(), 0.0);
        bz_psychro::batch::relative_humidity_batch(&pass.temps, &pass.ratios, &mut pass.rh);
        for (slot, &rh) in pass.slots.iter().zip(&pass.rh) {
            match *slot {
                ReadSlot::Room(s) => pass.room_rh[s] = Some(rh),
                ReadSlot::Half(h) => pass.half_rh[h] = Some(rh),
                ReadSlot::Outlet(a) => pass.outlet_rh[a] = Some(rh),
            }
        }
    }

    /// True if `target` is dropped out (produces no reading) right now.
    /// Callers should skip sampling — and transmitting — a dropped-out
    /// element, the way a mote skips a sensor that stops answering.
    #[must_use]
    pub fn sensor_dropped_out(&self, target: SensorTarget) -> bool {
        self.config.sensor_faults.dropped_out(target, self.now)
    }

    /// Runs a clean reading through the sensor-fault schedule for
    /// `target`/`channel` (0 = temperature/primary, 1 = humidity).
    fn faulted(&mut self, target: SensorTarget, channel: u8, clean: f64) -> f64 {
        let Some(event) = self.config.sensor_faults.active_for(target, self.now) else {
            self.stuck_latch.remove(&(target, channel));
            return clean;
        };
        match event.fault {
            SensorFault::StuckAt => *self.stuck_latch.entry((target, channel)).or_insert(clean),
            SensorFault::DriftRamp { per_hour } => {
                let hours = self.now.since(event.at).as_secs_f64() / 3_600.0;
                clean + per_hour * hours
            }
            // Dropout is handled by callers via `sensor_dropped_out`; if
            // one reads anyway, it gets the clean value.
            SensorFault::Dropout => clean,
            SensorFault::NoiseBurst { sd } => clean + self.sensor_fault_rng.normal(0.0, sd),
            SensorFault::CalibrationJump { offset } => clean + offset,
        }
    }

    /// Room SHT75 reading for a subspace: (temperature, relative humidity).
    pub fn read_room(&mut self, id: SubspaceId) -> (Celsius, Percent) {
        let state = self.zones[id.index()].state();
        let sensor = &mut self.instruments.room[id.index()];
        let (t, rh) = sensor.read_pair(state.temperature, state.relative_humidity());
        let target = SensorTarget::Room(id.index());
        (
            Celsius::new(self.faulted(target, 0, t.get())),
            Percent::new(self.faulted(target, 1, rh.get())),
        )
    }

    /// The six ceiling sensors under a panel: (temperature, RH) for each.
    /// Three sensors sit under each of the two served subspaces; the air
    /// they sample is slightly cooler than the bulk zone air because of
    /// the cold panel above (a 30% blend toward the surface temperature).
    pub fn read_ceiling(&mut self, panel: usize) -> Vec<(Celsius, Percent)> {
        let surface = self.panels[panel].surface_temperature();
        let mut readings = Vec::with_capacity(6);
        for k in 0..6 {
            let zone_idx = 2 * panel + (k / 3);
            let state = self.zones[zone_idx].state();
            // Near-ceiling air: blend of bulk air and panel surface.
            let near_t = 0.7 * state.temperature.get() + 0.3 * surface.get();
            // Humidity *ratio* is unchanged near the ceiling; RH rises as
            // the air cools.
            let near = AirState {
                temperature: Celsius::new(near_t),
                ..state
            };
            let sensor = &mut self.instruments.ceiling[panel * 6 + k];
            let (t, rh) = sensor.read_pair(near.temperature, near.relative_humidity());
            let target = SensorTarget::Ceiling(panel * 6 + k);
            readings.push((
                Celsius::new(self.faulted(target, 0, t.get())),
                Percent::new(self.faulted(target, 1, rh.get())),
            ));
        }
        readings
    }

    /// A single ceiling sensor (`k` in 0–5) under a panel: (temperature,
    /// RH). Same air model as [`ThermalPlant::read_ceiling`].
    pub fn read_ceiling_sensor(&mut self, panel: usize, k: usize) -> (Celsius, Percent) {
        let surface = self.panels[panel].surface_temperature();
        let zone_idx = 2 * panel + (k / 3);
        let state = self.zones[zone_idx].state();
        let near_t = 0.7 * state.temperature.get() + 0.3 * surface.get();
        let near = AirState {
            temperature: Celsius::new(near_t),
            ..state
        };
        let sensor = &mut self.instruments.ceiling[panel * 6 + k];
        let (t, rh) = sensor.read_pair(near.temperature, near.relative_humidity());
        let target = SensorTarget::Ceiling(panel * 6 + k);
        (
            Celsius::new(self.faulted(target, 0, t.get())),
            Percent::new(self.faulted(target, 1, rh.get())),
        )
    }

    /// Temperature channel of the room SHT75 only. The humidity
    /// sibling's noise draw is *skipped* (state-advanced, not computed),
    /// so the reading — and every reading after it — is bit-identical to
    /// taking [`read_room`](Self::read_room) and discarding the RH half.
    /// Falls back to the full two-channel read whenever the fault
    /// schedule can touch this sensor or the scalar-reference switch is
    /// on.
    pub fn read_room_temp(&mut self, id: SubspaceId) -> Celsius {
        let target = SensorTarget::Room(id.index());
        if self.config.scalar_reference || self.config.sensor_faults.ever_targets(target) {
            return self.read_room(id).0;
        }
        let state = self.zones[id.index()].state();
        let sensor = &mut self.instruments.room[id.index()];
        let t = sensor.read_temp(state.temperature);
        sensor.skip_rh();
        t
    }

    /// Humidity channel of the room SHT75 only (see
    /// [`read_room_temp`](Self::read_room_temp)).
    pub fn read_room_rh(&mut self, id: SubspaceId) -> Percent {
        let target = SensorTarget::Room(id.index());
        if self.config.scalar_reference || self.config.sensor_faults.ever_targets(target) {
            return self.read_room(id).1;
        }
        let truth = match self.read_pass.room(self.now, id.index()) {
            Some(rh) => Percent::new(rh),
            None => self.zones[id.index()].state().relative_humidity(),
        };
        let sensor = &mut self.instruments.room[id.index()];
        sensor.skip_temp();
        sensor.read_rh(truth)
    }

    /// Temperature channel of one ceiling SHT75 only (see
    /// [`read_room_temp`](Self::read_room_temp) for the skip contract).
    pub fn read_ceiling_sensor_temp(&mut self, panel: usize, k: usize) -> Celsius {
        let target = SensorTarget::Ceiling(panel * 6 + k);
        if self.config.scalar_reference || self.config.sensor_faults.ever_targets(target) {
            return self.read_ceiling_sensor(panel, k).0;
        }
        let surface = self.panels[panel].surface_temperature();
        let zone_idx = 2 * panel + (k / 3);
        let state = self.zones[zone_idx].state();
        let near_t = 0.7 * state.temperature.get() + 0.3 * surface.get();
        let sensor = &mut self.instruments.ceiling[panel * 6 + k];
        let t = sensor.read_temp(Celsius::new(near_t));
        sensor.skip_rh();
        t
    }

    /// Humidity channel of one ceiling SHT75 only (see
    /// [`read_room_temp`](Self::read_room_temp) for the skip contract).
    pub fn read_ceiling_sensor_rh(&mut self, panel: usize, k: usize) -> Percent {
        let target = SensorTarget::Ceiling(panel * 6 + k);
        if self.config.scalar_reference || self.config.sensor_faults.ever_targets(target) {
            return self.read_ceiling_sensor(panel, k).1;
        }
        let truth = match self.read_pass.half(self.now, panel * 2 + k / 3) {
            Some(rh) => Percent::new(rh),
            None => {
                let surface = self.panels[panel].surface_temperature();
                let zone_idx = 2 * panel + (k / 3);
                let state = self.zones[zone_idx].state();
                let near_t = 0.7 * state.temperature.get() + 0.3 * surface.get();
                let near = AirState {
                    temperature: Celsius::new(near_t),
                    ..state
                };
                near.relative_humidity()
            }
        };
        let sensor = &mut self.instruments.ceiling[panel * 6 + k];
        sensor.skip_temp();
        sensor.read_rh(truth)
    }

    /// ADT7410 reading of the mixed-water temperature for a panel loop.
    pub fn read_mixed_temp(&mut self, panel: usize) -> Celsius {
        self.instruments.pipe_mix[panel].read(self.loops[panel].mixed_temp)
    }

    /// ADT7410 reading of the loop return temperature.
    pub fn read_return_temp(&mut self, panel: usize) -> Celsius {
        self.instruments.pipe_return[panel].read(self.loops[panel].return_temp)
    }

    /// ADT7410 reading of the radiant tank supply temperature.
    pub fn read_supply_temp(&mut self) -> Celsius {
        self.instruments
            .tank_supply
            .read(self.radiant_tank.temperature())
    }

    /// ADT7410 reading of the ventilation tank supply temperature.
    pub fn read_vent_supply_temp(&mut self) -> Celsius {
        self.instruments
            .vent_supply
            .read(self.vent_tank.temperature())
    }

    /// VISION-2000 reading of the mixed loop flow, m³/s.
    pub fn read_mixed_flow(&mut self, panel: usize) -> f64 {
        self.instruments.flow[panel * 3].read(self.loops[panel].mixed_flow_m3s)
    }

    /// VISION-2000 reading of the supply (tank-side) flow, m³/s.
    pub fn read_supply_flow(&mut self, panel: usize) -> f64 {
        self.instruments.flow[panel * 3 + 1].read(self.loops[panel].supply_flow_m3s)
    }

    /// VISION-2000 reading of the recycle flow, m³/s.
    pub fn read_recycle_flow(&mut self, panel: usize) -> f64 {
        self.instruments.flow[panel * 3 + 2].read(self.loops[panel].recycle_flow_m3s)
    }

    /// SHT75 reading at an airbox outlet: (temperature, RH).
    pub fn read_airbox_outlet(&mut self, airbox: usize) -> (Celsius, Percent) {
        let state = self.outlet_states[airbox];
        let truth_rh = match self.read_pass.outlet(self.now, airbox) {
            Some(rh) => Percent::new(rh),
            None => state.relative_humidity(),
        };
        let sensor = &mut self.instruments.outlet[airbox];
        let (t, rh) = sensor.read_pair(state.temperature, truth_rh);
        let target = SensorTarget::Outlet(airbox);
        (
            Celsius::new(self.faulted(target, 0, t.get())),
            Percent::new(self.faulted(target, 1, rh.get())),
        )
    }

    /// VISION-2000 reading of an airbox coil water flow, m³/s.
    pub fn read_coil_flow(&mut self, airbox: usize) -> f64 {
        self.instruments.coil_flow[airbox].read(self.coil_flows[airbox])
    }

    /// CO₂ reading for a subspace.
    pub fn read_co2(&mut self, id: SubspaceId) -> Ppm {
        let truth = self.zones[id.index()].state().co2;
        let clean = self.instruments.co2[id.index()].read(truth);
        Ppm::new(self.faulted(SensorTarget::Co2(id.index()), 0, clean.get()))
    }

    /// The coil pump model for an airbox (controllers need the
    /// voltage↔flow curve to compute commands).
    #[must_use]
    pub fn coil_pump(&self, airbox: usize) -> &Pump {
        &self.coil_pumps[airbox]
    }

    /// The radiant loop pump model (supply and recycle pumps are
    /// identical units).
    #[must_use]
    pub fn loop_pump(&self) -> &Pump {
        &self.supply_pumps[0]
    }
}

// --- Checkpoint support --------------------------------------------------
//
// Restore contract: rebuild the plant with `ThermalPlant::new(config)`
// (same config as the checkpointed run), then `load_state` to overwrite
// every dynamic field. The config, the pump curves, and the obs handle are
// wiring, not state, and are never serialized.

bz_state::persist_struct!(RadiantLoopCommand {
    supply_voltage,
    recycle_voltage,
});
bz_state::persist_struct!(AirboxActuation {
    coil_pump_voltage,
    fan,
    flap_open,
});
bz_state::persist_struct!(ActuatorCommands { radiant, airboxes });
bz_state::persist_struct!(StepTelemetry {
    radiant_heat_removed_w,
    vent_heat_removed_w,
    radiant_chiller_w,
    vent_chiller_w,
    pump_power_w,
    fan_power_w,
    panel_condensate_kg,
    airbox_condensate_kg,
});
bz_state::persist_struct!(EnergyMeters {
    radiant_removed,
    vent_removed,
    radiant_chiller,
    vent_chiller,
    pumps,
    fans,
    elapsed,
});
bz_state::persist_struct!(LoopState {
    return_temp,
    mixed_temp,
    mixed_flow_m3s,
    supply_flow_m3s,
    recycle_flow_m3s,
});
bz_state::persist_struct!(Instruments {
    room,
    ceiling,
    pipe_mix,
    pipe_return,
    tank_supply,
    vent_supply,
    flow,
    outlet,
    coil_flow,
    co2,
});

impl ThermalPlant {
    /// Serializes every dynamic field of the plant — air states, water
    /// temperatures, panel surfaces, meters, every sensor's noise-stream
    /// position, and the stuck-at fault latches.
    pub fn save_state(&self, w: &mut bz_state::Writer) {
        use bz_state::Persist;
        self.now.save(w);
        self.weather.save_state(w);
        self.outdoor.save(w);
        self.zones.save(w);
        self.panels.save(w);
        self.loops.save(w);
        self.radiant_tank.save(w);
        self.vent_tank.save(w);
        self.radiant_chiller.save_state(w);
        self.vent_chiller.save_state(w);
        self.airboxes.save(w);
        self.outlet_states.save(w);
        self.coil_flows.save(w);
        self.instruments.save(w);
        self.telemetry.save(w);
        self.meters.save(w);
        self.last_zone_inputs.save(w);
        self.sensor_fault_rng.save(w);
        self.stuck_latch.save(w);
    }

    /// Restores the dynamic state saved by [`Self::save_state`] into a
    /// plant freshly built from the same configuration.
    ///
    /// # Errors
    ///
    /// Returns a decode error if the bytes do not parse.
    pub fn load_state(&mut self, r: &mut bz_state::Reader<'_>) -> Result<(), bz_state::StateError> {
        use bz_state::Persist;
        self.now = Persist::load(r)?;
        self.weather.load_state(r)?;
        self.outdoor = Persist::load(r)?;
        self.zones = Persist::load(r)?;
        self.panels = Persist::load(r)?;
        self.loops = Persist::load(r)?;
        self.radiant_tank = Persist::load(r)?;
        self.vent_tank = Persist::load(r)?;
        self.radiant_chiller.load_state(r)?;
        self.vent_chiller.load_state(r)?;
        self.airboxes = Persist::load(r)?;
        self.outlet_states = Persist::load(r)?;
        self.coil_flows = Persist::load(r)?;
        self.instruments = Persist::load(r)?;
        self.telemetry = Persist::load(r)?;
        self.meters = Persist::load(r)?;
        self.last_zone_inputs = Persist::load(r)?;
        self.sensor_fault_rng = Persist::load(r)?;
        self.stuck_latch = Persist::load(r)?;
        // Derived cache: recomputed on demand, never restored.
        self.read_pass = ReadPass::default();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lab() -> ThermalPlant {
        ThermalPlant::new(PlantConfig::bubble_zero_lab())
    }

    /// The fast paths (batched zone stepping, single-channel sensor
    /// reads with sibling skips) must be bit-identical to the scalar
    /// reference paths, reading for reading and state for state.
    #[test]
    fn scalar_reference_and_fast_paths_are_bit_identical() {
        let build = |scalar: bool| {
            ThermalPlant::new(
                PlantConfig::bubble_zero_lab()
                    .with_seed(0xFA57)
                    .with_disturbances(crate::disturbance::DisturbanceSchedule::figure10_afternoon())
                    .with_scalar_reference(scalar),
            )
        };
        let mut reference = build(true);
        let mut fast = build(false);
        let commands = ActuatorCommands::all_off();
        for minute in 0..30 {
            for _ in 0..60 {
                reference.step(SimDuration::from_secs(1), &commands);
                fast.step(SimDuration::from_secs(1), &commands);
            }
            let id = SubspaceId::from_index(minute % 4);
            let panel = minute % 2;
            let k = minute % 6;
            // The scalar plant always takes the full two-channel reads;
            // the fast plant goes through the skipping single-channel
            // variants. Streams must stay locked together throughout.
            assert_eq!(reference.read_room(id).0, fast.read_room_temp(id));
            assert_eq!(reference.read_room(id).1, fast.read_room_rh(id));
            assert_eq!(
                reference.read_ceiling_sensor(panel, k).0,
                fast.read_ceiling_sensor_temp(panel, k)
            );
            assert_eq!(
                reference.read_ceiling_sensor(panel, k).1,
                fast.read_ceiling_sensor_rh(panel, k)
            );
            assert_eq!(reference.read_co2(id), fast.read_co2(id));
            for i in 0..4 {
                let a = reference.zones[i].state();
                let b = fast.zones[i].state();
                assert_eq!(a.temperature.get().to_bits(), b.temperature.get().to_bits());
                assert_eq!(
                    a.humidity_ratio.get().to_bits(),
                    b.humidity_ratio.get().to_bits()
                );
                assert_eq!(a.co2.get().to_bits(), b.co2.get().to_bits());
            }
        }
    }

    /// With a fault schedule that targets a sensor, the single-channel
    /// variants must fall back to the full faulted read path.
    #[test]
    fn single_channel_reads_fall_back_under_faults() {
        use crate::sensors::SensorFaultEvent;
        let schedule = SensorFaultSchedule::new(vec![SensorFaultEvent {
            at: SimTime::from_secs(0),
            repaired_at: None,
            target: SensorTarget::Room(0),
            fault: SensorFault::CalibrationJump { offset: 5.0 },
        }]);
        let build = || {
            ThermalPlant::new(
                PlantConfig::bubble_zero_lab()
                    .with_seed(0xFA58)
                    .with_sensor_faults(schedule.clone())
                    .with_scalar_reference(false),
            )
        };
        let mut fast = build();
        let mut reference = build();
        let full = reference.read_room(SubspaceId::S1);
        let t = fast.read_room_temp(SubspaceId::S1);
        // The calibration jump must show through the single-channel read.
        assert_eq!(full.0, t);
        assert!(t.get() > 30.0, "jump not applied: {t}");
    }

    #[test]
    fn stuck_ceiling_sensor_freezes_while_neighbours_keep_reading() {
        use crate::sensors::{SensorFaultEvent, SensorFaultSchedule};
        let schedule = SensorFaultSchedule::new(vec![SensorFaultEvent {
            at: SimTime::ZERO,
            repaired_at: Some(SimTime::from_secs(30)),
            target: SensorTarget::Ceiling(2),
            fault: SensorFault::StuckAt,
        }]);
        let mut plant =
            ThermalPlant::new(PlantConfig::bubble_zero_lab().with_sensor_faults(schedule));
        let commands = ActuatorCommands::all_off();
        let first = plant.read_ceiling_sensor(0, 2);
        let mut neighbour_moved = false;
        for _ in 0..20 {
            plant.step(SimDuration::from_secs(1), &commands);
            let stuck = plant.read_ceiling_sensor(0, 2);
            assert_eq!(stuck, first, "stuck sensor must freeze");
            if plant.read_ceiling_sensor(0, 3) != first {
                neighbour_moved = true;
            }
        }
        assert!(neighbour_moved, "healthy neighbour should keep reading");
        // After repair the sensor unfreezes (noise makes an exact repeat of
        // the latched pair essentially impossible).
        for _ in 0..15 {
            plant.step(SimDuration::from_secs(1), &commands);
        }
        assert_ne!(plant.read_ceiling_sensor(0, 2), first);
    }

    #[test]
    fn calibration_jump_and_drift_shift_readings() {
        use crate::sensors::{SensorFaultEvent, SensorFaultSchedule};
        let schedule = SensorFaultSchedule::new(vec![
            SensorFaultEvent {
                at: SimTime::ZERO,
                repaired_at: None,
                target: SensorTarget::Co2(1),
                fault: SensorFault::CalibrationJump { offset: 400.0 },
            },
            SensorFaultEvent {
                at: SimTime::ZERO,
                repaired_at: None,
                target: SensorTarget::Co2(2),
                fault: SensorFault::DriftRamp { per_hour: 3_600.0 },
            },
        ]);
        let mut faulty =
            ThermalPlant::new(PlantConfig::bubble_zero_lab().with_sensor_faults(schedule));
        let mut clean = lab();
        let commands = ActuatorCommands::all_off();
        for _ in 0..60 {
            faulty.step(SimDuration::from_secs(1), &commands);
            clean.step(SimDuration::from_secs(1), &commands);
        }
        let jumped = faulty.read_co2(SubspaceId::from_index(1)).get();
        let reference = clean.read_co2(SubspaceId::from_index(1)).get();
        assert!(
            (jumped - reference - 400.0).abs() < 50.0,
            "jump {jumped} vs {reference}"
        );
        // 3600 ppm/hour for 60 s ≈ +60 ppm of drift.
        let drifted = faulty.read_co2(SubspaceId::from_index(2)).get();
        let reference2 = clean.read_co2(SubspaceId::from_index(2)).get();
        assert!(
            (drifted - reference2 - 60.0).abs() < 50.0,
            "drift {drifted} vs {reference2}"
        );
    }

    #[test]
    fn dropout_is_visible_to_the_sampling_layer() {
        use crate::sensors::{SensorFaultEvent, SensorFaultSchedule};
        let schedule = SensorFaultSchedule::new(vec![SensorFaultEvent {
            at: SimTime::from_secs(10),
            repaired_at: None,
            target: SensorTarget::Room(0),
            fault: SensorFault::Dropout,
        }]);
        let mut plant =
            ThermalPlant::new(PlantConfig::bubble_zero_lab().with_sensor_faults(schedule));
        assert!(!plant.sensor_dropped_out(SensorTarget::Room(0)));
        let commands = ActuatorCommands::all_off();
        for _ in 0..10 {
            plant.step(SimDuration::from_secs(1), &commands);
        }
        assert!(plant.sensor_dropped_out(SensorTarget::Room(0)));
        assert!(!plant.sensor_dropped_out(SensorTarget::Room(1)));
    }

    fn second() -> SimDuration {
        SimDuration::from_secs(1)
    }

    #[test]
    fn initial_condition_matches_paper() {
        let plant = lab();
        for id in SubspaceId::ALL {
            assert!((plant.zone_temperature(id).get() - 28.9).abs() < 1e-9);
            assert!((plant.zone_dew_point(id).get() - 27.4).abs() < 1e-6);
        }
        assert!((plant.radiant_tank_temperature().get() - 18.0).abs() < 1e-9);
        assert!((plant.vent_tank_temperature().get() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn all_off_stays_warm_and_humid() {
        let mut plant = lab();
        for _ in 0..1_800 {
            plant.step(second(), &ActuatorCommands::all_off());
        }
        for id in SubspaceId::ALL {
            assert!(plant.zone_temperature(id).get() > 27.5);
            assert!(plant.zone_dew_point(id).get() > 26.0);
        }
        assert_eq!(plant.telemetry().fan_power_w, 0.0);
    }

    #[test]
    fn full_radiant_cooling_pulls_temperature_down() {
        let mut plant = lab();
        let commands = ActuatorCommands {
            radiant: [RadiantLoopCommand {
                supply_voltage: Volts::new(5.0),
                recycle_voltage: Volts::new(0.0),
            }; 2],
            airboxes: Default::default(),
        };
        for _ in 0..2_400 {
            plant.step(second(), &commands);
        }
        for id in SubspaceId::ALL {
            let t = plant.zone_temperature(id).get();
            assert!(t < 27.0, "{id} still at {t}°C");
        }
        assert!(plant.telemetry().radiant_heat_removed_w > 300.0);
        assert!(plant.telemetry().radiant_chiller_w > 0.0);
    }

    #[test]
    fn full_ventilation_dries_the_room() {
        let mut plant = lab();
        let commands = ActuatorCommands {
            radiant: Default::default(),
            airboxes: [AirboxActuation {
                coil_pump_voltage: Volts::new(5.0),
                fan: FanLevel::L4,
                flap_open: true,
            }; 4],
        };
        let dew0 = plant.zone_dew_point(SubspaceId::S1).get();
        for _ in 0..2_400 {
            plant.step(second(), &commands);
        }
        for id in SubspaceId::ALL {
            let dew = plant.zone_dew_point(id).get();
            assert!(dew < dew0 - 4.0, "{id} dew only fell to {dew}");
        }
        assert!(plant.telemetry().vent_heat_removed_w > 50.0);
        assert!(plant.telemetry().airbox_condensate_kg > 0.0);
    }

    #[test]
    fn uncontrolled_chilled_panel_eventually_condenses() {
        // Supplying 18 °C water straight into a 27.4 °C-dew-point room
        // *must* condense — this is the failure mode the paper's radiant
        // controller exists to prevent.
        let mut plant = lab();
        let commands = ActuatorCommands {
            radiant: [RadiantLoopCommand {
                supply_voltage: Volts::new(5.0),
                recycle_voltage: Volts::new(0.0),
            }; 2],
            airboxes: Default::default(),
        };
        for _ in 0..3_600 {
            plant.step(second(), &commands);
        }
        assert!(
            plant.panel_condensate_total() > 0.0,
            "panel at {} vs dew {}",
            plant.panel_surface(0),
            plant.zone_dew_point(SubspaceId::S1)
        );
    }

    #[test]
    fn sensors_track_truth() {
        let mut plant = lab();
        for _ in 0..60 {
            plant.step(second(), &ActuatorCommands::all_off());
        }
        let (t, rh) = plant.read_room(SubspaceId::S1);
        let truth = plant.zone_state(SubspaceId::S1);
        assert!((t.get() - truth.temperature.get()).abs() < 0.5);
        assert!((rh.get() - truth.relative_humidity().get()).abs() < 3.0);
        let ceiling = plant.read_ceiling(0);
        assert_eq!(ceiling.len(), 6);
        let co2 = plant.read_co2(SubspaceId::S2);
        assert!((co2.get() - truth.co2.get()).abs() < 60.0);
    }

    #[test]
    fn pipe_sensors_follow_loop_state() {
        let mut plant = lab();
        let commands = ActuatorCommands {
            radiant: [RadiantLoopCommand {
                supply_voltage: Volts::new(4.0),
                recycle_voltage: Volts::new(2.0),
            }; 2],
            airboxes: Default::default(),
        };
        for _ in 0..300 {
            plant.step(second(), &commands);
        }
        let mix_reading = plant.read_mixed_temp(0);
        let truth = plant.loop_mixed_temp(0);
        assert!((mix_reading.get() - truth.get()).abs() < 0.7);
        // Recycle mixing keeps T_mix above the tank temperature.
        assert!(truth.get() > plant.radiant_tank_temperature().get());
        let flow = plant.loop_mixed_flow(0);
        assert!(flow > 0.0);
    }

    #[test]
    fn door_event_perturbs_subspace_one_most() {
        use crate::disturbance::{OpeningEvent, OpeningKind};
        let schedule = DisturbanceSchedule::new(vec![OpeningEvent {
            at: SimTime::from_secs(60),
            duration: SimDuration::from_secs(120),
            kind: OpeningKind::Door,
        }]);
        let config = PlantConfig::bubble_zero_lab().with_disturbances(schedule);
        let mut plant = ThermalPlant::new(config);
        // Pre-dry the room so the disturbance is visible.
        let commands = ActuatorCommands {
            radiant: Default::default(),
            airboxes: [AirboxActuation {
                coil_pump_voltage: Volts::new(5.0),
                fan: FanLevel::L4,
                flap_open: true,
            }; 4],
        };
        // The event fires at t=60 s. With the fans at full blast the net
        // dew point may keep falling even while the door is open, so the
        // localized effect shows as S1 diverging *above* S4 (which only
        // sees the event indirectly through inter-zone mixing).
        for _ in 0..59 {
            plant.step(second(), &commands);
        }
        let gap_before =
            plant.zone_dew_point(SubspaceId::S1).get() - plant.zone_dew_point(SubspaceId::S4).get();
        let mut gap_peak = f64::NEG_INFINITY;
        for _ in 0..140 {
            plant.step(second(), &commands);
            let gap = plant.zone_dew_point(SubspaceId::S1).get()
                - plant.zone_dew_point(SubspaceId::S4).get();
            gap_peak = gap_peak.max(gap);
        }
        assert!(
            gap_peak - gap_before > 0.1,
            "door should push S1's dew above S4's: gap went {gap_before:.3} -> {gap_peak:.3}"
        );
    }

    #[test]
    fn meters_accumulate_and_reset() {
        let mut plant = lab();
        let commands = ActuatorCommands {
            radiant: [RadiantLoopCommand {
                supply_voltage: Volts::new(5.0),
                recycle_voltage: Volts::new(0.0),
            }; 2],
            airboxes: Default::default(),
        };
        for _ in 0..600 {
            plant.step(second(), &commands);
        }
        assert!(plant.meters().radiant_removed.get() > 0.0);
        assert!(plant.meters().radiant_chiller.get() > 0.0);
        assert!((plant.meters().elapsed.get() - 600.0).abs() < 1e-9);
        plant.reset_meters();
        assert_eq!(plant.meters().radiant_removed.get(), 0.0);
        assert_eq!(plant.meters().elapsed.get(), 0.0);
    }

    #[test]
    fn plant_is_deterministic_for_same_seed() {
        let mut a = ThermalPlant::new(PlantConfig::bubble_zero_lab().with_seed(99));
        let mut b = ThermalPlant::new(PlantConfig::bubble_zero_lab().with_seed(99));
        let commands = ActuatorCommands {
            radiant: [RadiantLoopCommand {
                supply_voltage: Volts::new(3.0),
                recycle_voltage: Volts::new(1.0),
            }; 2],
            airboxes: [AirboxActuation {
                coil_pump_voltage: Volts::new(2.0),
                fan: FanLevel::L2,
                flap_open: true,
            }; 4],
        };
        for _ in 0..300 {
            a.step(second(), &commands);
            b.step(second(), &commands);
        }
        for id in SubspaceId::ALL {
            assert_eq!(a.zone_state(id), b.zone_state(id));
        }
        assert_eq!(a.read_room(SubspaceId::S1), b.read_room(SubspaceId::S1));
    }

    #[test]
    fn occupants_load_their_subspace() {
        use crate::occupancy::{OccupancyChange, OccupancySchedule};
        let occupancy = OccupancySchedule::new(vec![OccupancyChange {
            at: SimTime::ZERO,
            subspace: SubspaceId::S4,
            count: 3,
        }]);
        let config = PlantConfig::bubble_zero_lab().with_occupancy(occupancy);
        let mut plant = ThermalPlant::new(config);
        for _ in 0..1_200 {
            plant.step(second(), &ActuatorCommands::all_off());
        }
        let occupied = plant.zone_state(SubspaceId::S4);
        let empty = plant.zone_state(SubspaceId::S2);
        assert!(
            occupied.co2.get() > empty.co2.get() + 100.0,
            "occupied CO₂ {} vs empty {}",
            occupied.co2,
            empty.co2
        );
        assert!(occupied.temperature.get() > empty.temperature.get());
        assert!(occupied.humidity_ratio.get() > empty.humidity_ratio.get());
    }

    #[test]
    fn faulty_actuators_are_applied_at_the_plant_boundary() {
        use crate::faults::{ActuatorFault, FaultEvent, FaultSchedule};
        let faults = FaultSchedule::new(vec![FaultEvent {
            at: SimTime::ZERO,
            repaired_at: None,
            fault: ActuatorFault::FanStuck {
                airbox: 0,
                level: FanLevel::L4,
            },
        }]);
        let config = PlantConfig::bubble_zero_lab().with_faults(faults);
        let mut plant = ThermalPlant::new(config);
        // Commands say "everything off", but the stuck fan runs anyway.
        for _ in 0..60 {
            plant.step(second(), &ActuatorCommands::all_off());
        }
        assert!(
            plant.last_zone_inputs()[0].ventilation_m3s > 0.0,
            "the stuck fan must move air regardless of commands"
        );
        assert!(plant.telemetry().fan_power_w > 0.0);
        // The healthy airboxes obey the off command.
        assert_eq!(plant.last_zone_inputs()[1].ventilation_m3s, 0.0);
    }

    #[test]
    #[should_panic(expected = "must advance time")]
    fn zero_step_panics() {
        let mut plant = lab();
        plant.step(SimDuration::ZERO, &ActuatorCommands::all_off());
    }
}
