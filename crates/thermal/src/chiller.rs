//! Tank-coupled chillers with electrical power metering.
//!
//! Each chilled-water tank (18 °C radiant, 8 °C ventilation) is held at
//! its setpoint by a vapor-compression chiller modeled as a fixed fraction
//! of the Carnot limit (see [`bz_psychro::CarnotChiller`]). The electrical
//! power drawn is integrated so the Fig. 11 COP accounting can read it the
//! way the paper read its power meters.

use bz_psychro::{CarnotChiller, Celsius, DeltaCelsius, Joules, Kelvin, Seconds, Watts};

use crate::hydronics::Tank;

/// Configuration of a tank chiller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChillerConfig {
    /// Tank temperature setpoint.
    pub setpoint: Celsius,
    /// Maximum cooling (thermal) capacity, W.
    pub capacity_w: f64,
    /// Proportional gain of the thermostat, W per Kelvin of tank error.
    pub gain_w_per_k: f64,
    /// Evaporator runs this far below the tank setpoint.
    pub evaporator_approach: DeltaCelsius,
    /// Second-law efficiency of the compression cycle.
    pub carnot_fraction: f64,
    /// Condenser (heat-rejection) temperature — outdoor-coupled.
    pub condenser: Celsius,
}

impl ChillerConfig {
    /// The radiant-loop chiller: 18 °C setpoint, sized for the panel load.
    #[must_use]
    pub fn radiant_18c() -> Self {
        Self {
            setpoint: Celsius::new(18.0),
            capacity_w: 2_500.0,
            gain_w_per_k: 5_000.0,
            evaporator_approach: DeltaCelsius::new(2.0),
            carnot_fraction: 0.30,
            condenser: Celsius::new(35.0),
        }
    }

    /// The ventilation-loop chiller: 8 °C setpoint for the airbox coils.
    /// Sized for the pull-down transient (all four coils at full duty on
    /// tropical air), not just the ~213 W steady state.
    #[must_use]
    pub fn ventilation_8c() -> Self {
        Self {
            setpoint: Celsius::new(8.0),
            capacity_w: 5_500.0,
            gain_w_per_k: 5_000.0,
            evaporator_approach: DeltaCelsius::new(2.0),
            carnot_fraction: 0.30,
            condenser: Celsius::new(35.0),
        }
    }

    /// An all-air "AirCon" chiller: it must produce ~8 °C supply air, so
    /// its evaporator sits near 5 °C. Same machine quality (Carnot
    /// fraction) — only the operating temperatures differ, which is
    /// precisely the paper's low-exergy argument. The resulting COP lands
    /// at the ~2.8 the paper cites from the literature for conventional
    /// air conditioning.
    #[must_use]
    pub fn aircon_baseline() -> Self {
        Self {
            setpoint: Celsius::new(7.0),
            capacity_w: 3_500.0,
            gain_w_per_k: 5_000.0,
            evaporator_approach: DeltaCelsius::new(2.0),
            carnot_fraction: 0.30,
            condenser: Celsius::new(35.0),
        }
    }
}

/// A chiller bound to a tank, with integrated energy metering.
#[derive(Debug, Clone)]
pub struct TankChiller {
    config: ChillerConfig,
    machine: CarnotChiller,
    electrical_energy: Joules,
    thermal_energy: Joules,
    last_electrical_power: Watts,
    last_thermal_power: Watts,
}

impl TankChiller {
    /// Creates a chiller from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration's Carnot fraction is not in `(0, 1]`.
    #[must_use]
    pub fn new(config: ChillerConfig) -> Self {
        Self {
            machine: CarnotChiller::new(config.carnot_fraction, config.condenser.to_kelvin()),
            config,
            electrical_energy: Joules::new(0.0),
            thermal_energy: Joules::new(0.0),
            last_electrical_power: Watts::new(0.0),
            last_thermal_power: Watts::new(0.0),
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &ChillerConfig {
        &self.config
    }

    /// Evaporator temperature for the current setpoint.
    #[must_use]
    pub fn evaporator(&self) -> Kelvin {
        (self.config.setpoint - self.config.evaporator_approach).to_kelvin()
    }

    /// The machine COP at the current operating temperatures.
    #[must_use]
    pub fn cop(&self) -> f64 {
        self.machine.cop(self.evaporator())
    }

    /// Runs the thermostat for `dt_s` seconds against `tank`: extracts up
    /// to the proportional demand (capacity-limited) and meters the
    /// electrical energy. Returns the thermal power extracted this step.
    pub fn regulate(&mut self, tank: &mut Tank, dt_s: f64) -> Watts {
        debug_assert!(dt_s > 0.0);
        let error_k = tank.temperature().get() - self.config.setpoint.get();
        let demand = (self.config.gain_w_per_k * error_k).clamp(0.0, self.config.capacity_w);
        let thermal = Watts::new(demand);
        let electrical = self.machine.electrical_power(thermal, self.evaporator());

        tank.apply_heat(-thermal.get(), dt_s);
        self.electrical_energy += electrical * Seconds::new(dt_s);
        self.thermal_energy += thermal * Seconds::new(dt_s);
        self.last_electrical_power = electrical;
        self.last_thermal_power = thermal;
        thermal
    }

    /// Electrical energy consumed since start (the paper's power-meter
    /// reading integrated over the trial).
    #[must_use]
    pub fn electrical_energy(&self) -> Joules {
        self.electrical_energy
    }

    /// Thermal (cooling) energy delivered since start.
    #[must_use]
    pub fn thermal_energy(&self) -> Joules {
        self.thermal_energy
    }

    /// Electrical power drawn during the most recent step.
    #[must_use]
    pub fn electrical_power(&self) -> Watts {
        self.last_electrical_power
    }

    /// Thermal power extracted during the most recent step.
    #[must_use]
    pub fn thermal_power(&self) -> Watts {
        self.last_thermal_power
    }

    /// Resets the energy meters (e.g. to measure only the steady-state
    /// segment of a trial, as Fig. 11 does).
    pub fn reset_meters(&mut self) {
        self.electrical_energy = Joules::new(0.0);
        self.thermal_energy = Joules::new(0.0);
    }

    /// Serializes the dynamic state (meters and last-step powers). The
    /// configuration and the Carnot machine are rebuilt from config on
    /// restore, not persisted.
    pub fn save_state(&self, w: &mut bz_state::Writer) {
        use bz_state::Persist;
        self.electrical_energy.save(w);
        self.thermal_energy.save(w);
        self.last_electrical_power.save(w);
        self.last_thermal_power.save(w);
    }

    /// Restores the dynamic state saved by [`Self::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a decode error if the bytes do not parse.
    pub fn load_state(&mut self, r: &mut bz_state::Reader<'_>) -> Result<(), bz_state::StateError> {
        use bz_state::Persist;
        self.electrical_energy = Persist::load(r)?;
        self.thermal_energy = Persist::load(r)?;
        self.last_electrical_power = Persist::load(r)?;
        self.last_thermal_power = Persist::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radiant_chiller_cop_matches_paper() {
        let chiller = TankChiller::new(ChillerConfig::radiant_18c());
        // 16 °C evaporator, 35 °C condenser, 30% of Carnot → ≈ 4.56.
        assert!((chiller.cop() - 4.52).abs() < 0.15, "got {}", chiller.cop());
    }

    #[test]
    fn ventilation_chiller_cop_matches_paper() {
        let chiller = TankChiller::new(ChillerConfig::ventilation_8c());
        // 6 °C evaporator → ≈ 2.89 (paper's Bubble-V: 2.82).
        assert!((chiller.cop() - 2.82).abs() < 0.15, "got {}", chiller.cop());
    }

    #[test]
    fn aircon_chiller_cop_is_conventional() {
        let chiller = TankChiller::new(ChillerConfig::aircon_baseline());
        // 5 °C evaporator → ≈ 2.78 (literature: ~2.8).
        assert!((chiller.cop() - 2.8).abs() < 0.15, "got {}", chiller.cop());
    }

    #[test]
    fn low_exergy_ordering_holds() {
        // The crux of the paper: warmer evaporators → higher COP.
        let radiant = TankChiller::new(ChillerConfig::radiant_18c()).cop();
        let vent = TankChiller::new(ChillerConfig::ventilation_8c()).cop();
        let aircon = TankChiller::new(ChillerConfig::aircon_baseline()).cop();
        assert!(radiant > vent);
        assert!(vent > aircon);
    }

    #[test]
    fn regulation_holds_setpoint_under_load() {
        let mut tank = Tank::new(0.2, Celsius::new(18.0));
        let mut chiller = TankChiller::new(ChillerConfig::radiant_18c());
        // 1 kW of return-water load for an hour.
        for _ in 0..3_600 {
            tank.apply_heat(1_000.0, 1.0);
            chiller.regulate(&mut tank, 1.0);
        }
        let t = tank.temperature().get();
        assert!((t - 18.0).abs() < 0.5, "tank drifted to {t}");
        // Electrical energy ≈ thermal / COP.
        let ratio = chiller.thermal_energy().get() / chiller.electrical_energy().get();
        assert!((ratio - chiller.cop()).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn idle_chiller_draws_nothing_when_tank_cold() {
        let mut tank = Tank::new(0.2, Celsius::new(17.5));
        let mut chiller = TankChiller::new(ChillerConfig::radiant_18c());
        chiller.regulate(&mut tank, 1.0);
        assert_eq!(chiller.electrical_power().get(), 0.0);
        assert_eq!(chiller.thermal_power().get(), 0.0);
    }

    #[test]
    fn capacity_limit_binds() {
        let mut tank = Tank::new(0.2, Celsius::new(30.0));
        let mut chiller = TankChiller::new(ChillerConfig::radiant_18c());
        let thermal = chiller.regulate(&mut tank, 1.0);
        assert!((thermal.get() - 2_500.0).abs() < 1e-9);
    }

    #[test]
    fn meters_reset() {
        let mut tank = Tank::new(0.2, Celsius::new(25.0));
        let mut chiller = TankChiller::new(ChillerConfig::radiant_18c());
        chiller.regulate(&mut tank, 10.0);
        assert!(chiller.electrical_energy().get() > 0.0);
        chiller.reset_meters();
        assert_eq!(chiller.electrical_energy().get(), 0.0);
        assert_eq!(chiller.thermal_energy().get(), 0.0);
    }

    #[test]
    fn steady_powers_land_near_paper_figures() {
        // Paper: radiant chiller consumed 213.4 W while removing 964.8 W.
        let mut tank = Tank::new(0.2, Celsius::new(18.0));
        let mut chiller = TankChiller::new(ChillerConfig::radiant_18c());
        for _ in 0..7_200 {
            tank.apply_heat(964.8, 1.0);
            chiller.regulate(&mut tank, 1.0);
        }
        let electrical = chiller.electrical_power().get();
        assert!((electrical - 213.4).abs() < 15.0, "got {electrical} W");
    }
}
