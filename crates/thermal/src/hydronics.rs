//! Hydronic components: chilled-water tanks, DC pumps, and the
//! supply/recycle mixing loop of Figure 3.
//!
//! The radiant cooling module's central mechanism is a recycle pipe that
//! bridges the supply and return pipes: by adjusting the speeds of the
//! supply pump and the recycle pump, the controller blends 18 °C tank
//! water with warm return water and thereby holds the panel inlet
//! temperature `T_mix` above the ceiling dew point while still modulating
//! the flow rate `F_mix` for cooling capacity.

use bz_psychro::{water_volumetric_heat_capacity, Celsius, Volts};

/// A DC circulation pump driven by a 0–5 V control signal.
///
/// The paper's pumps take "a voltage signal ranging from 0 V to 5 V as the
/// input to control its speed"; flow is affine in voltage above a small
/// dead band, saturating at the rated flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pump {
    /// Rated (maximum) flow at 5 V, m³/s.
    max_flow_m3s: f64,
    /// Voltage below which the pump does not turn, V.
    dead_band: f64,
}

impl Pump {
    /// Maximum control voltage accepted by the pump driver DAC.
    pub const MAX_VOLTAGE: Volts = Volts::new(5.0);

    /// Creates a pump with the given rated flow (at 5 V).
    ///
    /// # Panics
    ///
    /// Panics if `max_flow_m3s` is not positive.
    #[must_use]
    pub fn new(max_flow_m3s: f64) -> Self {
        assert!(max_flow_m3s > 0.0, "rated flow must be positive");
        Self {
            max_flow_m3s,
            dead_band: 0.25,
        }
    }

    /// The radiant-loop pump used in the laboratory: ~7.2 L/min rated.
    #[must_use]
    pub fn radiant_loop() -> Self {
        Self::new(1.2e-4)
    }

    /// The airbox coil pump: ~3 L/min rated.
    #[must_use]
    pub fn airbox_coil() -> Self {
        Self::new(5.0e-5)
    }

    /// Rated flow at full voltage, m³/s.
    #[must_use]
    pub fn max_flow(&self) -> f64 {
        self.max_flow_m3s
    }

    /// Flow delivered for a control voltage, m³/s. Voltages are clamped
    /// into `[0, 5]`; below the dead band the pump is stopped.
    #[must_use]
    pub fn flow(&self, voltage: Volts) -> f64 {
        let v = voltage.get().clamp(0.0, Self::MAX_VOLTAGE.get());
        if v < self.dead_band {
            0.0
        } else {
            self.max_flow_m3s * (v - self.dead_band) / (Self::MAX_VOLTAGE.get() - self.dead_band)
        }
    }

    /// Voltage needed to deliver `flow_m3s` (inverse of [`Pump::flow`]),
    /// clamped to the achievable range.
    #[must_use]
    pub fn voltage_for(&self, flow_m3s: f64) -> Volts {
        if flow_m3s <= 0.0 {
            return Volts::new(0.0);
        }
        let span = Self::MAX_VOLTAGE.get() - self.dead_band;
        let v = self.dead_band + span * (flow_m3s / self.max_flow_m3s).min(1.0);
        Volts::new(v)
    }

    /// Hydraulic/electrical power drawn by the pump at `voltage`, W.
    /// Small DC pumps: a couple of Watts at full speed, cubic in speed.
    #[must_use]
    pub fn electrical_power(&self, voltage: Volts) -> f64 {
        let frac = self.flow(voltage) / self.max_flow_m3s;
        3.0 * frac.powi(3)
    }
}

/// A chilled-water storage tank: a well-mixed thermal node between the
/// chiller and the distribution loops.
#[derive(Debug, Clone, PartialEq)]
pub struct Tank {
    /// Water volume, m³.
    volume_m3: f64,
    /// Current water temperature.
    temperature: Celsius,
}

impl Tank {
    /// Creates a tank of `volume_m3` cubic meters starting at `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `volume_m3` is not positive.
    #[must_use]
    pub fn new(volume_m3: f64, initial: Celsius) -> Self {
        assert!(volume_m3 > 0.0, "tank volume must be positive");
        Self {
            volume_m3,
            temperature: initial,
        }
    }

    /// Current water temperature.
    #[must_use]
    pub fn temperature(&self) -> Celsius {
        self.temperature
    }

    /// Tank volume, m³.
    #[must_use]
    pub fn volume(&self) -> f64 {
        self.volume_m3
    }

    /// Heat capacity of the tank contents, J/K.
    #[must_use]
    pub fn heat_capacity(&self) -> f64 {
        self.volume_m3 * water_volumetric_heat_capacity(self.temperature)
    }

    /// Applies a net heat flow `q_w` (positive warms the tank) over
    /// `dt_s` seconds — return water from the loops warms it, the chiller
    /// cools it, standby losses warm it toward the room.
    pub fn apply_heat(&mut self, q_w: f64, dt_s: f64) {
        debug_assert!(dt_s > 0.0);
        let dt_temp = q_w * dt_s / self.heat_capacity();
        self.temperature = Celsius::new(self.temperature.get() + dt_temp);
    }

    /// Mixes `flow_m3s` of returning water at `return_temp` into the tank
    /// for `dt_s` seconds (an equal flow of tank water leaves toward the
    /// loop, so the volume is constant).
    pub fn mix_return(&mut self, flow_m3s: f64, return_temp: Celsius, dt_s: f64) {
        debug_assert!(flow_m3s >= 0.0);
        let c = water_volumetric_heat_capacity(self.temperature);
        let q = flow_m3s * c * (return_temp.get() - self.temperature.get());
        self.apply_heat(q, dt_s);
    }
}

/// The supply/recycle mixing junction of Figure 3, solved per step.
///
/// Mass balance: the panel loop carries `F_mix = F_supp + F_rcyc`; the
/// tank sees only `F_supp` leave and return. Energy balance at the
/// junction gives the mixed temperature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixResult {
    /// Flow through the panel, m³/s.
    pub mixed_flow_m3s: f64,
    /// Temperature entering the panel.
    pub mixed_temp: Celsius,
    /// Flow drawn from (and returned to) the tank, m³/s.
    pub tank_flow_m3s: f64,
}

/// Computes the mixing junction state from the two pump flows, the tank
/// supply temperature, and the loop return temperature.
///
/// Returns `None` when both pumps are stopped (no defined mixed
/// temperature).
#[must_use]
pub fn mix_supply_and_recycle(
    supply_flow_m3s: f64,
    recycle_flow_m3s: f64,
    tank_temp: Celsius,
    return_temp: Celsius,
) -> Option<MixResult> {
    debug_assert!(supply_flow_m3s >= 0.0 && recycle_flow_m3s >= 0.0);
    let mixed = supply_flow_m3s + recycle_flow_m3s;
    if mixed <= 0.0 {
        return None;
    }
    let t = (supply_flow_m3s * tank_temp.get() + recycle_flow_m3s * return_temp.get()) / mixed;
    Some(MixResult {
        mixed_flow_m3s: mixed,
        mixed_temp: Celsius::new(t),
        tank_flow_m3s: supply_flow_m3s,
    })
}

// --- Checkpoint support --------------------------------------------------
//
// Pumps are pure functions of their configuration and carry no state.

bz_state::persist_struct!(Tank {
    volume_m3,
    temperature,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pump_dead_band_and_saturation() {
        let p = Pump::radiant_loop();
        assert_eq!(p.flow(Volts::new(0.0)), 0.0);
        assert_eq!(p.flow(Volts::new(0.2)), 0.0);
        assert!((p.flow(Volts::new(5.0)) - p.max_flow()).abs() < 1e-12);
        // Over-voltage clamps rather than over-delivering.
        assert!((p.flow(Volts::new(7.0)) - p.max_flow()).abs() < 1e-12);
        assert_eq!(p.flow(Volts::new(-1.0)), 0.0);
    }

    #[test]
    fn pump_flow_is_monotone_in_voltage() {
        let p = Pump::radiant_loop();
        let mut last = -1.0;
        for i in 0..=50 {
            let f = p.flow(Volts::new(f64::from(i) * 0.1));
            assert!(f >= last);
            last = f;
        }
    }

    #[test]
    fn pump_voltage_for_inverts_flow() {
        let p = Pump::airbox_coil();
        for frac in [0.1, 0.3, 0.7, 1.0] {
            let target = p.max_flow() * frac;
            let v = p.voltage_for(target);
            assert!((p.flow(v) - target).abs() < 1e-9, "frac {frac}");
        }
        assert_eq!(p.voltage_for(0.0), Volts::new(0.0));
        // Unachievable flows saturate at 5 V.
        assert_eq!(p.voltage_for(1.0), Pump::MAX_VOLTAGE);
    }

    #[test]
    fn pump_power_grows_with_speed() {
        let p = Pump::radiant_loop();
        assert_eq!(p.electrical_power(Volts::new(0.0)), 0.0);
        assert!(p.electrical_power(Volts::new(5.0)) > p.electrical_power(Volts::new(2.5)));
        assert!((p.electrical_power(Volts::new(5.0)) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn tank_mix_return_moves_toward_return_temp() {
        let mut tank = Tank::new(0.2, Celsius::new(18.0));
        tank.mix_return(1.0e-4, Celsius::new(21.0), 60.0);
        assert!(tank.temperature().get() > 18.0);
        assert!(tank.temperature().get() < 21.0);
    }

    #[test]
    fn tank_apply_heat_signs() {
        let mut tank = Tank::new(0.1, Celsius::new(18.0));
        tank.apply_heat(-1_000.0, 60.0);
        assert!(tank.temperature().get() < 18.0);
        tank.apply_heat(2_000.0, 60.0);
        assert!(tank.temperature().get() > 17.9);
    }

    #[test]
    fn tank_heat_capacity_magnitude() {
        let tank = Tank::new(0.2, Celsius::new(18.0));
        // 200 L of water ≈ 836 kJ/K.
        assert!((tank.heat_capacity() - 8.36e5).abs() < 0.1e5);
    }

    #[test]
    #[should_panic(expected = "volume must be positive")]
    fn tank_rejects_zero_volume() {
        let _ = Tank::new(0.0, Celsius::new(18.0));
    }

    #[test]
    fn mixing_pure_supply() {
        let r =
            mix_supply_and_recycle(1.0e-4, 0.0, Celsius::new(18.0), Celsius::new(21.0)).unwrap();
        assert!((r.mixed_temp.get() - 18.0).abs() < 1e-12);
        assert!((r.mixed_flow_m3s - 1.0e-4).abs() < 1e-18);
        assert!((r.tank_flow_m3s - 1.0e-4).abs() < 1e-18);
    }

    #[test]
    fn mixing_fifty_fifty() {
        let r =
            mix_supply_and_recycle(5.0e-5, 5.0e-5, Celsius::new(18.0), Celsius::new(22.0)).unwrap();
        assert!((r.mixed_temp.get() - 20.0).abs() < 1e-12);
        assert!((r.mixed_flow_m3s - 1.0e-4).abs() < 1e-18);
        assert!((r.tank_flow_m3s - 5.0e-5).abs() < 1e-18);
    }

    #[test]
    fn mixing_stopped_pumps_is_none() {
        assert!(mix_supply_and_recycle(0.0, 0.0, Celsius::new(18.0), Celsius::new(22.0)).is_none());
    }

    #[test]
    fn mixed_temp_is_always_between_sources() {
        for supply in [0.1e-4, 0.5e-4, 1.0e-4] {
            for recycle in [0.0, 0.3e-4, 1.0e-4] {
                let r =
                    mix_supply_and_recycle(supply, recycle, Celsius::new(18.0), Celsius::new(23.0))
                        .unwrap();
                assert!(r.mixed_temp.get() >= 18.0 - 1e-12);
                assert!(r.mixed_temp.get() <= 23.0 + 1e-12);
            }
        }
    }
}
