//! Actuator fault injection.
//!
//! A deployment-experience system earns its keep when hardware misbehaves:
//! pumps seize, fan drivers latch up. This module injects such faults at
//! the *plant* boundary — the physical actuator ignores its command — so
//! the controllers' resilience can be measured: a decomposed system
//! should degrade one subspace or one function, not the whole room.

use bz_simcore::SimTime;

use crate::airbox::FanLevel;
use crate::plant::ActuatorCommands;

/// A physical actuator malfunction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ActuatorFault {
    /// An airbox fan driver latches at a level, ignoring commands.
    FanStuck {
        /// Which airbox (0–3).
        airbox: usize,
        /// The level it is stuck at.
        level: FanLevel,
    },
    /// An airbox coil pump seizes (no water flow regardless of voltage).
    CoilPumpDead {
        /// Which airbox (0–3).
        airbox: usize,
    },
    /// A radiant supply pump seizes.
    SupplyPumpDead {
        /// Which panel loop (0–1).
        panel: usize,
    },
    /// A radiant recycle pump seizes — the anti-condensation blend is
    /// lost; the controller must cope with pure tank water.
    RecyclePumpDead {
        /// Which panel loop (0–1).
        panel: usize,
    },
    /// A CO₂flap motor jams closed.
    FlapJammedClosed {
        /// Which subspace (0–3).
        airbox: usize,
    },
}

impl ActuatorFault {
    /// Stable kebab-free name for metric keys (`fault.<kind>.active`).
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            Self::FanStuck { .. } => "fan_stuck",
            Self::CoilPumpDead { .. } => "coil_pump_dead",
            Self::SupplyPumpDead { .. } => "supply_pump_dead",
            Self::RecyclePumpDead { .. } => "recycle_pump_dead",
            Self::FlapJammedClosed { .. } => "flap_jammed_closed",
        }
    }

    /// A total, content-based ordering used to break ties between faults
    /// scheduled at the same instant. This makes [`FaultSchedule::apply`]
    /// independent of the order events were pushed into the schedule.
    fn sort_key(&self) -> (u8, usize, u8) {
        match *self {
            Self::FanStuck { airbox, level } => (0, airbox, level as u8),
            Self::CoilPumpDead { airbox } => (1, airbox, 0),
            Self::SupplyPumpDead { panel } => (2, panel, 0),
            Self::RecyclePumpDead { panel } => (3, panel, 0),
            Self::FlapJammedClosed { airbox } => (4, airbox, 0),
        }
    }
}

/// One scheduled fault: permanent from `at` onward (with an optional
/// repair time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault appears.
    pub at: SimTime,
    /// When it is repaired (`None` = never).
    pub repaired_at: Option<SimTime>,
    /// What breaks.
    pub fault: ActuatorFault,
}

impl FaultEvent {
    /// True if the fault is active at `now`.
    #[must_use]
    pub fn is_active(&self, now: SimTime) -> bool {
        now >= self.at && self.repaired_at.is_none_or(|r| now < r)
    }
}

/// A deterministic fault schedule.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Builds a schedule from events.
    #[must_use]
    pub fn new(events: Vec<FaultEvent>) -> Self {
        Self { events }
    }

    /// No faults.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// The scheduled events.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True if any fault is active at `now`.
    #[must_use]
    pub fn any_active(&self, now: SimTime) -> bool {
        self.events.iter().any(|e| e.is_active(now))
    }

    /// Applies the active faults to a command set, returning what the
    /// hardware actually does.
    ///
    /// When windows overlap on the same actuator, the fault scheduled
    /// last (greatest `at`) wins; ties at the same instant resolve by a
    /// content-based ordering, so the result never depends on the order
    /// events were pushed into the schedule.
    #[must_use]
    pub fn apply(&self, commands: &ActuatorCommands, now: SimTime) -> ActuatorCommands {
        let mut effective = *commands;
        let mut active: Vec<&FaultEvent> =
            self.events.iter().filter(|e| e.is_active(now)).collect();
        active.sort_by_key(|e| (e.at, e.fault.sort_key()));
        for event in active {
            match event.fault {
                ActuatorFault::FanStuck { airbox, level } => {
                    effective.airboxes[airbox].fan = level;
                }
                ActuatorFault::CoilPumpDead { airbox } => {
                    effective.airboxes[airbox].coil_pump_voltage = bz_psychro::Volts::new(0.0);
                }
                ActuatorFault::SupplyPumpDead { panel } => {
                    effective.radiant[panel].supply_voltage = bz_psychro::Volts::new(0.0);
                }
                ActuatorFault::RecyclePumpDead { panel } => {
                    effective.radiant[panel].recycle_voltage = bz_psychro::Volts::new(0.0);
                }
                ActuatorFault::FlapJammedClosed { airbox } => {
                    effective.airboxes[airbox].flap_open = false;
                }
            }
        }
        effective
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plant::{AirboxActuation, RadiantLoopCommand};
    use bz_psychro::Volts;

    fn live_commands() -> ActuatorCommands {
        ActuatorCommands {
            radiant: [RadiantLoopCommand {
                supply_voltage: Volts::new(3.0),
                recycle_voltage: Volts::new(2.0),
            }; 2],
            airboxes: [AirboxActuation {
                coil_pump_voltage: Volts::new(4.0),
                fan: FanLevel::L3,
                flap_open: true,
            }; 4],
        }
    }

    #[test]
    fn no_faults_passes_commands_through() {
        let schedule = FaultSchedule::none();
        let commands = live_commands();
        assert_eq!(schedule.apply(&commands, SimTime::from_secs(100)), commands);
        assert!(!schedule.any_active(SimTime::ZERO));
    }

    #[test]
    fn faults_activate_and_repair_on_schedule() {
        let schedule = FaultSchedule::new(vec![FaultEvent {
            at: SimTime::from_mins(10),
            repaired_at: Some(SimTime::from_mins(20)),
            fault: ActuatorFault::CoilPumpDead { airbox: 1 },
        }]);
        let commands = live_commands();
        let before = schedule.apply(&commands, SimTime::from_mins(5));
        assert_eq!(before.airboxes[1].coil_pump_voltage.get(), 4.0);
        let during = schedule.apply(&commands, SimTime::from_mins(15));
        assert_eq!(during.airboxes[1].coil_pump_voltage.get(), 0.0);
        // The other airboxes are untouched.
        assert_eq!(during.airboxes[0].coil_pump_voltage.get(), 4.0);
        let after = schedule.apply(&commands, SimTime::from_mins(25));
        assert_eq!(after.airboxes[1].coil_pump_voltage.get(), 4.0);
    }

    #[test]
    fn each_fault_kind_hits_its_actuator() {
        let now = SimTime::from_mins(1);
        let commands = live_commands();
        let cases = vec![
            (
                ActuatorFault::FanStuck {
                    airbox: 2,
                    level: FanLevel::Off,
                },
                Box::new(|c: &ActuatorCommands| c.airboxes[2].fan == FanLevel::Off)
                    as Box<dyn Fn(&ActuatorCommands) -> bool>,
            ),
            (
                ActuatorFault::SupplyPumpDead { panel: 1 },
                Box::new(|c| c.radiant[1].supply_voltage.get() == 0.0),
            ),
            (
                ActuatorFault::RecyclePumpDead { panel: 0 },
                Box::new(|c| c.radiant[0].recycle_voltage.get() == 0.0),
            ),
            (
                ActuatorFault::FlapJammedClosed { airbox: 3 },
                Box::new(|c| !c.airboxes[3].flap_open),
            ),
        ];
        for (fault, check) in cases {
            let schedule = FaultSchedule::new(vec![FaultEvent {
                at: SimTime::ZERO,
                repaired_at: None,
                fault,
            }]);
            let effective = schedule.apply(&commands, now);
            assert!(check(&effective), "{fault:?} not applied");
        }
    }

    #[test]
    fn overlapping_windows_last_scheduled_wins_regardless_of_vec_order() {
        let early = FaultEvent {
            at: SimTime::from_mins(5),
            repaired_at: None,
            fault: ActuatorFault::FanStuck {
                airbox: 0,
                level: FanLevel::L1,
            },
        };
        let late = FaultEvent {
            at: SimTime::from_mins(10),
            repaired_at: None,
            fault: ActuatorFault::FanStuck {
                airbox: 0,
                level: FanLevel::L4,
            },
        };
        let commands = live_commands();
        let now = SimTime::from_mins(15);
        for events in [vec![early, late], vec![late, early]] {
            let schedule = FaultSchedule::new(events);
            assert_eq!(schedule.apply(&commands, now).airboxes[0].fan, FanLevel::L4);
        }
        // Before the later fault appears, the earlier one governs.
        let schedule = FaultSchedule::new(vec![late, early]);
        let mid = schedule.apply(&commands, SimTime::from_mins(7));
        assert_eq!(mid.airboxes[0].fan, FanLevel::L1);
    }

    #[test]
    fn same_instant_conflicts_resolve_by_content_not_push_order() {
        let a = FaultEvent {
            at: SimTime::from_mins(1),
            repaired_at: None,
            fault: ActuatorFault::FanStuck {
                airbox: 2,
                level: FanLevel::L2,
            },
        };
        let b = FaultEvent {
            at: SimTime::from_mins(1),
            repaired_at: None,
            fault: ActuatorFault::FanStuck {
                airbox: 2,
                level: FanLevel::L4,
            },
        };
        let commands = live_commands();
        let now = SimTime::from_mins(2);
        let forward = FaultSchedule::new(vec![a, b]).apply(&commands, now);
        let reverse = FaultSchedule::new(vec![b, a]).apply(&commands, now);
        assert_eq!(forward.airboxes[2].fan, reverse.airboxes[2].fan);
    }

    #[test]
    fn zero_length_repair_window_is_never_active() {
        let at = SimTime::from_mins(10);
        let event = FaultEvent {
            at,
            repaired_at: Some(at),
            fault: ActuatorFault::SupplyPumpDead { panel: 0 },
        };
        assert!(!event.is_active(at));
        let schedule = FaultSchedule::new(vec![event]);
        let commands = live_commands();
        assert_eq!(schedule.apply(&commands, at), commands);
        assert!(!schedule.any_active(at));
    }

    #[test]
    fn back_to_back_faults_hand_over_exactly_at_the_boundary() {
        let boundary = SimTime::from_mins(10);
        let first = FaultEvent {
            at: SimTime::from_mins(5),
            repaired_at: Some(boundary),
            fault: ActuatorFault::FanStuck {
                airbox: 1,
                level: FanLevel::L1,
            },
        };
        let second = FaultEvent {
            at: boundary,
            repaired_at: Some(SimTime::from_mins(15)),
            fault: ActuatorFault::FanStuck {
                airbox: 1,
                level: FanLevel::L3,
            },
        };
        let schedule = FaultSchedule::new(vec![first, second]);
        let commands = live_commands();
        let just_before = SimTime::from_millis(boundary.as_millis() - 1);
        assert_eq!(
            schedule.apply(&commands, just_before).airboxes[1].fan,
            FanLevel::L1
        );
        // At the boundary instant, only the second fault is active.
        assert_eq!(
            schedule.apply(&commands, boundary).airboxes[1].fan,
            FanLevel::L3
        );
        assert_eq!(
            schedule.apply(&commands, SimTime::from_mins(15)).airboxes[1].fan,
            commands.airboxes[1].fan
        );
    }

    #[test]
    fn multiple_faults_compose() {
        let schedule = FaultSchedule::new(vec![
            FaultEvent {
                at: SimTime::ZERO,
                repaired_at: None,
                fault: ActuatorFault::CoilPumpDead { airbox: 0 },
            },
            FaultEvent {
                at: SimTime::ZERO,
                repaired_at: None,
                fault: ActuatorFault::FanStuck {
                    airbox: 0,
                    level: FanLevel::L4,
                },
            },
        ]);
        let effective = schedule.apply(&live_commands(), SimTime::from_secs(1));
        assert_eq!(effective.airboxes[0].coil_pump_voltage.get(), 0.0);
        assert_eq!(effective.airboxes[0].fan, FanLevel::L4);
    }
}
