//! Sensor models: what the controllers actually see.
//!
//! BubbleZERO deploys 38 sensors of different types (§III-A). The control
//! loops never observe the plant's true state — they observe ADT7410
//! temperature readings (±0.5 °C accuracy, 0.0625 °C quantization), SHT75
//! humidity readings, NDIR CO₂ readings, and VISION-2000 flow pulses. Each
//! sensor instance draws a fixed calibration bias at construction and adds
//! per-reading noise, then quantizes to the part's resolution.

use bz_psychro::{Celsius, Percent, Ppm};
use bz_simcore::{fast_floor, fast_round, Rng, SimTime};

/// Quantizes `value` to steps of `step`.
fn quantize(value: f64, step: f64) -> f64 {
    fast_round(value / step) * step
}

/// An ADT7410 digital temperature sensor (embedded in water pipes and on
/// ceiling panels), operated in its 16-bit mode.
#[derive(Debug, Clone)]
pub struct TemperatureSensor {
    bias: f64,
    noise_sd: f64,
    rng: Rng,
}

impl TemperatureSensor {
    /// Part resolution in 16-bit mode, °C.
    pub const RESOLUTION: f64 = 0.007_812_5;
    /// Datasheet accuracy bound, °C.
    pub const ACCURACY: f64 = 0.5;

    /// Creates a sensor, drawing its calibration bias from `rng`.
    #[must_use]
    pub fn new(rng: &mut Rng) -> Self {
        let mut own = rng.fork();
        let bias = own.normal(0.0, 0.15).clamp(-Self::ACCURACY, Self::ACCURACY);
        Self {
            bias,
            // Electronic noise is ~±1 LSB; the large datasheet accuracy
            // bound is a calibration *bias*, not per-reading scatter.
            noise_sd: 0.008,
            rng: own,
        }
    }

    /// Takes a reading of the true temperature.
    pub fn read(&mut self, truth: Celsius) -> Celsius {
        let raw = truth.get() + self.bias + self.rng.normal(0.0, self.noise_sd);
        Celsius::new(quantize(raw, Self::RESOLUTION))
    }

    /// The fixed calibration bias of this instance, °C.
    #[must_use]
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

/// An SHT75 combined temperature/relative-humidity sensor (airbox outlets
/// and room air).
#[derive(Debug, Clone)]
pub struct HumiditySensor {
    rh_bias: f64,
    temp_bias: f64,
    rng: Rng,
}

impl HumiditySensor {
    /// RH resolution, %.
    pub const RH_RESOLUTION: f64 = 0.03;
    /// Datasheet RH accuracy bound, %.
    pub const RH_ACCURACY: f64 = 1.8;
    /// Temperature resolution, °C.
    pub const TEMP_RESOLUTION: f64 = 0.01;

    /// Creates a sensor, drawing calibration biases from `rng`.
    #[must_use]
    pub fn new(rng: &mut Rng) -> Self {
        let mut own = rng.fork();
        let rh_bias = own
            .normal(0.0, 0.6)
            .clamp(-Self::RH_ACCURACY, Self::RH_ACCURACY);
        let temp_bias = own.normal(0.0, 0.1).clamp(-0.3, 0.3);
        Self {
            rh_bias,
            temp_bias,
            rng: own,
        }
    }

    /// Takes a relative-humidity reading, clamped to the physical range.
    pub fn read_rh(&mut self, truth: Percent) -> Percent {
        let raw = truth.get() + self.rh_bias + self.rng.normal(0.0, 0.25);
        Percent::new(quantize(raw, Self::RH_RESOLUTION).clamp(0.0, 100.0))
    }

    /// Takes a temperature reading.
    pub fn read_temp(&mut self, truth: Celsius) -> Celsius {
        let raw = truth.get() + self.temp_bias + self.rng.normal(0.0, 0.008);
        Celsius::new(quantize(raw, Self::TEMP_RESOLUTION))
    }

    /// Reads both channels in one fused poll — bit-identical to
    /// [`read_temp`](Self::read_temp) followed by
    /// [`read_rh`](Self::read_rh), but the sibling noise draws go through
    /// the sampler together (one `normal_pair` call instead of two
    /// independent dispatches), which is how the dual-channel SHT75 is
    /// actually polled.
    pub fn read_pair(&mut self, t_truth: Celsius, rh_truth: Percent) -> (Celsius, Percent) {
        let (t_noise, rh_noise) = self.rng.normal_pair((0.0, 0.008), (0.0, 0.25));
        let t_raw = t_truth.get() + self.temp_bias + t_noise;
        let rh_raw = rh_truth.get() + self.rh_bias + rh_noise;
        (
            Celsius::new(quantize(t_raw, Self::TEMP_RESOLUTION)),
            Percent::new(quantize(rh_raw, Self::RH_RESOLUTION).clamp(0.0, 100.0)),
        )
    }

    /// Advances the sensor's noise stream exactly as one discarded
    /// [`read_rh`](Self::read_rh) would, without computing the reading.
    ///
    /// The SHT75 samples both channels on every poll, but a caller often
    /// uses only one; skipping the sibling keeps every later reading
    /// bit-identical to a full poll while avoiding the wasted math.
    pub fn skip_rh(&mut self) {
        self.rng.skip_normals(1);
    }

    /// Advances the sensor's noise stream exactly as one discarded
    /// [`read_temp`](Self::read_temp) would (see [`skip_rh`](Self::skip_rh)).
    pub fn skip_temp(&mut self) {
        self.rng.skip_normals(1);
    }
}

/// An NDIR CO₂ concentration sensor (integrated with the CO₂flaps).
#[derive(Debug, Clone)]
pub struct Co2Sensor {
    bias: f64,
    rng: Rng,
}

impl Co2Sensor {
    /// Reading resolution, ppm.
    pub const RESOLUTION: f64 = 1.0;

    /// Creates a sensor, drawing its calibration bias from `rng`.
    #[must_use]
    pub fn new(rng: &mut Rng) -> Self {
        let mut own = rng.fork();
        let bias = own.normal(0.0, 12.0).clamp(-30.0, 30.0);
        Self { bias, rng: own }
    }

    /// Takes a CO₂ reading (floored at zero).
    pub fn read(&mut self, truth: Ppm) -> Ppm {
        let raw = truth.get() + self.bias + self.rng.normal(0.0, 4.0);
        Ppm::new(quantize(raw, Self::RESOLUTION).max(0.0))
    }
}

/// A VISION-2000 turbine flow sensor: "outputs a series of pulses and the
/// pulse frequency is proportional to its measured flow rate" (§III-B).
/// Reading a flow means counting pulses over a gate time, which quantizes
/// the measurement to whole pulses.
#[derive(Debug, Clone)]
pub struct FlowSensor {
    /// Pulses per liter of the turbine.
    pulses_per_liter: f64,
    /// Pulse-counting gate time, s.
    gate_s: f64,
    /// Multiplicative calibration error (≈1.0).
    gain: f64,
    rng: Rng,
}

impl FlowSensor {
    /// Creates a sensor with the VISION-2000's nominal 2.2 pulses/L and a
    /// one-second gate, drawing its gain error from `rng`.
    #[must_use]
    pub fn new(rng: &mut Rng) -> Self {
        let mut own = rng.fork();
        let gain = 1.0 + own.normal(0.0, 0.01).clamp(-0.03, 0.03);
        Self {
            pulses_per_liter: 2.2,
            gate_s: 1.0,
            gain,
            rng: own,
        }
    }

    /// Number of pulses counted over one gate for the true flow
    /// `truth_m3s` (m³/s).
    pub fn count_pulses(&mut self, truth_m3s: f64) -> u64 {
        debug_assert!(truth_m3s >= 0.0);
        let liters = truth_m3s * 1_000.0 * self.gate_s * self.gain;
        let expected = liters * self.pulses_per_liter;
        // Partial pulses show up probabilistically at the gate edges.
        let whole = fast_floor(expected);
        let frac = expected - whole;
        whole as u64 + u64::from(self.rng.chance(frac))
    }

    /// Takes a flow reading in m³/s by counting pulses over the gate.
    pub fn read(&mut self, truth_m3s: f64) -> f64 {
        let pulses = self.count_pulses(truth_m3s);
        pulses as f64 / self.pulses_per_liter / self.gate_s / 1_000.0
    }
}

/// The sensing element a [`SensorFault`] attaches to. These are the
/// WSN-attached sensors — the ones a controller can only reach over the
/// air, where the paper's §V field failures happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SensorTarget {
    /// Ceiling SHT75 `k` (0–11; panel = `k / 6`).
    Ceiling(usize),
    /// Room SHT75 of subspace `s` (0–3).
    Room(usize),
    /// CO₂ sensor of subspace `s` (0–3).
    Co2(usize),
    /// Airbox outlet SHT75 of subspace `a` (0–3).
    Outlet(usize),
}

/// A sensing-element malfunction. A fault corrupts every channel of its
/// target (an SHT75's temperature and humidity share the die and the
/// cabling, so they fail together).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SensorFault {
    /// Output freezes at the first value read while the fault is active.
    StuckAt,
    /// Output drifts linearly away from truth at `per_hour` units/hour.
    DriftRamp {
        /// Drift rate in the channel's native unit per hour.
        per_hour: f64,
    },
    /// The element stops answering entirely: no reading, no packet.
    Dropout,
    /// Gaussian noise far above the datasheet level.
    NoiseBurst {
        /// Extra noise standard deviation in the channel's native unit.
        sd: f64,
    },
    /// A step offset (connector knocked loose, recalibration gone wrong).
    CalibrationJump {
        /// Offset in the channel's native unit.
        offset: f64,
    },
}

impl SensorFault {
    /// Stable name for metric keys (`fault.<kind>.active`).
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            Self::StuckAt => "sensor_stuck_at",
            Self::DriftRamp { .. } => "sensor_drift_ramp",
            Self::Dropout => "sensor_dropout",
            Self::NoiseBurst { .. } => "sensor_noise_burst",
            Self::CalibrationJump { .. } => "sensor_calibration_jump",
        }
    }

    /// Content-based tie-break ordering (see
    /// [`SensorFaultSchedule::active_for`]).
    fn sort_key(&self) -> (u8, u64) {
        match *self {
            Self::StuckAt => (0, 0),
            Self::DriftRamp { per_hour } => (1, per_hour.to_bits()),
            Self::Dropout => (2, 0),
            Self::NoiseBurst { sd } => (3, sd.to_bits()),
            Self::CalibrationJump { offset } => (4, offset.to_bits()),
        }
    }
}

/// One scheduled sensor fault window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorFaultEvent {
    /// When the fault appears.
    pub at: SimTime,
    /// When it is repaired (`None` = never).
    pub repaired_at: Option<SimTime>,
    /// Which sensing element breaks.
    pub target: SensorTarget,
    /// How it breaks.
    pub fault: SensorFault,
}

impl SensorFaultEvent {
    /// True if the fault is active at `now`.
    #[must_use]
    pub fn is_active(&self, now: SimTime) -> bool {
        now >= self.at && self.repaired_at.is_none_or(|r| now < r)
    }
}

/// A deterministic sensor-fault schedule, mirroring
/// [`FaultSchedule`](crate::faults::FaultSchedule) for actuators.
#[derive(Debug, Clone, Default)]
pub struct SensorFaultSchedule {
    events: Vec<SensorFaultEvent>,
}

impl SensorFaultSchedule {
    /// Builds a schedule from events.
    #[must_use]
    pub fn new(events: Vec<SensorFaultEvent>) -> Self {
        Self { events }
    }

    /// No faults.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// The scheduled events.
    #[must_use]
    pub fn events(&self) -> &[SensorFaultEvent] {
        &self.events
    }

    /// True if any fault is active at `now`.
    #[must_use]
    pub fn any_active(&self, now: SimTime) -> bool {
        self.events.iter().any(|e| e.is_active(now))
    }

    /// The fault governing `target` at `now`. Overlapping windows resolve
    /// to the one scheduled last (greatest `at`); same-instant ties break
    /// by a content-based ordering, so the answer never depends on the
    /// order events were pushed into the schedule.
    #[must_use]
    pub fn active_for(&self, target: SensorTarget, now: SimTime) -> Option<&SensorFaultEvent> {
        self.events
            .iter()
            .filter(|e| e.target == target && e.is_active(now))
            .max_by_key(|e| (e.at, e.fault.sort_key()))
    }

    /// True if any event in the schedule — past, active, or future —
    /// targets `target`. When this is false the fault machinery can
    /// never touch the sensor, so read paths may skip fault bookkeeping
    /// entirely (the gate behind the single-channel fast reads).
    #[must_use]
    pub fn ever_targets(&self, target: SensorTarget) -> bool {
        self.events.iter().any(|e| e.target == target)
    }

    /// True if `target` is dropped out (produces no reading) at `now`.
    #[must_use]
    pub fn dropped_out(&self, target: SensorTarget, now: SimTime) -> bool {
        matches!(
            self.active_for(target, now).map(|e| e.fault),
            Some(SensorFault::Dropout)
        )
    }
}

// --- Checkpoint support --------------------------------------------------
//
// Sensors are pure data (calibration constants plus a private noise RNG),
// so full-value persistence restores both the calibration and the exact
// noise-stream position.

bz_state::persist_struct!(TemperatureSensor {
    bias,
    noise_sd,
    rng
});
bz_state::persist_struct!(HumiditySensor {
    rh_bias,
    temp_bias,
    rng
});
bz_state::persist_struct!(Co2Sensor { bias, rng });
bz_state::persist_struct!(FlowSensor {
    pulses_per_liter,
    gate_s,
    gain,
    rng,
});

impl bz_state::Persist for SensorTarget {
    fn save(&self, w: &mut bz_state::Writer) {
        match *self {
            Self::Ceiling(k) => {
                w.put_u8(0);
                w.put_u64(k as u64);
            }
            Self::Room(s) => {
                w.put_u8(1);
                w.put_u64(s as u64);
            }
            Self::Co2(s) => {
                w.put_u8(2);
                w.put_u64(s as u64);
            }
            Self::Outlet(a) => {
                w.put_u8(3);
                w.put_u64(a as u64);
            }
        }
    }

    fn load(r: &mut bz_state::Reader<'_>) -> Result<Self, bz_state::StateError> {
        let tag = r.take_u8()?;
        let index = usize::try_from(r.take_u64()?).map_err(|_| bz_state::StateError::Invalid {
            what: "SensorTarget",
            reason: "index exceeds usize".to_owned(),
        })?;
        match tag {
            0 => Ok(Self::Ceiling(index)),
            1 => Ok(Self::Room(index)),
            2 => Ok(Self::Co2(index)),
            3 => Ok(Self::Outlet(index)),
            other => Err(bz_state::StateError::BadTag {
                what: "SensorTarget",
                tag: u64::from(other),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temperature_reading_is_close_and_quantized() {
        let mut rng = Rng::seed_from(1);
        let mut sensor = TemperatureSensor::new(&mut rng);
        let reading = sensor.read(Celsius::new(25.0));
        assert!((reading.get() - 25.0).abs() <= TemperatureSensor::ACCURACY + 0.2);
        let steps = reading.get() / TemperatureSensor::RESOLUTION;
        assert!(
            (steps - steps.round()).abs() < 1e-9,
            "not quantized: {reading}"
        );
    }

    #[test]
    fn temperature_bias_is_stable_per_instance() {
        let mut rng = Rng::seed_from(2);
        let mut sensor = TemperatureSensor::new(&mut rng);
        let readings: Vec<f64> = (0..200)
            .map(|_| sensor.read(Celsius::new(20.0)).get())
            .collect();
        let mean = readings.iter().sum::<f64>() / readings.len() as f64;
        // Mean of many readings converges to truth + bias.
        assert!((mean - 20.0 - sensor.bias()).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn different_sensors_have_different_biases() {
        let mut rng = Rng::seed_from(3);
        let a = TemperatureSensor::new(&mut rng);
        let b = TemperatureSensor::new(&mut rng);
        assert_ne!(a.bias(), b.bias());
    }

    #[test]
    fn humidity_reading_clamps_to_physical_range() {
        let mut rng = Rng::seed_from(4);
        let mut sensor = HumiditySensor::new(&mut rng);
        for _ in 0..100 {
            let high = sensor.read_rh(Percent::new(99.9));
            assert!(high.get() <= 100.0);
            let low = sensor.read_rh(Percent::new(0.05));
            assert!(low.get() >= 0.0);
        }
    }

    #[test]
    fn humidity_temp_channel_is_tight() {
        let mut rng = Rng::seed_from(5);
        let mut sensor = HumiditySensor::new(&mut rng);
        let reading = sensor.read_temp(Celsius::new(22.0));
        assert!((reading.get() - 22.0).abs() < 0.4);
    }

    #[test]
    fn co2_reading_is_plausible_and_non_negative() {
        let mut rng = Rng::seed_from(6);
        let mut sensor = Co2Sensor::new(&mut rng);
        let reading = sensor.read(Ppm::new(500.0));
        assert!((reading.get() - 500.0).abs() < 45.0);
        let zero = sensor.read(Ppm::new(0.0));
        assert!(zero.get() >= 0.0);
    }

    #[test]
    fn flow_pulses_scale_with_flow() {
        let mut rng = Rng::seed_from(7);
        let mut sensor = FlowSensor::new(&mut rng);
        // 1e-4 m³/s = 0.1 L/s → ~0.22 pulses/s; average over many gates.
        let n = 5_000;
        let total: u64 = (0..n).map(|_| sensor.count_pulses(1.0e-4)).sum();
        let avg = total as f64 / f64::from(n);
        assert!((avg - 0.22).abs() < 0.02, "avg pulses {avg}");
    }

    #[test]
    fn flow_reading_averages_to_truth() {
        let mut rng = Rng::seed_from(8);
        let mut sensor = FlowSensor::new(&mut rng);
        let n = 5_000;
        let mean: f64 = (0..n).map(|_| sensor.read(1.0e-4)).sum::<f64>() / f64::from(n);
        assert!((mean - 1.0e-4).abs() < 0.05e-4, "mean {mean}");
    }

    #[test]
    fn zero_flow_reads_zero() {
        let mut rng = Rng::seed_from(9);
        let mut sensor = FlowSensor::new(&mut rng);
        for _ in 0..50 {
            assert_eq!(sensor.read(0.0), 0.0);
        }
    }

    #[test]
    fn sensor_fault_schedule_windows_and_overlap_resolution() {
        let target = SensorTarget::Ceiling(2);
        let early = SensorFaultEvent {
            at: SimTime::from_mins(5),
            repaired_at: Some(SimTime::from_mins(30)),
            target,
            fault: SensorFault::CalibrationJump { offset: 1.0 },
        };
        let late = SensorFaultEvent {
            at: SimTime::from_mins(10),
            repaired_at: None,
            target,
            fault: SensorFault::StuckAt,
        };
        for events in [vec![early, late], vec![late, early]] {
            let schedule = SensorFaultSchedule::new(events);
            assert_eq!(schedule.active_for(target, SimTime::from_mins(1)), None);
            assert_eq!(
                schedule
                    .active_for(target, SimTime::from_mins(7))
                    .unwrap()
                    .fault,
                SensorFault::CalibrationJump { offset: 1.0 }
            );
            // Both active: the later-scheduled fault governs.
            assert_eq!(
                schedule
                    .active_for(target, SimTime::from_mins(20))
                    .unwrap()
                    .fault,
                SensorFault::StuckAt
            );
            assert_eq!(
                schedule.active_for(SensorTarget::Room(0), SimTime::from_mins(20)),
                None
            );
        }
    }

    #[test]
    fn dropout_is_queryable() {
        let target = SensorTarget::Room(3);
        let schedule = SensorFaultSchedule::new(vec![SensorFaultEvent {
            at: SimTime::from_mins(1),
            repaired_at: Some(SimTime::from_mins(2)),
            target,
            fault: SensorFault::Dropout,
        }]);
        assert!(!schedule.dropped_out(target, SimTime::ZERO));
        assert!(schedule.dropped_out(target, SimTime::from_mins(1)));
        assert!(!schedule.dropped_out(target, SimTime::from_mins(2)));
        assert!(!schedule.dropped_out(SensorTarget::Room(2), SimTime::from_mins(1)));
    }

    #[test]
    fn skipped_channel_leaves_the_stream_bit_identical() {
        let mut r1 = Rng::seed_from(11);
        let mut r2 = Rng::seed_from(11);
        let mut full = HumiditySensor::new(&mut r1);
        let mut skipping = HumiditySensor::new(&mut r2);
        for i in 0..50 {
            let t = Celsius::new(24.0 + f64::from(i) * 0.01);
            let rh = Percent::new(60.0 + f64::from(i) * 0.1);
            if i % 2 == 0 {
                // Temperature consumer: discards the RH sibling.
                let a = full.read_temp(t);
                let _ = full.read_rh(rh);
                let b = skipping.read_temp(t);
                skipping.skip_rh();
                assert_eq!(a, b);
            } else {
                // RH consumer: discards the temperature sibling.
                let _ = full.read_temp(t);
                let a = full.read_rh(rh);
                skipping.skip_temp();
                let b = skipping.read_rh(rh);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn pair_read_is_bit_identical_to_sequential_channel_reads() {
        use bz_simcore::NoiseKernel;
        for kernel in [NoiseKernel::V1, NoiseKernel::V2] {
            let mut r1 = Rng::seed_from(12).with_kernel(kernel);
            let mut r2 = Rng::seed_from(12).with_kernel(kernel);
            let mut sequential = HumiditySensor::new(&mut r1);
            let mut paired = HumiditySensor::new(&mut r2);
            for i in 0..200 {
                let t = Celsius::new(23.0 + f64::from(i) * 0.01);
                let rh = Percent::new(55.0 + f64::from(i) * 0.05);
                let a = (sequential.read_temp(t), sequential.read_rh(rh));
                let b = paired.read_pair(t, rh);
                assert_eq!(a, b, "{kernel} poll {i}");
            }
        }
    }

    #[test]
    fn ever_targets_sees_inactive_events() {
        let target = SensorTarget::Room(1);
        let schedule = SensorFaultSchedule::new(vec![SensorFaultEvent {
            at: SimTime::from_mins(100),
            repaired_at: None,
            target,
            fault: SensorFault::StuckAt,
        }]);
        assert!(schedule.ever_targets(target));
        assert!(!schedule.ever_targets(SensorTarget::Room(0)));
        assert!(!SensorFaultSchedule::none().ever_targets(target));
    }

    #[test]
    fn sensors_are_seed_deterministic() {
        let mut r1 = Rng::seed_from(10);
        let mut r2 = Rng::seed_from(10);
        let mut a = TemperatureSensor::new(&mut r1);
        let mut b = TemperatureSensor::new(&mut r2);
        for i in 0..50 {
            let truth = Celsius::new(20.0 + f64::from(i) * 0.1);
            assert_eq!(a.read(truth), b.read(truth));
        }
    }
}
