//! Occupant loads.
//!
//! Occupants inject sensible heat, moisture (latent heat), and CO₂ into
//! their subspace. The paper's §IV-B event catalogue includes "occupant
//! density varying" and "occupant transition between different rooms" —
//! the schedule type here scripts exactly those.

use bz_simcore::SimTime;

use crate::zone::SubspaceId;

/// Physiological rates for one seated adult doing light office work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupantRates {
    /// Sensible heat, W per person.
    pub sensible_w: f64,
    /// Moisture release, kg/s per person.
    pub latent_kg_s: f64,
    /// CO₂ generation, m³/s of pure CO₂ per person.
    pub co2_m3s: f64,
}

impl Default for OccupantRates {
    fn default() -> Self {
        // ASHRAE seated/light-work values: ~70 W sensible, ~45 W latent
        // (≈ 1.85e-5 kg/s of vapor), ~0.0052 L/s of CO₂.
        Self {
            sensible_w: 70.0,
            latent_kg_s: 1.85e-5,
            co2_m3s: 5.2e-6,
        }
    }
}

/// A scripted change of headcount in one subspace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancyChange {
    /// When the change takes effect.
    pub at: SimTime,
    /// Which subspace.
    pub subspace: SubspaceId,
    /// New headcount in that subspace from `at` onward.
    pub count: u32,
}

/// A deterministic occupancy schedule: per-subspace headcounts changing at
/// scripted instants.
///
/// # Example
///
/// ```
/// use bz_simcore::SimTime;
/// use bz_thermal::occupancy::{OccupancyChange, OccupancySchedule};
/// use bz_thermal::zone::SubspaceId;
///
/// let schedule = OccupancySchedule::new(vec![OccupancyChange {
///     at: SimTime::from_mins(10),
///     subspace: SubspaceId::S3,
///     count: 2,
/// }]);
/// assert_eq!(schedule.headcount(SubspaceId::S3, SimTime::from_mins(5)), 0);
/// assert_eq!(schedule.headcount(SubspaceId::S3, SimTime::from_mins(15)), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OccupancySchedule {
    changes: Vec<OccupancyChange>,
    rates: OccupantRates,
}

impl OccupancySchedule {
    /// Builds a schedule from a list of changes (sorted internally).
    #[must_use]
    pub fn new(mut changes: Vec<OccupancyChange>) -> Self {
        changes.sort_by_key(|c| c.at);
        Self {
            changes,
            rates: OccupantRates::default(),
        }
    }

    /// An always-empty room (the paper's main trial: doors are opened but
    /// nobody enters).
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Overrides the physiological rates.
    #[must_use]
    pub fn with_rates(mut self, rates: OccupantRates) -> Self {
        self.rates = rates;
        self
    }

    /// The physiological rates in use.
    #[must_use]
    pub fn rates(&self) -> OccupantRates {
        self.rates
    }

    /// Headcount in `subspace` at time `now`.
    #[must_use]
    pub fn headcount(&self, subspace: SubspaceId, now: SimTime) -> u32 {
        self.changes
            .iter()
            .take_while(|c| c.at <= now)
            .filter(|c| c.subspace == subspace)
            .last()
            .map_or(0, |c| c.count)
    }

    /// Total headcount across the laboratory at `now`.
    #[must_use]
    pub fn total_headcount(&self, now: SimTime) -> u32 {
        SubspaceId::ALL
            .iter()
            .map(|&s| self.headcount(s, now))
            .sum()
    }

    /// Convenience: a person moving from one subspace to another at `at`
    /// expressed as two changes.
    #[must_use]
    pub fn transition(
        at: SimTime,
        from: (SubspaceId, u32),
        to: (SubspaceId, u32),
    ) -> [OccupancyChange; 2] {
        [
            OccupancyChange {
                at,
                subspace: from.0,
                count: from.1,
            },
            OccupancyChange {
                at,
                subspace: to.0,
                count: to.1,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_is_empty() {
        let s = OccupancySchedule::empty();
        for id in SubspaceId::ALL {
            assert_eq!(s.headcount(id, SimTime::from_hours(1)), 0);
        }
        assert_eq!(s.total_headcount(SimTime::ZERO), 0);
    }

    #[test]
    fn changes_apply_in_order() {
        let s = OccupancySchedule::new(vec![
            OccupancyChange {
                at: SimTime::from_mins(20),
                subspace: SubspaceId::S1,
                count: 0,
            },
            OccupancyChange {
                at: SimTime::from_mins(10),
                subspace: SubspaceId::S1,
                count: 3,
            },
        ]);
        assert_eq!(s.headcount(SubspaceId::S1, SimTime::from_mins(5)), 0);
        assert_eq!(s.headcount(SubspaceId::S1, SimTime::from_mins(15)), 3);
        assert_eq!(s.headcount(SubspaceId::S1, SimTime::from_mins(25)), 0);
    }

    #[test]
    fn change_is_inclusive_at_boundary() {
        let s = OccupancySchedule::new(vec![OccupancyChange {
            at: SimTime::from_mins(10),
            subspace: SubspaceId::S2,
            count: 1,
        }]);
        assert_eq!(s.headcount(SubspaceId::S2, SimTime::from_mins(10)), 1);
    }

    #[test]
    fn transition_moves_a_person() {
        let changes = OccupancySchedule::transition(
            SimTime::from_mins(5),
            (SubspaceId::S1, 0),
            (SubspaceId::S2, 1),
        );
        let s = OccupancySchedule::new(changes.to_vec());
        assert_eq!(s.headcount(SubspaceId::S1, SimTime::from_mins(6)), 0);
        assert_eq!(s.headcount(SubspaceId::S2, SimTime::from_mins(6)), 1);
        assert_eq!(s.total_headcount(SimTime::from_mins(6)), 1);
    }

    #[test]
    fn default_rates_are_plausible() {
        let r = OccupantRates::default();
        // Latent heat release ≈ latent_kg_s × 2.45 MJ/kg ≈ 45 W.
        let latent_w = r.latent_kg_s * 2.45e6;
        assert!((latent_w - 45.0).abs() < 3.0, "{latent_w}");
        assert!(r.sensible_w > 50.0 && r.sensible_w < 100.0);
    }
}
