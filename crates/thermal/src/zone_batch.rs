//! Struct-of-arrays batched stepping for the four subspaces.
//!
//! The per-zone step in [`crate::zone`] is written for one zone at a
//! time; the plant, however, always advances all four subspaces
//! together. This module gathers the zone states into parallel arrays
//! ([`ZoneBatch`]), evaluates the shared psychrometric kernels once per
//! tick through `bz_psychro::batch`, and steps every zone against fixed
//! neighbour tables instead of building a `Vec` of neighbour pairs per
//! zone per tick.
//!
//! The batched path is bit-identical to the scalar path: the batch
//! kernels evaluate the same arithmetic element-wise, the neighbour
//! tables reproduce the exact accumulation order of the adjacency scan,
//! and [`Zone::step_with_density`] is the same balance code `Zone::step`
//! runs. `scalar_path_matches_batched_path` in this module and the
//! plant/system parity suites hold that equivalence.

use bz_psychro::batch::dry_air_density_batch;

use crate::zone::{AirState, Zone, ZoneInputs};

/// Subspace adjacency of the laboratory floor plan (§III-A): S1–S2,
/// S3–S4, S1–S3, S2–S4.
pub const ADJACENCY: [(usize, usize); 4] = [(0, 1), (2, 3), (0, 2), (1, 3)];

/// For each zone, its two neighbours **in the order the adjacency scan
/// visits them** — the accumulation order the scalar path uses, kept so
/// floating-point sums associate identically.
pub const NEIGHBORS: [[usize; 2]; 4] = [[1, 2], [0, 3], [3, 0], [2, 1]];

/// Struct-of-arrays snapshot of the four subspace air states, plus the
/// derived per-zone dry-air density evaluated through the batch kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneBatch {
    /// Dry-bulb temperature per zone, °C.
    pub temps_c: [f64; 4],
    /// Humidity ratio per zone, kg/kg.
    pub ratios: [f64; 4],
    /// CO₂ per zone, ppm.
    pub co2_ppm: [f64; 4],
    /// Dry-air density per zone, kg/m³.
    pub rho: [f64; 4],
}

impl ZoneBatch {
    /// Gathers the AoS zone states into SoA form and evaluates the
    /// density kernel for all four zones in one batch call.
    #[must_use]
    pub fn gather(states: &[AirState; 4]) -> Self {
        let temps_c = states.map(|s| s.temperature.get());
        let ratios = states.map(|s| s.humidity_ratio.get());
        let co2_ppm = states.map(|s| s.co2.get());
        let mut rho = [0.0; 4];
        dry_air_density_batch(&temps_c, &mut rho);
        Self {
            temps_c,
            ratios,
            co2_ppm,
            rho,
        }
    }
}

/// Advances all four subspaces by `dt_s` against pre-step neighbour
/// states, using the batched density kernel and the fixed neighbour
/// tables. Bit-identical to stepping each zone through [`Zone::step`]
/// with the adjacency-scan neighbour list.
pub fn step_zones(
    zones: &mut [Zone; 4],
    dt_s: f64,
    inputs: &[ZoneInputs; 4],
    outdoor: AirState,
    mixing_m3s: f64,
) {
    let pre: [AirState; 4] = std::array::from_fn(|i| zones[i].state());
    let batch = ZoneBatch::gather(&pre);
    for (i, zone) in zones.iter_mut().enumerate() {
        let [n1, n2] = NEIGHBORS[i];
        let neighbors = [(mixing_m3s, pre[n1]), (mixing_m3s, pre[n2])];
        zone.step_with_density(dt_s, &inputs[i], outdoor, &neighbors, batch.rho[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::ZoneParams;
    use bz_psychro::{dry_air_density, Celsius, Ppm};

    fn lab_zones() -> [Zone; 4] {
        std::array::from_fn(|i| {
            Zone::new(
                ZoneParams::bubble_zero_subspace(),
                AirState::from_dew_point(
                    Celsius::new(25.0 + i as f64 * 0.7),
                    Celsius::new(17.0 + i as f64 * 0.9),
                    Ppm::new(480.0 + i as f64 * 40.0),
                ),
            )
        })
    }

    fn varied_inputs() -> [ZoneInputs; 4] {
        std::array::from_fn(|i| ZoneInputs {
            hvac_sensible_w: -120.0 * i as f64,
            occupant_sensible_w: 70.0 * (3 - i) as f64,
            occupant_latent_kg_s: 4.0e-5 * i as f64,
            occupant_co2_m3s: 5.0e-6,
            ventilation_m3s: 0.01 * i as f64,
            ventilation_temp: Celsius::new(16.0),
            ..ZoneInputs::default()
        })
    }

    /// The neighbour table must reproduce the adjacency-scan order.
    #[test]
    fn neighbor_table_matches_adjacency_scan() {
        for (i, expected) in NEIGHBORS.iter().enumerate() {
            let scanned: Vec<usize> = ADJACENCY
                .iter()
                .filter_map(|&(a, b)| {
                    if a == i {
                        Some(b)
                    } else if b == i {
                        Some(a)
                    } else {
                        None
                    }
                })
                .collect();
            assert_eq!(scanned, expected.to_vec(), "zone {i}");
        }
    }

    #[test]
    fn gather_evaluates_the_exact_density() {
        let zones = lab_zones();
        let states: [AirState; 4] = std::array::from_fn(|i| zones[i].state());
        let batch = ZoneBatch::gather(&states);
        for (i, state) in states.iter().enumerate() {
            let exact = dry_air_density(state.temperature);
            assert_eq!(exact.to_bits(), batch.rho[i].to_bits());
            assert_eq!(batch.temps_c[i], state.temperature.get());
        }
    }

    /// The core bit-identity proof: an hour of batched stepping produces
    /// the exact floating-point trajectory of the scalar adjacency-scan
    /// path.
    #[test]
    fn scalar_path_matches_batched_path() {
        let mix = 0.04;
        let outdoor =
            AirState::from_dew_point(Celsius::new(28.9), Celsius::new(27.4), Ppm::new(410.0));
        let inputs = varied_inputs();
        let mut scalar = lab_zones();
        let mut batched = lab_zones();
        for _ in 0..3_600 {
            // Scalar reference: per-zone Vec built from the adjacency scan.
            let pre: [AirState; 4] = std::array::from_fn(|i| scalar[i].state());
            for (i, zone) in scalar.iter_mut().enumerate() {
                let neighbors: Vec<(f64, AirState)> = ADJACENCY
                    .iter()
                    .filter_map(|&(a, b)| {
                        if a == i {
                            Some((mix, pre[b]))
                        } else if b == i {
                            Some((mix, pre[a]))
                        } else {
                            None
                        }
                    })
                    .collect();
                zone.step(1.0, &inputs[i], outdoor, &neighbors);
            }
            step_zones(&mut batched, 1.0, &inputs, outdoor, mix);
            for i in 0..4 {
                let s = scalar[i].state();
                let b = batched[i].state();
                assert_eq!(s.temperature.get().to_bits(), b.temperature.get().to_bits());
                assert_eq!(
                    s.humidity_ratio.get().to_bits(),
                    b.humidity_ratio.get().to_bits()
                );
                assert_eq!(s.co2.get().to_bits(), b.co2.get().to_bits());
            }
        }
    }
}
