//! Thermal comfort: Fanger's PMV/PPD model (ISO 7730).
//!
//! The paper's goal is "thermal comfort (cooling or heating), air dryness
//! (dehumidification), and good air quality (ventilation)". This module
//! quantifies the first of those with the standard Predicted Mean Vote /
//! Predicted Percentage Dissatisfied model, which also exposes a real
//! advantage of radiant cooling: the chilled ceiling lowers the *mean
//! radiant temperature*, so occupants are comfortable at a higher air
//! temperature than an all-air system needs.

use bz_psychro::{vapor_pressure, Celsius, Percent};

use crate::zone::AirState;

/// Inputs to the PMV computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComfortInputs {
    /// Air (dry-bulb) temperature.
    pub air_temperature: Celsius,
    /// Mean radiant temperature of the surrounding surfaces.
    pub mean_radiant_temperature: Celsius,
    /// Relative air velocity, m/s.
    pub air_velocity_m_s: f64,
    /// Relative humidity.
    pub relative_humidity: Percent,
    /// Metabolic rate, met (1 met = 58.15 W/m²; seated office ≈ 1.1).
    pub metabolic_met: f64,
    /// Clothing insulation, clo (tropical office attire ≈ 0.5).
    pub clothing_clo: f64,
}

impl ComfortInputs {
    /// Typical BubbleZERO occupant: seated office work in tropical
    /// clothing with still air.
    #[must_use]
    pub fn tropical_office(
        air: Celsius,
        mean_radiant: Celsius,
        relative_humidity: Percent,
    ) -> Self {
        Self {
            air_temperature: air,
            mean_radiant_temperature: mean_radiant,
            air_velocity_m_s: 0.1,
            relative_humidity,
            metabolic_met: 1.1,
            clothing_clo: 0.5,
        }
    }

    /// Inputs for a subspace served by a radiant ceiling panel: the MRT
    /// blends the room surfaces (≈ air temperature) with the cold panel,
    /// whose view factor from a standing occupant is roughly `panel_view`
    /// (≈ 0.25 for the BubbleZERO ceiling share).
    #[must_use]
    pub fn for_radiant_zone(zone: AirState, panel_surface: Celsius, panel_view: f64) -> Self {
        let mrt = Celsius::new(
            (1.0 - panel_view) * zone.temperature.get() + panel_view * panel_surface.get(),
        );
        Self::tropical_office(zone.temperature, mrt, zone.relative_humidity())
    }
}

/// Fanger's Predicted Mean Vote on the 7-point scale (−3 cold … +3 hot),
/// per the ISO 7730 reference algorithm.
///
/// # Panics
///
/// Panics if `metabolic_met` or `clothing_clo` is not positive, or if the
/// iterative clothing-surface-temperature solve fails to converge
/// (possible only far outside the comfort envelope).
#[must_use]
pub fn pmv(inputs: &ComfortInputs) -> f64 {
    assert!(
        inputs.metabolic_met > 0.0,
        "metabolic rate must be positive"
    );
    assert!(
        inputs.clothing_clo > 0.0,
        "clothing insulation must be positive"
    );

    let ta = inputs.air_temperature.get();
    let tr = inputs.mean_radiant_temperature.get();
    let vel = inputs.air_velocity_m_s.max(0.0);
    // Water vapor partial pressure, Pa.
    let pa = vapor_pressure(inputs.air_temperature, inputs.relative_humidity).get();

    let icl = 0.155 * inputs.clothing_clo; // m²K/W
    let m = inputs.metabolic_met * 58.15; // W/m²
    let w = 0.0; // external work, ≈0 for office activity
    let mw = m - w;

    let fcl = if icl <= 0.078 {
        1.0 + 1.29 * icl
    } else {
        1.05 + 0.645 * icl
    };

    // Iteratively solve the clothing surface temperature.
    let taa = ta + 273.0;
    let tra = tr + 273.0;
    let mut tcla = taa + (35.5 - ta) / (3.5 * icl + 0.1);

    let p1 = icl * fcl;
    let p2 = p1 * 3.96;
    let p3 = p1 * 100.0;
    let p4 = p1 * taa;
    let p5 = 308.7 - 0.028 * mw + p2 * (tra / 100.0).powi(4);
    let hcf = 12.1 * vel.sqrt();

    let mut xn = tcla / 100.0;
    let mut xf = xn;
    let eps = 1.5e-5;
    let mut converged = false;
    for _ in 0..300 {
        xf = (xf + xn) / 2.0;
        let hcn = 2.38 * (100.0 * xf - taa).abs().powf(0.25);
        let hc = hcf.max(hcn);
        xn = (p5 + p4 * hc - p2 * xf.powi(4)) / (100.0 + p3 * hc);
        if (xn - xf).abs() <= eps {
            converged = true;
            break;
        }
    }
    assert!(converged, "PMV clothing-temperature solve did not converge");
    tcla = 100.0 * xn;
    let tcl = tcla - 273.0;

    let hcn = 2.38 * (tcl - ta).abs().powf(0.25);
    let hc = hcf.max(hcn);

    // Heat-loss components, W/m².
    let hl1 = 3.05e-3 * (5_733.0 - 6.99 * mw - pa); // skin diffusion
    let hl2 = if mw > 58.15 { 0.42 * (mw - 58.15) } else { 0.0 }; // sweating
    let hl3 = 1.7e-5 * m * (5_867.0 - pa); // latent respiration
    let hl4 = 1.4e-3 * m * (34.0 - ta); // dry respiration
    let hl5 = 3.96 * fcl * (xn.powi(4) - (tra / 100.0).powi(4)); // radiation
    let hl6 = fcl * hc * (tcl - ta); // convection

    let ts = 0.303 * (-0.036 * m).exp() + 0.028;
    ts * (mw - hl1 - hl2 - hl3 - hl4 - hl5 - hl6)
}

/// Predicted Percentage Dissatisfied for a given PMV, % (minimum 5 % at
/// PMV = 0 — some people are never happy).
#[must_use]
pub fn ppd(pmv_value: f64) -> f64 {
    100.0 - 95.0 * (-0.033_53 * pmv_value.powi(4) - 0.217_9 * pmv_value.powi(2)).exp()
}

/// Convenience: PMV and PPD for a radiant-cooled subspace.
#[must_use]
pub fn radiant_zone_comfort(zone: AirState, panel_surface: Celsius) -> (f64, f64) {
    let inputs = ComfortInputs::for_radiant_zone(zone, panel_surface, 0.25);
    let vote = pmv(&inputs);
    (vote, ppd(vote))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bz_psychro::Ppm;

    fn office(air: f64, mrt: f64, rh: f64) -> ComfortInputs {
        ComfortInputs::tropical_office(Celsius::new(air), Celsius::new(mrt), Percent::new(rh))
    }

    #[test]
    fn iso_reference_point_is_near_neutral() {
        // ISO 7730 table D.1-style check: 26 °C air and MRT, 0.1 m/s,
        // 50% RH, 1.1 met, 0.5 clo → PMV ≈ +0.4 (slightly warm side of
        // neutral).
        let vote = pmv(&office(26.0, 26.0, 50.0));
        assert!((vote - 0.4).abs() < 0.25, "PMV {vote}");
    }

    #[test]
    fn neutral_point_lies_in_the_mid_twenties() {
        // With tropical clothing the neutral temperature sits around
        // 24–26 °C: PMV must cross zero in that band.
        let cold = pmv(&office(22.0, 22.0, 60.0));
        let warm = pmv(&office(28.0, 28.0, 60.0));
        assert!(cold < 0.0, "22 °C should feel cool: {cold}");
        assert!(warm > 0.5, "28 °C should feel warm: {warm}");
    }

    #[test]
    fn pmv_is_monotone_in_air_temperature() {
        let mut last = f64::NEG_INFINITY;
        for t in [20.0, 22.0, 24.0, 26.0, 28.0, 30.0] {
            let vote = pmv(&office(t, t, 60.0));
            assert!(vote > last, "PMV should rise with temperature");
            last = vote;
        }
    }

    #[test]
    fn pmv_rises_with_humidity() {
        let dry = pmv(&office(27.0, 27.0, 30.0));
        let humid = pmv(&office(27.0, 27.0, 90.0));
        assert!(humid > dry, "humid air should feel warmer");
    }

    #[test]
    fn cold_ceiling_lowers_the_vote() {
        // Same 25.5 °C air: a 21 °C radiant ceiling (MRT pulled down)
        // reads cooler than matte 25.5 °C surroundings — the radiant
        // cooling comfort dividend.
        let all_air = pmv(&office(25.5, 25.5, 65.0));
        let radiant = pmv(&office(25.5, 24.4, 65.0));
        assert!(radiant < all_air);
        assert!(all_air - radiant > 0.1);
    }

    #[test]
    fn ppd_has_the_classic_shape() {
        assert!((ppd(0.0) - 5.0).abs() < 1e-9, "5% dissatisfied at neutral");
        assert!((ppd(1.0) - 26.0).abs() < 2.0);
        assert!((ppd(-1.0) - ppd(1.0)).abs() < 1e-9, "symmetric");
        assert!(ppd(3.0) > 95.0);
    }

    #[test]
    fn bubble_zero_targets_are_comfortable() {
        // The trial's 25 °C / 18 °C dew point with a ~22 °C panel over a
        // quarter of the view: PMV within the ±0.5 comfort class.
        let zone =
            AirState::from_dew_point(Celsius::new(25.0), Celsius::new(18.0), Ppm::new(600.0));
        let (vote, dissatisfied) = radiant_zone_comfort(zone, Celsius::new(22.0));
        assert!(vote.abs() < 0.5, "PMV {vote}");
        assert!(dissatisfied < 12.0, "PPD {dissatisfied}");
    }

    #[test]
    fn outdoor_conditions_are_uncomfortable() {
        let zone =
            AirState::from_dew_point(Celsius::new(28.9), Celsius::new(27.4), Ppm::new(410.0));
        let (vote, dissatisfied) = radiant_zone_comfort(zone, Celsius::new(28.9));
        assert!(vote > 1.0, "tropical outdoor air should feel warm: {vote}");
        assert!(dissatisfied > 30.0);
    }

    #[test]
    #[should_panic(expected = "metabolic rate")]
    fn zero_met_is_rejected() {
        let mut inputs = office(25.0, 25.0, 50.0);
        inputs.metabolic_met = 0.0;
        let _ = pmv(&inputs);
    }
}
