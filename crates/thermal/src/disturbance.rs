//! Scripted door/window disturbance events.
//!
//! §V-A of the paper injects two door openings (15 s at 14:05 and 2 min at
//! 14:25); §V-C triggers door/window events roughly every 30 minutes for
//! five hours. An opening creates a bulk air-exchange path between the
//! outdoors and the subspaces nearest the opening — the door is in
//! subspace 1 and "close to subspace 2", which is why those two react
//! first in Figure 10.

use bz_simcore::{Rng, SimDuration, SimTime};

use crate::zone::SubspaceId;

/// The kind of opening.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpeningKind {
    /// The laboratory door (in subspace 1, adjacent to subspace 2).
    Door,
    /// A window (in subspace 4, adjacent to subspace 3).
    Window,
}

impl OpeningKind {
    /// Air-exchange flow each subspace receives while this opening is
    /// fully open, m³/s. The primary subspace takes the bulk of the
    /// exchange; the adjacent one a reduced share; far subspaces are only
    /// reached indirectly through inter-zone mixing.
    #[must_use]
    pub fn exchange_profile(self) -> [(SubspaceId, f64); 2] {
        match self {
            // Buoyancy-driven counterflow through the doorway, reduced by
            // the small indoor/outdoor temperature difference and the
            // entry vestibule; calibrated to the paper's ~0.6 K dew bump
            // for a 15 s opening.
            Self::Door => [(SubspaceId::S1, 0.07), (SubspaceId::S2, 0.035)],
            Self::Window => [(SubspaceId::S4, 0.035), (SubspaceId::S3, 0.018)],
        }
    }
}

/// One scripted opening event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpeningEvent {
    /// When the opening begins.
    pub at: SimTime,
    /// How long it stays open.
    pub duration: SimDuration,
    /// What is opened.
    pub kind: OpeningKind,
}

impl OpeningEvent {
    /// True if the opening is active at `now` (half-open interval
    /// `[at, at + duration)`).
    #[must_use]
    pub fn is_active(&self, now: SimTime) -> bool {
        now >= self.at && now < self.at + self.duration
    }
}

/// A deterministic schedule of opening events.
#[derive(Debug, Clone, Default)]
pub struct DisturbanceSchedule {
    events: Vec<OpeningEvent>,
}

impl DisturbanceSchedule {
    /// Builds a schedule from a list of events (sorted internally).
    #[must_use]
    pub fn new(mut events: Vec<OpeningEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        Self { events }
    }

    /// No disturbances at all.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// The paper's Figure 10 script: a 15 s door opening at 14:05 and a
    /// 2 min door opening at 14:25 for a trial starting at 13:00.
    #[must_use]
    pub fn figure10_afternoon() -> Self {
        Self::new(vec![
            OpeningEvent {
                at: SimTime::from_mins(65),
                duration: SimDuration::from_secs(15),
                kind: OpeningKind::Door,
            },
            OpeningEvent {
                at: SimTime::from_mins(85),
                duration: SimDuration::from_secs(120),
                kind: OpeningKind::Door,
            },
        ])
    }

    /// The §V-C networking trial script: alternating door/window events
    /// roughly every 30 minutes over `total` simulated time, with ±3 min
    /// of seeded jitter. Each opening lasts 30–90 s.
    #[must_use]
    pub fn periodic_events(total: SimDuration, rng: &mut Rng) -> Self {
        let mut events = Vec::new();
        let mut t = SimTime::ZERO + SimDuration::from_mins(25);
        let mut flip = false;
        while (t + SimDuration::from_mins(2)).since(SimTime::ZERO) < total {
            let jitter = rng.uniform(-180.0, 180.0);
            let at =
                SimTime::ZERO + SimDuration::from_secs_f64((t.as_secs_f64() + jitter).max(0.0));
            events.push(OpeningEvent {
                at,
                duration: SimDuration::from_secs_f64(rng.uniform(30.0, 90.0)),
                kind: if flip {
                    OpeningKind::Window
                } else {
                    OpeningKind::Door
                },
            });
            flip = !flip;
            t += SimDuration::from_mins(30);
        }
        Self::new(events)
    }

    /// The scripted events, in time order.
    #[must_use]
    pub fn events(&self) -> &[OpeningEvent] {
        &self.events
    }

    /// Per-subspace outdoor air-exchange flows active at `now`, m³/s.
    #[must_use]
    pub fn exchange_at(&self, now: SimTime) -> [f64; 4] {
        let mut flows = [0.0; 4];
        for event in &self.events {
            if event.is_active(now) {
                for (subspace, flow) in event.kind.exchange_profile() {
                    flows[subspace.index()] += flow;
                }
            }
        }
        flows
    }

    /// True if any opening is active at `now`.
    #[must_use]
    pub fn any_active(&self, now: SimTime) -> bool {
        self.events.iter().any(|e| e.is_active(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure10_script_matches_paper_times() {
        let s = DisturbanceSchedule::figure10_afternoon();
        assert_eq!(s.events().len(), 2);
        assert_eq!(s.events()[0].at, SimTime::from_mins(65)); // 14:05
        assert_eq!(s.events()[0].duration, SimDuration::from_secs(15));
        assert_eq!(s.events()[1].at, SimTime::from_mins(85)); // 14:25
        assert_eq!(s.events()[1].duration, SimDuration::from_secs(120));
    }

    #[test]
    fn door_affects_subspaces_one_and_two_only() {
        let s = DisturbanceSchedule::figure10_afternoon();
        let during = SimTime::from_mins(65) + SimDuration::from_secs(5);
        let flows = s.exchange_at(during);
        assert!(flows[0] > 0.0 && flows[1] > 0.0);
        assert!(flows[0] > flows[1], "door subspace gets the larger share");
        assert_eq!(flows[2], 0.0);
        assert_eq!(flows[3], 0.0);
    }

    #[test]
    fn no_exchange_outside_events() {
        let s = DisturbanceSchedule::figure10_afternoon();
        assert_eq!(s.exchange_at(SimTime::from_mins(30)), [0.0; 4]);
        assert!(!s.any_active(SimTime::from_mins(30)));
        // Half-open interval: inactive exactly at the end.
        let end = SimTime::from_mins(65) + SimDuration::from_secs(15);
        assert_eq!(s.exchange_at(end), [0.0; 4]);
    }

    #[test]
    fn active_interval_is_half_open() {
        let e = OpeningEvent {
            at: SimTime::from_secs(10),
            duration: SimDuration::from_secs(5),
            kind: OpeningKind::Door,
        };
        assert!(e.is_active(SimTime::from_secs(10)));
        assert!(e.is_active(SimTime::from_millis(14_999)));
        assert!(!e.is_active(SimTime::from_secs(15)));
        assert!(!e.is_active(SimTime::from_secs(9)));
    }

    #[test]
    fn periodic_events_have_expected_cadence() {
        let mut rng = Rng::seed_from(42);
        let s = DisturbanceSchedule::periodic_events(SimDuration::from_hours(5), &mut rng);
        // ~every 30 min over 5 h: expect 9–10 events.
        assert!(
            (8..=11).contains(&s.events().len()),
            "got {} events",
            s.events().len()
        );
        // Alternating kinds.
        assert_eq!(s.events()[0].kind, OpeningKind::Door);
        assert!(s.events().windows(2).all(|w| w[1].at >= w[0].at));
    }

    #[test]
    fn periodic_events_are_seed_deterministic() {
        let a = DisturbanceSchedule::periodic_events(
            SimDuration::from_hours(5),
            &mut Rng::seed_from(1),
        );
        let b = DisturbanceSchedule::periodic_events(
            SimDuration::from_hours(5),
            &mut Rng::seed_from(1),
        );
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn overlapping_events_sum() {
        let s = DisturbanceSchedule::new(vec![
            OpeningEvent {
                at: SimTime::ZERO,
                duration: SimDuration::from_secs(60),
                kind: OpeningKind::Door,
            },
            OpeningEvent {
                at: SimTime::ZERO,
                duration: SimDuration::from_secs(60),
                kind: OpeningKind::Window,
            },
        ]);
        let flows = s.exchange_at(SimTime::from_secs(30));
        assert!(flows.iter().all(|&f| f > 0.0));
    }
}
