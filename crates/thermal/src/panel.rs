//! Radiant ceiling panels.
//!
//! Each of the two metal ceiling panels is a thermal node coupled on one
//! side to the mixed chilled water circulating through it and on the other
//! side — by thermal radiation and natural convection — to the air of the
//! two subspaces it spans. The model's central hazard is the paper's
//! central hazard: if the surface falls below the local dew point,
//! condensation forms on the panel and drips.

use bz_psychro::{
    humidity_ratio_from_dew_point, latent_heat_of_vaporization, water_volumetric_heat_capacity,
    Celsius, CP_DRY_AIR,
};

use crate::zone::AirState;

/// Static parameters of one radiant ceiling panel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PanelParams {
    /// Radiating surface area, m² (half the lab ceiling each).
    pub area_m2: f64,
    /// Combined radiant + convective surface coefficient, W/(m²·K).
    /// Chilled ceilings run at ~11 in cooling.
    pub surface_coefficient: f64,
    /// Water-side conductance at design flow, W/K.
    pub water_ua: f64,
    /// Design water flow used to scale the water-side conductance, m³/s.
    pub design_flow_m3s: f64,
    /// Thermal capacitance of panel metal + contained water, J/K.
    pub capacitance_j_k: f64,
}

impl PanelParams {
    /// Calibrated parameters for one BubbleZERO ceiling panel (spans two
    /// subspaces ≈ 13 m² of active surface).
    #[must_use]
    pub fn bubble_zero_panel() -> Self {
        Self {
            area_m2: 13.0,
            surface_coefficient: 11.0,
            water_ua: 160.0,
            design_flow_m3s: 1.0e-4,
            capacitance_j_k: 1.2e5,
        }
    }
}

/// Result of advancing a panel by one step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PanelStep {
    /// Sensible heat removed from each of the two served subspaces, W
    /// (positive = cooling the room).
    pub heat_from_zones_w: [f64; 2],
    /// Temperature of the water leaving the panel (the return pipe).
    pub water_return_temp: Celsius,
    /// Heat absorbed by the water stream, W.
    pub heat_to_water_w: f64,
    /// Condensate formed on the panel surface this step, kg.
    pub condensate_kg: f64,
    /// Moisture drawn out of each served subspace's air by surface
    /// condensation, kg/s (zero when the surface is above the dew point).
    pub zone_condensation_kg_s: [f64; 2],
}

/// One radiant ceiling panel with its surface-temperature state.
#[derive(Debug, Clone)]
pub struct RadiantPanel {
    params: PanelParams,
    surface_temp: Celsius,
    total_condensate_kg: f64,
}

impl RadiantPanel {
    /// Creates a panel whose surface starts in equilibrium with `initial`
    /// room air.
    #[must_use]
    pub fn new(params: PanelParams, initial: Celsius) -> Self {
        Self {
            params,
            surface_temp: initial,
            total_condensate_kg: 0.0,
        }
    }

    /// Current surface temperature.
    #[must_use]
    pub fn surface_temperature(&self) -> Celsius {
        self.surface_temp
    }

    /// Total condensate accumulated on this panel since the start, kg.
    /// Any positive value means the anti-condensation control failed.
    #[must_use]
    pub fn total_condensate(&self) -> f64 {
        self.total_condensate_kg
    }

    /// The panel parameters.
    #[must_use]
    pub fn params(&self) -> &PanelParams {
        &self.params
    }

    /// Water-side heat-exchange effectiveness at `flow_m3s`: the fraction
    /// of the inlet-to-surface temperature difference that the water picks
    /// up before leaving. NTU-style, with conductance scaling ~flow^0.6
    /// inside the tubes.
    #[must_use]
    pub fn water_effectiveness(&self, flow_m3s: f64) -> f64 {
        if flow_m3s <= 0.0 {
            return 0.0;
        }
        let c_w = flow_m3s * water_volumetric_heat_capacity(self.surface_temp);
        let ua = self.params.water_ua * (flow_m3s / self.params.design_flow_m3s).powf(0.6);
        1.0 - (-ua / c_w).exp()
    }

    /// Advances the panel by `dt_s` seconds.
    ///
    /// `water_in` and `flow_m3s` describe the mixed water entering the
    /// panel (zero flow = stagnant loop). `zones` are the air states of
    /// the two subspaces this panel spans.
    pub fn step(
        &mut self,
        dt_s: f64,
        water_in: Celsius,
        flow_m3s: f64,
        zones: [AirState; 2],
    ) -> PanelStep {
        debug_assert!(dt_s > 0.0 && flow_m3s >= 0.0);
        let t_s = self.surface_temp.get();
        let half_area = self.params.area_m2 / 2.0;

        // Room side: radiant+convective exchange with each subspace.
        let mut heat_from_zones_w = [0.0; 2];
        let mut q_room = 0.0;
        for (i, zone) in zones.iter().enumerate() {
            let q = self.params.surface_coefficient * half_area * (zone.temperature.get() - t_s);
            heat_from_zones_w[i] = q;
            q_room += q;
        }

        // Condensation: vapor mass transfer onto any patch colder than the
        // local dew point (heat/mass transfer analogy: β = h_c/(ρ·cp),
        // with the convective share of the surface coefficient ≈ 40%).
        let mut condensate_kg = 0.0;
        let mut q_latent = 0.0;
        let mut zone_condensation_kg_s = [0.0; 2];
        for (i, zone) in zones.iter().enumerate() {
            let w_sat_at_surface = humidity_ratio_from_dew_point(self.surface_temp).get();
            let excess = zone.humidity_ratio.get() - w_sat_at_surface;
            if excess > 0.0 {
                let beta = 0.4 * self.params.surface_coefficient / CP_DRY_AIR; // kg/(m²·s) per ΔW
                let rate = beta * half_area * excess;
                zone_condensation_kg_s[i] = rate;
                condensate_kg += rate * dt_s;
                q_latent += rate * latent_heat_of_vaporization(self.surface_temp);
            }
        }
        self.total_condensate_kg += condensate_kg;

        // Water side.
        let (q_water, return_temp) = if flow_m3s > 0.0 {
            let eff = self.water_effectiveness(flow_m3s);
            let c_w = flow_m3s * water_volumetric_heat_capacity(self.surface_temp);
            let q = eff * c_w * (t_s - water_in.get());
            let t_out = water_in.get() + eff * (t_s - water_in.get());
            (q, Celsius::new(t_out))
        } else {
            (0.0, water_in)
        };

        // Surface energy balance.
        let d_ts = (q_room + q_latent - q_water) * dt_s / self.params.capacitance_j_k;
        self.surface_temp = Celsius::new(t_s + d_ts);

        PanelStep {
            heat_from_zones_w,
            water_return_temp: return_temp,
            heat_to_water_w: q_water,
            condensate_kg,
            zone_condensation_kg_s,
        }
    }
}

// --- Checkpoint support --------------------------------------------------

bz_state::persist_struct!(PanelParams {
    area_m2,
    surface_coefficient,
    water_ua,
    design_flow_m3s,
    capacitance_j_k,
});
bz_state::persist_struct!(RadiantPanel {
    params,
    surface_temp,
    total_condensate_kg,
});

#[cfg(test)]
mod tests {
    use super::*;
    use bz_psychro::Ppm;

    fn room_air(t: f64, dew: f64) -> AirState {
        AirState::from_dew_point(Celsius::new(t), Celsius::new(dew), Ppm::new(500.0))
    }

    fn panel_at(t: f64) -> RadiantPanel {
        RadiantPanel::new(PanelParams::bubble_zero_panel(), Celsius::new(t))
    }

    #[test]
    fn chilled_water_pulls_surface_down_and_cools_room() {
        let mut panel = panel_at(25.0);
        let zones = [room_air(25.0, 16.0), room_air(25.0, 16.0)];
        let mut last = PanelStep {
            heat_from_zones_w: [0.0; 2],
            water_return_temp: Celsius::new(18.0),
            heat_to_water_w: 0.0,
            condensate_kg: 0.0,
            zone_condensation_kg_s: [0.0; 2],
        };
        for _ in 0..1_800 {
            last = panel.step(1.0, Celsius::new(18.0), 1.0e-4, zones);
        }
        // Surface settles between water and room temperature.
        let t_s = panel.surface_temperature().get();
        assert!(t_s > 18.0 && t_s < 25.0, "surface {t_s}");
        // Both subspaces are being cooled, symmetrically.
        assert!(last.heat_from_zones_w[0] > 100.0);
        assert!((last.heat_from_zones_w[0] - last.heat_from_zones_w[1]).abs() < 1e-9);
        // Return water warmer than supply, cooler than surface.
        assert!(last.water_return_temp.get() > 18.0);
        assert!(last.water_return_temp.get() < t_s + 1e-9);
        // Energy balance at steady state: room heat ≈ water heat.
        let total_room: f64 = last.heat_from_zones_w.iter().sum();
        assert!(
            (total_room - last.heat_to_water_w).abs() < 0.05 * last.heat_to_water_w,
            "room {total_room} vs water {}",
            last.heat_to_water_w
        );
        // No condensation: room dew point (16 °C) is below the surface.
        assert_eq!(panel.total_condensate(), 0.0);
    }

    #[test]
    fn steady_extraction_matches_paper_scale() {
        // Two panels together should be able to remove roughly the paper's
        // 964.8 W from a 25 °C room with 18 °C supply water at design flow.
        let mut panel = panel_at(25.0);
        let zones = [room_air(25.0, 16.0), room_air(25.0, 16.0)];
        let mut q = 0.0;
        for _ in 0..3_600 {
            q = panel
                .step(1.0, Celsius::new(18.0), 1.0e-4, zones)
                .heat_to_water_w;
        }
        // One panel ≈ 480 W → two panels ≈ 960 W.
        assert!((q - 482.0).abs() < 120.0, "per-panel extraction {q} W");
    }

    #[test]
    fn stagnant_loop_lets_surface_float_to_room() {
        let mut panel = panel_at(20.0);
        let zones = [room_air(26.0, 15.0), room_air(26.0, 15.0)];
        for _ in 0..7_200 {
            panel.step(1.0, Celsius::new(18.0), 0.0, zones);
        }
        assert!((panel.surface_temperature().get() - 26.0).abs() < 0.3);
    }

    #[test]
    fn condensation_occurs_below_dew_point() {
        let mut panel = panel_at(16.0);
        // Humid room: dew point 22 °C, panel surface forced cold.
        let zones = [room_air(27.0, 22.0), room_air(27.0, 22.0)];
        let step = panel.step(1.0, Celsius::new(10.0), 1.0e-4, zones);
        assert!(step.condensate_kg > 0.0);
        assert!(panel.total_condensate() > 0.0);
    }

    #[test]
    fn no_condensation_when_surface_above_dew() {
        let mut panel = panel_at(20.0);
        let zones = [room_air(25.0, 18.0), room_air(25.0, 18.0)];
        for _ in 0..600 {
            let s = panel.step(1.0, Celsius::new(18.5), 1.0e-4, zones);
            assert_eq!(s.condensate_kg, 0.0);
        }
    }

    #[test]
    fn effectiveness_increases_with_flow_then_saturates() {
        let panel = panel_at(20.0);
        let e_low = panel.water_effectiveness(0.2e-4);
        let e_mid = panel.water_effectiveness(1.0e-4);
        assert!(e_low > e_mid, "low flow has more residence time per liter");
        assert!(e_mid > 0.3 && e_mid < 1.0);
        assert_eq!(panel.water_effectiveness(0.0), 0.0);
    }

    #[test]
    fn higher_flow_removes_more_heat() {
        // Capacity rises with flow even though per-liter effectiveness
        // falls — this is the property the F_mix PID relies on.
        let zones = [room_air(25.0, 16.0), room_air(25.0, 16.0)];
        let q_at = |flow: f64| {
            let mut panel = panel_at(25.0);
            let mut q = 0.0;
            for _ in 0..3_600 {
                q = panel
                    .step(1.0, Celsius::new(18.0), flow, zones)
                    .heat_to_water_w;
            }
            q
        };
        let q_half = q_at(0.5e-4);
        let q_full = q_at(1.0e-4);
        assert!(q_full > q_half * 1.1, "q_half {q_half}, q_full {q_full}");
    }

    #[test]
    fn asymmetric_zones_cool_asymmetrically() {
        let mut panel = panel_at(22.0);
        let zones = [room_air(27.0, 16.0), room_air(24.0, 16.0)];
        let step = panel.step(1.0, Celsius::new(18.0), 1.0e-4, zones);
        assert!(step.heat_from_zones_w[0] > step.heat_from_zones_w[1]);
    }
}
