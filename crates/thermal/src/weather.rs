//! Tropical outdoor boundary conditions.
//!
//! The paper's trial ran on a Singapore afternoon with 28.9 °C outdoor
//! temperature and a 27.4 °C dew point. The driver superimposes a gentle
//! diurnal swing and a slow Ornstein–Uhlenbeck wander on those anchors so
//! multi-hour runs see realistic (but reproducible) variation.

use bz_psychro::{Celsius, Ppm};
use bz_simcore::{Rng, SimTime};

use crate::zone::AirState;

/// Configuration for the synthetic Singapore weather driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeatherConfig {
    /// Mean outdoor dry-bulb temperature, °C.
    pub mean_temperature: f64,
    /// Mean outdoor dew point, °C.
    pub mean_dew_point: f64,
    /// Amplitude of the diurnal temperature swing, K.
    pub diurnal_amplitude: f64,
    /// Hour of day (0–24) at which the trial starts; the paper's trial
    /// starts at 13:00, near the daily temperature peak.
    pub start_hour: f64,
    /// Standard deviation of the slow stochastic wander, K.
    pub wander_sd: f64,
    /// Outdoor CO₂ concentration, ppm.
    pub co2: f64,
}

impl WeatherConfig {
    /// The paper's trial boundary condition: 28.9 °C / 27.4 °C dew point at
    /// 13:00 local time, ±1.2 K diurnal swing.
    #[must_use]
    pub fn singapore_afternoon() -> Self {
        Self {
            mean_temperature: 28.9,
            mean_dew_point: 27.4,
            diurnal_amplitude: 1.2,
            start_hour: 13.0,
            wander_sd: 0.15,
            co2: 410.0,
        }
    }

    /// A perfectly constant boundary (for unit tests and calibration runs).
    #[must_use]
    pub fn constant(temperature: f64, dew_point: f64) -> Self {
        Self {
            mean_temperature: temperature,
            mean_dew_point: dew_point,
            diurnal_amplitude: 0.0,
            start_hour: 13.0,
            wander_sd: 0.0,
            co2: 410.0,
        }
    }

    /// The deterministic (mean + diurnal) outdoor temperature at `now`,
    /// °C — the weather process of [`Weather::sample`] with the
    /// stochastic wander stripped out. This is the read-only forecast
    /// hook `bz-predict` rolls its horizon against: a predictor may know
    /// the climate, but not the realized noise.
    #[must_use]
    pub fn nominal_temperature(&self, now: SimTime) -> f64 {
        let hour = self.start_hour + now.as_hours_f64();
        let phase = (hour - 14.5) / 24.0 * std::f64::consts::TAU;
        self.mean_temperature + self.diurnal_amplitude * phase.cos()
    }
}

/// Synthetic outdoor weather process.
#[derive(Debug, Clone)]
pub struct Weather {
    config: WeatherConfig,
    rng: Rng,
    /// Ornstein–Uhlenbeck wander state, K.
    wander: f64,
    /// Time of the last update, for integrating the wander.
    last_update: SimTime,
    /// Memo of the last OU step: `dt` bits → (decay, step sd). The
    /// simulation loop calls with a fixed 1-second `dt`, so this caches
    /// one `exp` + one `sqrt` per step. Pure function of the key, hence
    /// derived wiring, not persisted state: a stale entry is still the
    /// exact value for its key.
    ou_memo: (u64, f64, f64),
}

impl Weather {
    /// Creates a weather process with its own random stream.
    #[must_use]
    pub fn new(config: WeatherConfig, rng: Rng) -> Self {
        Self {
            config,
            rng,
            wander: 0.0,
            last_update: SimTime::ZERO,
            ou_memo: (u64::MAX, 0.0, 0.0),
        }
    }

    /// Advances the stochastic component to `now` and returns the outdoor
    /// air state. Must be called with non-decreasing times.
    pub fn sample(&mut self, now: SimTime) -> AirState {
        let dt = now.since(self.last_update).as_secs_f64();
        self.last_update = now;
        if self.config.wander_sd > 0.0 && dt > 0.0 {
            // OU process with a 30-minute relaxation time. The decay and
            // step deviation depend only on `dt`, which the per-second
            // loop never varies — memoize on its exact bit pattern so
            // repeated steps skip the `exp`/`sqrt` without any chance of
            // a value change.
            let (decay, step_sd) = if self.ou_memo.0 == dt.to_bits() {
                (self.ou_memo.1, self.ou_memo.2)
            } else {
                let tau = 1_800.0;
                let decay = (-dt / tau).exp();
                let step_sd = self.config.wander_sd * (1.0 - decay * decay).sqrt();
                self.ou_memo = (dt.to_bits(), decay, step_sd);
                (decay, step_sd)
            };
            self.wander = self.wander * decay + self.rng.normal(0.0, step_sd);
        }

        let hour = self.config.start_hour + now.as_hours_f64();
        // Daily peak near 14:30, trough near 02:30.
        let phase = (hour - 14.5) / 24.0 * std::f64::consts::TAU;
        let diurnal = self.config.diurnal_amplitude * phase.cos();
        let temperature = self.config.mean_temperature + diurnal + self.wander;
        // The tropical dew point tracks the temperature swing weakly.
        let dew =
            (self.config.mean_dew_point + 0.3 * diurnal + 0.5 * self.wander).min(temperature - 0.2);
        AirState::from_dew_point(
            Celsius::new(temperature),
            Celsius::new(dew),
            Ppm::new(self.config.co2),
        )
    }

    /// The configuration this process was built with.
    #[must_use]
    pub fn config(&self) -> &WeatherConfig {
        &self.config
    }

    /// Serializes the stochastic state (random stream, wander, clock).
    /// The configuration is rebuilt from config on restore, not persisted.
    pub fn save_state(&self, w: &mut bz_state::Writer) {
        use bz_state::Persist;
        self.rng.save(w);
        w.put_f64(self.wander);
        self.last_update.save(w);
    }

    /// Restores the stochastic state saved by [`Self::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a decode error if the bytes do not parse.
    pub fn load_state(&mut self, r: &mut bz_state::Reader<'_>) -> Result<(), bz_state::StateError> {
        use bz_state::Persist;
        self.rng = Persist::load(r)?;
        self.wander = r.take_f64()?;
        self.last_update = Persist::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bz_simcore::SimDuration;

    #[test]
    fn constant_config_is_constant() {
        let mut w = Weather::new(WeatherConfig::constant(28.9, 27.4), Rng::seed_from(1));
        let a = w.sample(SimTime::ZERO);
        let b = w.sample(SimTime::from_hours(2));
        assert!((a.temperature.get() - 28.9).abs() < 1e-9);
        assert!((b.temperature.get() - 28.9).abs() < 1e-9);
        assert!((a.dew_point().get() - 27.4).abs() < 1e-6);
    }

    #[test]
    fn afternoon_anchor_matches_paper() {
        let mut w = Weather::new(WeatherConfig::singapore_afternoon(), Rng::seed_from(2));
        let s = w.sample(SimTime::ZERO);
        // At 13:00 the diurnal term is near its peak; the sample should sit
        // within a degree of the paper's 28.9 °C anchor.
        assert!(
            (s.temperature.get() - 28.9).abs() < 1.5,
            "{}",
            s.temperature
        );
        assert!((s.dew_point().get() - 27.4).abs() < 1.5);
        assert!(s.dew_point().get() < s.temperature.get());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Weather::new(WeatherConfig::singapore_afternoon(), Rng::seed_from(7));
        let mut b = Weather::new(WeatherConfig::singapore_afternoon(), Rng::seed_from(7));
        for i in 0..100 {
            let t = SimTime::ZERO + SimDuration::from_secs(i * 60);
            assert_eq!(a.sample(t), b.sample(t));
        }
    }

    #[test]
    fn wander_stays_bounded() {
        let mut w = Weather::new(WeatherConfig::singapore_afternoon(), Rng::seed_from(3));
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for i in 0..24 * 60 {
            let s = w.sample(SimTime::from_mins(i));
            min = min.min(s.temperature.get());
            max = max.max(s.temperature.get());
        }
        // Diurnal ±1.2 K plus a small wander: the day should span roughly
        // 2–4 K and never run away.
        assert!(max - min > 1.5, "span {}", max - min);
        assert!(max - min < 5.0, "span {}", max - min);
    }

    #[test]
    fn nominal_temperature_matches_the_wanderless_process() {
        let mut config = WeatherConfig::singapore_afternoon();
        config.wander_sd = 0.0;
        let mut w = Weather::new(config, Rng::seed_from(5));
        for i in 0..48 {
            let t = SimTime::from_mins(i * 30);
            let sampled = w.sample(t).temperature.get();
            assert!((sampled - config.nominal_temperature(t)).abs() < 1e-9);
        }
    }

    #[test]
    fn dew_point_never_exceeds_temperature() {
        let mut w = Weather::new(WeatherConfig::singapore_afternoon(), Rng::seed_from(4));
        for i in 0..1_000 {
            let s = w.sample(SimTime::from_mins(i));
            assert!(s.dew_point().get() < s.temperature.get());
        }
    }
}
