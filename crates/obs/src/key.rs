//! Metric keys: `&'static str` for fixed instrumentation points, owned
//! strings for dynamic keys like `wsn.node.21.sent`.

use std::borrow::{Borrow, Cow};
use std::fmt;
use std::ops::Deref;

/// A metric key.
///
/// Most instrumentation points name their metric with a string literal,
/// which converts at zero cost. Per-entity keys — one counter per mote,
/// one gauge per fault kind — are built at runtime with `format!` and
/// convert from `String`:
///
/// ```
/// use bz_obs::MetricKey;
///
/// let fixed: MetricKey = "wsn.packets.sent".into();
/// let per_node: MetricKey = format!("wsn.node.{}.sent", 21).into();
/// assert_eq!(per_node.as_str(), "wsn.node.21.sent");
/// assert!(per_node < fixed); // plain string ordering: "wsn.n…" < "wsn.p…"
/// ```
///
/// Ordering, equality, and hashing all delegate to the underlying string,
/// so registry maps stay sorted by key text and snapshots can be indexed
/// by `&str`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MetricKey(Cow<'static, str>);

impl MetricKey {
    /// A key borrowing a static string (no allocation).
    #[must_use]
    pub const fn from_static(name: &'static str) -> Self {
        Self(Cow::Borrowed(name))
    }

    /// The key text.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&'static str> for MetricKey {
    fn from(name: &'static str) -> Self {
        Self(Cow::Borrowed(name))
    }
}

impl From<String> for MetricKey {
    fn from(name: String) -> Self {
        Self(Cow::Owned(name))
    }
}

impl From<&MetricKey> for MetricKey {
    fn from(key: &MetricKey) -> Self {
        key.clone()
    }
}

impl Borrow<str> for MetricKey {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl Deref for MetricKey {
    type Target = str;

    fn deref(&self) -> &str {
        &self.0
    }
}

impl bz_state::Persist for MetricKey {
    fn save(&self, w: &mut bz_state::Writer) {
        w.put_str(self.as_str());
    }

    fn load(r: &mut bz_state::Reader<'_>) -> Result<Self, bz_state::StateError> {
        // Restored keys are always owned: the original may have borrowed a
        // `&'static str`, but equality, ordering, and hashing are on the
        // text, so exports are unaffected.
        Ok(Self(Cow::Owned(r.take_string()?)))
    }
}

impl fmt::Display for MetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `pad` honors width/alignment specifiers in table formatting.
        f.pad(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn static_and_owned_keys_compare_equal() {
        let a = MetricKey::from_static("wsn.node.7.sent");
        let b: MetricKey = format!("wsn.node.{}.sent", 7).into();
        assert_eq!(a, b);
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
    }

    #[test]
    fn maps_are_indexable_by_str() {
        let mut map: BTreeMap<MetricKey, u64> = BTreeMap::new();
        map.insert("fault.recycle_pump_dead.active".into(), 1);
        map.insert(format!("wsn.node.{}.sent", 21).into(), 9);
        assert_eq!(map["fault.recycle_pump_dead.active"], 1);
        assert_eq!(map["wsn.node.21.sent"], 9);
    }

    #[test]
    fn display_honors_width() {
        let key = MetricKey::from_static("abc");
        assert_eq!(format!("{key:<6}|"), "abc   |");
    }
}
