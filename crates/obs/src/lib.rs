//! Observability layer for the BubbleZERO reproduction.
//!
//! `bz-obs` provides three pieces, all addressed by [`MetricKey`]s — a
//! `&'static str` literal for fixed instrumentation points or an owned
//! `String` for per-entity keys like `wsn.node.21.sent` — and all keyed to
//! the deterministic millisecond simulation clock rather than wall time:
//!
//! 1. **Spans** — [`Handle::span`] returns a guard; closing it with
//!    [`SpanGuard::exit`] records both the simulated duration (exported,
//!    deterministic) and the wall-clock duration (summary table only).
//!    Spans nest; each records its depth at entry.
//! 2. **Metrics registry** — saturating [counters](Handle::counter_add),
//!    last-value [gauges](Handle::gauge_set), and fixed-bucket
//!    [histograms](Handle::observe) borrowing the `bz-wsn` bucketing
//!    idiom.
//! 3. **Exporters** — [`Handle::write_jsonl`] / [`Handle::write_csv`] for
//!    machines plus a human [`Handle::summary_table`]; long runs can
//!    switch to streaming export with [`Handle::stream_to`] (events are
//!    written through as they happen, unbounded by [`MAX_EVENTS`]), and
//!    [`flame::collapsed_stacks`] folds the span stream into
//!    flamegraph-ready collapsed stacks; formats are documented in
//!    `docs/OBSERVABILITY.md`.
//!
//! The API is **instance-first**: all state lives behind a [`Handle`], and
//! instrumented components (the event queue, the channel, the controllers,
//! the plant) carry the handle they record against. [`Handle::isolated`]
//! gives embedders — parallel sweep runs, unit tests — a private registry
//! with no shared mutable state. The crate-level free functions below are
//! a thin convenience wrapper over the process-global [`Handle::global`],
//! which is what components use when no handle is supplied.
//!
//! Collection is off by default and gated behind one relaxed atomic load,
//! so fully instrumented hot paths cost nothing measurable when telemetry
//! is disabled.
//!
//! # Example (global facade)
//!
//! ```
//! bz_obs::enable();
//! bz_obs::reset();
//!
//! let tick = bz_obs::span("core.control_tick", 5_000);
//! bz_obs::counter_inc("wsn.packets.sent");
//! bz_obs::gauge_set("thermal.chiller.radiant_w", 5_000, 142.5);
//! bz_obs::observe("wsn.btadpt.send_period_s", 2.0);
//! tick.exit(5_010);
//!
//! let snapshot = bz_obs::snapshot();
//! assert_eq!(snapshot.counters["wsn.packets.sent"], 1);
//! assert_eq!(snapshot.spans["core.control_tick"].sim_ms_total, 10);
//! bz_obs::disable();
//! ```
//!
//! # Example (isolated handle)
//!
//! ```
//! let obs = bz_obs::Handle::isolated();
//! obs.counter_inc("wsn.packets.sent");
//! assert_eq!(obs.snapshot().counters["wsn.packets.sent"], 1);
//! // The global registry is untouched.
//! assert!(!bz_obs::Handle::global().same_registry(&obs));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flame;
mod handle;
mod hist;
mod key;
mod registry;
mod span;

pub use flame::collapsed_stacks;
pub use handle::Handle;
pub use hist::{FixedHistogram, DEFAULT_BUCKETS};
pub use key::MetricKey;
pub use registry::{Event, Registry, Snapshot, SpanStats, MAX_EVENTS};
pub use span::SpanGuard;

use std::io::{self, Write};

/// Turns metric collection on for the global handle.
pub fn enable() {
    Handle::global().enable();
}

/// Turns global metric collection off (already-recorded data is kept).
pub fn disable() {
    Handle::global().disable();
}

/// Whether global collection is currently on.
#[must_use]
pub fn is_enabled() -> bool {
    Handle::global().is_enabled()
}

/// Clears the global registry's metrics and events (the enabled flag is
/// untouched).
pub fn reset() {
    Handle::global().reset();
}

/// Adds `delta` to the global counter `name` (saturating).
pub fn counter_add(name: impl Into<MetricKey>, delta: u64) {
    Handle::global().counter_add(name, delta);
}

/// Adds one to the global counter `name`.
pub fn counter_inc(name: impl Into<MetricKey>) {
    Handle::global().counter_inc(name);
}

/// Sets the global gauge `name` to `value` at simulation time `t_ms`.
pub fn gauge_set(name: impl Into<MetricKey>, t_ms: u64, value: f64) {
    Handle::global().gauge_set(name, t_ms, value);
}

/// Observes `value` into the global histogram `name` over
/// [`DEFAULT_BUCKETS`].
pub fn observe(name: impl Into<MetricKey>, value: f64) {
    Handle::global().observe(name, value);
}

/// Observes `value` into the global histogram `name`, creating it over
/// `buckets` on first use (later calls keep the original buckets).
pub fn observe_in(name: impl Into<MetricKey>, buckets: &'static [f64], value: f64) {
    Handle::global().observe_in(name, buckets, value);
}

/// Samples every global counter as a timestamped event at simulation time
/// `t_ms`. Call at a fixed simulated cadence (e.g. once per simulated
/// minute) to put counter trajectories, not just totals, in the export.
pub fn record_counters(t_ms: u64) {
    Handle::global().record_counters(t_ms);
}

/// Opens a span named `name` at simulation time `sim_now_ms` against the
/// global registry. Close it with [`SpanGuard::exit`]; see [`SpanGuard`]
/// for drop semantics.
#[must_use]
pub fn span(name: impl Into<MetricKey>, sim_now_ms: u64) -> SpanGuard {
    Handle::global().span(name, sim_now_ms)
}

/// An owned copy of the global registry state.
#[must_use]
pub fn snapshot() -> Snapshot {
    Handle::global().snapshot()
}

/// Writes the global registry as JSONL (see [`Registry::write_jsonl`]).
///
/// # Errors
///
/// Returns any I/O error from `out`.
pub fn write_jsonl<W: Write>(out: W) -> io::Result<()> {
    Handle::global().write_jsonl(out)
}

/// Writes the global registry's event stream as CSV (see
/// [`Registry::write_csv`]).
///
/// # Errors
///
/// Returns any I/O error from `out`.
pub fn write_csv<W: Write>(out: W) -> io::Result<()> {
    Handle::global().write_csv(out)
}

/// Switches the global registry to streaming JSONL export (see
/// [`Registry::stream_to`]): events are written to `sink` as they are
/// recorded instead of being buffered against [`MAX_EVENTS`].
pub fn stream_to(sink: Box<dyn Write + Send>) {
    Handle::global().stream_to(sink);
}

/// Ends global streaming and writes the totals tail (see
/// [`Registry::finish_stream`]).
///
/// # Errors
///
/// Returns the first error hit while streaming, or any tail-write error.
pub fn finish_stream() -> io::Result<()> {
    Handle::global().finish_stream()
}

/// Renders the human-readable end-of-run summary of the global registry.
#[must_use]
pub fn summary_table() -> String {
    Handle::global().summary_table()
}

/// Serializes the global registry state for checkpointing (see
/// [`Handle::save_state`]).
///
/// # Panics
///
/// Panics if the global registry is streaming.
pub fn save_state(w: &mut bz_state::Writer) {
    Handle::global().save_state(w);
}

/// Replaces the global registry contents with previously saved state (see
/// [`Handle::load_state`]).
///
/// # Errors
///
/// Returns a decode error if the bytes do not parse.
pub fn load_state(r: &mut bz_state::Reader<'_>) -> Result<(), bz_state::StateError> {
    Handle::global().load_state(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The global registry is shared across the test binary, so every
    /// facade test runs under this lock and restores the disabled state.
    fn with_exclusive_global(test: impl FnOnce()) {
        static TEST_LOCK: Mutex<()> = Mutex::new(());
        let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        enable();
        reset();
        test();
        disable();
        reset();
    }

    #[test]
    fn disabled_facade_records_nothing() {
        with_exclusive_global(|| {
            disable();
            counter_inc("c");
            gauge_set("g", 0, 1.0);
            observe("h", 1.0);
            span("s", 0).exit(10);
            let snapshot = snapshot();
            assert!(snapshot.counters.is_empty());
            assert!(snapshot.gauges.is_empty());
            assert!(snapshot.histograms.is_empty());
            assert!(snapshot.spans.is_empty());
            assert!(snapshot.events.is_empty());
        });
    }

    #[test]
    fn facade_operates_on_the_global_handle() {
        with_exclusive_global(|| {
            counter_inc("c");
            assert_eq!(Handle::global().snapshot().counters["c"], 1);
        });
    }

    #[test]
    fn spans_nest_and_record_depth_and_sim_duration() {
        with_exclusive_global(|| {
            let outer = span("outer", 1_000);
            let inner = span("inner", 1_200);
            inner.exit(1_300);
            outer.exit(2_000);

            let snapshot = snapshot();
            assert_eq!(snapshot.spans["outer"].sim_ms_total, 1_000);
            assert_eq!(snapshot.spans["inner"].sim_ms_total, 100);
            let depths: Vec<(&str, u32)> = snapshot
                .events
                .iter()
                .filter_map(|event| match event {
                    Event::Span { name, depth, .. } => Some((name.as_str(), *depth)),
                    _ => None,
                })
                .collect();
            // Inner exits first, at depth 1; outer carries depth 0.
            assert_eq!(depths, vec![("inner", 1), ("outer", 0)]);
        });
    }

    #[test]
    fn dropped_guard_still_counts_the_span() {
        with_exclusive_global(|| {
            {
                let _guard = span("dropped", 500);
                // Early exit without `exit()`.
            }
            let stats = snapshot().spans["dropped"];
            assert_eq!(stats.count, 1);
            assert_eq!(stats.sim_ms_total, 0);
        });
    }

    #[test]
    fn exit_before_entry_time_saturates_to_zero() {
        with_exclusive_global(|| {
            span("backwards", 1_000).exit(400);
            assert_eq!(snapshot().spans["backwards"].sim_ms_total, 0);
        });
    }

    #[test]
    fn facade_histogram_uses_default_buckets() {
        with_exclusive_global(|| {
            observe("h", 3.0);
            let snapshot = snapshot();
            assert_eq!(snapshot.histograms["h"].edges(), DEFAULT_BUCKETS);
            assert_eq!(snapshot.histograms["h"].count(), 1);
        });
    }
}
