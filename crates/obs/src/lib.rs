//! Observability layer for the BubbleZERO reproduction.
//!
//! `bz-obs` provides three pieces, all addressed by `&'static str` keys and
//! all keyed to the deterministic millisecond simulation clock rather than
//! wall time:
//!
//! 1. **Spans** — [`span`] returns a guard; closing it with
//!    [`SpanGuard::exit`] records both the simulated duration (exported,
//!    deterministic) and the wall-clock duration (summary table only).
//!    Spans nest; each records its depth at entry.
//! 2. **Metrics registry** — saturating [counters](counter_add), last-value
//!    [gauges](gauge_set), and fixed-bucket [histograms](observe) borrowing
//!    the `bz-wsn` bucketing idiom.
//! 3. **Exporters** — [`write_jsonl`] / [`write_csv`] for machines plus a
//!    human [`summary_table`]; formats are documented in
//!    `docs/OBSERVABILITY.md`.
//!
//! Collection is off by default and gated behind one relaxed atomic load,
//! so fully instrumented hot paths cost nothing measurable when telemetry
//! is disabled. The global registry is process-wide; embedders that need
//! isolation (unit tests, parallel trials) can drive a plain [`Registry`]
//! value directly instead.
//!
//! # Example
//!
//! ```
//! bz_obs::enable();
//! bz_obs::reset();
//!
//! let tick = bz_obs::span("core.control_tick", 5_000);
//! bz_obs::counter_inc("wsn.packets.sent");
//! bz_obs::gauge_set("thermal.chiller.radiant_w", 5_000, 142.5);
//! bz_obs::observe("wsn.btadpt.send_period_s", 2.0);
//! tick.exit(5_010);
//!
//! let snapshot = bz_obs::snapshot();
//! assert_eq!(snapshot.counters["wsn.packets.sent"], 1);
//! assert_eq!(snapshot.spans["core.control_tick"].sim_ms_total, 10);
//! bz_obs::disable();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod registry;
mod span;

pub use hist::{FixedHistogram, DEFAULT_BUCKETS};
pub use registry::{Event, Registry, Snapshot, SpanStats, MAX_EVENTS};
pub use span::SpanGuard;

use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Master switch; metric calls are no-ops while this is false.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The process-wide registry, created on first use.
static GLOBAL: OnceLock<Mutex<Registry>> = OnceLock::new();

/// Runs `f` against the global registry (creating it on first use).
pub(crate) fn with_registry<T>(f: impl FnOnce(&mut Registry) -> T) -> T {
    let mutex = GLOBAL.get_or_init(|| Mutex::new(Registry::new()));
    let mut guard = match mutex.lock() {
        Ok(guard) => guard,
        // A panic mid-update can only leave partially-recorded metrics,
        // never corrupt state worth abandoning telemetry over.
        Err(poisoned) => poisoned.into_inner(),
    };
    f(&mut guard)
}

/// Turns metric collection on.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns metric collection off (already-recorded data is kept).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether collection is currently on.
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears all recorded metrics and events (the enabled flag is untouched).
pub fn reset() {
    with_registry(Registry::reset);
}

/// Adds `delta` to counter `name` (saturating).
pub fn counter_add(name: &'static str, delta: u64) {
    if is_enabled() {
        with_registry(|registry| registry.counter_add(name, delta));
    }
}

/// Adds one to counter `name`.
pub fn counter_inc(name: &'static str) {
    counter_add(name, 1);
}

/// Sets gauge `name` to `value` at simulation time `t_ms`.
pub fn gauge_set(name: &'static str, t_ms: u64, value: f64) {
    if is_enabled() {
        with_registry(|registry| registry.gauge_set(name, t_ms, value));
    }
}

/// Observes `value` into histogram `name` over [`DEFAULT_BUCKETS`].
pub fn observe(name: &'static str, value: f64) {
    observe_in(name, DEFAULT_BUCKETS, value);
}

/// Observes `value` into histogram `name`, creating it over `buckets` on
/// first use (later calls keep the original buckets).
pub fn observe_in(name: &'static str, buckets: &'static [f64], value: f64) {
    if is_enabled() {
        with_registry(|registry| registry.observe(name, buckets, value));
    }
}

/// Samples every counter as a timestamped event at simulation time `t_ms`.
/// Call at a fixed simulated cadence (e.g. once per simulated minute) to
/// put counter trajectories, not just totals, in the export.
pub fn record_counters(t_ms: u64) {
    if is_enabled() {
        with_registry(|registry| registry.record_counters(t_ms));
    }
}

/// Opens a span named `name` at simulation time `sim_now_ms`. Close it
/// with [`SpanGuard::exit`]; see [`SpanGuard`] for drop semantics.
#[must_use]
pub fn span(name: &'static str, sim_now_ms: u64) -> SpanGuard {
    SpanGuard::enter(name, sim_now_ms, is_enabled())
}

/// An owned copy of the global registry state.
#[must_use]
pub fn snapshot() -> Snapshot {
    with_registry(|registry| registry.snapshot())
}

/// Writes the global registry as JSONL (see [`Registry::write_jsonl`]).
///
/// # Errors
///
/// Returns any I/O error from `out`.
pub fn write_jsonl<W: Write>(out: W) -> io::Result<()> {
    with_registry(|registry| registry.write_jsonl(out))
}

/// Writes the global registry's event stream as CSV (see
/// [`Registry::write_csv`]).
///
/// # Errors
///
/// Returns any I/O error from `out`.
pub fn write_csv<W: Write>(out: W) -> io::Result<()> {
    with_registry(|registry| registry.write_csv(out))
}

/// Renders the human-readable end-of-run summary of the global registry.
#[must_use]
pub fn summary_table() -> String {
    with_registry(|registry| registry.summary_table())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global registry is shared across the test binary, so every
    /// facade test runs under this lock and restores the disabled state.
    fn with_exclusive_global(test: impl FnOnce()) {
        static TEST_LOCK: Mutex<()> = Mutex::new(());
        let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        enable();
        reset();
        test();
        disable();
        reset();
    }

    #[test]
    fn disabled_facade_records_nothing() {
        with_exclusive_global(|| {
            disable();
            counter_inc("c");
            gauge_set("g", 0, 1.0);
            observe("h", 1.0);
            span("s", 0).exit(10);
            let snapshot = snapshot();
            assert!(snapshot.counters.is_empty());
            assert!(snapshot.gauges.is_empty());
            assert!(snapshot.histograms.is_empty());
            assert!(snapshot.spans.is_empty());
            assert!(snapshot.events.is_empty());
        });
    }

    #[test]
    fn spans_nest_and_record_depth_and_sim_duration() {
        with_exclusive_global(|| {
            let outer = span("outer", 1_000);
            let inner = span("inner", 1_200);
            inner.exit(1_300);
            outer.exit(2_000);

            let snapshot = snapshot();
            assert_eq!(snapshot.spans["outer"].sim_ms_total, 1_000);
            assert_eq!(snapshot.spans["inner"].sim_ms_total, 100);
            let depths: Vec<(&str, u32)> = snapshot
                .events
                .iter()
                .filter_map(|event| match *event {
                    Event::Span { name, depth, .. } => Some((name, depth)),
                    _ => None,
                })
                .collect();
            // Inner exits first, at depth 1; outer carries depth 0.
            assert_eq!(depths, vec![("inner", 1), ("outer", 0)]);
        });
    }

    #[test]
    fn dropped_guard_still_counts_the_span() {
        with_exclusive_global(|| {
            {
                let _guard = span("dropped", 500);
                // Early exit without `exit()`.
            }
            let stats = snapshot().spans["dropped"];
            assert_eq!(stats.count, 1);
            assert_eq!(stats.sim_ms_total, 0);
        });
    }

    #[test]
    fn exit_before_entry_time_saturates_to_zero() {
        with_exclusive_global(|| {
            span("backwards", 1_000).exit(400);
            assert_eq!(snapshot().spans["backwards"].sim_ms_total, 0);
        });
    }

    #[test]
    fn facade_histogram_uses_default_buckets() {
        with_exclusive_global(|| {
            observe("h", 3.0);
            let snapshot = snapshot();
            assert_eq!(snapshot.histograms["h"].edges(), DEFAULT_BUCKETS);
            assert_eq!(snapshot.histograms["h"].count(), 1);
        });
    }
}
