//! Scoped timing spans keyed to the deterministic simulation clock.

use std::cell::Cell;
use std::time::Instant;

use crate::handle::Handle;
use crate::key::MetricKey;

thread_local! {
    /// Current span nesting depth on this thread. Depth is a per-thread
    /// property by construction: a scenario run executes on one thread,
    /// and RAII guarantees every guard restores the depth it took, so
    /// parallel runs on separate threads each nest from zero.
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// RAII guard for one span occurrence, created by [`crate::span`] or
/// [`Handle::span`].
///
/// Call [`SpanGuard::exit`] with the current simulation time to record both
/// the wall-clock and simulated durations. If the guard is instead dropped
/// (early return, panic unwinding), the span is still recorded with a
/// simulated duration of zero, so span counts stay truthful even on error
/// paths.
#[derive(Debug)]
pub struct SpanGuard {
    name: MetricKey,
    /// Wall-clock entry instant; `None` for disabled guards, which skip
    /// the clock read entirely — a disabled span must cost nothing on
    /// the simulation hot path.
    wall_start: Option<Instant>,
    sim_start_ms: u64,
    depth: u32,
    /// The registry to record into; `None` for guards minted while
    /// telemetry was disabled, whose exits are no-ops.
    sink: Option<Handle>,
}

impl SpanGuard {
    pub(crate) fn enter(name: MetricKey, sim_now_ms: u64, sink: Option<Handle>) -> Self {
        let depth = if sink.is_some() {
            DEPTH.with(|d| {
                let depth = d.get();
                d.set(depth + 1);
                depth
            })
        } else {
            0
        };
        Self {
            name,
            wall_start: sink.is_some().then(Instant::now),
            sim_start_ms: sim_now_ms,
            depth,
            sink,
        }
    }

    /// Ends the span at simulation time `sim_now_ms`, recording its wall
    /// and simulated durations in the registry it was opened against.
    pub fn exit(mut self, sim_now_ms: u64) {
        self.finish(sim_now_ms.saturating_sub(self.sim_start_ms));
    }

    fn finish(&mut self, sim_ms: u64) {
        let Some(sink) = self.sink.take() else {
            return;
        };
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let wall_ns = self
            .wall_start
            .map_or(0, |started| started.elapsed().as_nanos());
        sink.with_registry(|registry| {
            registry.span_complete(
                self.name.clone(),
                self.sim_start_ms,
                sim_ms,
                self.depth,
                wall_ns,
            );
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        // Fallback for guards not closed with `exit`: the simulated
        // duration is unknown at drop time, so record it as zero.
        self.finish(0);
    }
}
