//! The instance-first entry point: a cheaply clonable [`Handle`] owning
//! one [`Registry`] plus its enabled flag.
//!
//! Every recording operation in this crate goes through a `Handle`. The
//! process-global facade (`bz_obs::counter_inc` and friends) is a thin
//! wrapper over [`Handle::global`]; embedders that need isolation —
//! parallel sweep runs, unit tests — create their own handle with
//! [`Handle::isolated`] and thread it through the components they build,
//! so concurrent runs never share mutable metric state.

use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::hist::DEFAULT_BUCKETS;
use crate::key::MetricKey;
use crate::registry::{Registry, Snapshot};
use crate::span::SpanGuard;

/// The process-wide handle behind the crate-level facade.
static GLOBAL: OnceLock<Handle> = OnceLock::new();

/// A shared reference to one metrics registry and its enabled flag.
///
/// Cloning a `Handle` is an `Arc` clone: both clones record into the same
/// registry. Two handles created independently are fully isolated — this
/// is what gives parallel scenario runs byte-identical per-run exports
/// regardless of scheduling.
///
/// # Example
///
/// ```
/// let obs = bz_obs::Handle::isolated();
/// obs.counter_inc("wsn.packets.sent");
/// let span = obs.span("core.control_tick", 5_000);
/// span.exit(5_010);
/// let snapshot = obs.snapshot();
/// assert_eq!(snapshot.counters["wsn.packets.sent"], 1);
/// assert_eq!(snapshot.spans["core.control_tick"].sim_ms_total, 10);
/// ```
#[derive(Debug, Clone)]
pub struct Handle {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    enabled: AtomicBool,
    registry: Mutex<Registry>,
}

impl Handle {
    fn with_enabled(enabled: bool) -> Self {
        Self {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(enabled),
                registry: Mutex::new(Registry::new()),
            }),
        }
    }

    /// A fresh, empty, **disabled** handle (recording calls are no-ops
    /// until [`Handle::enable`]).
    #[must_use]
    pub fn new() -> Self {
        Self::with_enabled(false)
    }

    /// A fresh, empty, **enabled** handle — the per-run isolation
    /// constructor used by the sweep runner and by tests.
    #[must_use]
    pub fn isolated() -> Self {
        Self::with_enabled(true)
    }

    /// The process-global handle (created disabled on first use). All the
    /// crate-level facade functions operate on this handle, so components
    /// built without an explicit handle keep feeding the global registry.
    #[must_use]
    pub fn global() -> Self {
        GLOBAL.get_or_init(Self::new).clone()
    }

    /// True if `self` and `other` share the same registry.
    #[must_use]
    pub fn same_registry(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Turns metric collection on for this handle.
    pub fn enable(&self) {
        self.inner.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns metric collection off (already-recorded data is kept).
    pub fn disable(&self) {
        self.inner.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether collection is currently on. This is the one relaxed atomic
    /// load every disabled-path instrumentation call reduces to.
    #[must_use]
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Runs `f` against the registry.
    pub(crate) fn with_registry<T>(&self, f: impl FnOnce(&mut Registry) -> T) -> T {
        let mut guard = match self.inner.registry.lock() {
            Ok(guard) => guard,
            // A panic mid-update can only leave partially-recorded
            // metrics, never corrupt state worth abandoning telemetry
            // over.
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut guard)
    }

    /// Clears all recorded metrics and events (the enabled flag is
    /// untouched).
    pub fn reset(&self) {
        self.with_registry(Registry::reset);
    }

    /// Adds `delta` to counter `name` (saturating). `name` is anything
    /// convertible to a [`MetricKey`] — a `&'static str` literal or an
    /// owned `String` for per-entity keys like `wsn.node.21.sent`.
    #[inline]
    pub fn counter_add(&self, name: impl Into<MetricKey>, delta: u64) {
        if self.is_enabled() {
            self.with_registry(|registry| registry.counter_add(name.into(), delta));
        }
    }

    /// Adds one to counter `name`.
    #[inline]
    pub fn counter_inc(&self, name: impl Into<MetricKey>) {
        self.counter_add(name, 1);
    }

    /// Adds `delta` to counter `name` without taking ownership of the
    /// key: the key is cloned only on the counter's first update. Hot
    /// loops that increment a per-entity key (e.g. `wsn.node.21.sent`)
    /// hold the built key and call this to stay allocation-free.
    #[inline]
    pub fn counter_add_ref(&self, name: &MetricKey, delta: u64) {
        if self.is_enabled() {
            self.with_registry(|registry| registry.counter_add_ref(name, delta));
        }
    }

    /// Adds one to counter `name` by reference (see
    /// [`counter_add_ref`](Self::counter_add_ref)).
    #[inline]
    pub fn counter_inc_ref(&self, name: &MetricKey) {
        self.counter_add_ref(name, 1);
    }

    /// Sets gauge `name` to `value` at simulation time `t_ms`.
    #[inline]
    pub fn gauge_set(&self, name: impl Into<MetricKey>, t_ms: u64, value: f64) {
        if self.is_enabled() {
            self.with_registry(|registry| registry.gauge_set(name.into(), t_ms, value));
        }
    }

    /// Observes `value` into histogram `name` over
    /// [`DEFAULT_BUCKETS`](crate::DEFAULT_BUCKETS).
    #[inline]
    pub fn observe(&self, name: impl Into<MetricKey>, value: f64) {
        self.observe_in(name, DEFAULT_BUCKETS, value);
    }

    /// Observes `value` into histogram `name`, creating it over `buckets`
    /// on first use (later calls keep the original buckets).
    #[inline]
    pub fn observe_in(&self, name: impl Into<MetricKey>, buckets: &'static [f64], value: f64) {
        if self.is_enabled() {
            self.with_registry(|registry| registry.observe(name.into(), buckets, value));
        }
    }

    /// Samples every counter as a timestamped event at simulation time
    /// `t_ms`. Call at a fixed simulated cadence (e.g. once per simulated
    /// minute) to put counter trajectories, not just totals, in the
    /// export.
    pub fn record_counters(&self, t_ms: u64) {
        if self.is_enabled() {
            self.with_registry(|registry| registry.record_counters(t_ms));
        }
    }

    /// Opens a span named `name` at simulation time `sim_now_ms`,
    /// recording into this handle's registry. Close it with
    /// [`SpanGuard::exit`]; see [`SpanGuard`] for drop semantics.
    #[must_use]
    pub fn span(&self, name: impl Into<MetricKey>, sim_now_ms: u64) -> SpanGuard {
        let sink = self.is_enabled().then(|| self.clone());
        SpanGuard::enter(name.into(), sim_now_ms, sink)
    }

    /// An owned copy of the registry state.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        self.with_registry(|registry| registry.snapshot())
    }

    /// Writes the registry as JSONL (see [`Registry::write_jsonl`]).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from `out`.
    pub fn write_jsonl<W: Write>(&self, out: W) -> io::Result<()> {
        self.with_registry(|registry| registry.write_jsonl(out))
    }

    /// Number of events currently buffered (see
    /// [`Registry::events_len`]).
    #[must_use]
    pub fn events_len(&self) -> usize {
        self.with_registry(|registry| registry.events_len())
    }

    /// Writes buffered events from index `from` onward as JSONL lines and
    /// returns the new cursor (see [`Registry::write_events_from`]). This
    /// is the incremental telemetry tap: each tenant stream reader holds
    /// its own cursor and polls for the lines recorded since.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from `out`.
    pub fn write_events_from<W: Write>(&self, from: usize, out: W) -> io::Result<usize> {
        self.with_registry(|registry| registry.write_events_from(from, out))
    }

    /// Switches this handle's registry to streaming JSONL export: events
    /// are written to `sink` as they are recorded instead of being
    /// buffered (see [`Registry::stream_to`]). Pass a buffered writer —
    /// events arrive one line at a time.
    pub fn stream_to(&self, sink: Box<dyn Write + Send>) {
        self.with_registry(|registry| registry.stream_to(sink));
    }

    /// Whether this handle's registry is streaming events to a sink.
    #[must_use]
    pub fn is_streaming(&self) -> bool {
        self.with_registry(|registry| registry.is_streaming())
    }

    /// Ends streaming and writes the totals tail (see
    /// [`Registry::finish_stream`]).
    ///
    /// # Errors
    ///
    /// Returns the first error hit while streaming, or any error from the
    /// tail write.
    pub fn finish_stream(&self) -> io::Result<()> {
        self.with_registry(Registry::finish_stream)
    }

    /// Writes the registry's event stream as CSV (see
    /// [`Registry::write_csv`]).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from `out`.
    pub fn write_csv<W: Write>(&self, out: W) -> io::Result<()> {
        self.with_registry(|registry| registry.write_csv(out))
    }

    /// Renders the human-readable end-of-run summary of the registry.
    #[must_use]
    pub fn summary_table(&self) -> String {
        self.with_registry(|registry| registry.summary_table())
    }

    /// Serializes the registry state for checkpointing (see
    /// [`Registry::save_state`]).
    ///
    /// # Panics
    ///
    /// Panics if the registry is streaming; callers gate that combination
    /// up front.
    pub fn save_state(&self, w: &mut bz_state::Writer) {
        self.with_registry(|registry| registry.save_state(w));
    }

    /// Replaces the registry contents with previously saved state (see
    /// [`Registry::load_state`]). The enabled flag is untouched — it is
    /// runtime configuration, not simulation state.
    ///
    /// # Errors
    ///
    /// Returns a decode error if the bytes do not parse.
    pub fn load_state(&self, r: &mut bz_state::Reader<'_>) -> Result<(), bz_state::StateError> {
        self.with_registry(|registry| registry.load_state(r))
    }
}

impl Default for Handle {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_handles_do_not_share_state() {
        let a = Handle::isolated();
        let b = Handle::isolated();
        a.counter_add("c", 3);
        b.counter_add("c", 7);
        assert_eq!(a.snapshot().counters["c"], 3);
        assert_eq!(b.snapshot().counters["c"], 7);
        assert!(!a.same_registry(&b));
    }

    #[test]
    fn counter_add_ref_matches_owned_updates() {
        let by_ref = Handle::isolated();
        let by_value = Handle::isolated();
        let key: MetricKey = format!("wsn.node.{}.sent", 21).into();
        for _ in 0..5 {
            by_ref.counter_inc_ref(&key);
            by_value.counter_inc(format!("wsn.node.{}.sent", 21));
        }
        by_ref.counter_add_ref(&key, 3);
        by_value.counter_add(format!("wsn.node.{}.sent", 21), 3);
        assert_eq!(
            by_ref.snapshot().counters["wsn.node.21.sent"],
            by_value.snapshot().counters["wsn.node.21.sent"]
        );
    }

    #[test]
    fn clones_share_the_registry() {
        let a = Handle::isolated();
        let b = a.clone();
        a.counter_inc("c");
        b.counter_inc("c");
        assert_eq!(a.snapshot().counters["c"], 2);
        assert!(a.same_registry(&b));
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let handle = Handle::new();
        handle.counter_inc("c");
        handle.gauge_set("g", 0, 1.0);
        handle.observe("h", 1.0);
        handle.span("s", 0).exit(10);
        let snapshot = handle.snapshot();
        assert!(snapshot.counters.is_empty());
        assert!(snapshot.events.is_empty());
        assert!(snapshot.spans.is_empty());
    }

    #[test]
    fn spans_record_into_their_handle_only() {
        let a = Handle::isolated();
        let b = Handle::isolated();
        let span = a.span("s", 100);
        span.exit(250);
        assert_eq!(a.snapshot().spans["s"].sim_ms_total, 150);
        assert!(b.snapshot().spans.is_empty());
    }

    #[test]
    fn parallel_handles_export_identically_to_serial() {
        // The isolation guarantee behind the sweep runner: the bytes a run
        // exports depend only on what was recorded against its handle,
        // never on sibling threads.
        let record = |handle: &Handle| {
            for i in 0..50u64 {
                handle.counter_inc("packets");
                handle.gauge_set("depth", i, i as f64);
            }
            handle.record_counters(50);
            let mut bytes = Vec::new();
            handle.write_jsonl(&mut bytes).unwrap();
            bytes
        };
        let serial = record(&Handle::isolated());
        let outputs: Vec<Vec<u8>> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| record(&Handle::isolated())))
                .collect();
            workers.into_iter().map(|w| w.join().unwrap()).collect()
        });
        for bytes in outputs {
            assert_eq!(bytes, serial);
        }
    }
}
