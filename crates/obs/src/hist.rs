//! Fixed-bucket histograms.
//!
//! The BT-ADPT variance histogram in `bz-wsn` bins values between observed
//! extremes with constant memory; metrics histograms borrow the same
//! counters-per-slot idiom but fix the bucket edges up front, because a
//! metric's edges must mean the same thing in every exported run (a
//! re-binning histogram would make two runs incomparable).

/// Default bucket upper edges: a power-of-two ladder wide enough for
/// millisecond delays, send periods in seconds, and queue depths alike.
pub const DEFAULT_BUCKETS: &[f64] = &[
    0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
];

/// A histogram over fixed, caller-supplied bucket edges.
///
/// A value lands in the first bucket whose upper edge is `>=` the value;
/// values above the last edge land in the implicit overflow bucket, so
/// `counts()` has one more entry than `edges()`.
///
/// # Example
///
/// ```
/// use bz_obs::FixedHistogram;
///
/// let mut hist = FixedHistogram::new(&[1.0, 10.0]);
/// hist.observe(0.3); // first bucket
/// hist.observe(1.0); // still the first bucket: edges are inclusive
/// hist.observe(5.0); // second bucket
/// hist.observe(99.0); // overflow bucket
/// assert_eq!(hist.counts(), &[2, 1, 1]);
/// assert_eq!(hist.count(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FixedHistogram {
    edges: &'static [f64],
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl FixedHistogram {
    /// Creates a histogram over `edges` (ascending upper bucket edges).
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or not strictly ascending.
    #[must_use]
    pub fn new(edges: &'static [f64]) -> Self {
        assert!(!edges.is_empty(), "histogram needs at least one edge");
        assert!(
            edges.windows(2).all(|pair| pair[0] < pair[1]),
            "histogram edges must be strictly ascending"
        );
        Self {
            edges,
            counts: vec![0; edges.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bucket upper edges.
    #[must_use]
    pub fn edges(&self) -> &'static [f64] {
        self.edges
    }

    /// Per-bucket counters; the final entry is the overflow bucket.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation (∞ before any observation).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ before any observation).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Mean of all observations, or `None` before the first.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Records one observation. Non-finite values are counted in the
    /// overflow bucket but excluded from `sum`/`min`/`max`.
    pub fn observe(&mut self, value: f64) {
        self.count = self.count.saturating_add(1);
        let slot = if value.is_finite() {
            self.sum += value;
            self.min = self.min.min(value);
            self.max = self.max.max(value);
            self.edges
                .iter()
                .position(|&edge| value <= edge)
                .unwrap_or(self.edges.len())
        } else {
            self.edges.len()
        };
        self.counts[slot] = self.counts[slot].saturating_add(1);
    }
}

use bz_state::Persist;

impl Persist for FixedHistogram {
    fn save(&self, w: &mut bz_state::Writer) {
        w.put_len(self.edges.len());
        for &edge in self.edges {
            w.put_f64(edge);
        }
        self.counts.save(w);
        w.put_u64(self.count);
        w.put_f64(self.sum);
        w.put_f64(self.min);
        w.put_f64(self.max);
    }

    fn load(r: &mut bz_state::Reader<'_>) -> Result<Self, bz_state::StateError> {
        let n = r.take_len()?;
        let mut edges = Vec::with_capacity(n);
        for _ in 0..n {
            edges.push(r.take_f64()?);
        }
        // Edges are `&'static` by design. The only edge set production code
        // creates is DEFAULT_BUCKETS, so restoring normally re-points at
        // it; an unrecognized set (a custom test histogram) is leaked once,
        // which is bounded by the number of distinct restored histograms.
        let is_default = edges.len() == DEFAULT_BUCKETS.len()
            && edges
                .iter()
                .zip(DEFAULT_BUCKETS)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        let edges: &'static [f64] = if is_default {
            DEFAULT_BUCKETS
        } else {
            Box::leak(edges.into_boxed_slice())
        };
        let counts = Vec::<u64>::load(r)?;
        if counts.len() != edges.len() + 1 {
            return Err(bz_state::StateError::Invalid {
                what: "histogram counts",
                reason: format!(
                    "{} slot(s) for {} edge(s); expected {}",
                    counts.len(),
                    edges.len(),
                    edges.len() + 1
                ),
            });
        }
        Ok(Self {
            edges,
            counts,
            count: r.take_u64()?,
            sum: r.take_f64()?,
            min: r.take_f64()?,
            max: r.take_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_on_edges_fall_in_the_lower_bucket() {
        let mut hist = FixedHistogram::new(&[1.0, 2.0, 4.0]);
        for value in [1.0, 2.0, 4.0] {
            hist.observe(value);
        }
        assert_eq!(hist.counts(), &[1, 1, 1, 0]);
    }

    #[test]
    fn below_first_edge_and_overflow() {
        let mut hist = FixedHistogram::new(&[10.0]);
        hist.observe(-5.0);
        hist.observe(10.000_001);
        assert_eq!(hist.counts(), &[1, 1]);
        assert_eq!(hist.min(), -5.0);
        assert!((hist.max() - 10.000_001).abs() < 1e-12);
    }

    #[test]
    fn mean_and_sum_accumulate() {
        let mut hist = FixedHistogram::new(DEFAULT_BUCKETS);
        assert_eq!(hist.mean(), None);
        hist.observe(2.0);
        hist.observe(6.0);
        assert_eq!(hist.mean(), Some(4.0));
        assert_eq!(hist.sum(), 8.0);
        assert_eq!(hist.count(), 2);
    }

    #[test]
    fn non_finite_goes_to_overflow_without_poisoning_stats() {
        let mut hist = FixedHistogram::new(&[1.0]);
        hist.observe(f64::NAN);
        hist.observe(0.5);
        assert_eq!(hist.counts(), &[1, 1]);
        assert_eq!(hist.sum(), 0.5);
        assert_eq!(hist.count(), 2);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn rejects_unsorted_edges() {
        let _ = FixedHistogram::new(&[2.0, 1.0]);
    }
}
