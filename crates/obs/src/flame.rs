//! Span-stream flamegraph folding.
//!
//! Folds the recorded span event stream into Brendan Gregg's collapsed
//! stack format — one `outer;inner;leaf weight` line per distinct stack —
//! ready for `flamegraph.pl` or any compatible viewer. The weight is
//! **simulated** self-time in milliseconds (time in the span not covered
//! by child spans), so the emitted file is deterministic for a seeded
//! run; wall-clock timings stay in the summary table.
//!
//! Reconstruction relies on how [`crate::SpanGuard`] records spans: a
//! span's event is pushed when it *exits*, so children always precede
//! their parent in the stream, and the recorded depth tells us which
//! pending frames are whose children.

use std::collections::BTreeMap;

use crate::registry::{Event, Snapshot};

/// One reconstructed span occurrence awaiting its parent.
struct Frame {
    name: String,
    sim_ms: u64,
    children: Vec<Frame>,
}

/// Folds `snapshot`'s span events into collapsed-stack lines, sorted by
/// stack path. Stacks with zero self-time are omitted (they carry no
/// weight; their children still appear). Spans whose parent never exited
/// before the snapshot are emitted as roots of their own stacks.
#[must_use]
pub fn collapsed_stacks(snapshot: &Snapshot) -> String {
    let mut pending: Vec<Vec<Frame>> = Vec::new();
    for event in &snapshot.events {
        let Event::Span {
            name,
            sim_ms,
            depth,
            ..
        } = event
        else {
            continue;
        };
        let depth = *depth as usize;
        if pending.len() <= depth + 1 {
            pending.resize_with(depth + 2, Vec::new);
        }
        let children = std::mem::take(&mut pending[depth + 1]);
        pending[depth].push(Frame {
            name: name.to_string(),
            sim_ms: *sim_ms,
            children,
        });
    }

    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for level in &pending {
        for frame in level {
            fold(frame, "", &mut folded);
        }
    }
    let mut out = String::new();
    for (stack, weight) in &folded {
        out += &format!("{stack} {weight}\n");
    }
    out
}

fn fold(frame: &Frame, prefix: &str, folded: &mut BTreeMap<String, u64>) {
    let stack = if prefix.is_empty() {
        frame.name.clone()
    } else {
        format!("{prefix};{}", frame.name)
    };
    let child_total = frame
        .children
        .iter()
        .fold(0u64, |sum, c| sum.saturating_add(c.sim_ms));
    let self_ms = frame.sim_ms.saturating_sub(child_total);
    if self_ms > 0 {
        let slot = folded.entry(stack.clone()).or_insert(0);
        *slot = slot.saturating_add(self_ms);
    }
    for child in &frame.children {
        fold(child, &stack, folded);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn folds_nested_spans_into_self_time_stacks() {
        let mut registry = Registry::new();
        // Children exit (and record) before their parent, as SpanGuard does.
        registry.span_complete("identify", 0, 30, 1, 0);
        registry.span_complete("optimize", 30, 20, 1, 0);
        registry.span_complete("plan", 0, 100, 0, 0);
        let folded = collapsed_stacks(&registry.snapshot());
        assert_eq!(folded, "plan 50\nplan;identify 30\nplan;optimize 20\n");
    }

    #[test]
    fn repeated_stacks_aggregate_and_zero_self_time_is_omitted() {
        let mut registry = Registry::new();
        for tick in 0..3u64 {
            registry.span_complete("inner", tick * 100, 40, 1, 0);
            // The outer span is fully covered by its child: no self line.
            registry.span_complete("outer", tick * 100, 40, 0, 0);
        }
        let folded = collapsed_stacks(&registry.snapshot());
        assert_eq!(folded, "outer;inner 120\n");
    }

    #[test]
    fn orphaned_deep_spans_become_their_own_roots() {
        let mut registry = Registry::new();
        // Depth-1 span whose parent never exits before the snapshot.
        registry.span_complete("stranded", 0, 7, 1, 0);
        let folded = collapsed_stacks(&registry.snapshot());
        assert_eq!(folded, "stranded 7\n");
    }

    #[test]
    fn non_span_events_are_ignored() {
        let mut registry = Registry::new();
        registry.gauge_set("g", 0, 1.0);
        registry.counter_add("c", 1);
        registry.record_counters(0);
        assert_eq!(collapsed_stacks(&registry.snapshot()), "");
    }
}
