//! The metrics registry: named counters, gauges, histograms, span
//! aggregates, and the timestamped event stream behind the exporters.

use std::collections::BTreeMap;
use std::io::{self, Write};

use bz_state::Persist as _;

use crate::hist::FixedHistogram;
use crate::key::MetricKey;

/// Hard cap on buffered events; beyond it events are counted but dropped,
/// so a runaway run degrades to totals-only instead of exhausting memory.
pub const MAX_EVENTS: usize = 2_000_000;

/// One timestamped entry in the exported stream. All fields are functions
/// of the deterministic simulation alone — never of wall-clock time — so a
/// seeded run exports byte-identical events every time.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A counter's value sampled at a sim instant (see
    /// [`Registry::record_counters`]).
    Counter {
        /// Metric key.
        name: MetricKey,
        /// Simulation time of the sample, ms.
        t_ms: u64,
        /// Counter value at that instant.
        value: u64,
    },
    /// A gauge update.
    Gauge {
        /// Metric key.
        name: MetricKey,
        /// Simulation time of the update, ms.
        t_ms: u64,
        /// The new gauge value.
        value: f64,
    },
    /// A completed span.
    Span {
        /// Span key.
        name: MetricKey,
        /// Simulation time at span entry, ms.
        t_ms: u64,
        /// Simulated duration covered by the span, ms.
        sim_ms: u64,
        /// Nesting depth at entry (0 = outermost).
        depth: u32,
    },
}

/// Aggregate statistics of one span key.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SpanStats {
    /// Completed spans.
    pub count: u64,
    /// Total simulated time covered, ms.
    pub sim_ms_total: u64,
    /// Total wall-clock time spent, ns. **Not exported to JSONL/CSV** —
    /// wall time is nondeterministic and lives only in the summary table.
    pub wall_ns_total: u128,
    /// Largest single wall-clock duration, ns.
    pub wall_ns_max: u128,
}

/// An owned, inspectable copy of the registry state (see
/// [`crate::snapshot`]).
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter totals by key.
    pub counters: BTreeMap<MetricKey, u64>,
    /// Last-set gauge values by key.
    pub gauges: BTreeMap<MetricKey, f64>,
    /// Histograms by key.
    pub histograms: BTreeMap<MetricKey, FixedHistogram>,
    /// Span aggregates by key.
    pub spans: BTreeMap<MetricKey, SpanStats>,
    /// Buffered events in record order.
    pub events: Vec<Event>,
    /// Events discarded after [`MAX_EVENTS`] was reached.
    pub dropped_events: u64,
}

/// An open streaming JSONL destination (see [`Registry::stream_to`]).
struct StreamSink {
    sink: Box<dyn Write + Send>,
    /// First write error, reported back at [`Registry::finish_stream`];
    /// once set, further event writes are skipped.
    error: Option<io::Error>,
}

impl std::fmt::Debug for StreamSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamSink")
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

/// The mutable store behind the crate's global facade. It is a plain
/// struct so unit tests (and alternative embeddings) can drive one
/// directly without touching process-global state.
#[derive(Debug, Default)]
pub struct Registry {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    histograms: BTreeMap<MetricKey, FixedHistogram>,
    spans: BTreeMap<MetricKey, SpanStats>,
    events: Vec<Event>,
    dropped_events: u64,
    stream: Option<StreamSink>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn push_event(&mut self, event: Event) {
        if let Some(stream) = &mut self.stream {
            if stream.error.is_none() {
                if let Err(e) = write_event_line(&mut stream.sink, &event) {
                    stream.error = Some(e);
                }
            }
            return;
        }
        if self.events.len() < MAX_EVENTS {
            self.events.push(event);
        } else {
            self.dropped_events = self.dropped_events.saturating_add(1);
        }
    }

    /// Switches the registry to streaming export: every event recorded
    /// from now on is written to `sink` as a JSONL line immediately
    /// instead of being buffered (so long endurance runs are not bounded
    /// by [`MAX_EVENTS`]). Any events already buffered are flushed to the
    /// sink first, in record order. Close with
    /// [`Registry::finish_stream`], which appends the same totals tail
    /// [`Registry::write_jsonl`] produces — a streamed export of a
    /// deterministic run is byte-identical to the buffered one.
    pub fn stream_to(&mut self, sink: Box<dyn Write + Send>) {
        let mut stream = StreamSink { sink, error: None };
        for event in self.events.drain(..) {
            if stream.error.is_none() {
                if let Err(e) = write_event_line(&mut stream.sink, &event) {
                    stream.error = Some(e);
                }
            }
        }
        self.stream = Some(stream);
    }

    /// Whether the registry is currently streaming events to a sink.
    #[must_use]
    pub fn is_streaming(&self) -> bool {
        self.stream.is_some()
    }

    /// Ends streaming: writes the totals tail (counter/gauge/histogram/
    /// span totals and the meta line), flushes, and drops the sink. The
    /// registry reverts to buffered recording.
    ///
    /// # Errors
    ///
    /// Returns the first error hit while streaming events, or any error
    /// from writing the tail. A no-op `Ok(())` if no stream was open.
    pub fn finish_stream(&mut self) -> io::Result<()> {
        let Some(mut stream) = self.stream.take() else {
            return Ok(());
        };
        if let Some(error) = stream.error.take() {
            return Err(error);
        }
        self.write_totals(&mut stream.sink)?;
        stream.sink.flush()
    }

    /// Adds `delta` to the counter `name`, saturating at `u64::MAX`.
    pub fn counter_add(&mut self, name: impl Into<MetricKey>, delta: u64) {
        let slot = self.counters.entry(name.into()).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// [`counter_add`](Self::counter_add) by reference: the key is cloned
    /// only if the counter does not exist yet, so repeated updates against
    /// a caller-held per-entity key never allocate.
    pub fn counter_add_ref(&mut self, name: &MetricKey, delta: u64) {
        if let Some(slot) = self.counters.get_mut(name.as_str()) {
            *slot = slot.saturating_add(delta);
        } else {
            self.counter_add(name.clone(), delta);
        }
    }

    /// Sets gauge `name` to `value` and records a timestamped event.
    pub fn gauge_set(&mut self, name: impl Into<MetricKey>, t_ms: u64, value: f64) {
        let name = name.into();
        self.gauges.insert(name.clone(), value);
        self.push_event(Event::Gauge { name, t_ms, value });
    }

    /// Observes `value` into histogram `name`, creating it over `buckets`
    /// on first use. Later calls keep the original buckets.
    pub fn observe(&mut self, name: impl Into<MetricKey>, buckets: &'static [f64], value: f64) {
        self.histograms
            .entry(name.into())
            .or_insert_with(|| FixedHistogram::new(buckets))
            .observe(value);
    }

    /// Records a completed span occurrence.
    pub fn span_complete(
        &mut self,
        name: impl Into<MetricKey>,
        t_ms: u64,
        sim_ms: u64,
        depth: u32,
        wall_ns: u128,
    ) {
        let name = name.into();
        let stats = self.spans.entry(name.clone()).or_default();
        stats.count = stats.count.saturating_add(1);
        stats.sim_ms_total = stats.sim_ms_total.saturating_add(sim_ms);
        stats.wall_ns_total = stats.wall_ns_total.saturating_add(wall_ns);
        stats.wall_ns_max = stats.wall_ns_max.max(wall_ns);
        self.push_event(Event::Span {
            name,
            t_ms,
            sim_ms,
            depth,
        });
    }

    /// Samples every counter as a timestamped event (call this at a fixed
    /// simulated cadence to put counter trajectories in the export).
    pub fn record_counters(&mut self, t_ms: u64) {
        let samples: Vec<(MetricKey, u64)> =
            self.counters.iter().map(|(k, &v)| (k.clone(), v)).collect();
        for (name, value) in samples {
            self.push_event(Event::Counter { name, t_ms, value });
        }
    }

    /// Number of events currently buffered. Together with
    /// [`Registry::write_events_from`] this is the cursor space of the
    /// incremental tap: a reader that saw `events_len()` events is fully
    /// caught up.
    #[must_use]
    pub fn events_len(&self) -> usize {
        self.events.len()
    }

    /// Writes the buffered events starting at index `from` as JSONL lines
    /// (the same bytes [`Registry::write_jsonl`] would emit for them) and
    /// returns the new cursor — the index just past the last event
    /// written. A `from` beyond the buffer writes nothing and returns the
    /// current length, so a reader can poll with its last cursor
    /// unconditionally. This is the incremental per-tenant telemetry tap
    /// behind `bzctl serve`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from `out`.
    pub fn write_events_from<W: Write>(&self, from: usize, mut out: W) -> io::Result<usize> {
        for event in self.events.iter().skip(from) {
            write_event_line(&mut out, event)?;
        }
        Ok(self.events.len())
    }

    /// An owned copy of everything the registry holds.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
            spans: self.spans.clone(),
            events: self.events.clone(),
            dropped_events: self.dropped_events,
        }
    }

    /// Clears all metrics, events, and drop counts.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Writes the JSONL export: one JSON object per line — the event
    /// stream in record order, then per-key totals in sorted key order.
    ///
    /// Everything written is deterministic for a seeded run; wall-clock
    /// span timings are deliberately excluded (see
    /// `docs/OBSERVABILITY.md`).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from `out`.
    pub fn write_jsonl<W: Write>(&self, mut out: W) -> io::Result<()> {
        for event in &self.events {
            write_event_line(&mut out, event)?;
        }
        self.write_totals(&mut out)
    }

    /// The per-key totals tail shared by [`Registry::write_jsonl`] and
    /// [`Registry::finish_stream`], in sorted key order.
    fn write_totals<W: Write>(&self, out: &mut W) -> io::Result<()> {
        for (name, value) in &self.counters {
            writeln!(
                out,
                "{{\"kind\":\"counter_total\",\"name\":\"{}\",\"value\":{value}}}",
                escape(name)
            )?;
        }
        for (name, value) in &self.gauges {
            writeln!(
                out,
                "{{\"kind\":\"gauge_last\",\"name\":\"{}\",\"value\":{}}}",
                escape(name),
                json_f64(*value)
            )?;
        }
        for (name, hist) in &self.histograms {
            let edges: Vec<String> = hist.edges().iter().map(|&e| json_f64(e)).collect();
            let counts: Vec<String> = hist.counts().iter().map(u64::to_string).collect();
            writeln!(
                out,
                "{{\"kind\":\"histogram\",\"name\":\"{}\",\"edges\":[{}],\"counts\":[{}],\"count\":{},\"sum\":{}}}",
                escape(name),
                edges.join(","),
                counts.join(","),
                hist.count(),
                json_f64(hist.sum()),
            )?;
        }
        for (name, stats) in &self.spans {
            writeln!(
                out,
                "{{\"kind\":\"span_total\",\"name\":\"{}\",\"count\":{},\"sim_ms_total\":{}}}",
                escape(name),
                stats.count,
                stats.sim_ms_total
            )?;
        }
        writeln!(
            out,
            "{{\"kind\":\"meta\",\"dropped_events\":{}}}",
            self.dropped_events
        )
    }

    /// Writes the event stream as CSV with the columns
    /// `t_ms,kind,name,value,sim_ms,depth` (blank where not applicable).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from `out`.
    pub fn write_csv<W: Write>(&self, mut out: W) -> io::Result<()> {
        writeln!(out, "t_ms,kind,name,value,sim_ms,depth")?;
        for event in &self.events {
            match event {
                Event::Counter { name, t_ms, value } => {
                    writeln!(out, "{t_ms},counter,{name},{value},,")?;
                }
                Event::Gauge { name, t_ms, value } => {
                    writeln!(out, "{t_ms},gauge,{name},{},,", json_f64(*value))?;
                }
                Event::Span {
                    name,
                    t_ms,
                    sim_ms,
                    depth,
                } => writeln!(out, "{t_ms},span,{name},,{sim_ms},{depth}")?,
            }
        }
        Ok(())
    }

    /// Renders the human-readable end-of-run summary. This is the one
    /// place wall-clock span timings appear; it is intended for stderr /
    /// stdout, not for files that get diffed across runs.
    #[must_use]
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out += "spans (per-stage timing):\n";
            out += &format!(
                "  {:<34} {:>9} {:>12} {:>12} {:>12}\n",
                "name", "count", "sim total s", "wall mean µs", "wall max µs"
            );
            for (name, s) in &self.spans {
                let mean_us = if s.count == 0 {
                    0.0
                } else {
                    s.wall_ns_total as f64 / s.count as f64 / 1_000.0
                };
                out += &format!(
                    "  {:<34} {:>9} {:>12.1} {:>12.2} {:>12.2}\n",
                    name,
                    s.count,
                    s.sim_ms_total as f64 / 1_000.0,
                    mean_us,
                    s.wall_ns_max as f64 / 1_000.0,
                );
            }
        }
        if !self.counters.is_empty() {
            out += "counters:\n";
            for (name, value) in &self.counters {
                out += &format!("  {name:<34} {value:>12}\n");
            }
        }
        if !self.gauges.is_empty() {
            out += "gauges (last value):\n";
            for (name, value) in &self.gauges {
                out += &format!("  {name:<34} {value:>12.3}\n");
            }
        }
        if !self.histograms.is_empty() {
            out += "histograms:\n";
            for (name, hist) in &self.histograms {
                out += &format!(
                    "  {:<34} count {} mean {:.3} min {:.3} max {:.3}\n",
                    name,
                    hist.count(),
                    hist.mean().unwrap_or(0.0),
                    hist.min(),
                    hist.max()
                );
            }
        }
        if self.dropped_events > 0 {
            out += &format!("dropped events: {}\n", self.dropped_events);
        }
        out
    }
}

impl bz_state::Persist for Event {
    fn save(&self, w: &mut bz_state::Writer) {
        match self {
            Event::Counter { name, t_ms, value } => {
                w.put_u8(0);
                name.save(w);
                w.put_u64(*t_ms);
                w.put_u64(*value);
            }
            Event::Gauge { name, t_ms, value } => {
                w.put_u8(1);
                name.save(w);
                w.put_u64(*t_ms);
                w.put_f64(*value);
            }
            Event::Span {
                name,
                t_ms,
                sim_ms,
                depth,
            } => {
                w.put_u8(2);
                name.save(w);
                w.put_u64(*t_ms);
                w.put_u64(*sim_ms);
                w.put_u32(*depth);
            }
        }
    }

    fn load(r: &mut bz_state::Reader<'_>) -> Result<Self, bz_state::StateError> {
        match r.take_u8()? {
            0 => Ok(Event::Counter {
                name: MetricKey::load(r)?,
                t_ms: r.take_u64()?,
                value: r.take_u64()?,
            }),
            1 => Ok(Event::Gauge {
                name: MetricKey::load(r)?,
                t_ms: r.take_u64()?,
                value: r.take_f64()?,
            }),
            2 => Ok(Event::Span {
                name: MetricKey::load(r)?,
                t_ms: r.take_u64()?,
                sim_ms: r.take_u64()?,
                depth: r.take_u32()?,
            }),
            tag => Err(bz_state::StateError::BadTag {
                what: "obs::Event",
                tag: u64::from(tag),
            }),
        }
    }
}

/// Only the deterministic aggregates are checkpointed. Wall-clock
/// timing is process-local diagnostics (it never reaches JSONL/CSV
/// exports) and including it would make same-seed checkpoints
/// byte-unequal; a restored process starts its wall totals at zero.
impl bz_state::Persist for SpanStats {
    fn save(&self, w: &mut bz_state::Writer) {
        w.put_u64(self.count);
        w.put_u64(self.sim_ms_total);
    }

    fn load(r: &mut bz_state::Reader<'_>) -> Result<Self, bz_state::StateError> {
        Ok(Self {
            count: r.take_u64()?,
            sim_ms_total: r.take_u64()?,
            wall_ns_total: 0,
            wall_ns_max: 0,
        })
    }
}

impl Registry {
    /// Serializes every metric, buffered event, and drop count. The open
    /// stream (if any) is *not* part of the state — checkpointing a
    /// streaming registry is rejected because the streamed bytes are
    /// already on disk and replaying them after a resume would duplicate
    /// lines.
    ///
    /// # Panics
    ///
    /// Panics if the registry is currently streaming (see
    /// [`Registry::is_streaming`]); callers gate that combination up
    /// front.
    pub fn save_state(&self, w: &mut bz_state::Writer) {
        assert!(
            self.stream.is_none(),
            "cannot checkpoint a streaming registry"
        );
        self.counters.save(w);
        self.gauges.save(w);
        self.histograms.save(w);
        self.spans.save(w);
        self.events.save(w);
        w.put_u64(self.dropped_events);
    }

    /// Replaces this registry's contents with previously saved state. Any
    /// open stream is dropped unfinished.
    ///
    /// # Errors
    ///
    /// Returns a decode error (and leaves the registry unchanged) if the
    /// bytes do not parse.
    pub fn load_state(&mut self, r: &mut bz_state::Reader<'_>) -> Result<(), bz_state::StateError> {
        let counters = BTreeMap::load(r)?;
        let gauges = BTreeMap::load(r)?;
        let histograms = BTreeMap::load(r)?;
        let spans = BTreeMap::load(r)?;
        let events = Vec::load(r)?;
        let dropped_events = r.take_u64()?;
        *self = Self {
            counters,
            gauges,
            histograms,
            spans,
            events,
            dropped_events,
            stream: None,
        };
        Ok(())
    }
}

/// Serializes one event as its JSONL line (shared by the buffered
/// exporter and the streaming path, so both emit identical bytes).
fn write_event_line<W: Write>(out: &mut W, event: &Event) -> io::Result<()> {
    match event {
        Event::Counter { name, t_ms, value } => writeln!(
            out,
            "{{\"kind\":\"counter\",\"name\":\"{}\",\"t_ms\":{t_ms},\"value\":{value}}}",
            escape(name)
        ),
        Event::Gauge { name, t_ms, value } => writeln!(
            out,
            "{{\"kind\":\"gauge\",\"name\":\"{}\",\"t_ms\":{t_ms},\"value\":{}}}",
            escape(name),
            json_f64(*value)
        ),
        Event::Span {
            name,
            t_ms,
            sim_ms,
            depth,
        } => writeln!(
            out,
            "{{\"kind\":\"span\",\"name\":\"{}\",\"t_ms\":{t_ms},\"sim_ms\":{sim_ms},\"depth\":{depth}}}",
            escape(name)
        ),
    }
}

/// Escapes a metric key for embedding in a JSON string literal.
fn escape(name: &str) -> String {
    if name
        .chars()
        .all(|c| c.is_ascii_graphic() && c != '"' && c != '\\')
    {
        return name.to_owned();
    }
    let mut escaped = String::with_capacity(name.len() + 4);
    for c in name.chars() {
        match c {
            '"' => escaped.push_str("\\\""),
            '\\' => escaped.push_str("\\\\"),
            '\n' => escaped.push_str("\\n"),
            '\r' => escaped.push_str("\\r"),
            '\t' => escaped.push_str("\\t"),
            c if (c as u32) < 0x20 => escaped.push_str(&format!("\\u{:04x}", c as u32)),
            c => escaped.push(c),
        }
    }
    escaped
}

/// Formats an `f64` as a JSON number (`null` for non-finite values).
fn json_f64(value: f64) -> String {
    if value.is_finite() {
        let text = format!("{value}");
        // `{}` on f64 never emits exponents, so the result is always a
        // valid JSON number.
        text
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::DEFAULT_BUCKETS;

    #[test]
    fn counters_saturate_instead_of_overflowing() {
        let mut registry = Registry::new();
        registry.counter_add("c", u64::MAX - 1);
        registry.counter_add("c", 5);
        assert_eq!(registry.snapshot().counters["c"], u64::MAX);
    }

    #[test]
    fn record_counters_snapshots_all_keys_in_order() {
        let mut registry = Registry::new();
        registry.counter_add("b", 2);
        registry.counter_add("a", 1);
        registry.record_counters(1_000);
        let events = registry.snapshot().events;
        assert_eq!(
            events,
            vec![
                Event::Counter {
                    name: "a".into(),
                    t_ms: 1_000,
                    value: 1
                },
                Event::Counter {
                    name: "b".into(),
                    t_ms: 1_000,
                    value: 2
                },
            ]
        );
    }

    #[test]
    fn jsonl_round_trips_through_a_parser() {
        let mut registry = Registry::new();
        registry.counter_add("wsn.packets.sent", 3);
        registry.gauge_set("thermal.chiller.radiant_w", 2_000, 145.25);
        registry.observe("wsn.btadpt.send_period_s", DEFAULT_BUCKETS, 2.0);
        registry.span_complete("core.control_tick", 5_000, 0, 1, 12_345);
        registry.record_counters(60_000);

        let mut bytes = Vec::new();
        registry.write_jsonl(&mut bytes).unwrap();
        let text = String::from_utf8(bytes).unwrap();

        let mut kinds = std::collections::BTreeMap::new();
        for line in text.lines() {
            let object = parse_json_object(line)
                .unwrap_or_else(|| panic!("line is not a flat JSON object: {line}"));
            *kinds.entry(object["kind"].clone()).or_insert(0u32) += 1;
            if object["kind"] == "counter_total" && object["name"] == "wsn.packets.sent" {
                assert_eq!(object["value"], "3");
            }
            if object["kind"] == "gauge" {
                assert_eq!(object["t_ms"], "2000");
                assert_eq!(object["value"], "145.25");
            }
        }
        for expected in [
            "counter",
            "gauge",
            "span",
            "counter_total",
            "gauge_last",
            "histogram",
            "span_total",
            "meta",
        ] {
            assert!(kinds.contains_key(expected), "missing kind {expected}");
        }
    }

    #[test]
    fn csv_has_one_row_per_event_plus_header() {
        let mut registry = Registry::new();
        registry.gauge_set("g", 1, 0.5);
        registry.span_complete("s", 2, 1_000, 0, 1);
        let mut bytes = Vec::new();
        registry.write_csv(&mut bytes).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "t_ms,kind,name,value,sim_ms,depth");
        assert_eq!(lines[2], "2,span,s,,1000,0");
    }

    /// A cloneable byte sink for inspecting what a stream wrote.
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn bytes(&self) -> Vec<u8> {
            self.0.lock().unwrap().clone()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn record_sample(registry: &mut Registry) {
        registry.counter_add("wsn.packets.sent", 3);
        registry.gauge_set("thermal.chiller.radiant_w", 2_000, 145.25);
        registry.observe("wsn.btadpt.send_period_s", DEFAULT_BUCKETS, 2.0);
        registry.span_complete("core.control_tick", 5_000, 10, 1, 12_345);
        registry.record_counters(60_000);
    }

    #[test]
    fn streamed_export_matches_the_buffered_bytes() {
        let mut buffered = Registry::new();
        record_sample(&mut buffered);
        let mut expected = Vec::new();
        buffered.write_jsonl(&mut expected).unwrap();

        let sink = SharedBuf::default();
        let mut streaming = Registry::new();
        streaming.stream_to(Box::new(sink.clone()));
        assert!(streaming.is_streaming());
        record_sample(&mut streaming);
        // Streamed events are written through, not buffered.
        assert!(streaming.snapshot().events.is_empty());
        streaming.finish_stream().unwrap();
        assert!(!streaming.is_streaming());
        assert_eq!(sink.bytes(), expected);
    }

    #[test]
    fn stream_to_flushes_already_buffered_events_first() {
        let mut buffered = Registry::new();
        record_sample(&mut buffered);
        buffered.gauge_set("late", 70_000, 1.0);
        let mut expected = Vec::new();
        buffered.write_jsonl(&mut expected).unwrap();

        let sink = SharedBuf::default();
        let mut registry = Registry::new();
        record_sample(&mut registry);
        registry.stream_to(Box::new(sink.clone()));
        registry.gauge_set("late", 70_000, 1.0);
        registry.finish_stream().unwrap();
        assert_eq!(sink.bytes(), expected);
    }

    #[test]
    fn finish_stream_reports_the_first_write_error() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut registry = Registry::new();
        registry.stream_to(Box::new(Failing));
        registry.gauge_set("g", 0, 1.0);
        registry.gauge_set("g", 1, 2.0);
        let err = registry.finish_stream().unwrap_err();
        assert_eq!(err.to_string(), "disk full");
        // And the registry is usable (buffered) again afterwards.
        registry.gauge_set("g", 2, 3.0);
        assert_eq!(registry.snapshot().events.len(), 1);
    }

    #[test]
    fn saved_state_restores_to_byte_identical_exports() {
        let mut original = Registry::new();
        record_sample(&mut original);
        original.observe("custom.buckets", &[1.0, 2.0], 1.5);
        original.dropped_events = 3;

        let mut w = bz_state::Writer::new();
        original.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut restored = Registry::new();
        restored.gauge_set("stale", 1, 9.9); // must be wiped by the load
        restored
            .load_state(&mut bz_state::Reader::new(&bytes))
            .unwrap();

        let export = |registry: &Registry| {
            let mut out = Vec::new();
            registry.write_jsonl(&mut out).unwrap();
            out
        };
        assert_eq!(export(&restored), export(&original));
        let mut csv_original = Vec::new();
        original.write_csv(&mut csv_original).unwrap();
        let mut csv_restored = Vec::new();
        restored.write_csv(&mut csv_restored).unwrap();
        assert_eq!(csv_restored, csv_original);
        assert_eq!(
            restored.histograms["wsn.btadpt.send_period_s"].edges(),
            DEFAULT_BUCKETS
        );
        assert_eq!(restored.histograms["custom.buckets"].edges(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "streaming")]
    fn checkpointing_a_streaming_registry_is_rejected() {
        let mut registry = Registry::new();
        registry.stream_to(Box::new(Vec::new()));
        registry.save_state(&mut bz_state::Writer::new());
    }

    #[test]
    fn incremental_tap_reassembles_the_event_stream() {
        let mut registry = Registry::new();
        record_sample(&mut registry);
        let cursor = registry.events_len();
        let mut first = Vec::new();
        assert_eq!(registry.write_events_from(0, &mut first).unwrap(), cursor);
        registry.gauge_set("late", 70_000, 1.0);
        let mut second = Vec::new();
        let next = registry.write_events_from(cursor, &mut second).unwrap();
        assert_eq!(next, cursor + 1);
        // Catching up past the end is a clean no-op.
        let mut empty = Vec::new();
        assert_eq!(registry.write_events_from(next, &mut empty).unwrap(), next);
        assert!(empty.is_empty());
        // The tapped chunks concatenate to exactly the buffered event
        // lines of the full export.
        let mut full = Vec::new();
        registry.write_jsonl(&mut full).unwrap();
        let tapped = [first, second].concat();
        assert!(full.starts_with(&tapped));
    }

    #[test]
    fn event_cap_counts_drops() {
        let mut registry = Registry::new();
        for _ in 0..MAX_EVENTS + 10 {
            registry.gauge_set("g", 0, 0.0);
        }
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.events.len(), MAX_EVENTS);
        assert_eq!(snapshot.dropped_events, 10);
    }

    #[test]
    fn summary_mentions_every_section() {
        let mut registry = Registry::new();
        registry.counter_add("c", 1);
        registry.gauge_set("g", 0, 1.0);
        registry.observe("h", DEFAULT_BUCKETS, 1.0);
        registry.span_complete("s", 0, 1_000, 0, 500);
        let summary = registry.summary_table();
        for section in ["spans", "counters", "gauges", "histograms"] {
            assert!(summary.contains(section), "missing {section}:\n{summary}");
        }
    }

    /// Minimal flat-object JSON parser for round-trip checking: returns
    /// key → raw value text. Good enough for the exporter's own output.
    fn parse_json_object(line: &str) -> Option<std::collections::BTreeMap<String, String>> {
        let inner = line.strip_prefix('{')?.strip_suffix('}')?;
        let mut map = std::collections::BTreeMap::new();
        let mut rest = inner;
        while !rest.is_empty() {
            rest = rest.strip_prefix('"')?;
            let key_end = rest.find('"')?;
            let key = rest[..key_end].to_owned();
            rest = rest[key_end + 1..].strip_prefix(':')?;
            let value_end = if let Some(quoted) = rest.strip_prefix('"') {
                quoted.find('"').map(|i| i + 2)?
            } else if rest.starts_with('[') {
                rest.find(']').map(|i| i + 1)?
            } else {
                rest.find(',').unwrap_or(rest.len())
            };
            let value = rest[..value_end].trim_matches('"').to_owned();
            map.insert(key, value);
            rest = rest[value_end..]
                .strip_prefix(',')
                .unwrap_or(&rest[value_end..]);
        }
        Some(map)
    }
}
