//! Full-system checkpoint round-trip: a system restored from saved state
//! must continue **bit-identically** to the uninterrupted run — plant
//! physics, network randomness, adaptive schedulers, energy ledgers,
//! supervisor verdicts, and the decision log all have to line up exactly,
//! or resumed trials would diverge from their uninterrupted twins.

use bz_core::system::{BtMode, BubbleZeroSystem, SystemConfig};
use bz_simcore::NoiseKernel;
use bz_thermal::disturbance::DisturbanceSchedule;
use bz_thermal::plant::PlantConfig;
use bz_thermal::zone::SubspaceId;

fn config(bt_mode: BtMode) -> SystemConfig {
    config_with_noise(bt_mode, NoiseKernel::default())
}

fn config_with_noise(bt_mode: BtMode, noise: NoiseKernel) -> SystemConfig {
    let mut config = SystemConfig::paper_deployment(
        PlantConfig::bubble_zero_lab()
            .with_noise(noise)
            .with_disturbances(DisturbanceSchedule::figure10_afternoon()),
    );
    config.bt_mode = bt_mode;
    config.record_decisions = true;
    config.enable_sniffer = true;
    config
}

/// Asserts that two systems are observationally identical, bit for bit.
fn assert_identical(a: &BubbleZeroSystem, b: &BubbleZeroSystem) {
    assert_eq!(a.now(), b.now());
    for id in SubspaceId::ALL {
        assert_eq!(a.plant().zone_state(id), b.plant().zone_state(id), "{id}");
        assert_eq!(
            a.plant().zone_dew_point(id).get().to_bits(),
            b.plant().zone_dew_point(id).get().to_bits(),
            "{id} dew"
        );
    }
    assert_eq!(a.network().stats(), b.network().stats());
    assert_eq!(a.commands(), b.commands());
    assert_eq!(a.last_radiant_decisions(), b.last_radiant_decisions());
    assert_eq!(
        a.last_ventilation_decisions(),
        b.last_ventilation_decisions()
    );
    assert_eq!(a.decision_log(), b.decision_log());
    assert_eq!(a.bt_device_reports(), b.bt_device_reports());
    assert_eq!(
        a.supervisor().detections().len(),
        b.supervisor().detections().len()
    );
    let (sa, sb) = (a.sniffer().unwrap(), b.sniffer().unwrap());
    assert_eq!(sa.len(), sb.len());
    for i in 0..a.bt_stream_count() {
        assert_eq!(
            a.bt_stream_send_period(i),
            b.bt_stream_send_period(i),
            "stream {i}"
        );
    }
}

fn round_trip(bt_mode: BtMode, warmup_s: u64, tail_s: u64) {
    let mut original = BubbleZeroSystem::with_obs(config(bt_mode), bz_obs::Handle::isolated());
    original.run_seconds(warmup_s);

    let mut w = bz_state::Writer::new();
    original.save_state(&mut w);
    let bytes = w.into_bytes();

    // Restore into a *fresh process stand-in*: a new system built from the
    // same config, with its own isolated metric registry.
    let mut restored = BubbleZeroSystem::with_obs(config(bt_mode), bz_obs::Handle::isolated());
    restored
        .load_state(&mut bz_state::Reader::new(&bytes))
        .expect("load");
    assert_identical(&original, &restored);

    // Both runs must now evolve in lockstep, second by second.
    for _ in 0..tail_s {
        original.step_second();
        restored.step_second();
    }
    assert_identical(&original, &restored);

    // And the metric registries (the source of every export) must agree.
    let (mut ja, mut jb) = (Vec::new(), Vec::new());
    original.obs().write_jsonl(&mut ja).unwrap();
    restored.obs().write_jsonl(&mut jb).unwrap();
    assert_eq!(ja, jb, "metric exports must match after resume");
}

/// Kill→resume under an explicit noise kernel: an uninterrupted run and a
/// run killed at `warmup_s` then resumed from its checkpoint must emit
/// byte-identical exports through the full horizon.
fn kill_resume_under(noise: NoiseKernel) {
    let cfg = || config_with_noise(BtMode::Adaptive, noise);
    let (warmup_s, tail_s) = (150u64, 150u64);

    let mut uninterrupted = BubbleZeroSystem::with_obs(cfg(), bz_obs::Handle::isolated());
    uninterrupted.run_seconds(warmup_s + tail_s);

    let mut victim = BubbleZeroSystem::with_obs(cfg(), bz_obs::Handle::isolated());
    victim.run_seconds(warmup_s);
    let mut w = bz_state::Writer::new();
    victim.save_state(&mut w);
    let bytes = w.into_bytes();
    drop(victim); // the "kill": nothing survives but the checkpoint bytes

    let mut resumed = BubbleZeroSystem::with_obs(cfg(), bz_obs::Handle::isolated());
    resumed
        .load_state(&mut bz_state::Reader::new(&bytes))
        .expect("load");
    resumed.run_seconds(tail_s);

    assert_identical(&uninterrupted, &resumed);
    let (mut ja, mut jb) = (Vec::new(), Vec::new());
    uninterrupted.obs().write_jsonl(&mut ja).unwrap();
    resumed.obs().write_jsonl(&mut jb).unwrap();
    assert_eq!(
        ja, jb,
        "{noise} kill->resume exports must match the uninterrupted run"
    );
}

#[test]
fn kill_resume_is_byte_identical_under_v2() {
    kill_resume_under(NoiseKernel::V2);
}

#[test]
fn kill_resume_is_byte_identical_under_v1() {
    kill_resume_under(NoiseKernel::V1);
}

/// The checkpoint carries the noise kernel inside every Rng payload, so a
/// V1 checkpoint restored into a V2-configured system must continue as a
/// V1 run — the saved kernel wins over the fresh config.
#[test]
fn restored_checkpoint_keeps_the_saved_noise_kernel() {
    let mut original = BubbleZeroSystem::with_obs(
        config_with_noise(BtMode::Adaptive, NoiseKernel::V1),
        bz_obs::Handle::isolated(),
    );
    original.run_seconds(120);
    let mut w = bz_state::Writer::new();
    original.save_state(&mut w);
    let bytes = w.into_bytes();

    let mut restored = BubbleZeroSystem::with_obs(
        config_with_noise(BtMode::Adaptive, NoiseKernel::V2),
        bz_obs::Handle::isolated(),
    );
    restored
        .load_state(&mut bz_state::Reader::new(&bytes))
        .expect("load");
    for _ in 0..120 {
        original.step_second();
        restored.step_second();
    }
    assert_identical(&original, &restored);
}

#[test]
fn adaptive_system_round_trips_bit_identically() {
    round_trip(BtMode::Adaptive, 180, 180);
}

#[test]
fn fixed_system_round_trips_bit_identically() {
    round_trip(BtMode::Fixed, 90, 90);
}

#[test]
fn saved_state_is_deterministic() {
    let mut a = BubbleZeroSystem::with_obs(config(BtMode::Adaptive), bz_obs::Handle::isolated());
    let mut b = BubbleZeroSystem::with_obs(config(BtMode::Adaptive), bz_obs::Handle::isolated());
    a.run_seconds(120);
    b.run_seconds(120);
    let (mut wa, mut wb) = (bz_state::Writer::new(), bz_state::Writer::new());
    a.save_state(&mut wa);
    b.save_state(&mut wb);
    assert_eq!(
        wa.into_bytes(),
        wb.into_bytes(),
        "same seed + same tick must serialize identically"
    );
}

#[test]
fn scheduler_kind_mismatch_is_rejected() {
    let mut adaptive =
        BubbleZeroSystem::with_obs(config(BtMode::Adaptive), bz_obs::Handle::isolated());
    adaptive.run_seconds(30);
    let mut w = bz_state::Writer::new();
    adaptive.save_state(&mut w);
    let bytes = w.into_bytes();

    let mut fixed = BubbleZeroSystem::with_obs(config(BtMode::Fixed), bz_obs::Handle::isolated());
    let err = fixed
        .load_state(&mut bz_state::Reader::new(&bytes))
        .expect_err("kind mismatch must be rejected");
    assert!(
        err.to_string().contains("bt_mode"),
        "diagnostic should name the mismatch: {err}"
    );
}

#[test]
fn truncated_state_errors_cleanly() {
    let mut system =
        BubbleZeroSystem::with_obs(config(BtMode::Adaptive), bz_obs::Handle::isolated());
    system.run_seconds(60);
    let mut w = bz_state::Writer::new();
    system.save_state(&mut w);
    let bytes = w.into_bytes();

    for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
        let mut victim =
            BubbleZeroSystem::with_obs(config(BtMode::Adaptive), bz_obs::Handle::isolated());
        victim
            .load_state(&mut bz_state::Reader::new(&bytes[..cut]))
            .expect_err("truncated state must error, not panic");
    }
}
