//! End-to-end acceptance of the bundled chaos scenario: the system must
//! detect every injected fault, degrade only the faulted panel's
//! subspaces, avoid condensation while degraded, recover after repair,
//! and export byte-identical metrics for the same seed.

use bz_core::chaos::{ChaosScenario, AFFECTED_THRESHOLD_MIN};

fn run_once() -> (bz_core::chaos::ResilienceReport, Vec<u8>) {
    let obs = bz_obs::Handle::isolated();
    obs.enable();
    let report = ChaosScenario::bundled_basic().run_with_obs(obs.clone());
    let mut jsonl = Vec::new();
    obs.write_jsonl(&mut jsonl).expect("export never fails");
    (report, jsonl)
}

#[test]
fn bundled_scenario_degrades_gracefully_and_recovers() {
    let (report, _) = run_once();

    // The supervisor noticed the fault burst promptly (the pump watchdog
    // needs a couple of probe windows, so "promptly" is minutes).
    let ttd = report.time_to_detect_s.expect("faults must be detected");
    assert!(ttd > 0.0 && ttd < 900.0, "ttd {ttd}");
    // And the system settled back into the comfort band after repair.
    let ttr = report.time_to_recover_s.expect("system must recover");
    assert!((0.0..1_800.0).contains(&ttr), "ttr {ttr}");
    assert!(report.detections >= 3, "detections {}", report.detections);
    assert!(report.recoveries >= 3, "recoveries {}", report.recoveries);

    // Panel 0 (subspaces 1–2) carries every fault; subspaces 3–4 must
    // ride through inside the comfort band.
    assert!(
        (1..=2).contains(&report.subspaces_affected),
        "affected {}",
        report.subspaces_affected
    );
    let [v1, v2, v3, v4] = report.violation_minutes;
    assert!(v1 + v2 > 1.0, "faulted panel should degrade: {v1} + {v2}");
    assert!(v3 < AFFECTED_THRESHOLD_MIN, "Subsp3 degraded: {v3} min");
    assert!(v4 < AFFECTED_THRESHOLD_MIN, "Subsp4 degraded: {v4} min");

    // Safe mode's whole job: no condensation even with the dew-margin
    // inputs untrustworthy and the recycle pump seized.
    assert!(
        report.condensate_kg < 0.01,
        "condensate {} kg",
        report.condensate_kg
    );
}

#[test]
fn same_seed_exports_are_byte_identical() {
    let (report_a, jsonl_a) = run_once();
    let (report_b, jsonl_b) = run_once();
    assert!(!jsonl_a.is_empty());
    assert_eq!(report_a, report_b);
    assert_eq!(jsonl_a, jsonl_b);
}
