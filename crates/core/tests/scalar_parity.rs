//! Byte-identity regression gate for the hot-path optimizations.
//!
//! The fast path (batched zone stepping, single-channel sensor reads,
//! batched event drains, allocation-free counters) must be *invisible* in
//! every export: a trial driven through the optimized code produces
//! metric JSONL and CSV files byte-identical to the scalar reference
//! path, and leaves the plant in a bit-identical physical state. The
//! reference path is the pre-optimization code, preserved behind
//! `PlantConfig::scalar_reference` (env: `BZ_SCALAR_REFERENCE`).
//!
//! The contract is *per noise version*: V1 and V2 emit different bit
//! streams by design, but within each kernel the scalar and fast paths
//! must agree bytewise, so the parity trial runs once per kernel.

use bz_core::system::{BubbleZeroSystem, SystemConfig};
use bz_obs::Handle;
use bz_simcore::NoiseKernel;
use bz_thermal::disturbance::DisturbanceSchedule;
use bz_thermal::plant::PlantConfig;
use bz_thermal::zone::SubspaceId;

const SEED: u64 = 0x5EED_0001;
const MINUTES: u64 = 10;

/// Bit patterns of the end-of-run physical state.
fn plant_fingerprint(system: &BubbleZeroSystem) -> Vec<u64> {
    let plant = system.plant();
    let mut bits = Vec::new();
    for s in 0..4 {
        let state = plant.zone_state(SubspaceId::from_index(s));
        bits.push(state.temperature.get().to_bits());
        bits.push(state.humidity_ratio.get().to_bits());
        bits.push(state.co2.get().to_bits());
    }
    for panel in 0..2 {
        bits.push(plant.panel_surface(panel).get().to_bits());
        bits.push(plant.loop_mixed_temp(panel).get().to_bits());
    }
    bits.push(plant.radiant_tank_temperature().get().to_bits());
    bits.push(plant.vent_tank_temperature().get().to_bits());
    let meters = plant.meters();
    bits.push(meters.radiant_chiller.get().to_bits());
    bits.push(meters.vent_chiller.get().to_bits());
    bits.push(meters.pumps.get().to_bits());
    bits.push(meters.fans.get().to_bits());
    bits
}

/// Runs the bundled trial scenario and returns (JSONL, CSV, state bits).
fn run_trial(scalar_reference: bool, noise: NoiseKernel) -> (Vec<u8>, Vec<u8>, Vec<u64>) {
    let plant = PlantConfig::bubble_zero_lab()
        .with_seed(SEED ^ 0x9E37)
        .with_noise(noise)
        .with_disturbances(DisturbanceSchedule::figure10_afternoon())
        .with_scalar_reference(scalar_reference);
    let config = SystemConfig {
        seed: SEED,
        ..SystemConfig::paper_deployment(plant)
    };
    let obs = Handle::isolated();
    let mut system = BubbleZeroSystem::with_obs(config, obs.clone());
    for minute in 1..=MINUTES {
        system.run_seconds(60);
        obs.record_counters(minute * 60_000);
    }
    let mut jsonl = Vec::new();
    obs.write_jsonl(&mut jsonl).expect("jsonl export");
    let mut csv = Vec::new();
    obs.write_csv(&mut csv).expect("csv export");
    let bits = plant_fingerprint(&system);
    (jsonl, csv, bits)
}

fn assert_parity(noise: NoiseKernel) {
    let (jsonl_ref, csv_ref, bits_ref) = run_trial(true, noise);
    let (jsonl_fast, csv_fast, bits_fast) = run_trial(false, noise);

    assert!(!jsonl_ref.is_empty(), "reference export must not be empty");
    assert!(
        jsonl_ref.len() > 1_000,
        "export suspiciously small: {} bytes",
        jsonl_ref.len()
    );
    assert_eq!(
        jsonl_ref, jsonl_fast,
        "{noise} fast-path JSONL export diverged from the scalar reference"
    );
    assert_eq!(
        csv_ref, csv_fast,
        "{noise} fast-path CSV export diverged from the scalar reference"
    );
    assert_eq!(
        bits_ref, bits_fast,
        "{noise} fast-path plant state diverged from the scalar reference"
    );
}

#[test]
fn fast_path_exports_are_byte_identical_to_the_scalar_reference_under_v1() {
    assert_parity(NoiseKernel::V1);
}

#[test]
fn fast_path_exports_are_byte_identical_to_the_scalar_reference_under_v2() {
    assert_parity(NoiseKernel::V2);
}
