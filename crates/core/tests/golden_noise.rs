//! Golden regression gate for the noise-kernel versioning seam.
//!
//! The V1 (Box–Muller) noise kernel is the reference for every export
//! produced before the ziggurat kernel landed. These checksums were
//! captured from the tree *immediately before* the `NoiseKernel` seam was
//! introduced; a trial run with `BZ_NOISE=v1` must keep reproducing them
//! byte-for-byte forever. If this test fails, V1 compatibility is broken
//! and historical exports are no longer reproducible.

use bz_core::system::{BubbleZeroSystem, SystemConfig};
use bz_obs::Handle;
use bz_simcore::NoiseKernel;
use bz_thermal::disturbance::DisturbanceSchedule;
use bz_thermal::plant::PlantConfig;
use bz_thermal::zone::SubspaceId;

const SEED: u64 = 0x5EED_0001;
const MINUTES: u64 = 10;

/// CRC-64/XZ of the metric JSONL export of the 10-minute golden trial.
const GOLDEN_JSONL_CRC: u64 = 0x4643_c1a7_8a7f_2b9b;
/// CRC-64/XZ of the metric CSV export of the 10-minute golden trial.
const GOLDEN_CSV_CRC: u64 = 0x3116_fa4c_68fb_1884;
/// CRC-64/XZ of the end-of-run plant fingerprint bit patterns.
const GOLDEN_STATE_CRC: u64 = 0xdb2c_f281_6d33_5c30;

fn plant_fingerprint(system: &BubbleZeroSystem) -> Vec<u64> {
    let plant = system.plant();
    let mut bits = Vec::new();
    for s in 0..4 {
        let state = plant.zone_state(SubspaceId::from_index(s));
        bits.push(state.temperature.get().to_bits());
        bits.push(state.humidity_ratio.get().to_bits());
        bits.push(state.co2.get().to_bits());
    }
    for panel in 0..2 {
        bits.push(plant.panel_surface(panel).get().to_bits());
        bits.push(plant.loop_mixed_temp(panel).get().to_bits());
    }
    bits.push(plant.radiant_tank_temperature().get().to_bits());
    bits.push(plant.vent_tank_temperature().get().to_bits());
    let meters = plant.meters();
    bits.push(meters.radiant_chiller.get().to_bits());
    bits.push(meters.vent_chiller.get().to_bits());
    bits.push(meters.pumps.get().to_bits());
    bits.push(meters.fans.get().to_bits());
    bits
}

fn run_trial() -> (Vec<u8>, Vec<u8>, Vec<u64>) {
    let plant = PlantConfig::bubble_zero_lab()
        .with_seed(SEED ^ 0x9E37)
        .with_noise(NoiseKernel::V1)
        .with_disturbances(DisturbanceSchedule::figure10_afternoon());
    let config = SystemConfig {
        seed: SEED,
        ..SystemConfig::paper_deployment(plant)
    };
    let obs = Handle::isolated();
    let mut system = BubbleZeroSystem::with_obs(config, obs.clone());
    for minute in 1..=MINUTES {
        system.run_seconds(60);
        obs.record_counters(minute * 60_000);
    }
    let mut jsonl = Vec::new();
    obs.write_jsonl(&mut jsonl).expect("jsonl export");
    let mut csv = Vec::new();
    obs.write_csv(&mut csv).expect("csv export");
    let bits = plant_fingerprint(&system);
    (jsonl, csv, bits)
}

fn state_crc(bits: &[u64]) -> u64 {
    let mut bytes = Vec::with_capacity(bits.len() * 8);
    for b in bits {
        bytes.extend_from_slice(&b.to_le_bytes());
    }
    bz_state::crc64::checksum(&bytes)
}

#[test]
fn v1_noise_reproduces_the_pre_seam_golden_exports() {
    let (jsonl, csv, bits) = run_trial();
    if std::env::var("BZ_GOLDEN_PRINT").is_ok() {
        println!(
            "GOLDEN_JSONL_CRC: {:#018x}",
            bz_state::crc64::checksum(&jsonl)
        );
        println!("GOLDEN_CSV_CRC: {:#018x}", bz_state::crc64::checksum(&csv));
        println!("GOLDEN_STATE_CRC: {:#018x}", state_crc(&bits));
        return;
    }
    assert_eq!(
        bz_state::crc64::checksum(&jsonl),
        GOLDEN_JSONL_CRC,
        "V1 JSONL export diverged from the golden capture"
    );
    assert_eq!(
        bz_state::crc64::checksum(&csv),
        GOLDEN_CSV_CRC,
        "V1 CSV export diverged from the golden capture"
    );
    assert_eq!(
        state_crc(&bits),
        GOLDEN_STATE_CRC,
        "V1 plant fingerprint diverged from the golden capture"
    );
}
