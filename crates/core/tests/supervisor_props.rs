//! Property tests: whatever garbage a sensor stream carries — NaN,
//! infinities, impossible magnitudes, wild jumps — every reading the
//! supervisor passes to a controller is finite and physically plausible,
//! and a channel is only ever *trusted* on the strength of accepted
//! readings.

use bz_core::supervisor::{SensorHealthSupervisor, SupervisorConfig};
use bz_wsn::message::DataType;
use proptest::prelude::*;

/// Decodes a generated `(selector, magnitude)` pair into a reading,
/// mixing the special values a broken sensor or codec can emit.
fn decode_value(selector: u8, magnitude: f64) -> f64 {
    match selector % 8 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => magnitude * 1.0e9,
        4 => -magnitude.abs(),
        _ => magnitude,
    }
}

/// The supervisor's plausibility range for the quantities under test.
fn range_for(data_type: DataType) -> (f64, f64) {
    match data_type {
        DataType::Temperature => (-5.0, 55.0),
        DataType::Humidity => (0.0, 100.0),
        DataType::Co2 => (50.0, 10_000.0),
        _ => unreachable!("not generated"),
    }
}

proptest! {
    #[test]
    fn accepted_readings_are_always_finite_and_in_range(
        readings in proptest::collection::vec((0u8..8, -200.0f64..200.0), 1..120),
        type_selector in 0u8..3,
        channel in 100u16..300,
        step_s in 1u64..10,
    ) {
        let data_type = match type_selector {
            0 => DataType::Temperature,
            1 => DataType::Humidity,
            _ => DataType::Co2,
        };
        let (lo, hi) = range_for(data_type);
        let mut supervisor = SensorHealthSupervisor::new(SupervisorConfig::default())
            .with_obs(bz_obs::Handle::isolated());
        let mut last_accept_t = None;
        for (i, &(selector, magnitude)) in readings.iter().enumerate() {
            let t = (i as u64 * step_s) as f64;
            let value = decode_value(selector, magnitude);
            if supervisor.validate(t, data_type, channel, value).is_ok() {
                prop_assert!(value.is_finite(), "accepted non-finite {value}");
                prop_assert!(
                    (lo..=hi).contains(&value),
                    "accepted {value} outside [{lo}, {hi}] for {data_type:?}"
                );
                last_accept_t = Some(t);
            }
        }
        // Trust exists only on the strength of a fresh accepted reading.
        let end_t = (readings.len() as u64 * step_s) as f64;
        if supervisor.channel_trusted(data_type, channel, end_t) {
            let at = last_accept_t.expect("trusted channel must have accepted a reading");
            prop_assert!(end_t - at <= supervisor.config().staleness_s);
        }
    }
}
