//! The paper's experiments as runnable scenarios.
//!
//! - [`AfternoonTrial`] — the §V-A trial behind Fig. 10 and Fig. 11:
//!   13:00–14:45, boot from outdoor conditions, 15 s door opening at
//!   14:05, 2 min opening at 14:25, steady-state COP metering in between.
//! - [`NetworkTrial`] — the §V-C trial behind Fig. 12–15: five hours with
//!   door/window events every ~30 minutes, full BT-ADPT decision logging.
//! - [`VarianceReplay`] — offline re-clustering of the logged variance
//!   streams at different histogram sizes against the exact oracle
//!   (Fig. 12(a), Fig. 13).

use bz_simcore::Rng;
use bz_simcore::{SimDuration, SimTime, TraceRecorder};
use bz_thermal::disturbance::DisturbanceSchedule;
use bz_thermal::plant::PlantConfig;
use bz_thermal::zone::SubspaceId;
use bz_wsn::channel::ChannelStats;
use bz_wsn::histogram::{classify, ExactClusterer, Stability, VarianceHistogram};
use bz_wsn::message::DataType;

use crate::metrics::CopSummary;
use crate::system::{BtDeviceReport, BtMode, BubbleZeroSystem, DecisionRecord, SystemConfig};

/// When the Fig. 10 trial starts on the wall clock (13:00).
pub const TRIAL_START_HOUR: u64 = 13;

/// The §V-A afternoon trial (Fig. 10, Fig. 11).
#[derive(Debug, Clone)]
pub struct AfternoonTrial {
    config: SystemConfig,
    /// Total trial length.
    pub duration: SimDuration,
    /// Trace recording interval.
    pub record_every: SimDuration,
    /// Steady-state metering window for the COP accounting.
    pub meter_window: (SimTime, SimTime),
}

/// Everything the afternoon trial produces.
#[derive(Debug)]
pub struct TrialOutcome {
    /// Recorded series: `SubspN.temperature`, `SubspN.dew_point`,
    /// `outdoor.temperature`, `outdoor.dew_point`, `panelN.surface`,
    /// `panelN.mix_temp`, `radiant.heat_w`, `vent.heat_w`.
    pub trace: TraceRecorder,
    /// COP accounting over the steady-state window.
    pub cop: CopSummary,
    /// Total condensate formed on the panels, kg (must be ~0).
    pub panel_condensate_kg: f64,
    /// Channel statistics over the trial.
    pub channel: ChannelStats,
}

impl AfternoonTrial {
    /// The paper's exact setup.
    #[must_use]
    pub fn paper_setup() -> Self {
        let plant = PlantConfig::bubble_zero_lab()
            .with_disturbances(DisturbanceSchedule::figure10_afternoon());
        Self {
            config: SystemConfig::paper_deployment(plant),
            duration: SimDuration::from_mins(105),
            record_every: SimDuration::from_secs(15),
            meter_window: (SimTime::from_mins(40), SimTime::from_mins(62)),
        }
    }

    /// Same trial with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self.config.plant = self.config.plant.clone().with_seed(seed ^ 0x9E37);
        self
    }

    /// Access to the underlying system configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Runs the trial to completion.
    #[must_use]
    pub fn run(self) -> TrialOutcome {
        let mut system = BubbleZeroSystem::new(self.config);
        let mut trace = TraceRecorder::new();
        let record_every_s = self.record_every.as_millis().div_ceil(1_000).max(1);
        let total_s = self.duration.as_millis() / 1_000;
        let (meter_start, meter_end) = self.meter_window;
        let mut cop: Option<CopSummary> = None;
        let mut meters_reset = false;

        record_state(&mut trace, &system);
        for second in 1..=total_s {
            system.step_second();
            let now = system.now();
            if !meters_reset && now >= meter_start {
                // Begin the steady-state accounting window.
                // (Resetting via the plant is destructive to prior meters,
                // which the trial no longer needs.)
                system_plant_reset(&mut system);
                meters_reset = true;
            }
            if cop.is_none() && now >= meter_end {
                cop = Some(CopSummary::from_meters(system.plant().meters()));
            }
            if second % record_every_s == 0 {
                record_state(&mut trace, &system);
            }
        }

        TrialOutcome {
            trace,
            cop: cop.expect("meter window inside trial"),
            panel_condensate_kg: system.plant().panel_condensate_total(),
            channel: *system.network().stats(),
        }
    }
}

/// Workaround for borrow rules: reset the plant meters through the system.
fn system_plant_reset(system: &mut BubbleZeroSystem) {
    system.plant_mut_reset_meters();
}

fn record_state(trace: &mut TraceRecorder, system: &BubbleZeroSystem) {
    let now = system.now();
    let plant = system.plant();
    for id in SubspaceId::ALL {
        trace.record(
            &format!("{}.temperature", id.label()),
            now,
            plant.zone_temperature(id).get(),
        );
        trace.record(
            &format!("{}.dew_point", id.label()),
            now,
            plant.zone_dew_point(id).get(),
        );
    }
    let outdoor = plant.outdoor();
    trace.record("outdoor.temperature", now, outdoor.temperature.get());
    trace.record("outdoor.dew_point", now, outdoor.dew_point().get());
    for panel in 0..2 {
        trace.record(
            &format!("panel{panel}.surface"),
            now,
            plant.panel_surface(panel).get(),
        );
        trace.record(
            &format!("panel{panel}.mix_temp"),
            now,
            plant.loop_mixed_temp(panel).get(),
        );
    }
    let telemetry = plant.telemetry();
    trace.record("radiant.heat_w", now, telemetry.radiant_heat_removed_w);
    trace.record("vent.heat_w", now, telemetry.vent_heat_removed_w);
    trace.record(
        "chiller.electrical_w",
        now,
        telemetry.radiant_chiller_w + telemetry.vent_chiller_w,
    );
}

/// The §V-C networking trial (Fig. 12–15).
#[derive(Debug, Clone)]
pub struct NetworkTrial {
    config: SystemConfig,
    /// Trial length (the paper: 5 hours).
    pub duration: SimDuration,
}

/// Everything the networking trial produces.
#[derive(Debug)]
pub struct NetworkTrialOutcome {
    /// Every BT-ADPT decision made during the trial.
    pub decisions: Vec<DecisionRecord>,
    /// Data type of each battery stream index.
    pub stream_types: Vec<DataType>,
    /// Per-device energy/transmission reports.
    pub reports: Vec<BtDeviceReport>,
    /// Channel statistics.
    pub channel: ChannelStats,
    /// Start times of the scripted door/window events.
    pub events: Vec<SimTime>,
    /// Start times of the *door* events only (in subspace 1; the window
    /// events perturb subspaces 3-4 instead).
    pub door_events: Vec<SimTime>,
    /// Index of subspace 1's room-temperature battery stream (the device
    /// Fig. 14 zooms in on).
    pub s1_temperature_stream: Option<usize>,
    /// Room dew point of subspace 1, sampled every 10 s (Fig. 14's
    /// environment trace).
    pub dew_trace: TraceRecorder,
}

impl NetworkTrial {
    /// The paper's setup: 5 hours, door/window events every ~30 minutes,
    /// temperature sampled at 2 s (§V-C / Fig. 14), decision logging on.
    #[must_use]
    pub fn paper_setup() -> Self {
        Self::with_mode(BtMode::Adaptive)
    }

    /// Same trial with an explicit battery transmission mode (Fig. 15's
    /// Fixed comparison).
    #[must_use]
    pub fn with_mode(mode: BtMode) -> Self {
        let duration = SimDuration::from_hours(5);
        let mut rng = Rng::seed_from(0xE7E7_2024);
        let plant = PlantConfig::bubble_zero_lab()
            .with_disturbances(DisturbanceSchedule::periodic_events(duration, &mut rng));
        let config = SystemConfig {
            bt_mode: mode,
            record_decisions: mode == BtMode::Adaptive,
            ..SystemConfig::paper_deployment(plant)
        }
        .with_sampling_override(DataType::Temperature, SimDuration::from_secs(2));
        Self { config, duration }
    }

    /// Shortens the trial (for tests).
    #[must_use]
    pub fn with_duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        let mut rng = Rng::seed_from(0xE7E7_2024);
        self.config.plant = self
            .config
            .plant
            .clone()
            .with_disturbances(DisturbanceSchedule::periodic_events(duration, &mut rng));
        self
    }

    /// Access to the underlying system configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Runs the trial to completion.
    #[must_use]
    pub fn run(self) -> NetworkTrialOutcome {
        let events: Vec<SimTime> = self
            .config
            .plant
            .disturbances
            .events()
            .iter()
            .map(|e| e.at)
            .collect();
        let door_events: Vec<SimTime> = self
            .config
            .plant
            .disturbances
            .events()
            .iter()
            .filter(|e| e.kind == bz_thermal::disturbance::OpeningKind::Door)
            .map(|e| e.at)
            .collect();
        let mut system = BubbleZeroSystem::new(self.config);
        let mut dew_trace = TraceRecorder::new();
        let total_s = self.duration.as_millis() / 1_000;
        for second in 1..=total_s {
            system.step_second();
            if second % 10 == 0 {
                dew_trace.record(
                    "Subsp1.dew_point",
                    system.now(),
                    system.plant().zone_dew_point(SubspaceId::S1).get(),
                );
            }
        }
        let stream_types = (0..system.bt_stream_count())
            .map(|i| system.bt_stream_type(i))
            .collect();
        let s1_temperature_stream = system.room_temperature_stream(0);
        NetworkTrialOutcome {
            decisions: system.take_decision_log(),
            stream_types,
            reports: system.bt_device_reports(),
            channel: *system.network().stats(),
            events,
            door_events,
            s1_temperature_stream,
            dew_trace,
        }
    }
}

impl NetworkTrialOutcome {
    /// Send-period samples (seconds) of every decision on streams carrying
    /// `data_type` — the raw material of the Fig. 15 CDF.
    #[must_use]
    pub fn send_periods_s(&self, data_type: DataType) -> Vec<f64> {
        self.decisions
            .iter()
            .filter(|d| self.stream_types[d.stream] == data_type)
            .map(|d| d.send_period.as_secs_f64())
            .collect()
    }

    /// Detection delay of each scripted event on stream `stream`: seconds
    /// from the event start to the first transition-classified decision.
    /// Events with no detection within `horizon` are reported as `None`.
    #[must_use]
    pub fn detection_delays_s(&self, stream: usize, horizon: SimDuration) -> Vec<Option<f64>> {
        self.detection_delays_for(&self.events, stream, horizon)
    }

    /// Detection delays for the door events only (the Fig. 14 setup:
    /// subspace 1's device watching the door in its own subspace).
    #[must_use]
    pub fn door_detection_delays_s(&self, stream: usize, horizon: SimDuration) -> Vec<Option<f64>> {
        self.detection_delays_for(&self.door_events, stream, horizon)
    }

    fn detection_delays_for(
        &self,
        events: &[SimTime],
        stream: usize,
        horizon: SimDuration,
    ) -> Vec<Option<f64>> {
        events
            .iter()
            .map(|&event| {
                self.decisions
                    .iter()
                    .filter(|d| d.stream == stream)
                    .filter(|d| d.at >= event && d.at <= event + horizon)
                    .find(|d| d.classified == Some(Stability::Transition))
                    .map(|d| d.at.since(event).as_secs_f64())
            })
            .collect()
    }

    /// The stream index (of `data_type`) with the most decisions — the
    /// "one bt-device" Fig. 14 zooms in on.
    #[must_use]
    pub fn busiest_stream(&self, data_type: DataType) -> Option<usize> {
        let mut counts = vec![0usize; self.stream_types.len()];
        for d in &self.decisions {
            counts[d.stream] += 1;
        }
        counts
            .iter()
            .enumerate()
            .filter(|(i, _)| self.stream_types[*i] == data_type)
            .max_by_key(|(_, c)| **c)
            .map(|(i, _)| i)
    }
}

/// Offline re-clustering of logged variance streams: the machinery behind
/// Fig. 12(a) ("accuracy vs N") and Fig. 13 ("accuracy as time elapses").
///
/// For every logged variance, the histogram of size `N` and the exact
/// oracle each classify it against their current thresholds; accuracy is
/// the fraction of agreeing decisions. The oracle thresholds do not depend
/// on `N`, so they are computed once at construction and shared across
/// the Fig. 12 parameter sweep.
#[derive(Debug, Clone)]
pub struct VarianceReplay {
    /// Per-stream `(time, variance)` sequences, time-ordered.
    streams: Vec<Vec<(SimTime, f64)>>,
    /// Per-stream oracle λ in force at each observation index.
    oracle_lambda: Vec<Vec<Option<f64>>>,
    /// Threshold refresh cadence, observations.
    lambda_refresh: usize,
}

/// Streams shorter than this are skipped (no meaningful clustering).
const MIN_STREAM_LEN: usize = 20;

impl VarianceReplay {
    /// Collects the replay data from a decision log and precomputes the
    /// oracle thresholds (refreshed every `lambda_refresh` observations,
    /// mirroring the periodic λ updates).
    ///
    /// # Panics
    ///
    /// Panics if `lambda_refresh` is zero.
    #[must_use]
    pub fn from_decisions(
        decisions: &[DecisionRecord],
        stream_count: usize,
        lambda_refresh: usize,
    ) -> Self {
        assert!(lambda_refresh > 0, "refresh cadence must be positive");
        let mut streams = vec![Vec::new(); stream_count];
        for d in decisions {
            streams[d.stream].push((d.at, d.variance));
        }
        let oracle_lambda = streams
            .iter()
            .map(|stream| {
                let mut oracle = ExactClusterer::new();
                let mut lambda: Option<f64> = None;
                stream
                    .iter()
                    .enumerate()
                    .map(|(i, &(_, variance))| {
                        oracle.observe(variance);
                        if i % lambda_refresh == 0 || lambda.is_none() {
                            lambda = oracle.threshold().or(lambda);
                        }
                        lambda
                    })
                    .collect()
            })
            .collect();
        Self {
            streams,
            oracle_lambda,
            lambda_refresh,
        }
    }

    /// Number of streams with at least one observation.
    #[must_use]
    pub fn active_streams(&self) -> usize {
        self.streams.iter().filter(|s| !s.is_empty()).count()
    }

    /// Total number of observations.
    #[must_use]
    pub fn observations(&self) -> usize {
        self.streams.iter().map(Vec::len).sum()
    }

    /// Mean decision accuracy of an `n`-slot histogram against the oracle,
    /// averaged over all devices (Fig. 12(a)).
    #[must_use]
    pub fn accuracy_for_histogram_size(&self, n: usize) -> f64 {
        let mut per_stream = Vec::new();
        for (stream_idx, stream) in self.streams.iter().enumerate() {
            if stream.len() < MIN_STREAM_LEN {
                continue;
            }
            let (matches, decisions) = self.replay_stream(stream_idx, n, None);
            if decisions > 0 {
                per_stream.push(matches as f64 / decisions as f64);
            }
        }
        if per_stream.is_empty() {
            return 1.0;
        }
        per_stream.iter().sum::<f64>() / per_stream.len() as f64
    }

    /// Accuracy over elapsed time in bins of `bin` (Fig. 13), at histogram
    /// size `n`.
    #[must_use]
    pub fn accuracy_over_time(&self, n: usize, bin: SimDuration) -> Vec<(SimTime, f64)> {
        let mut matches_by_bin: Vec<u64> = Vec::new();
        let mut totals_by_bin: Vec<u64> = Vec::new();
        for (stream_idx, stream) in self.streams.iter().enumerate() {
            if stream.len() < MIN_STREAM_LEN {
                continue;
            }
            let _ = self.replay_stream(
                stream_idx,
                n,
                Some((&mut matches_by_bin, &mut totals_by_bin, bin)),
            );
        }
        matches_by_bin
            .iter()
            .zip(&totals_by_bin)
            .enumerate()
            .filter(|(_, (_, &total))| total > 0)
            .map(|(i, (&m, &total))| (SimTime::ZERO + bin * i as u64, m as f64 / total as f64))
            .collect()
    }

    /// Replays one stream through an `n`-slot histogram against the
    /// precomputed oracle. Returns `(matching, total)` decisions;
    /// optionally accumulates per-time-bin counts.
    fn replay_stream(
        &self,
        stream_idx: usize,
        n: usize,
        mut bins: Option<(&mut Vec<u64>, &mut Vec<u64>, SimDuration)>,
    ) -> (u64, u64) {
        let stream = &self.streams[stream_idx];
        let oracle = &self.oracle_lambda[stream_idx];
        let mut histogram = VarianceHistogram::new(n);
        let mut lambda_h: Option<f64> = None;
        let mut matches = 0u64;
        let mut total = 0u64;
        for (i, &(at, variance)) in stream.iter().enumerate() {
            let range_before = (histogram.var_min(), histogram.var_max());
            histogram.observe(variance);
            let range_changed = (histogram.var_min(), histogram.var_max()) != range_before;
            if i % self.lambda_refresh == 0 || range_changed || lambda_h.is_none() {
                lambda_h = histogram.threshold().or(lambda_h);
            }
            if let (Some(lh), Some(lo)) = (lambda_h, oracle[i]) {
                total += 1;
                let agree = classify(variance, lh) == classify(variance, lo);
                if agree {
                    matches += 1;
                }
                if let Some((matches_by_bin, totals_by_bin, bin)) = bins.as_mut() {
                    let idx = (at.as_millis() / bin.as_millis()) as usize;
                    if matches_by_bin.len() <= idx {
                        matches_by_bin.resize(idx + 1, 0);
                        totals_by_bin.resize(idx + 1, 0);
                    }
                    totals_by_bin[idx] += 1;
                    if agree {
                        matches_by_bin[idx] += 1;
                    }
                }
            }
        }
        (matches, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bz_wsn::histogram::Stability;

    /// A compressed afternoon trial used by several tests (full length is
    /// exercised by the integration suite and the fig10 harness).
    fn short_network_outcome() -> NetworkTrialOutcome {
        NetworkTrial::paper_setup()
            .with_duration(SimDuration::from_mins(40))
            .run()
    }

    #[test]
    fn afternoon_trial_is_configured_like_the_paper() {
        let trial = AfternoonTrial::paper_setup();
        assert_eq!(trial.duration, SimDuration::from_mins(105));
        let events = trial.config().plant.disturbances.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].at, SimTime::from_mins(65));
    }

    #[test]
    fn network_trial_produces_decisions_and_reports() {
        let outcome = short_network_outcome();
        assert!(
            outcome.observed_enough(),
            "decisions: {}",
            outcome.decisions.len()
        );
        assert_eq!(outcome.stream_types.len(), 36);
        assert_eq!(outcome.reports.len(), 20);
        assert!(outcome.channel.delivered > 0);
        assert!(!outcome.events.is_empty());
        assert!(outcome.dew_trace.series("Subsp1.dew_point").is_some());
    }

    impl NetworkTrialOutcome {
        fn observed_enough(&self) -> bool {
            self.decisions.len() > 1_000
        }
    }

    #[test]
    fn send_periods_fall_in_the_paper_range() {
        let outcome = short_network_outcome();
        let periods = outcome.send_periods_s(DataType::Temperature);
        assert!(!periods.is_empty());
        for &p in &periods {
            assert!((2.0..=64.0).contains(&p), "period {p}");
        }
        // The schedule stretches well beyond the 2 s floor once stable.
        let max = periods.iter().cloned().fold(0.0, f64::max);
        assert!(max >= 32.0, "max period only {max}");
    }

    #[test]
    fn events_are_detected_with_small_delay() {
        let outcome = short_network_outcome();
        let stream = outcome
            .s1_temperature_stream
            .expect("subspace 1 temperature stream");
        let delays = outcome.door_detection_delays_s(stream, SimDuration::from_mins(3));
        let detected: Vec<f64> = delays.into_iter().flatten().collect();
        assert!(!detected.is_empty(), "at least one door event detected");
        for d in &detected {
            assert!(*d <= 120.0, "delay {d}s too long");
        }
    }

    #[test]
    fn replay_matches_online_decisions_at_default_n() {
        let outcome = short_network_outcome();
        let replay = VarianceReplay::from_decisions(&outcome.decisions, 36, 100);
        assert!(replay.active_streams() > 10);
        assert!(replay.observations() > 1_000);
        let accuracy = replay.accuracy_for_histogram_size(40);
        // This 40-minute window is entirely inside the warm-up regime the
        // paper's Fig. 13 shows at ~87% accuracy; the full 5-hour run
        // (fig13 harness) reaches the high-90s once var_max stabilizes.
        assert!(accuracy > 0.75, "N=40 accuracy {accuracy}");
    }

    #[test]
    fn replay_accuracy_improves_with_n() {
        let outcome = short_network_outcome();
        let replay = VarianceReplay::from_decisions(&outcome.decisions, 36, 100);
        let coarse = replay.accuracy_for_histogram_size(4);
        let fine = replay.accuracy_for_histogram_size(48);
        assert!(
            fine >= coarse - 0.02,
            "fine {fine} should not be clearly worse than coarse {coarse}"
        );
    }

    #[test]
    fn accuracy_over_time_produces_bins() {
        let outcome = short_network_outcome();
        let replay = VarianceReplay::from_decisions(&outcome.decisions, 36, 100);
        let series = replay.accuracy_over_time(40, SimDuration::from_mins(10));
        assert!(series.len() >= 3);
        for (_, accuracy) in &series {
            assert!((0.0..=1.0).contains(accuracy));
        }
    }

    #[test]
    fn decisions_include_transitions_on_events() {
        let outcome = short_network_outcome();
        let transitions = outcome
            .decisions
            .iter()
            .filter(|d| d.classified == Some(Stability::Transition))
            .count();
        assert!(transitions > 0, "events should perturb some stream");
    }
}
