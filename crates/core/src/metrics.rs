//! COP accounting and convergence metrics (§V-B's measurement methodology).
//!
//! The paper computes, from power meters and water-side measurements over
//! a steady-state window: COP of the radiant module (964.8 W removed /
//! 213.4 W consumed = 4.52), of the ventilation module (213.2 / 75.6 =
//! 2.82), and of the whole system ((964.8 + 213.2)/(213.4 + 75.6) = 4.07),
//! then compares against the conventional 2.8 for a 45.5 % improvement.

use bz_psychro::{exergy_of_heat, Celsius, Watts};
use bz_simcore::{Series, SimDuration, SimTime};
use bz_thermal::plant::EnergyMeters;

/// A Fig. 11-style COP summary computed over a metering window.
///
/// # Example
///
/// The paper's own numbers recompute exactly:
///
/// ```
/// use bz_core::metrics::CopSummary;
///
/// let paper = CopSummary {
///     radiant_removed_w: 964.8,
///     vent_removed_w: 213.2,
///     radiant_electrical_w: 213.4,
///     vent_electrical_w: 75.6,
/// };
/// assert!((paper.cop_overall() - 4.07).abs() < 0.01);
/// assert!((paper.improvement_over(2.8) - 0.455).abs() < 0.005);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CopSummary {
    /// Mean heat removed by the radiant module, W.
    pub radiant_removed_w: f64,
    /// Mean heat removed by the ventilation module, W.
    pub vent_removed_w: f64,
    /// Mean radiant chiller electrical power, W.
    pub radiant_electrical_w: f64,
    /// Mean ventilation chiller electrical power, W.
    pub vent_electrical_w: f64,
}

impl CopSummary {
    /// Builds the summary from the plant's integrated meters.
    ///
    /// # Panics
    ///
    /// Panics if the meters cover no elapsed time.
    #[must_use]
    pub fn from_meters(meters: &EnergyMeters) -> Self {
        let elapsed = meters.elapsed.get();
        assert!(elapsed > 0.0, "meters cover no time");
        Self {
            radiant_removed_w: meters.radiant_removed.get() / elapsed,
            vent_removed_w: meters.vent_removed.get() / elapsed,
            radiant_electrical_w: meters.radiant_chiller.get() / elapsed,
            vent_electrical_w: meters.vent_chiller.get() / elapsed,
        }
    }

    /// COP of the radiant cooling module ("Bubble-C").
    #[must_use]
    pub fn cop_radiant(&self) -> f64 {
        self.radiant_removed_w / self.radiant_electrical_w
    }

    /// COP of the ventilation module ("Bubble-V").
    #[must_use]
    pub fn cop_ventilation(&self) -> f64 {
        self.vent_removed_w / self.vent_electrical_w
    }

    /// Overall system COP ("BubbleZERO").
    #[must_use]
    pub fn cop_overall(&self) -> f64 {
        (self.radiant_removed_w + self.vent_removed_w)
            / (self.radiant_electrical_w + self.vent_electrical_w)
    }

    /// Relative efficiency improvement of the overall COP over a
    /// `baseline` COP, as a fraction (the paper reports 0.455).
    #[must_use]
    pub fn improvement_over(&self, baseline: f64) -> f64 {
        self.cop_overall() / baseline - 1.0
    }
}

/// The §II exergy accounting: how much *work-equivalent* each module's
/// heat flux carries at its working temperature, relative to the room.
/// Lower exergy for the same duty is the thermodynamic content of the
/// paper's "low exergy" claim.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExergySummary {
    /// Exergy rate of the radiant module's duty at its 18 °C water, W.
    pub radiant_w: f64,
    /// Exergy rate of the ventilation module's duty at its 8 °C water, W.
    pub ventilation_w: f64,
    /// Exergy rate if the *combined* duty were moved at the all-air
    /// system's ~7 °C working temperature, W.
    pub aircon_equivalent_w: f64,
}

impl ExergySummary {
    /// Computes the summary from a COP summary's module duties, with the
    /// room at `room` and the standard working temperatures (18 °C
    /// radiant water, 8 °C ventilation water, 7 °C all-air coil).
    #[must_use]
    pub fn from_cop(cop: &CopSummary, room: Celsius) -> Self {
        let reference = room.to_kelvin();
        let radiant = exergy_of_heat(
            Watts::new(cop.radiant_removed_w),
            Celsius::new(18.0).to_kelvin(),
            reference,
        );
        let ventilation = exergy_of_heat(
            Watts::new(cop.vent_removed_w),
            Celsius::new(8.0).to_kelvin(),
            reference,
        );
        let aircon = exergy_of_heat(
            Watts::new(cop.radiant_removed_w + cop.vent_removed_w),
            Celsius::new(7.0).to_kelvin(),
            reference,
        );
        Self {
            radiant_w: radiant.get(),
            ventilation_w: ventilation.get(),
            aircon_equivalent_w: aircon.get(),
        }
    }

    /// Total exergy rate of the decomposed system, W.
    #[must_use]
    pub fn decomposed_total_w(&self) -> f64 {
        self.radiant_w + self.ventilation_w
    }

    /// Fraction of exergy saved by decomposition relative to moving the
    /// whole duty at the all-air working temperature.
    #[must_use]
    pub fn savings_fraction(&self) -> f64 {
        1.0 - self.decomposed_total_w() / self.aircon_equivalent_w
    }
}

/// Time for a recorded series to first enter `target ± tolerance` and stay
/// inside for at least `dwell`, in minutes from the start of the
/// recording. `None` if it never does. (Unlike requiring stability to the
/// end of the recording, a dwell window tolerates the scripted
/// disturbances arriving later in the trial.)
#[must_use]
pub fn convergence_minutes(
    series: &Series,
    target: f64,
    tolerance: f64,
    dwell: SimDuration,
) -> Option<f64> {
    let mut entered: Option<SimTime> = None;
    for sample in series.samples() {
        if (sample.value - target).abs() <= tolerance {
            let start = *entered.get_or_insert(sample.at);
            if sample.at.since(start) >= dwell {
                return Some(start.as_secs_f64() / 60.0);
            }
        } else {
            entered = None;
        }
    }
    None
}

/// Recovery time after a disturbance at `event`: minutes until the series
/// re-enters `target ± tolerance` for good (measured from the event).
#[must_use]
pub fn recovery_minutes(
    series: &Series,
    event: SimTime,
    target: f64,
    tolerance: f64,
) -> Option<f64> {
    let mut settled: Option<SimTime> = None;
    for sample in series.samples() {
        if sample.at < event {
            continue;
        }
        if (sample.value - target).abs() <= tolerance {
            settled.get_or_insert(sample.at);
        } else {
            settled = None;
        }
    }
    settled.map(|t| t.since(event).as_secs_f64() / 60.0)
}

/// Fraction of samples within `target ± tolerance` over `[from, to]` — the
/// "maintains on the equilibrium" claim quantified.
#[must_use]
pub fn comfort_fraction(
    series: &Series,
    from: SimTime,
    to: SimTime,
    target: f64,
    tolerance: f64,
) -> f64 {
    let mut total = 0usize;
    let mut inside = 0usize;
    for sample in series.between(from, to) {
        total += 1;
        if (sample.value - target).abs() <= tolerance {
            inside += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        inside as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bz_psychro::{Joules, Seconds};
    use bz_simcore::TraceRecorder;

    fn paper_summary() -> CopSummary {
        CopSummary {
            radiant_removed_w: 964.8,
            vent_removed_w: 213.2,
            radiant_electrical_w: 213.4,
            vent_electrical_w: 75.6,
        }
    }

    #[test]
    fn reproduces_paper_cop_numbers() {
        let s = paper_summary();
        assert!((s.cop_radiant() - 4.52).abs() < 0.01);
        assert!((s.cop_ventilation() - 2.82).abs() < 0.01);
        assert!((s.cop_overall() - 4.07).abs() < 0.01);
        assert!((s.improvement_over(2.8) - 0.455).abs() < 0.005);
    }

    #[test]
    fn exergy_decomposition_saves_work() {
        let summary = ExergySummary::from_cop(&paper_summary(), Celsius::new(25.0));
        // Radiant duty at 18 °C carries far less exergy per Watt than the
        // same duty would at 7 °C.
        assert!(summary.radiant_w < summary.aircon_equivalent_w);
        // The paper's duty split saves roughly half of the exergy.
        let saved = summary.savings_fraction();
        assert!(
            (0.35..0.75).contains(&saved),
            "expected substantial exergy savings, got {saved}"
        );
        // Sanity magnitudes: 964.8 W at 18 °C vs 25 °C room is ~2.3% of Q.
        assert!(
            (summary.radiant_w - 22.7).abs() < 2.0,
            "{}",
            summary.radiant_w
        );
    }

    #[test]
    fn from_meters_averages() {
        let meters = EnergyMeters {
            radiant_removed: Joules::new(964.8 * 100.0),
            vent_removed: Joules::new(213.2 * 100.0),
            radiant_chiller: Joules::new(213.4 * 100.0),
            vent_chiller: Joules::new(75.6 * 100.0),
            pumps: Joules::new(0.0),
            fans: Joules::new(0.0),
            elapsed: Seconds::new(100.0),
        };
        let s = CopSummary::from_meters(&meters);
        assert!((s.cop_overall() - 4.07).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "meters cover no time")]
    fn from_meters_rejects_empty_window() {
        let _ = CopSummary::from_meters(&EnergyMeters::default());
    }

    #[test]
    fn convergence_and_recovery() {
        let mut trace = TraceRecorder::new();
        // Converge at t=30 min, disturb at t=60, recover at t=70.
        for minute in 0..100u64 {
            let value = match minute {
                0..=29 => 28.9 - f64::from(minute as u32) * 0.15,
                60..=69 => 26.0,
                _ => 25.0,
            };
            trace.record("t", SimTime::from_mins(minute), value);
        }
        let series = trace.series("t").unwrap();
        let conv = convergence_minutes(series, 25.0, 0.5, SimDuration::from_mins(10)).unwrap();
        // The ramp enters the ±0.5 band at minute 23 and dwells there.
        assert!((conv - 23.0).abs() < 1.1, "converged at {conv}");
        let rec = recovery_minutes(series, SimTime::from_mins(60), 25.0, 0.5).unwrap();
        assert!((rec - 10.0).abs() < 1.1, "recovered after {rec}");
    }

    #[test]
    fn comfort_fraction_counts_band_membership() {
        let mut trace = TraceRecorder::new();
        for minute in 0..10u64 {
            let value = if minute < 5 { 25.0 } else { 27.0 };
            trace.record("t", SimTime::from_mins(minute), value);
        }
        let series = trace.series("t").unwrap();
        let fraction = comfort_fraction(series, SimTime::ZERO, SimTime::from_mins(9), 25.0, 0.5);
        assert!((fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn comfort_fraction_empty_window_is_zero() {
        let mut trace = TraceRecorder::new();
        trace.record("t", SimTime::from_mins(5), 25.0);
        let series = trace.series("t").unwrap();
        assert_eq!(
            comfort_fraction(series, SimTime::ZERO, SimTime::from_mins(1), 25.0, 0.5),
            0.0
        );
    }
}
