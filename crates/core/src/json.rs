//! A minimal JSON value and parser shared by the scenario loaders.
//!
//! The workspace is offline (no serde), so the chaos and MPC scenario
//! loaders carry their own parser — strict enough to reject the malformed
//! files a hand-edited scenario produces. This module used to live inside
//! [`crate::chaos`]; it was hoisted here so `bz-predict` can parse its
//! scenario files through the same code path.

use std::fmt;

/// A JSON parsing error carrying the 1-based line and column where
/// parsing failed, so a hand-edited scenario file can be fixed without
/// counting bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(String);

impl JsonError {
    fn new(message: impl Into<String>) -> Self {
        Self(message.into())
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
    /// An array.
    Arr(Vec<Json>),
    /// A string.
    Str(String),
    /// A number.
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
}

impl Json {
    /// Parses one complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming the line and column of the first
    /// malformed construct, or of trailing garbage after the document.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        let mut parser = JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Looks up `name` in an object (`None` on other kinds or absence).
    #[must_use]
    pub fn field(&self, name: &str) -> Option<&Json> {
        match self {
            Self::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The items, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Self::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn error(&self, message: &str) -> JsonError {
        let consumed = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = 1 + consumed.iter().filter(|&&b| b == b'\n').count();
        let column = 1 + consumed.iter().rev().take_while(|&&b| b != b'\n').count();
        JsonError::new(format!(
            "json error at line {line}, column {column}: {message}"
        ))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(hex);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid utf-8 in string"))?;
                    let ch = text.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E') | Some(b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error(&format!("bad number '{text}'")))
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_handles_all_value_kinds() {
        let doc = Json::parse(
            r#"{"s": "a\n\"bA", "n": -2.5e1, "b": true, "x": null,
                "arr": [1, 2, {"k": false}]}"#,
        )
        .unwrap();
        assert_eq!(doc.field("s").unwrap().as_str(), Some("a\n\"bA"));
        assert_eq!(doc.field("n").unwrap().as_f64(), Some(-25.0));
        assert_eq!(doc.field("b"), Some(&Json::Bool(true)));
        assert_eq!(doc.field("x"), Some(&Json::Null));
        let arr = doc.field("arr").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].field("k"), Some(&Json::Bool(false)));
    }

    #[test]
    fn json_parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "{\"a\": 1} x",
            "[1, 2",
            "{\"a\" 1}",
            "\"unterminated",
            "{\"a\": nul}",
            "{\"a\": 1e}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn json_errors_carry_line_and_column() {
        // The stray token sits on line 3, column 10.
        let err = Json::parse("{\n  \"a\": 1,\n  \"b\": oops\n}").unwrap_err();
        assert_eq!(
            err.to_string(),
            "json error at line 3, column 8: expected a value"
        );

        let err = Json::parse("[1, 2").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }
}
