//! Occupant comfort targets.
//!
//! The occupant sets a preferred temperature and humidity (§III); the
//! paper's trial uses 25 °C with an 18 °C dew point, plus an air-quality
//! ceiling on CO₂.

use bz_psychro::{dew_point, relative_humidity_from_dew_point, Celsius, Percent, Ppm};

/// The occupant's comfort configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComfortTargets {
    /// Preferred dry-bulb temperature `T_pref`.
    pub temperature: Celsius,
    /// Preferred relative humidity `H_pref` (at `T_pref`).
    pub humidity: Percent,
    /// CO₂ concentration above which ventilation must dilute.
    pub co2_limit: Ppm,
}

impl ComfortTargets {
    /// The paper's trial targets: 25 °C and an 18 °C dew point
    /// (≈ 65 % RH at 25 °C), with a conventional 800 ppm CO₂ ceiling.
    #[must_use]
    pub fn paper_trial() -> Self {
        Self::from_dew_point(Celsius::new(25.0), Celsius::new(18.0), Ppm::new(800.0))
    }

    /// Builds targets from a preferred temperature and *dew point*.
    #[must_use]
    pub fn from_dew_point(temperature: Celsius, dew: Celsius, co2_limit: Ppm) -> Self {
        Self {
            temperature,
            humidity: relative_humidity_from_dew_point(temperature, dew),
            co2_limit,
        }
    }

    /// The preferred dew point `T_p_dew` computed from `T_pref` and
    /// `H_pref` (§III-C).
    #[must_use]
    pub fn preferred_dew_point(&self) -> Celsius {
        dew_point(self.temperature, self.humidity)
    }
}

bz_state::persist_struct!(ComfortTargets {
    temperature,
    humidity,
    co2_limit,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_trial_round_trips_dew_point() {
        let t = ComfortTargets::paper_trial();
        assert!((t.temperature.get() - 25.0).abs() < 1e-12);
        assert!((t.preferred_dew_point().get() - 18.0).abs() < 1e-6);
        assert!((t.humidity.get() - 65.2).abs() < 1.0);
        assert_eq!(t.co2_limit, Ppm::new(800.0));
    }

    #[test]
    fn custom_targets() {
        let t =
            ComfortTargets::from_dew_point(Celsius::new(23.0), Celsius::new(15.0), Ppm::new(900.0));
        assert!((t.preferred_dew_point().get() - 15.0).abs() < 1e-6);
    }
}
