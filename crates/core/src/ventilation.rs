//! The distributed ventilation module controller (§III-C).
//!
//! One instance runs each subspace's airbox/CO₂flap pair. The logic is
//! the paper's:
//!
//! 1. Room dew-point target: `T_r,t_dew = min{T_p_dew, T_supp}` — satisfy
//!    the occupant *and* stay below the radiant water temperature so the
//!    panels cannot condense.
//! 2. Airbox outlet target: `T_a,t_dew = T_r,t_dew − 2 °C` while pulling
//!    the room down, else `T_r,t_dew` to hold it.
//! 3. A PID trims the coil water pump toward the measured outlet dew
//!    point (the coil's water flow is monotone in output dryness).
//! 4. Ventilation volume: enough air to approach the humidity and CO₂
//!    targets within `T` seconds — `F_vent = max{F_humd, F_CO₂}` — mapped
//!    to the discrete fan levels; the CO₂flap opens whenever fans run.

use bz_psychro::{dew_point_checked, humidity_ratio_from_dew_point, Celsius, Percent, Ppm, Volts};
use bz_thermal::airbox::FanLevel;
use bz_thermal::plant::AirboxActuation;

use crate::pid::{Pid, PidConfig};
use crate::targets::ComfortTargets;

/// Diagnostics from one ventilation control decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VentilationDecision {
    /// The actuation issued to the airbox and flap.
    pub actuation: AirboxActuation,
    /// Measured room dew point, if computable.
    pub room_dew: Option<Celsius>,
    /// The room dew-point target `T_r,t_dew`.
    pub room_dew_target: Celsius,
    /// The airbox outlet dew-point target `T_a,t_dew`.
    pub outlet_dew_target: Celsius,
    /// Required ventilation flow before fan-level quantization, m³/s.
    pub required_flow_m3s: f64,
}

/// Tuning of the ventilation controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VentilationConfig {
    /// Pull-down offset below the room target (the paper's 2 °C).
    pub pull_down_offset_k: f64,
    /// Hold-mode offset below the room target, K. Supply air exactly at
    /// the room target can never offset infiltration moisture; a small
    /// negative margin keeps the hold flow finite.
    pub hold_offset_k: f64,
    /// Time horizon `T` for approaching the targets when clearly outside
    /// the comfort band, s (the paper's 60 s).
    pub approach_time_s: f64,
    /// Relaxed horizon used while inside the comfort band — topping up
    /// against slow infiltration is not urgent, s.
    pub hold_approach_time_s: f64,
    /// PID from outlet-dew error (measured − target, K) to coil pump
    /// voltage.
    pub coil_pid: PidConfig,
    /// Dew-point deadband around the room target within which the fans
    /// may rest, K.
    pub deadband_k: f64,
    /// Excess dew point above the target at which the controller enters
    /// pull-down mode (urgent horizon, unconstrained fan levels), K.
    /// Between the deadband and this threshold the controller tops up
    /// calmly at low fan levels.
    pub pull_down_enter_k: f64,
    /// Assumed outdoor CO₂ level for the dilution sizing, ppm.
    pub outdoor_co2: Ppm,
    /// Subspace air volume, m³.
    pub zone_volume_m3: f64,
    /// Maximum age of sensor data before the controller fails safe, s.
    pub max_staleness_s: f64,
}

impl Default for VentilationConfig {
    fn default() -> Self {
        Self {
            pull_down_offset_k: 2.0,
            hold_offset_k: 0.5,
            approach_time_s: 60.0,
            hold_approach_time_s: 600.0,
            // The coil is nearly a static map from voltage to outlet dew
            // (≈3 K/V), so the loop must be integral-dominant; a large Kp
            // bang-bangs the valve against the 5 s control period.
            coil_pid: PidConfig::new(0.25, 0.03, 0.0, 0.0, 5.0),
            deadband_k: 0.75,
            pull_down_enter_k: 1.2,
            outdoor_co2: Ppm::new(410.0),
            zone_volume_m3: 15.0,
            max_staleness_s: 120.0,
        }
    }
}

/// The ventilation controller for one subspace.
///
/// # Example
///
/// A humid room drives full dehumidification:
///
/// ```
/// use bz_core::targets::ComfortTargets;
/// use bz_core::ventilation::{VentilationConfig, VentilationController};
/// use bz_psychro::{relative_humidity_from_dew_point, Celsius};
/// use bz_thermal::airbox::FanLevel;
///
/// let mut controller = VentilationController::new(
///     VentilationConfig::default(),
///     ComfortTargets::paper_trial(),
/// );
/// let rh = relative_humidity_from_dew_point(Celsius::new(28.9), Celsius::new(27.4));
/// controller.observe_room(0.0, Celsius::new(28.9), rh);
/// controller.observe_supply_temperature(0.0, Celsius::new(18.0));
/// let decision = controller.decide(0.0, 5.0);
/// assert_ne!(decision.actuation.fan, FanLevel::Off);
/// assert!(decision.actuation.flap_open);
/// ```
#[derive(Debug, Clone)]
pub struct VentilationController {
    config: VentilationConfig,
    targets: ComfortTargets,
    coil_pid: Pid,
    room: Option<(f64, Celsius, Percent)>,
    co2: Option<(f64, Ppm)>,
    outlet: Option<(f64, Celsius, Percent)>,
    supply_temp: Option<(f64, Celsius)>,
    last_fan: FanLevel,
    /// Pull-down/hold mode with hysteresis: enter pull-down when the room
    /// dew point exceeds the target by the deadband, return to hold only
    /// once it has crossed below the target. Without hysteresis, sensor
    /// noise at the boundary flips the coil target every cycle.
    pulling_down: bool,
}

impl VentilationController {
    /// Creates a controller for one subspace.
    #[must_use]
    pub fn new(config: VentilationConfig, targets: ComfortTargets) -> Self {
        Self {
            coil_pid: Pid::new(config.coil_pid),
            config,
            targets,
            room: None,
            co2: None,
            outlet: None,
            supply_temp: None,
            last_fan: FanLevel::Off,
            pulling_down: true,
        }
    }

    /// Redirects the inner coil PID's metrics to `obs` (per-run
    /// isolation).
    #[must_use]
    pub fn with_obs(mut self, obs: bz_obs::Handle) -> Self {
        self.coil_pid = self.coil_pid.with_obs(obs);
        self
    }

    /// The comfort targets in force.
    #[must_use]
    pub fn targets(&self) -> &ComfortTargets {
        &self.targets
    }

    /// Updates the comfort targets.
    pub fn set_targets(&mut self, targets: ComfortTargets) {
        self.targets = targets;
        self.coil_pid.reset();
    }

    /// Ingests the subspace room sensor reading.
    pub fn observe_room(&mut self, now_s: f64, temperature: Celsius, humidity: Percent) {
        self.room = Some((now_s, temperature, humidity));
    }

    /// Ingests the subspace CO₂ reading.
    pub fn observe_co2(&mut self, now_s: f64, co2: Ppm) {
        self.co2 = Some((now_s, co2));
    }

    /// Ingests the airbox outlet reading.
    pub fn observe_outlet(&mut self, now_s: f64, temperature: Celsius, humidity: Percent) {
        self.outlet = Some((now_s, temperature, humidity));
    }

    /// Ingests the radiant supply temperature broadcast by Control-C-1.
    pub fn observe_supply_temperature(&mut self, now_s: f64, value: Celsius) {
        self.supply_temp = Some((now_s, value));
    }

    /// The coil PID (diagnostics).
    #[must_use]
    pub fn coil_pid(&self) -> &Pid {
        &self.coil_pid
    }

    /// The most recent outlet reading ingested (diagnostics).
    #[must_use]
    pub fn last_outlet_reading(&self) -> Option<(f64, Celsius, Percent)> {
        self.outlet
    }

    fn fresh<T: Copy>(&self, entry: Option<(f64, T)>, now_s: f64) -> Option<T> {
        entry
            .filter(|(at, _)| now_s - at <= self.config.max_staleness_s)
            .map(|(_, v)| v)
    }

    /// The room dew-point target `T_r,t_dew = min{T_p_dew, T_supp}`.
    /// Without a fresh supply broadcast the occupant preference is used
    /// alone (fail-functional: the radiant module separately protects
    /// itself against condensation).
    #[must_use]
    pub fn room_dew_target(&self, now_s: f64) -> Celsius {
        let preferred = self.targets.preferred_dew_point();
        match self.fresh(self.supply_temp, now_s) {
            Some(supply) => preferred.min(supply),
            None => preferred,
        }
    }

    /// Runs one control cycle; returns the actuation and diagnostics.
    pub fn decide(&mut self, now_s: f64, dt_s: f64) -> VentilationDecision {
        let room_dew_target = self.room_dew_target(now_s);

        let room = self
            .room
            .filter(|(at, _, _)| now_s - at <= self.config.max_staleness_s);
        let Some((_, room_t, room_rh)) = room else {
            // Fail safe: no room data, no ventilation.
            return VentilationDecision {
                actuation: AirboxActuation::default(),
                room_dew: None,
                room_dew_target,
                outlet_dew_target: room_dew_target,
                required_flow_m3s: 0.0,
            };
        };
        let room_dew = dew_point_checked(room_t, room_rh).ok();

        // §III-C: T_a,t_dew = T_r,t_dew − 2 °C while above target, else
        // T_r,t_dew (with the hold margin), switched with hysteresis.
        // Mode hysteresis around the sign of the error (the paper's §III-C
        // rule: dry −2 °C supply while the room is above target, exact
        // supply once at/below it). A ±0.1 K band stops sensor noise from
        // flapping the coil target.
        if let Some(dew) = room_dew {
            let e = dew.get() - room_dew_target.get();
            if e > 0.1 {
                self.pulling_down = true;
            } else if e < -0.1 {
                self.pulling_down = false;
            }
        }
        let pulling_down = self.pulling_down;
        let outlet_dew_target = if pulling_down {
            Celsius::new(room_dew_target.get() - self.config.pull_down_offset_k)
        } else {
            Celsius::new(room_dew_target.get() - self.config.hold_offset_k)
        };

        // Coil PID: drive the measured outlet dew point to its target.
        let outlet_dew = self
            .outlet
            .filter(|(at, _, _)| now_s - at <= self.config.max_staleness_s)
            .and_then(|(_, t, h)| dew_point_checked(t, h).ok());
        let coil_voltage = match outlet_dew {
            Some(measured) => {
                let error = measured.get() - outlet_dew_target.get();
                let pid_out = self.coil_pid.step(error, dt_s);
                if pulling_down {
                    // At low fan speeds the oversized coil saturates the
                    // outlet near the apparatus dew point for any nonzero
                    // flow, so the PID cannot track an intermediate
                    // target — left alone it relays between "off" (blowing
                    // unconditioned outdoor air!) and "full". Flooring the
                    // valve keeps the supply dry; over-drying merely adds
                    // margin.
                    pid_out.max(1.2)
                } else {
                    pid_out
                }
            }
            // No outlet feedback yet: full coil while dehumidifying.
            None if pulling_down => 5.0,
            None => 0.0,
        };

        // Ventilation sizing (§III-C): air volumes to approach targets in
        // `approach_time_s`.
        let volume = self.config.zone_volume_m3;
        let w_room = room_dew
            .map(|d| humidity_ratio_from_dew_point(d).get())
            .unwrap_or(0.0);
        let w_target = humidity_ratio_from_dew_point(room_dew_target).get();
        let w_supply = humidity_ratio_from_dew_point(outlet_dew.unwrap_or(outlet_dew_target)).get();

        let humidity_excess = w_room - w_target;
        let v_humd = if humidity_excess > 0.0 && w_room - w_supply > 1.0e-6 {
            volume * humidity_excess / (w_room - w_supply)
        } else if humidity_excess > 0.0 {
            // The supply is not (yet) drier than the room — e.g. the fans
            // are off and the outlet sensor reads stagnant air. Size from
            // the achievable target instead so ventilation can start.
            let w_achievable = humidity_ratio_from_dew_point(outlet_dew_target).get();
            if w_room - w_achievable > 1.0e-6 {
                volume * humidity_excess / (w_room - w_achievable)
            } else {
                0.0
            }
        } else {
            0.0
        };

        let v_co2 = match self.fresh(self.co2, now_s) {
            Some(c) => {
                let excess = c.get() - self.targets.co2_limit.get();
                let dilution = c.get() - self.config.outdoor_co2.get();
                if excess > 0.0 && dilution > 1.0 {
                    volume * excess / dilution
                } else {
                    0.0
                }
            }
            None => 0.0,
        };

        // Urgency-scaled sizing: the paper's 60 s horizon while clearly
        // above the comfort band, a relaxed top-up horizon inside it
        // (topping up against slow infiltration does not warrant full
        // fans, whose cold supply would fight the radiant module).
        let band = self.config.deadband_k;
        let dew_error = room_dew.map(|d| d.get() - room_dew_target.get());
        // Urgency is a separate question from supply dryness: the 60 s
        // horizon and unconstrained fan levels are reserved for real
        // excursions (boot, door events), while routine top-ups against
        // infiltration run on the relaxed horizon at low levels.
        let urgent = dew_error.is_some_and(|e| e > self.config.pull_down_enter_k);
        let humidity_horizon = if urgent {
            self.config.approach_time_s
        } else {
            self.config.hold_approach_time_s
        };
        let f_humd = v_humd / humidity_horizon;
        let f_co2 = v_co2 / self.config.approach_time_s;
        let required = f_humd.max(f_co2);

        // Guard against counterproductive ventilation: if the fans are
        // running and the measured supply air is *wetter* than the room
        // (coil failed, pump seized, tank warm), blowing more of it in
        // only hurts. Rest and let the alarm-worthy condition be visible
        // in the diagnostics.
        let supply_counterproductive = self.last_fan != FanLevel::Off
            && matches!(
                (outlet_dew, room_dew),
                (Some(outlet), Some(room_d)) if outlet.get() > room_d.get() + 0.3
            );

        let humidity_fan = match dew_error {
            _ if supply_counterproductive => FanLevel::Off,
            // Dry enough: rest.
            Some(e) if e < -band => FanLevel::Off,
            // Demands below half the lowest fan speed are served by duty
            // cycling: rest now, run L1 once the demand accumulates. This
            // keeps the steady-state ventilation duty at the paper's
            // ~213 W scale instead of idling fans continuously.
            Some(_) if f_humd < 0.5 * FanLevel::L1.flow_m3s() => FanLevel::Off,
            // Routine top-ups run calmly: cap at L2 so the cold supply
            // air doesn't fight the radiant module (urgent excursions are
            // unconstrained).
            Some(_) if !urgent => FanLevel::for_flow(f_humd).min(FanLevel::L2),
            Some(_) => FanLevel::for_flow(f_humd),
            None => FanLevel::Off,
        };
        let co2_floor = if f_co2 > 0.0 {
            FanLevel::for_flow(f_co2)
        } else {
            FanLevel::Off
        };
        let fan = humidity_fan.max(co2_floor);
        self.last_fan = fan;
        let actuation = AirboxActuation {
            coil_pump_voltage: Volts::new(if fan == FanLevel::Off {
                0.0
            } else {
                coil_voltage
            }),
            fan,
            flap_open: fan != FanLevel::Off,
        };
        VentilationDecision {
            actuation,
            room_dew,
            room_dew_target,
            outlet_dew_target,
            required_flow_m3s: required,
        }
    }

    /// Serializes the controller's dynamic state: targets, the coil PID,
    /// the latest-value caches, the fan memory, and the pull-down mode
    /// latch. Tuning and the obs handle are rebuilt on restore.
    pub fn save_state(&self, w: &mut bz_state::Writer) {
        use bz_state::Persist;
        self.targets.save(w);
        self.coil_pid.save_state(w);
        self.room.save(w);
        self.co2.save(w);
        self.outlet.save(w);
        self.supply_temp.save(w);
        self.last_fan.save(w);
        w.put_bool(self.pulling_down);
    }

    /// Restores the state saved by [`Self::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a decode error if the bytes do not parse.
    pub fn load_state(&mut self, r: &mut bz_state::Reader<'_>) -> Result<(), bz_state::StateError> {
        use bz_state::Persist;
        self.targets = Persist::load(r)?;
        self.coil_pid.load_state(r)?;
        self.room = Persist::load(r)?;
        self.co2 = Persist::load(r)?;
        self.outlet = Persist::load(r)?;
        self.supply_temp = Persist::load(r)?;
        self.last_fan = Persist::load(r)?;
        self.pulling_down = r.take_bool()?;
        Ok(())
    }
}

// --- Checkpoint support --------------------------------------------------

bz_state::persist_struct!(VentilationDecision {
    actuation,
    room_dew,
    room_dew_target,
    outlet_dew_target,
    required_flow_m3s,
});

#[cfg(test)]
mod tests {
    use super::*;
    use bz_psychro::relative_humidity_from_dew_point;

    fn controller() -> VentilationController {
        VentilationController::new(VentilationConfig::default(), ComfortTargets::paper_trial())
    }

    fn rh_at(t: f64, dew: f64) -> Percent {
        relative_humidity_from_dew_point(Celsius::new(t), Celsius::new(dew))
    }

    #[test]
    fn fails_safe_without_room_data() {
        let mut c = controller();
        let d = c.decide(0.0, 5.0);
        assert_eq!(d.actuation, AirboxActuation::default());
        assert_eq!(d.required_flow_m3s, 0.0);
    }

    #[test]
    fn room_target_caps_at_supply_temperature() {
        let mut c = controller();
        // Preferred dew is 18 °C; a 17 °C supply must cap the target.
        c.observe_supply_temperature(0.0, Celsius::new(17.0));
        assert!((c.room_dew_target(0.0).get() - 17.0).abs() < 1e-9);
        // A 19 °C supply leaves the occupant preference in force.
        c.observe_supply_temperature(1.0, Celsius::new(19.0));
        assert!((c.room_dew_target(1.0).get() - 18.0).abs() < 1e-5);
    }

    #[test]
    fn humid_room_drives_full_dehumidification() {
        let mut c = controller();
        c.observe_room(0.0, Celsius::new(28.9), rh_at(28.9, 27.4));
        c.observe_supply_temperature(0.0, Celsius::new(18.0));
        let d = c.decide(0.0, 5.0);
        // Pull-down: outlet target 2 °C below the room target.
        assert!((d.outlet_dew_target.get() - 16.0).abs() < 0.01, "{d:?}");
        assert_ne!(d.actuation.fan, FanLevel::Off);
        assert!(d.actuation.flap_open);
        assert!(d.actuation.coil_pump_voltage.get() > 0.0);
        assert!(d.required_flow_m3s > 0.01);
    }

    #[test]
    fn outlet_feedback_trims_the_coil() {
        let mut c = controller();
        c.observe_room(0.0, Celsius::new(26.0), rh_at(26.0, 22.0));
        c.observe_supply_temperature(0.0, Celsius::new(18.0));
        // Outlet already drier than the 16 °C target → PID backs off.
        c.observe_outlet(0.0, Celsius::new(12.0), rh_at(12.0, 11.9));
        let relaxed = c.decide(0.0, 5.0).actuation.coil_pump_voltage.get();
        // Outlet too humid → PID pushes.
        c.observe_outlet(5.0, Celsius::new(20.0), rh_at(20.0, 19.9));
        let pushed = c.decide(5.0, 5.0).actuation.coil_pump_voltage.get();
        assert!(pushed > relaxed, "pushed {pushed} vs relaxed {relaxed}");
    }

    #[test]
    fn co2_alone_triggers_ventilation() {
        let mut c = controller();
        // Dry, comfortable room...
        c.observe_room(0.0, Celsius::new(25.0), rh_at(25.0, 17.0));
        // ...but stuffy.
        c.observe_co2(0.0, Ppm::new(1_400.0));
        let d = c.decide(0.0, 5.0);
        assert_ne!(d.actuation.fan, FanLevel::Off, "{d:?}");
        assert!(d.actuation.flap_open);
    }

    #[test]
    fn comfortable_room_lets_fans_rest() {
        let mut c = controller();
        c.observe_room(0.0, Celsius::new(25.0), rh_at(25.0, 17.8));
        c.observe_co2(0.0, Ppm::new(520.0));
        c.observe_supply_temperature(0.0, Celsius::new(18.0));
        let d = c.decide(0.0, 5.0);
        assert_eq!(d.actuation.fan, FanLevel::Off, "{d:?}");
        assert!(!d.actuation.flap_open);
        assert_eq!(d.actuation.coil_pump_voltage.get(), 0.0);
    }

    #[test]
    fn fan_demand_scales_with_humidity_excess() {
        let demand = |dew: f64| {
            let mut c = controller();
            c.observe_room(0.0, Celsius::new(26.0), rh_at(26.0, dew));
            c.observe_supply_temperature(0.0, Celsius::new(18.0));
            c.decide(0.0, 5.0).required_flow_m3s
        };
        let slight = demand(19.5);
        let heavy = demand(25.0);
        assert!(heavy > slight, "heavy {heavy} vs slight {slight}");
    }

    #[test]
    fn hold_mode_targets_room_dew_exactly() {
        let mut c = controller();
        // Room already below target: hold mode targets the room target
        // minus the hold margin (supply exactly at the target could never
        // offset infiltration).
        c.observe_room(0.0, Celsius::new(25.0), rh_at(25.0, 17.0));
        c.observe_supply_temperature(0.0, Celsius::new(18.0));
        let d = c.decide(0.0, 5.0);
        assert!((d.outlet_dew_target.get() - 17.5).abs() < 0.01, "{d:?}");
    }

    #[test]
    fn stale_data_fails_safe() {
        let mut c = controller();
        c.observe_room(0.0, Celsius::new(28.0), rh_at(28.0, 26.0));
        let d = c.decide(500.0, 5.0);
        assert_eq!(d.actuation, AirboxActuation::default());
    }
}
