//! The BubbleZERO decomposed low-exergy HVAC control system.
//!
//! This crate is the paper's primary contribution rebuilt in Rust:
//!
//! - [`pid`] — the Proportional-Integral-Derivative controller both
//!   modules use for "rapid and robust" convergence (§III-B, §III-C);
//! - [`radiant`] — the radiant cooling module: computes the ceiling dew
//!   point from six wireless sensors, holds the mixed-water target
//!   `T_mix = max(T_supp, T_c_dew)` to prevent condensation, and runs the
//!   flow PID that converts the occupant's preferred temperature into
//!   pump voltages (Control-C-1 / Control-C-2 logic);
//! - [`ventilation`] — the distributed ventilation module: one controller
//!   per subspace deriving the airbox output dew-point target, the coil
//!   PID, the `F_vent = max(F_humd, F_CO₂)` fan lookup, and the CO₂flap
//!   actuation (Control-V-1 / V-2 / V-3 logic);
//! - [`system`] — the full closed loop: the thermal plant from
//!   `bz-thermal`, the 802.15.4 network from `bz-wsn`, battery devices
//!   running BT-ADPT, AC boards on staggered schedules, and the two
//!   control modules consuming *only what arrives over the air*;
//! - [`baseline`] — the conventional all-air "AirCon" comparator of
//!   Fig. 11, computed from the same plant physics rather than asserted;
//! - [`metrics`] — COP accounting with the paper's water-side heat
//!   formula, convergence detection, and comfort statistics;
//! - [`scenario`] — the canned experiments behind every figure: the
//!   13:00–14:45 afternoon trial (Fig. 10/11) and the 5-hour networking
//!   trial (Fig. 12–15);
//! - [`supervisor`] — the controller-side sensor-health layer: validates
//!   every delivered reading (range, rate, stuck-at), engages a
//!   condensation safe mode when dew-margin inputs go untrustworthy, and
//!   watches commanded-vs-sensed loop flow for stuck pumps;
//! - [`chaos`] — deterministic full-stack fault schedules (sensor +
//!   network + actuator) and the resilience metrics (time-to-detect,
//!   time-to-recover, comfort-violation minutes) that quantify the
//!   paper's "one subspace, not the whole room" degradation property.
//!
//! # Example
//!
//! ```no_run
//! use bz_core::scenario::AfternoonTrial;
//!
//! let outcome = AfternoonTrial::paper_setup().run();
//! let fig10 = outcome.trace.series("Subsp1.temperature").unwrap();
//! assert!(fig10.last().unwrap().value < 25.6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod chaos;
pub mod devices;
pub mod json;
pub mod metrics;
pub mod pid;
pub mod radiant;
pub mod scenario;
pub mod session;
pub mod strategy;
pub mod supervisor;
pub mod system;
pub mod targets;
pub mod ventilation;
