//! The conventional all-air "AirCon" comparator of Fig. 11.
//!
//! Traditional systems use one stream of ~8 °C air for cooling *and*
//! dehumidification, which forces the chiller evaporator down to ~5 °C —
//! a much larger temperature lift than BubbleZERO's 18 °C radiant water.
//! The paper takes the resulting COP ≈ 2.8 from the literature; here the
//! same number is *computed* by running an all-air system against the
//! same laboratory physics and chiller model as BubbleZERO.

use bz_psychro::{dry_air_density, moist_air_enthalpy, Celsius, KgPerKg, Seconds, Watts};
use bz_simcore::{Rng, SimDuration, SimTime};
use bz_thermal::chiller::{ChillerConfig, TankChiller};
use bz_thermal::hydronics::Tank;
use bz_thermal::weather::{Weather, WeatherConfig};
use bz_thermal::zone::{AirState, SubspaceId, Zone, ZoneInputs, ZoneParams};

use crate::pid::{Pid, PidConfig};
use crate::targets::ComfortTargets;

/// Configuration of the baseline all-air system.
#[derive(Debug, Clone)]
pub struct AirConConfig {
    /// Comfort targets (same as the BubbleZERO trial).
    pub targets: ComfortTargets,
    /// Zone physics (same laboratory).
    pub zone: ZoneParams,
    /// Weather boundary.
    pub weather: WeatherConfig,
    /// Chiller (the low-temperature all-air machine).
    pub chiller: ChillerConfig,
    /// Maximum air-handler supply flow, m³/s.
    pub max_supply_m3s: f64,
    /// Fresh-air fraction of the supply stream.
    pub fresh_air_fraction: f64,
    /// Coil bypass factor at full flow (large coil: mostly contacted).
    pub coil_bypass: f64,
    /// Seed for the weather process.
    pub seed: u64,
}

impl AirConConfig {
    /// The baseline sized for the BubbleZERO laboratory.
    #[must_use]
    pub fn for_bubble_zero_lab() -> Self {
        Self {
            targets: ComfortTargets::paper_trial(),
            zone: ZoneParams::bubble_zero_subspace(),
            weather: WeatherConfig::singapore_afternoon(),
            chiller: ChillerConfig::aircon_baseline(),
            max_supply_m3s: 0.30,
            fresh_air_fraction: 0.12,
            coil_bypass: 0.12,
            seed: 0xA12C_0001,
        }
    }
}

/// The simulated all-air system.
#[derive(Debug)]
pub struct AirConSystem {
    config: AirConConfig,
    zones: [Zone; 4],
    weather: Weather,
    tank: Tank,
    chiller: TankChiller,
    thermostat: Pid,
    now: SimTime,
    removed_energy_j: f64,
    metered_since: SimTime,
    last_supply: AirState,
    last_flow_m3s: f64,
}

impl AirConSystem {
    /// Builds the baseline starting from the same initial condition as the
    /// paper's trial (indoor ≈ outdoor).
    #[must_use]
    pub fn new(config: AirConConfig) -> Self {
        let mut rng = Rng::seed_from(config.seed);
        let mut weather = Weather::new(config.weather, rng.fork());
        let outdoor = weather.sample(SimTime::ZERO);
        let initial = AirState::from_dew_point(
            Celsius::new(28.9),
            Celsius::new(27.4),
            bz_psychro::Ppm::new(520.0),
        );
        Self {
            zones: std::array::from_fn(|_| Zone::new(config.zone, initial)),
            weather,
            tank: Tank::new(0.25, config.chiller.setpoint),
            chiller: TankChiller::new(config.chiller),
            // Thermostat PID: full flow at ~2.5 K of error.
            thermostat: Pid::new(PidConfig::new(
                config.max_supply_m3s / 2.5,
                config.max_supply_m3s / 600.0,
                0.0,
                0.0,
                config.max_supply_m3s,
            )),
            config,
            now: SimTime::ZERO,
            removed_energy_j: 0.0,
            metered_since: SimTime::ZERO,
            last_supply: outdoor,
            last_flow_m3s: 0.0,
        }
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Mean room temperature.
    #[must_use]
    pub fn mean_temperature(&self) -> Celsius {
        let sum: f64 = self.zones.iter().map(|z| z.state().temperature.get()).sum();
        Celsius::new(sum / 4.0)
    }

    /// Mean room dew point.
    #[must_use]
    pub fn mean_dew_point(&self) -> Celsius {
        let sum: f64 = self.zones.iter().map(|z| z.state().dew_point().get()).sum();
        Celsius::new(sum / 4.0)
    }

    /// State of one zone.
    #[must_use]
    pub fn zone_state(&self, id: SubspaceId) -> AirState {
        self.zones[id.index()].state()
    }

    /// The supply air condition produced on the last step.
    #[must_use]
    pub fn supply_air(&self) -> AirState {
        self.last_supply
    }

    /// The supply flow commanded on the last step, m³/s.
    #[must_use]
    pub fn supply_flow(&self) -> f64 {
        self.last_flow_m3s
    }

    /// Advances the baseline one second.
    pub fn step_second(&mut self) {
        let dt_s = 1.0;
        self.now += SimDuration::from_secs(1);
        let outdoor = self.weather.sample(self.now);

        // Thermostat: supply-flow demand from the mean-temperature error.
        let error = self.mean_temperature().get() - self.config.targets.temperature.get();
        let flow = self.thermostat.step(error, dt_s);
        self.last_flow_m3s = flow;

        let supply = if flow > 1.0e-6 {
            // Mixed return + fresh air into the coil.
            let fresh = self.config.fresh_air_fraction;
            let mean_t = self.mean_temperature().get();
            let mean_w: f64 = self
                .zones
                .iter()
                .map(|z| z.state().humidity_ratio.get())
                .sum::<f64>()
                / 4.0;
            let mix_t = (1.0 - fresh) * mean_t + fresh * outdoor.temperature.get();
            let mix_w = (1.0 - fresh) * mean_w + fresh * outdoor.humidity_ratio.get();

            // Deep coil: most air contacts the ~9 °C apparatus dew point.
            let adp = Celsius::new(self.tank.temperature().get() + 2.0);
            let w_adp = bz_psychro::humidity_ratio_from_dew_point(adp).get();
            let bypass = self.config.coil_bypass;
            let out_t = bypass * mix_t + (1.0 - bypass) * adp.get();
            let out_w = bypass * mix_w + (1.0 - bypass) * mix_w.min(w_adp);

            // Coil duty from the enthalpy drop.
            let rho = dry_air_density(Celsius::new(mix_t));
            let mass_flow = flow * rho;
            let h_in = moist_air_enthalpy(Celsius::new(mix_t), KgPerKg::new(mix_w));
            let h_out = moist_air_enthalpy(Celsius::new(out_t), KgPerKg::new(out_w));
            let duty_w = (mass_flow * (h_in - h_out)).max(0.0);
            self.tank.apply_heat(duty_w, dt_s);
            self.removed_energy_j += duty_w * dt_s;

            AirState {
                temperature: Celsius::new(out_t),
                humidity_ratio: KgPerKg::new(out_w),
                co2: outdoor.co2,
            }
        } else {
            outdoor
        };
        self.last_supply = supply;

        // Distribute the supply evenly; the same volume is relieved back
        // to the return (modeled by the zone's balanced-exchange form).
        let per_zone = ZoneInputs {
            ventilation_m3s: flow / 4.0,
            ventilation_temp: supply.temperature,
            ventilation_ratio: supply.humidity_ratio,
            ventilation_co2: supply.co2,
            ..ZoneInputs::default()
        };
        let pre: [AirState; 4] = std::array::from_fn(|i| self.zones[i].state());
        for (i, zone) in self.zones.iter_mut().enumerate() {
            let neighbor = pre[(i + 1) % 4];
            zone.step(dt_s, &per_zone, outdoor, &[(0.04, neighbor)]);
        }

        self.chiller.regulate(&mut self.tank, dt_s);
    }

    /// Runs `seconds` of simulation.
    pub fn run_seconds(&mut self, seconds: u64) {
        for _ in 0..seconds {
            self.step_second();
        }
    }

    /// Resets the COP meters (start of the steady-state window).
    pub fn reset_meters(&mut self) {
        self.removed_energy_j = 0.0;
        self.chiller.reset_meters();
        self.metered_since = self.now;
    }

    /// Heat removed since the last meter reset, J.
    #[must_use]
    pub fn removed_energy_j(&self) -> f64 {
        self.removed_energy_j
    }

    /// Measured COP over the metering window: removed heat over chiller
    /// electrical energy (the paper's accounting — distribution fans and
    /// pumps are excluded on both sides of the comparison).
    #[must_use]
    pub fn measured_cop(&self) -> Option<f64> {
        let electrical = self.chiller.electrical_energy().get();
        (electrical > 0.0).then(|| self.removed_energy_j / electrical)
    }

    /// Mean electrical power of the chiller over the window, W.
    #[must_use]
    pub fn mean_chiller_power(&self) -> Watts {
        let elapsed = Seconds::new(self.now.since(self.metered_since).as_secs_f64().max(1.0));
        Watts::new(self.chiller.electrical_energy().get() / elapsed.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settled_system() -> AirConSystem {
        let mut system = AirConSystem::new(AirConConfig::for_bubble_zero_lab());
        system.run_seconds(40 * 60);
        system.reset_meters();
        system.run_seconds(20 * 60);
        system
    }

    #[test]
    fn aircon_reaches_the_comfort_targets() {
        let system = settled_system();
        let t = system.mean_temperature().get();
        assert!((t - 25.0).abs() < 0.6, "settled at {t}");
        // All-air systems over-dry: dew point at or below the target.
        assert!(system.mean_dew_point().get() < 19.0);
    }

    #[test]
    fn aircon_cop_is_conventional() {
        let system = settled_system();
        let cop = system.measured_cop().expect("metered window");
        assert!(
            (cop - 2.8).abs() < 0.35,
            "conventional COP should be ≈2.8, got {cop}"
        );
    }

    #[test]
    fn supply_air_is_cold_and_dry() {
        let system = settled_system();
        let supply = system.supply_air();
        assert!(supply.temperature.get() < 14.0, "{supply:?}");
        assert!(supply.dew_point().get() < 12.0);
        assert!(system.supply_flow() > 0.0);
    }

    #[test]
    fn thermostat_throttles_when_cold() {
        let mut system = AirConSystem::new(AirConConfig::for_bubble_zero_lab());
        system.run_seconds(60 * 60);
        // Near the target the flow should not be pinned at maximum.
        assert!(system.supply_flow() < system.config.max_supply_m3s * 0.98);
    }

    #[test]
    fn aircon_is_deterministic() {
        let mut a = AirConSystem::new(AirConConfig::for_bubble_zero_lab());
        let mut b = AirConSystem::new(AirConConfig::for_bubble_zero_lab());
        a.run_seconds(600);
        b.run_seconds(600);
        assert_eq!(a.mean_temperature(), b.mean_temperature());
        assert_eq!(a.removed_energy_j(), b.removed_energy_j());
    }
}
