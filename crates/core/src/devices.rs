//! The BubbleZERO device inventory and message-addressing conventions.
//!
//! §III-A deploys 38 sensors of different types; each control board and
//! special-purpose sensor is integrated with a TelosB mote. This module
//! fixes the node-id allocation and the logical-channel scheme by which
//! typed broadcasts are disambiguated (e.g. *which* subspace a temperature
//! sample describes).

use bz_wsn::message::NodeId;

/// Power supply of a device (§IV treats the two classes differently).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerClass {
    /// Mains-powered: transmits on a fixed (but contention-adapted)
    /// schedule.
    Ac,
    /// Battery-powered: duty-cycled with BT-ADPT.
    Battery,
}

/// Roles a mote can play in the deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceRole {
    /// Ceiling-surface temperature/humidity sensor `index` (0–11; six per
    /// panel, §III-B, Figure 4(b)).
    CeilingSensor(usize),
    /// Room air temperature/humidity sensor for subspace `index` (0–3).
    RoomSensor(usize),
    /// CO₂ sensor for subspace `index` (on the CO₂flap, 0–3).
    Co2Sensor(usize),
    /// Airbox outlet SHT75 for airbox `index` (0–3; wired to the
    /// AC-powered Control-V-2, broadcast for Control-V-1).
    OutletSensor(usize),
    /// Control-C-1: pipe temperature acquisition + T_mix target
    /// computation for panel `index` (0–1).
    ControlC1(usize),
    /// Control-C-2: flow sensing + pump drive for panel `index` (0–1).
    ControlC2(usize),
    /// Control-V-1: ventilation coordinator (coil pumps + dew targets).
    ControlV1,
    /// Control-V-2: fan driver for airbox `index` (0–3).
    ControlV2(usize),
    /// Control-V-3: CO₂flap driver for subspace `index` (0–3).
    ControlV3(usize),
}

impl DeviceRole {
    /// The node id assigned to this role.
    #[must_use]
    pub fn node_id(self) -> NodeId {
        let id = match self {
            Self::CeilingSensor(i) => 1 + i as u16, // 1–12
            Self::RoomSensor(i) => 20 + i as u16,   // 20–23
            Self::Co2Sensor(i) => 30 + i as u16,    // 30–33
            Self::OutletSensor(i) => 40 + i as u16, // 40–43
            Self::ControlC1(i) => 50 + i as u16,    // 50–51
            Self::ControlC2(i) => 55 + i as u16,    // 55–56
            Self::ControlV1 => 60,
            Self::ControlV2(i) => 65 + i as u16, // 65–68
            Self::ControlV3(i) => 70 + i as u16, // 70–73
        };
        NodeId::new(id)
    }

    /// Power class of this role: sensors scattered over the space run on
    /// batteries; boards bolted to powered hardware take AC (§IV).
    #[must_use]
    pub fn power_class(self) -> PowerClass {
        match self {
            Self::CeilingSensor(_) | Self::RoomSensor(_) | Self::Co2Sensor(_) => {
                PowerClass::Battery
            }
            _ => PowerClass::Ac,
        }
    }

    /// Every deployed role.
    #[must_use]
    pub fn all() -> Vec<DeviceRole> {
        let mut roles = Vec::new();
        for i in 0..12 {
            roles.push(Self::CeilingSensor(i));
        }
        for i in 0..4 {
            roles.push(Self::RoomSensor(i));
        }
        for i in 0..4 {
            roles.push(Self::Co2Sensor(i));
        }
        for i in 0..4 {
            roles.push(Self::OutletSensor(i));
        }
        for i in 0..2 {
            roles.push(Self::ControlC1(i));
            roles.push(Self::ControlC2(i));
        }
        roles.push(Self::ControlV1);
        for i in 0..4 {
            roles.push(Self::ControlV2(i));
            roles.push(Self::ControlV3(i));
        }
        roles
    }
}

/// Logical-channel conventions for typed broadcasts.
pub mod channels {
    /// Temperature/humidity from ceiling sensor `k` (0–11):
    /// channel = `CEILING_BASE + k`.
    pub const CEILING_BASE: u16 = 100;
    /// Temperature/humidity from the room sensor of subspace `s`:
    /// channel = `ROOM_BASE + s`.
    pub const ROOM_BASE: u16 = 200;
    /// CO₂ from subspace `s`: channel = `CO2_BASE + s`.
    pub const CO2_BASE: u16 = 300;
    /// Outlet conditions of airbox `a`: channel = `OUTLET_BASE + a`.
    pub const OUTLET_BASE: u16 = 400;
    /// The radiant tank supply temperature (single channel).
    pub const SUPPLY_TEMP: u16 = 500;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_ids_are_unique() {
        let roles = DeviceRole::all();
        let ids: HashSet<u16> = roles.iter().map(|r| r.node_id().get()).collect();
        assert_eq!(ids.len(), roles.len());
    }

    #[test]
    fn inventory_size_matches_paper_scale() {
        // The paper deploys 38 sensors plus control boards; our inventory
        // of motes (sensors + boards) should be in the same range.
        let n = DeviceRole::all().len();
        assert!((30..=40).contains(&n), "inventory {n}");
    }

    #[test]
    fn battery_share_is_about_half() {
        // "A half of devices in BubbleZERO are powered by batteries."
        let roles = DeviceRole::all();
        let battery = roles
            .iter()
            .filter(|r| r.power_class() == PowerClass::Battery)
            .count();
        let fraction = battery as f64 / roles.len() as f64;
        assert!(
            (0.4..=0.7).contains(&fraction),
            "battery fraction {fraction}"
        );
    }

    #[test]
    fn role_power_classes() {
        assert_eq!(DeviceRole::RoomSensor(0).power_class(), PowerClass::Battery);
        assert_eq!(DeviceRole::ControlV1.power_class(), PowerClass::Ac);
        assert_eq!(DeviceRole::OutletSensor(2).power_class(), PowerClass::Ac);
    }
}
