//! The radiant cooling module controller (§III-B).
//!
//! One instance drives one ceiling panel's mixing loop through its two
//! pump voltages. The logic is the paper's:
//!
//! 1. Compute the ceiling-surface dew point `T_c_dew` from the six
//!    temperature/humidity sensors deployed below the panel (we take the
//!    *highest* sensor dew point — condensation anywhere is failure).
//! 2. Hold the mixed-water target `T_t_mix = max(T_supp, T_c_dew)`:
//!    when the tank water is warmer than the dew point it is supplied
//!    directly; otherwise the recycle pump blends warm return water in.
//! 3. Run a PID from `ΔT = T_room − T_pref` to the loop-flow target
//!    `F_t_mix`, and translate `(T_t_mix, F_t_mix)` into supply/recycle
//!    pump voltages using the hydraulic model.

use bz_psychro::{dew_point_checked, Celsius, Percent};
use bz_thermal::hydronics::Pump;
use bz_thermal::plant::RadiantLoopCommand;

use crate::pid::{Pid, PidConfig};
use crate::targets::ComfortTargets;

/// Number of ceiling sensors per panel.
pub const CEILING_SENSORS: usize = 6;

/// Diagnostics from one control decision (what Control-C-1/C-2 would log).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadiantDecision {
    /// The command actually issued.
    pub command: RadiantLoopCommand,
    /// Ceiling dew point estimate, if computable.
    pub ceiling_dew: Option<Celsius>,
    /// The mixed-water temperature target.
    pub mix_target: Option<Celsius>,
    /// The loop-flow target from the PID, m³/s.
    pub flow_target: f64,
}

/// Tuning of the radiant controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadiantConfig {
    /// Safety margin added above the measured ceiling dew point, K.
    pub dew_margin_k: f64,
    /// PID for `ΔT → F_t_mix` (output in m³/s).
    pub flow_pid: PidConfig,
    /// Maximum age of sensor data before the controller fails safe, s.
    pub max_staleness_s: f64,
}

impl Default for RadiantConfig {
    fn default() -> Self {
        Self {
            dew_margin_k: 0.5,
            // Full loop flow (~2e-4 m³/s with both pumps) at ~4 K error.
            flow_pid: PidConfig::new(5.0e-5, 2.5e-7, 0.0, 0.0, 2.2e-4),
            max_staleness_s: 120.0,
        }
    }
}

/// Latest-value cache for one ceiling sensor.
#[derive(Debug, Clone, Copy, Default)]
struct CeilingReading {
    temperature: Option<(f64, Celsius)>, // (age timestamp s, value)
    humidity: Option<(f64, Percent)>,
}

/// The radiant cooling module controller for one panel.
///
/// # Example
///
/// A warm, dry room gets direct 18 °C supply:
///
/// ```
/// use bz_core::radiant::{RadiantConfig, RadiantController};
/// use bz_core::targets::ComfortTargets;
/// use bz_psychro::{relative_humidity_from_dew_point, Celsius};
/// use bz_thermal::hydronics::Pump;
///
/// let mut controller = RadiantController::new(
///     RadiantConfig::default(),
///     ComfortTargets::paper_trial(),
///     Pump::radiant_loop(),
/// );
/// let rh = relative_humidity_from_dew_point(Celsius::new(27.0), Celsius::new(15.0));
/// for k in 0..6 {
///     controller.observe_ceiling_temperature(k, 0.0, Celsius::new(27.0));
///     controller.observe_ceiling_humidity(k, 0.0, rh);
/// }
/// controller.set_pipe_readings(Celsius::new(18.0), Celsius::new(20.5));
/// controller.observe_room_temperature(0, 0.0, Celsius::new(27.0));
/// controller.observe_room_temperature(1, 0.0, Celsius::new(27.0));
/// let decision = controller.decide(0.0, 5.0);
/// assert!(decision.command.supply_voltage.get() > 0.0);
/// assert_eq!(decision.command.recycle_voltage.get(), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct RadiantController {
    config: RadiantConfig,
    targets: ComfortTargets,
    pump: Pump,
    pid: Pid,
    ceiling: [CeilingReading; CEILING_SENSORS],
    room_temps: [Option<(f64, Celsius)>; 2],
    supply_temp: Option<Celsius>,
    return_temp: Option<Celsius>,
    mixed_temp: Option<Celsius>,
    /// Integral trim on the achieved mixed temperature, K: the blend
    /// fraction is computed from a lagging return-pipe reading, so a slow
    /// integrator nudges the commanded blend until the *measured* T_mix
    /// matches the target (the paper's feedback on the mixing junction).
    mix_trim_k: f64,
    obs: bz_obs::Handle,
}

impl RadiantController {
    /// Creates a controller for one panel, recording against the global
    /// `bz_obs` registry.
    #[must_use]
    pub fn new(config: RadiantConfig, targets: ComfortTargets, pump: Pump) -> Self {
        Self {
            pid: Pid::new(config.flow_pid),
            config,
            targets,
            pump,
            ceiling: Default::default(),
            room_temps: [None; 2],
            supply_temp: None,
            return_temp: None,
            mixed_temp: None,
            mix_trim_k: 0.0,
            obs: bz_obs::Handle::global(),
        }
    }

    /// Redirects this controller's metrics (and its inner PID's) to `obs`
    /// (per-run isolation).
    #[must_use]
    pub fn with_obs(mut self, obs: bz_obs::Handle) -> Self {
        self.pid = self.pid.with_obs(obs.clone());
        self.obs = obs;
        self
    }

    /// The comfort targets in force.
    #[must_use]
    pub fn targets(&self) -> &ComfortTargets {
        &self.targets
    }

    /// Updates the comfort targets (occupant changed the thermostat).
    pub fn set_targets(&mut self, targets: ComfortTargets) {
        self.targets = targets;
        self.pid.reset();
    }

    /// Ingests a ceiling temperature sample (sensor `k`, 0–5) received at
    /// `now_s`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn observe_ceiling_temperature(&mut self, k: usize, now_s: f64, value: Celsius) {
        self.ceiling[k].temperature = Some((now_s, value));
    }

    /// Ingests a ceiling humidity sample (sensor `k`, 0–5).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn observe_ceiling_humidity(&mut self, k: usize, now_s: f64, value: Percent) {
        self.ceiling[k].humidity = Some((now_s, value));
    }

    /// Ingests a room temperature sample for one of the panel's two
    /// subspaces (`local` 0–1).
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of range.
    pub fn observe_room_temperature(&mut self, local: usize, now_s: f64, value: Celsius) {
        self.room_temps[local] = Some((now_s, value));
    }

    /// Sets the wired pipe readings Control-C-1 acquires directly: the
    /// tank supply temperature and the loop return temperature.
    pub fn set_pipe_readings(&mut self, supply: Celsius, return_temp: Celsius) {
        self.supply_temp = Some(supply);
        self.return_temp = Some(return_temp);
    }

    /// Sets the wired reading of the achieved mixed-water temperature
    /// (the T_mix sensor of Figure 3).
    pub fn observe_mixed_temp(&mut self, value: Celsius) {
        self.mixed_temp = Some(value);
    }

    /// The ceiling dew point `T_c_dew`: the *highest* dew point among the
    /// fresh ceiling sensors (condensation on any patch is failure), or
    /// `None` when no sensor pair is fresh.
    #[must_use]
    pub fn ceiling_dew_point(&self, now_s: f64) -> Option<Celsius> {
        let max_age = self.config.max_staleness_s;
        let mut worst: Option<Celsius> = None;
        for reading in &self.ceiling {
            let (Some((t_at, t)), Some((h_at, h))) = (reading.temperature, reading.humidity) else {
                continue;
            };
            if now_s - t_at > max_age || now_s - h_at > max_age {
                continue;
            }
            if let Ok(dew) = dew_point_checked(t, h) {
                worst = Some(match worst {
                    Some(w) => w.max(dew),
                    None => dew,
                });
            }
        }
        worst
    }

    /// Average fresh room temperature over the panel's two subspaces.
    #[must_use]
    pub fn room_temperature(&self, now_s: f64) -> Option<Celsius> {
        let fresh: Vec<f64> = self
            .room_temps
            .iter()
            .filter_map(|r| *r)
            .filter(|(at, _)| now_s - at <= self.config.max_staleness_s)
            .map(|(_, v)| v.get())
            .collect();
        if fresh.is_empty() {
            None
        } else {
            Some(Celsius::new(fresh.iter().sum::<f64>() / fresh.len() as f64))
        }
    }

    /// Runs one control cycle at `now_s` with period `dt_s` and returns
    /// the pump command.
    ///
    /// Fail-safe: without a fresh ceiling dew point, a supply temperature,
    /// and a room temperature, the pumps stop — a stationary loop cannot
    /// condense.
    pub fn decide(&mut self, now_s: f64, dt_s: f64) -> RadiantDecision {
        let off = RadiantDecision {
            command: RadiantLoopCommand::default(),
            ceiling_dew: None,
            mix_target: None,
            flow_target: 0.0,
        };

        let Some(ceiling_dew) = self.ceiling_dew_point(now_s) else {
            return off;
        };
        let (Some(supply), Some(return_temp)) = (self.supply_temp, self.return_temp) else {
            return off;
        };
        let Some(room) = self.room_temperature(now_s) else {
            return RadiantDecision {
                ceiling_dew: Some(ceiling_dew),
                ..off
            };
        };

        // §III-B: T_t_mix = max{T_supp, T_c_dew} (we add a small margin on
        // the dew side).
        let dew_floor = Celsius::new(ceiling_dew.get() + self.config.dew_margin_k);
        let mix_target = supply.max(dew_floor);
        if mix_target > supply {
            // The dew floor is binding: the mix setpoint was raised above
            // the tank supply to keep the panels above condensation.
            self.obs.counter_inc("core.radiant.condensation_guard");
        }

        // ΔT = T_room − T_pref drives the flow PID.
        let error_k = room.get() - self.targets.temperature.get();
        let flow_target = self.pid.step(error_k, dt_s);

        if flow_target <= 1.0e-6 {
            return RadiantDecision {
                command: RadiantLoopCommand::default(),
                ceiling_dew: Some(ceiling_dew),
                mix_target: Some(mix_target),
                flow_target,
            };
        }

        // The integral trim compensates the lag between the return-pipe
        // reading and the post-adjustment return temperature.
        if let Some(measured_mix) = self.mixed_temp {
            if mix_target.get() > supply.get() + 0.05 {
                let error = mix_target.get() - measured_mix.get();
                self.mix_trim_k = (self.mix_trim_k + 0.05 * error * dt_s).clamp(-3.0, 3.0);
            } else {
                self.mix_trim_k = 0.0;
            }
        }
        let command = self.split_flows(flow_target, supply, return_temp, mix_target);
        RadiantDecision {
            command,
            ceiling_dew: Some(ceiling_dew),
            mix_target: Some(mix_target),
            flow_target,
        }
    }

    /// Splits a target loop flow between the supply and recycle pumps so
    /// the junction mixes to `mix_target` (§III-B's feedback design),
    /// honouring the current integral trim.
    fn split_flows(
        &self,
        flow_target: f64,
        supply: Celsius,
        return_temp: Celsius,
        mix_target: Celsius,
    ) -> RadiantLoopCommand {
        let blend_target = mix_target.get() + self.mix_trim_k;
        let (supply_flow, recycle_flow) = if mix_target.get() <= supply.get() + 0.05 {
            // Tank water is already warm enough: supply directly.
            (flow_target, 0.0)
        } else if return_temp.get() <= blend_target {
            // Even pure return water is below the target: recirculate
            // only, letting the loop warm against the panel.
            (0.0, flow_target)
        } else {
            let fraction = (return_temp.get() - blend_target) / (return_temp.get() - supply.get());
            let supply_flow = flow_target * fraction.clamp(0.0, 1.0);
            (supply_flow, flow_target - supply_flow)
        };
        RadiantLoopCommand {
            supply_voltage: self.pump.voltage_for(supply_flow),
            recycle_voltage: self.pump.voltage_for(recycle_flow),
        }
    }

    /// Re-blends an externally chosen loop flow through the same dew-safe
    /// mixing logic [`decide`](Self::decide) uses, without advancing the
    /// PID or the mix trim.
    ///
    /// A predictive planner that wants *less* flow than the reactive PID
    /// asked for calls this so its command structurally inherits the
    /// `T_t_mix = max(T_supp, T_c_dew + margin)` condensation guard.
    /// Returns `None` when the sensor picture is too stale to blend
    /// safely — callers must fall back to a stopped loop.
    #[must_use]
    pub fn command_for_flow(&self, now_s: f64, flow_target: f64) -> Option<RadiantDecision> {
        let ceiling_dew = self.ceiling_dew_point(now_s)?;
        let (supply, return_temp) = (self.supply_temp?, self.return_temp?);
        let dew_floor = Celsius::new(ceiling_dew.get() + self.config.dew_margin_k);
        let mix_target = supply.max(dew_floor);
        let command = if flow_target <= 1.0e-6 {
            RadiantLoopCommand::default()
        } else {
            self.split_flows(flow_target, supply, return_temp, mix_target)
        };
        Some(RadiantDecision {
            command,
            ceiling_dew: Some(ceiling_dew),
            mix_target: Some(mix_target),
            flow_target,
        })
    }

    /// The configuration this controller runs with.
    #[must_use]
    pub fn config(&self) -> &RadiantConfig {
        &self.config
    }

    /// The last wired supply-pipe reading, if any.
    #[must_use]
    pub fn supply_temp(&self) -> Option<Celsius> {
        self.supply_temp
    }

    /// The last wired measurement of the achieved mixed-water temperature.
    #[must_use]
    pub fn measured_mixed_temp(&self) -> Option<Celsius> {
        self.mixed_temp
    }

    /// Serializes the controller's dynamic state: targets (they can change
    /// mid-run), the PID, every latest-value cache, and the mix trim.
    /// Tuning, the pump model, and the obs handle are rebuilt on restore.
    pub fn save_state(&self, w: &mut bz_state::Writer) {
        use bz_state::Persist;
        self.targets.save(w);
        self.pid.save_state(w);
        self.ceiling.save(w);
        self.room_temps.save(w);
        self.supply_temp.save(w);
        self.return_temp.save(w);
        self.mixed_temp.save(w);
        w.put_f64(self.mix_trim_k);
    }

    /// Restores the state saved by [`Self::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a decode error if the bytes do not parse.
    pub fn load_state(&mut self, r: &mut bz_state::Reader<'_>) -> Result<(), bz_state::StateError> {
        use bz_state::Persist;
        self.targets = Persist::load(r)?;
        self.pid.load_state(r)?;
        self.ceiling = Persist::load(r)?;
        self.room_temps = Persist::load(r)?;
        self.supply_temp = Persist::load(r)?;
        self.return_temp = Persist::load(r)?;
        self.mixed_temp = Persist::load(r)?;
        self.mix_trim_k = r.take_f64()?;
        Ok(())
    }
}

// --- Checkpoint support --------------------------------------------------

bz_state::persist_struct!(CeilingReading {
    temperature,
    humidity,
});
bz_state::persist_struct!(RadiantDecision {
    command,
    ceiling_dew,
    mix_target,
    flow_target,
});

#[cfg(test)]
mod tests {
    use super::*;
    use bz_psychro::relative_humidity_from_dew_point;

    fn controller() -> RadiantController {
        RadiantController::new(
            RadiantConfig::default(),
            ComfortTargets::paper_trial(),
            Pump::radiant_loop(),
        )
    }

    /// Feeds all six ceiling sensors a (temperature, dew point) condition.
    fn feed_ceiling(c: &mut RadiantController, now_s: f64, t: f64, dew: f64) {
        let rh = relative_humidity_from_dew_point(Celsius::new(t), Celsius::new(dew));
        for k in 0..CEILING_SENSORS {
            c.observe_ceiling_temperature(k, now_s, Celsius::new(t));
            c.observe_ceiling_humidity(k, now_s, rh);
        }
    }

    #[test]
    fn fails_safe_without_data() {
        let mut c = controller();
        let d = c.decide(0.0, 5.0);
        assert_eq!(d.command, RadiantLoopCommand::default());
        assert_eq!(d.ceiling_dew, None);
    }

    #[test]
    fn dry_room_gets_direct_supply() {
        let mut c = controller();
        feed_ceiling(&mut c, 0.0, 26.0, 15.0); // dew well below 18 °C
        c.set_pipe_readings(Celsius::new(18.0), Celsius::new(20.5));
        c.observe_room_temperature(0, 0.0, Celsius::new(27.0));
        c.observe_room_temperature(1, 0.0, Celsius::new(27.0));
        let d = c.decide(0.0, 5.0);
        // Warm room: flow demanded; dew below supply: no recycle needed.
        assert!(d.flow_target > 0.0);
        assert!(d.command.supply_voltage.get() > 0.0);
        assert_eq!(d.command.recycle_voltage.get(), 0.0);
        assert!((d.mix_target.unwrap().get() - 18.0).abs() < 1e-9);
    }

    #[test]
    fn humid_ceiling_forces_recycle_blend() {
        let mut c = controller();
        feed_ceiling(&mut c, 0.0, 27.0, 21.0); // dew above the 18 °C supply
        c.set_pipe_readings(Celsius::new(18.0), Celsius::new(24.0));
        c.observe_room_temperature(0, 0.0, Celsius::new(28.0));
        c.observe_room_temperature(1, 0.0, Celsius::new(28.0));
        let d = c.decide(0.0, 5.0);
        assert!(d.command.recycle_voltage.get() > 0.0, "{d:?}");
        let target = d.mix_target.unwrap().get();
        // Ceiling dew 21 °C + the 0.5 K safety margin.
        assert!((target - 21.5).abs() < 1e-6, "target {target}");
    }

    #[test]
    fn pure_recycle_when_return_is_below_dew() {
        let mut c = controller();
        feed_ceiling(&mut c, 0.0, 27.0, 23.0);
        // Return water (19 °C) is still below the dew floor (23.3 °C).
        c.set_pipe_readings(Celsius::new(18.0), Celsius::new(19.0));
        c.observe_room_temperature(0, 0.0, Celsius::new(28.0));
        c.observe_room_temperature(1, 0.0, Celsius::new(28.0));
        let d = c.decide(0.0, 5.0);
        assert_eq!(d.command.supply_voltage.get(), 0.0);
        assert!(d.command.recycle_voltage.get() > 0.0);
    }

    #[test]
    fn cool_room_stops_the_flow() {
        let mut c = controller();
        feed_ceiling(&mut c, 0.0, 24.0, 15.0);
        c.set_pipe_readings(Celsius::new(18.0), Celsius::new(19.0));
        c.observe_room_temperature(0, 0.0, Celsius::new(24.5)); // below T_pref
        c.observe_room_temperature(1, 0.0, Celsius::new(24.5));
        let d = c.decide(0.0, 5.0);
        assert!(d.flow_target <= 1.0e-6, "{d:?}");
        assert_eq!(d.command, RadiantLoopCommand::default());
    }

    #[test]
    fn worst_sensor_dominates_the_dew_estimate() {
        let mut c = controller();
        feed_ceiling(&mut c, 0.0, 26.0, 15.0);
        // One sensor sees far more humid air (e.g. near the door).
        let humid_rh = relative_humidity_from_dew_point(Celsius::new(26.0), Celsius::new(22.0));
        c.observe_ceiling_humidity(3, 0.0, humid_rh);
        let dew = c.ceiling_dew_point(0.0).unwrap();
        assert!((dew.get() - 22.0).abs() < 0.1, "dew {dew}");
    }

    #[test]
    fn stale_sensors_are_ignored() {
        let mut c = controller();
        feed_ceiling(&mut c, 0.0, 26.0, 15.0);
        c.set_pipe_readings(Celsius::new(18.0), Celsius::new(20.0));
        c.observe_room_temperature(0, 0.0, Celsius::new(28.0));
        // 10 minutes later everything is stale → fail safe.
        let d = c.decide(600.0, 5.0);
        assert_eq!(d.command, RadiantLoopCommand::default());
        assert_eq!(d.ceiling_dew, None);
    }

    #[test]
    fn flow_scales_with_temperature_error() {
        let run = |room_t: f64| {
            let mut c = controller();
            feed_ceiling(&mut c, 0.0, room_t, 15.0);
            c.set_pipe_readings(Celsius::new(18.0), Celsius::new(20.0));
            c.observe_room_temperature(0, 0.0, Celsius::new(room_t));
            c.observe_room_temperature(1, 0.0, Celsius::new(room_t));
            c.decide(0.0, 5.0).flow_target
        };
        let mild = run(26.0);
        let hot = run(29.0);
        assert!(hot > mild, "hot {hot} vs mild {mild}");
    }

    #[test]
    fn command_for_flow_matches_the_decide_blend() {
        let mut c = controller();
        feed_ceiling(&mut c, 0.0, 27.0, 21.0);
        c.set_pipe_readings(Celsius::new(18.0), Celsius::new(24.0));
        c.observe_room_temperature(0, 0.0, Celsius::new(28.0));
        c.observe_room_temperature(1, 0.0, Celsius::new(28.0));
        let d = c.decide(0.0, 5.0);
        let re = c.command_for_flow(0.0, d.flow_target).unwrap();
        assert_eq!(re.command, d.command);
        assert_eq!(re.mix_target, d.mix_target);
        // A scaled-down flow keeps the same dew-safe mix target.
        let half = c.command_for_flow(0.0, d.flow_target * 0.5).unwrap();
        assert_eq!(half.mix_target, d.mix_target);
        assert!(half.command.recycle_voltage.get() > 0.0);
    }

    #[test]
    fn command_for_flow_fails_safe_without_data() {
        let c = controller();
        assert!(c.command_for_flow(0.0, 1.0e-4).is_none());
        let mut c = controller();
        feed_ceiling(&mut c, 0.0, 27.0, 21.0);
        // Ceiling data but no pipe readings: still unsafe to blend.
        assert!(c.command_for_flow(0.0, 1.0e-4).is_none());
    }

    #[test]
    fn changing_targets_resets_the_pid() {
        let mut c = controller();
        feed_ceiling(&mut c, 0.0, 28.0, 15.0);
        c.set_pipe_readings(Celsius::new(18.0), Celsius::new(20.0));
        c.observe_room_temperature(0, 0.0, Celsius::new(28.0));
        c.observe_room_temperature(1, 0.0, Celsius::new(28.0));
        for i in 0..100 {
            c.decide(f64::from(i), 1.0);
        }
        c.set_targets(ComfortTargets::from_dew_point(
            Celsius::new(27.0),
            Celsius::new(18.0),
            bz_psychro::Ppm::new(800.0),
        ));
        // Integral cleared: with the room now barely above target the
        // demanded flow is small again.
        feed_ceiling(&mut c, 100.0, 27.2, 15.0);
        c.observe_room_temperature(0, 100.0, Celsius::new(27.2));
        c.observe_room_temperature(1, 100.0, Celsius::new(27.2));
        let d = c.decide(100.0, 1.0);
        assert!(d.flow_target < 5.0e-5, "{d:?}");
    }
}
