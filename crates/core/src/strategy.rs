//! Pluggable control strategies for the closed loop.
//!
//! The paper's control layer is purely reactive: one [`RadiantController`]
//! per panel and one [`VentilationController`] per subspace, each deciding
//! from the latest over-the-air sensor picture. This module extracts that
//! behaviour behind the [`ControlStrategy`] trait so alternative planners
//! — notably the receding-horizon MPC in `bz-predict` — can slot into
//! [`BubbleZeroSystem`](crate::system::BubbleZeroSystem) without touching
//! the event loop, the supervisor, or the safety plumbing.
//!
//! Design rules the trait encodes:
//!
//! - **Observations flow through the strategy.** Every sensor delivery the
//!   system routes to a controller goes through a trait method, so a
//!   wrapper strategy can tee the sensed stream into its own estimators
//!   while the inner reactive controllers stay byte-identical.
//! - **Safety stays outside.** Supervisor validation, condensation safe
//!   mode, and the pump watchdog live in `system.rs` and apply to *any*
//!   strategy's commands.
//! - **The reactive stack is always present.** [`ControlStrategy::reactive`]
//!   exposes the wrapped [`ReactiveStrategy`] so diagnostics accessors
//!   (`radiant_controller`, `ventilation_controller`) keep working no
//!   matter which strategy is installed.

use bz_psychro::{Celsius, Percent, Ppm};
use bz_thermal::hydronics::Pump;

use crate::radiant::{RadiantController, RadiantDecision};
use crate::system::SystemConfig;
use crate::targets::ComfortTargets;
use crate::ventilation::{VentilationController, VentilationDecision};

/// Per-cycle inputs the system hands a strategy before asking for
/// decisions.
///
/// Everything here is either configuration-derived (the occupancy
/// schedule is an input to the simulation, standing in for the PIR
/// occupancy sensors a real deployment would have) or a supervisor trust
/// verdict — never privileged plant state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleInputs {
    /// Simulation time of this control cycle, seconds.
    pub now_s: f64,
    /// Control period, seconds.
    pub dt_s: f64,
    /// Current headcount per subspace (the occupancy-sensor stream).
    pub occupancy: [u32; 4],
    /// Whether the supervisor currently trusts each subspace's room
    /// temperature channel (gates model identification).
    pub room_trusted: [bool; 4],
}

/// A pluggable control layer for
/// [`BubbleZeroSystem`](crate::system::BubbleZeroSystem).
///
/// Default method bodies forward to the wrapped [`ReactiveStrategy`], so
/// an implementor only overrides the seams it cares about; a strategy
/// that overrides nothing behaves exactly like the paper's reactive
/// controllers.
pub trait ControlStrategy: std::fmt::Debug + Send {
    /// Short machine-readable name (`"reactive"`, `"mpc"`, …).
    fn name(&self) -> &'static str;

    /// The reactive controller stack this strategy wraps (or is).
    fn reactive(&self) -> &ReactiveStrategy;

    /// Mutable access to the wrapped reactive stack.
    fn reactive_mut(&mut self) -> &mut ReactiveStrategy;

    /// Called once at the start of every control cycle, before any
    /// `decide_*` call. Planners identify, forecast, and re-optimize
    /// here; the reactive baseline does nothing.
    fn begin_cycle(&mut self, inputs: &CycleInputs) {
        let _ = inputs;
    }

    /// Ceiling temperature delivery for sensor `k` (0–5) under `panel`.
    fn observe_ceiling_temperature(&mut self, panel: usize, k: usize, now_s: f64, value: Celsius) {
        self.reactive_mut()
            .observe_ceiling_temperature(panel, k, now_s, value);
    }

    /// Ceiling humidity delivery for sensor `k` (0–5) under `panel`.
    fn observe_ceiling_humidity(&mut self, panel: usize, k: usize, now_s: f64, value: Percent) {
        self.reactive_mut()
            .observe_ceiling_humidity(panel, k, now_s, value);
    }

    /// Room temperature delivery for `subspace` (0–3).
    fn observe_room_temperature(&mut self, subspace: usize, now_s: f64, value: Celsius) {
        self.reactive_mut()
            .observe_room_temperature(subspace, now_s, value);
    }

    /// Paired room temperature + humidity for `subspace` (0–3).
    fn observe_room(
        &mut self,
        subspace: usize,
        now_s: f64,
        temperature: Celsius,
        humidity: Percent,
    ) {
        self.reactive_mut()
            .observe_room(subspace, now_s, temperature, humidity);
    }

    /// Paired airbox outlet temperature + humidity for `airbox` (0–3).
    fn observe_outlet(
        &mut self,
        airbox: usize,
        now_s: f64,
        temperature: Celsius,
        humidity: Percent,
    ) {
        self.reactive_mut()
            .observe_outlet(airbox, now_s, temperature, humidity);
    }

    /// CO₂ delivery for `subspace` (0–3).
    fn observe_co2(&mut self, subspace: usize, now_s: f64, value: Ppm) {
        self.reactive_mut().observe_co2(subspace, now_s, value);
    }

    /// Ventilation supply (tank) temperature broadcast.
    fn observe_supply_temperature(&mut self, now_s: f64, value: Celsius) {
        self.reactive_mut().observe_supply_temperature(now_s, value);
    }

    /// Wired supply/return pipe readings for `panel`.
    fn set_pipe_readings(&mut self, panel: usize, supply: Celsius, return_temp: Celsius) {
        self.reactive_mut()
            .set_pipe_readings(panel, supply, return_temp);
    }

    /// Wired mixed-water temperature reading for `panel`.
    fn observe_mixed_temp(&mut self, panel: usize, value: Celsius) {
        self.reactive_mut().observe_mixed_temp(panel, value);
    }

    /// One radiant decision for `panel` (0–1).
    fn decide_radiant(&mut self, panel: usize, now_s: f64, dt_s: f64) -> RadiantDecision {
        self.reactive_mut().decide_radiant(panel, now_s, dt_s)
    }

    /// One ventilation decision for `subspace` (0–3).
    fn decide_ventilation(
        &mut self,
        subspace: usize,
        now_s: f64,
        dt_s: f64,
    ) -> VentilationDecision {
        self.reactive_mut()
            .decide_ventilation(subspace, now_s, dt_s)
    }

    /// Propagates a comfort-target change to every controller.
    fn set_targets(&mut self, targets: ComfortTargets) {
        self.reactive_mut().set_targets(targets);
    }

    /// Serializes the strategy's dynamic state for a checkpoint. The
    /// default covers the reactive stack; strategies carrying their own
    /// estimators (MPC) must override and serialize those too, after
    /// first delegating to the reactive stack.
    fn save_state(&self, w: &mut bz_state::Writer) {
        self.reactive().save_state(w);
    }

    /// Restores the state saved by [`ControlStrategy::save_state`]. The
    /// restoring process must have installed the *same* strategy type —
    /// checkpoint metadata guards this at a higher layer.
    ///
    /// # Errors
    ///
    /// Returns a decode error if the bytes do not parse.
    fn load_state(&mut self, r: &mut bz_state::Reader<'_>) -> Result<(), bz_state::StateError> {
        self.reactive_mut().load_state(r)
    }
}

/// The paper's reactive control layer: two radiant-loop controllers and
/// four per-subspace ventilation controllers, exactly as `BubbleZeroSystem`
/// wired them before the strategy seam existed.
#[derive(Debug)]
pub struct ReactiveStrategy {
    radiant: [RadiantController; 2],
    ventilation: [VentilationController; 4],
}

impl ReactiveStrategy {
    /// Builds the reactive stack for `config`, recording against `obs`.
    /// `pump` is the radiant loop's hydraulic model (used to translate
    /// flow targets into voltages).
    #[must_use]
    pub fn new(config: &SystemConfig, pump: Pump, obs: &bz_obs::Handle) -> Self {
        let radiant = std::array::from_fn(|_| {
            RadiantController::new(config.radiant, config.targets, pump).with_obs(obs.clone())
        });
        let ventilation = std::array::from_fn(|_| {
            VentilationController::new(config.ventilation, config.targets).with_obs(obs.clone())
        });
        Self {
            radiant,
            ventilation,
        }
    }

    /// The radiant controller for `panel` (0–1).
    ///
    /// # Panics
    ///
    /// Panics if `panel` is out of range.
    #[must_use]
    pub fn radiant_controller(&self, panel: usize) -> &RadiantController {
        &self.radiant[panel]
    }

    /// The ventilation controller for `subspace` (0–3).
    ///
    /// # Panics
    ///
    /// Panics if `subspace` is out of range.
    #[must_use]
    pub fn ventilation_controller(&self, subspace: usize) -> &VentilationController {
        &self.ventilation[subspace]
    }

    /// See [`ControlStrategy::observe_ceiling_temperature`].
    pub fn observe_ceiling_temperature(
        &mut self,
        panel: usize,
        k: usize,
        now_s: f64,
        value: Celsius,
    ) {
        self.radiant[panel].observe_ceiling_temperature(k, now_s, value);
    }

    /// See [`ControlStrategy::observe_ceiling_humidity`].
    pub fn observe_ceiling_humidity(&mut self, panel: usize, k: usize, now_s: f64, value: Percent) {
        self.radiant[panel].observe_ceiling_humidity(k, now_s, value);
    }

    /// See [`ControlStrategy::observe_room_temperature`]. Subspaces 0–1
    /// report to panel 0, subspaces 2–3 to panel 1.
    pub fn observe_room_temperature(&mut self, subspace: usize, now_s: f64, value: Celsius) {
        self.radiant[subspace / 2].observe_room_temperature(subspace % 2, now_s, value);
    }

    /// See [`ControlStrategy::observe_room`].
    pub fn observe_room(
        &mut self,
        subspace: usize,
        now_s: f64,
        temperature: Celsius,
        humidity: Percent,
    ) {
        self.ventilation[subspace].observe_room(now_s, temperature, humidity);
    }

    /// See [`ControlStrategy::observe_outlet`].
    pub fn observe_outlet(
        &mut self,
        airbox: usize,
        now_s: f64,
        temperature: Celsius,
        humidity: Percent,
    ) {
        self.ventilation[airbox].observe_outlet(now_s, temperature, humidity);
    }

    /// See [`ControlStrategy::observe_co2`].
    pub fn observe_co2(&mut self, subspace: usize, now_s: f64, value: Ppm) {
        self.ventilation[subspace].observe_co2(now_s, value);
    }

    /// See [`ControlStrategy::observe_supply_temperature`] (broadcast to
    /// all four subspace controllers).
    pub fn observe_supply_temperature(&mut self, now_s: f64, value: Celsius) {
        for controller in &mut self.ventilation {
            controller.observe_supply_temperature(now_s, value);
        }
    }

    /// See [`ControlStrategy::set_pipe_readings`].
    pub fn set_pipe_readings(&mut self, panel: usize, supply: Celsius, return_temp: Celsius) {
        self.radiant[panel].set_pipe_readings(supply, return_temp);
    }

    /// See [`ControlStrategy::observe_mixed_temp`].
    pub fn observe_mixed_temp(&mut self, panel: usize, value: Celsius) {
        self.radiant[panel].observe_mixed_temp(value);
    }

    /// See [`ControlStrategy::decide_radiant`].
    pub fn decide_radiant(&mut self, panel: usize, now_s: f64, dt_s: f64) -> RadiantDecision {
        self.radiant[panel].decide(now_s, dt_s)
    }

    /// See [`ControlStrategy::decide_ventilation`].
    pub fn decide_ventilation(
        &mut self,
        subspace: usize,
        now_s: f64,
        dt_s: f64,
    ) -> VentilationDecision {
        self.ventilation[subspace].decide(now_s, dt_s)
    }

    /// See [`ControlStrategy::set_targets`].
    pub fn set_targets(&mut self, targets: ComfortTargets) {
        for controller in &mut self.radiant {
            controller.set_targets(targets);
        }
        for controller in &mut self.ventilation {
            controller.set_targets(targets);
        }
    }

    /// Serializes every controller's dynamic state.
    pub fn save_state(&self, w: &mut bz_state::Writer) {
        for controller in &self.radiant {
            controller.save_state(w);
        }
        for controller in &self.ventilation {
            controller.save_state(w);
        }
    }

    /// Restores the state saved by [`Self::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a decode error if the bytes do not parse.
    pub fn load_state(&mut self, r: &mut bz_state::Reader<'_>) -> Result<(), bz_state::StateError> {
        for controller in &mut self.radiant {
            controller.load_state(r)?;
        }
        for controller in &mut self.ventilation {
            controller.load_state(r)?;
        }
        Ok(())
    }
}

impl ControlStrategy for ReactiveStrategy {
    fn name(&self) -> &'static str {
        "reactive"
    }

    fn reactive(&self) -> &ReactiveStrategy {
        self
    }

    fn reactive_mut(&mut self) -> &mut ReactiveStrategy {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bz_psychro::relative_humidity_from_dew_point;
    use bz_thermal::plant::PlantConfig;

    fn reactive() -> ReactiveStrategy {
        let config = SystemConfig::paper_deployment(PlantConfig::bubble_zero_lab());
        ReactiveStrategy::new(&config, Pump::radiant_loop(), &bz_obs::Handle::isolated())
    }

    #[test]
    fn room_temperatures_route_to_the_owning_panel() {
        let mut s = reactive();
        s.observe_room_temperature(3, 0.0, Celsius::new(26.0));
        // Panel 1 owns subspaces 2–3; panel 0 saw nothing.
        assert!(s.radiant_controller(1).room_temperature(0.0).is_some());
        assert!(s.radiant_controller(0).room_temperature(0.0).is_none());
    }

    #[test]
    fn trait_defaults_delegate_to_the_reactive_stack() {
        let mut s = reactive();
        let strategy: &mut dyn ControlStrategy = &mut s;
        assert_eq!(strategy.name(), "reactive");
        let rh = relative_humidity_from_dew_point(Celsius::new(26.0), Celsius::new(15.0));
        for k in 0..6 {
            strategy.observe_ceiling_temperature(0, k, 0.0, Celsius::new(26.0));
            strategy.observe_ceiling_humidity(0, k, 0.0, rh);
        }
        strategy.set_pipe_readings(0, Celsius::new(18.0), Celsius::new(20.0));
        strategy.observe_room_temperature(0, 0.0, Celsius::new(27.0));
        let decision = strategy.decide_radiant(0, 0.0, 5.0);
        assert!(decision.ceiling_dew.is_some());
        assert!(decision.flow_target > 0.0);
    }

    #[test]
    fn set_targets_reaches_every_controller() {
        let mut s = reactive();
        let new_targets = ComfortTargets::from_dew_point(
            Celsius::new(23.0),
            Celsius::new(17.0),
            bz_psychro::Ppm::new(700.0),
        );
        ControlStrategy::set_targets(&mut s, new_targets);
        for panel in 0..2 {
            assert_eq!(
                s.radiant_controller(panel).targets().temperature.get(),
                23.0
            );
        }
        for subspace in 0..4 {
            assert_eq!(
                s.ventilation_controller(subspace)
                    .targets()
                    .temperature
                    .get(),
                23.0
            );
        }
    }
}
