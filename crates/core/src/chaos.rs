//! Full-stack chaos scenarios and resilience measurement.
//!
//! The paper's §V deployment lessons are a catalogue of things that broke
//! in the field: sensing elements froze or drifted, motes died or ran
//! their batteries flat, pumps seized. This module composes the three
//! fault-injection layers built for those lessons — sensing elements
//! ([`bz_thermal::sensors`]), the 802.15.4 network ([`bz_wsn::faults`])
//! and the actuators ([`bz_thermal::faults`]) — into one deterministic,
//! seed-reproducible [`ChaosScenario`], loadable from a small JSON file,
//! and measures how gracefully the control system degrades:
//!
//! - **time-to-detect** — seconds from fault onset to the sensor-health
//!   supervisor's first detection;
//! - **time-to-recover** — seconds from the last scheduled repair until
//!   every subspace is back inside the comfort band with nothing flagged,
//!   held through the end of the run;
//! - **comfort-violation minutes** per subspace while the fault stands;
//! - **subspaces affected** — the quantitative form of the paper's
//!   decomposition claim: a fault should cost one subspace, not the room.
//!
//! Everything is driven by [`bz_simcore::Rng`] streams seeded from the
//! scenario, so the same scenario file and seed produce byte-identical
//! metric exports.

use std::fmt;

use bz_simcore::{SimDuration, SimTime};
use bz_thermal::airbox::FanLevel;
use bz_thermal::disturbance::{DisturbanceSchedule, OpeningEvent, OpeningKind};
use bz_thermal::faults::{ActuatorFault, FaultEvent, FaultSchedule};
use bz_thermal::plant::PlantConfig;
use bz_thermal::sensors::{SensorFault, SensorFaultEvent, SensorFaultSchedule, SensorTarget};
use bz_thermal::zone::SubspaceId;
use bz_wsn::faults::{WsnFault, WsnFaultEvent, WsnFaultSchedule};
use bz_wsn::message::NodeId;

use crate::json::Json;
use crate::system::{BubbleZeroSystem, SystemConfig};
use crate::targets::ComfortTargets;

/// Comfort-band half-width used for violation accounting, K.
pub const COMFORT_TOLERANCE_K: f64 = 1.0;

/// Violation minutes below this round to "unaffected" (one noisy sample
/// at the band edge is not a degraded subspace).
pub const AFFECTED_THRESHOLD_MIN: f64 = 0.05;

/// A composed, deterministic full-stack fault scenario.
#[derive(Debug, Clone)]
pub struct ChaosScenario {
    /// Scenario name (reported and exported).
    pub name: String,
    /// Master seed: drives the system RNG and (xored) the plant RNG.
    pub seed: u64,
    /// Total run length.
    pub duration: SimDuration,
    /// Sensing-element faults, applied inside the plant's instruments.
    pub sensors: SensorFaultSchedule,
    /// Actuator faults, applied at the plant's command boundary.
    pub actuators: FaultSchedule,
    /// Network faults, applied inside the 802.15.4 channel.
    pub wsn: WsnFaultSchedule,
    /// Scripted door/window openings that load the room while the faults
    /// stand (a seized recycle pump is only observable under latent load).
    pub disturbances: DisturbanceSchedule,
}

impl ChaosScenario {
    /// The bundled acceptance scenario: one ceiling sensor stuck, one
    /// room mote dead, and panel 0's recycle pump seized — all on the
    /// door side of the room (panel 0 serves subspaces 1–2), timed just
    /// after a long door opening so the anti-condensation blend is under
    /// real demand when the pump fails. Subspaces 3–4 must ride through
    /// untouched.
    #[must_use]
    pub fn bundled_basic() -> Self {
        let onset = SimTime::from_secs(2_760);
        let repaired = Some(SimTime::from_secs(4_500));
        Self {
            name: "bundled-basic".to_owned(),
            seed: 49_317,
            duration: SimDuration::from_mins(110),
            sensors: SensorFaultSchedule::new(vec![SensorFaultEvent {
                at: onset,
                repaired_at: repaired,
                target: SensorTarget::Ceiling(2),
                fault: SensorFault::StuckAt,
            }]),
            actuators: FaultSchedule::new(vec![FaultEvent {
                at: onset,
                repaired_at: repaired,
                fault: ActuatorFault::RecyclePumpDead { panel: 0 },
            }]),
            wsn: WsnFaultSchedule::new(vec![WsnFaultEvent {
                at: onset,
                repaired_at: repaired,
                fault: WsnFault::NodeDead {
                    node: NodeId::new(21),
                },
            }]),
            disturbances: DisturbanceSchedule::new(vec![
                OpeningEvent {
                    at: SimTime::from_secs(2_700),
                    duration: SimDuration::from_secs(240),
                    kind: OpeningKind::Door,
                },
                OpeningEvent {
                    at: SimTime::from_secs(3_780),
                    duration: SimDuration::from_secs(120),
                    kind: OpeningKind::Door,
                },
            ]),
        }
    }

    /// Parses a scenario from its JSON text (see `scenarios/*.json` and
    /// `docs/RESILIENCE.md` for the format).
    ///
    /// # Errors
    ///
    /// Returns a [`ChaosError`] naming the offending field for malformed
    /// JSON, unknown layers/kinds/targets, out-of-range indices, or
    /// non-finite times.
    pub fn from_json(text: &str) -> Result<Self, ChaosError> {
        let root = Json::parse(text).map_err(|e| ChaosError::new(e.to_string()))?;
        let name = match root.field("name") {
            Some(v) => v
                .as_str()
                .ok_or_else(|| ChaosError::new("'name' must be a string"))?
                .to_owned(),
            None => "unnamed".to_owned(),
        };
        let seed = match root.field("seed") {
            Some(v) => integer(v, "seed", u64::MAX as f64)? as u64,
            None => 0xC0A5,
        };
        let duration_mins = match root.field("duration_mins") {
            Some(v) => integer(v, "duration_mins", 10_000.0)? as u64,
            None => 110,
        };
        if duration_mins == 0 {
            return Err(ChaosError::new("'duration_mins' must be positive"));
        }

        let mut sensors = Vec::new();
        let mut actuators = Vec::new();
        let mut wsn = Vec::new();
        if let Some(faults) = root.field("faults") {
            let list = faults
                .as_arr()
                .ok_or_else(|| ChaosError::new("'faults' must be an array"))?;
            for (i, entry) in list.iter().enumerate() {
                match parse_fault(entry)
                    .map_err(|e| ChaosError::new(format!("faults[{i}]: {e}")))?
                {
                    ParsedFault::Sensor(event) => sensors.push(event),
                    ParsedFault::Actuator(event) => actuators.push(event),
                    ParsedFault::Wsn(event) => wsn.push(event),
                }
            }
        }

        let mut openings = Vec::new();
        if let Some(disturbances) = root.field("disturbances") {
            let list = disturbances
                .as_arr()
                .ok_or_else(|| ChaosError::new("'disturbances' must be an array"))?;
            for (i, entry) in list.iter().enumerate() {
                openings.push(
                    parse_opening(entry)
                        .map_err(|e| ChaosError::new(format!("disturbances[{i}]: {e}")))?,
                );
            }
        }

        Ok(Self {
            name,
            seed,
            duration: SimDuration::from_mins(duration_mins),
            sensors: SensorFaultSchedule::new(sensors),
            actuators: FaultSchedule::new(actuators),
            wsn: WsnFaultSchedule::new(wsn),
            disturbances: DisturbanceSchedule::new(openings),
        })
    }

    /// The closed-loop system configuration this scenario runs against:
    /// the calibrated laboratory with every fault layer installed.
    #[must_use]
    pub fn system_config(&self) -> SystemConfig {
        let plant = PlantConfig::bubble_zero_lab()
            .with_seed(self.seed ^ 0x9E37)
            .with_disturbances(self.disturbances.clone())
            .with_faults(self.actuators.clone())
            .with_sensor_faults(self.sensors.clone());
        SystemConfig {
            seed: self.seed,
            wsn_faults: self.wsn.clone(),
            ..SystemConfig::paper_deployment(plant)
        }
    }

    /// Every fault window across the three layers as
    /// `(at, repaired_at, kind_name)`.
    fn windows(&self) -> Vec<(SimTime, Option<SimTime>, &'static str)> {
        let mut windows = Vec::new();
        for e in self.sensors.events() {
            windows.push((e.at, e.repaired_at, e.fault.kind_name()));
        }
        for e in self.actuators.events() {
            windows.push((e.at, e.repaired_at, e.fault.kind_name()));
        }
        for e in self.wsn.events() {
            windows.push((e.at, e.repaired_at, e.fault.kind_name()));
        }
        windows
    }

    /// Earliest fault onset, if any faults are scheduled.
    #[must_use]
    pub fn onset(&self) -> Option<SimTime> {
        self.windows().iter().map(|w| w.0).min()
    }

    /// Instant of the last repair. `None` when no faults are scheduled
    /// or any fault is permanent (recovery is then undefined).
    #[must_use]
    pub fn repair_horizon(&self) -> Option<SimTime> {
        let windows = self.windows();
        if windows.is_empty() {
            return None;
        }
        windows
            .iter()
            .map(|w| w.1)
            .collect::<Option<Vec<SimTime>>>()
            .and_then(|repairs| repairs.into_iter().max())
    }

    /// Runs the scenario against the global telemetry handle.
    #[must_use]
    pub fn run(&self) -> ResilienceReport {
        self.run_with_obs(bz_obs::Handle::global())
    }

    /// Runs the scenario against an explicit telemetry handle (tests use
    /// [`bz_obs::Handle::isolated`] for reproducible exports).
    #[must_use]
    pub fn run_with_obs(&self, obs: bz_obs::Handle) -> ResilienceReport {
        let mut run = self.begin_with_obs(obs);
        while !run.is_done() {
            run.step_minute();
        }
        run.finish()
    }

    /// Starts the scenario as a resumable session: step it a minute at a
    /// time, checkpoint it with [`ChaosRun::save_state`], and restore it
    /// in a fresh process with [`ChaosRun::load_state`]. The whole-run
    /// [`ChaosScenario::run_with_obs`] is a thin loop over this.
    #[must_use]
    pub fn begin_with_obs(&self, obs: bz_obs::Handle) -> ChaosRun {
        let system = BubbleZeroSystem::with_obs(self.system_config(), obs.clone());
        let kinds = {
            let mut kinds: Vec<&'static str> = self.windows().iter().map(|w| w.2).collect();
            kinds.sort_unstable();
            kinds.dedup();
            kinds
        };
        ChaosRun {
            name: self.name.clone(),
            onset: self.onset(),
            repair: self.repair_horizon(),
            kinds,
            windows: self.windows(),
            targets: ComfortTargets::paper_trial(),
            total_s: self.duration.as_millis() / 1_000,
            obs,
            system,
            violation_secs: [0; 4],
            recovered_since: None,
            second: 0,
        }
    }
}

/// An in-flight chaos run: the system under fault injection plus the
/// resilience accumulators (violation seconds, the recovery hold timer).
/// Both are covered by [`ChaosRun::save_state`], so a restored run's
/// final [`ResilienceReport`] and metric export are byte-identical to an
/// uninterrupted run's.
pub struct ChaosRun {
    name: String,
    onset: Option<SimTime>,
    repair: Option<SimTime>,
    kinds: Vec<&'static str>,
    windows: Vec<(SimTime, Option<SimTime>, &'static str)>,
    targets: ComfortTargets,
    total_s: u64,
    obs: bz_obs::Handle,
    system: BubbleZeroSystem,
    violation_secs: [u64; 4],
    recovered_since: Option<f64>,
    second: u64,
}

impl ChaosRun {
    /// Simulated milliseconds completed so far.
    #[must_use]
    pub fn now_ms(&self) -> u64 {
        self.second * 1_000
    }

    /// True once the scheduled duration has fully run.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.second >= self.total_s
    }

    /// Advances up to one minute (less at the end of the run).
    pub fn step_minute(&mut self) {
        let batch_end = (self.second + 60).min(self.total_s);
        while self.second < batch_end {
            self.second += 1;
            self.system.step_second();
            let now = self.system.now();
            let in_fault_window = self.onset.is_some_and(|o| now >= o);
            let mut all_in_band = true;
            {
                let plant = self.system.plant();
                for (i, id) in SubspaceId::ALL.iter().enumerate() {
                    let deviation =
                        (plant.zone_temperature(*id).get() - self.targets.temperature.get()).abs();
                    if deviation > COMFORT_TOLERANCE_K {
                        all_in_band = false;
                        if in_fault_window {
                            self.violation_secs[i] += 1;
                        }
                    }
                }
            }
            if let Some(repair_at) = self.repair {
                if now >= repair_at {
                    if all_in_band && !self.system.supervisor().anything_flagged() {
                        self.recovered_since.get_or_insert(now.as_secs_f64());
                    } else {
                        self.recovered_since = None;
                    }
                }
            }
            if self.second.is_multiple_of(60) && self.obs.is_enabled() {
                for kind in &self.kinds {
                    let active = self.windows.iter().any(|(at, repaired_at, k)| {
                        k == kind && now >= *at && repaired_at.is_none_or(|r| now < r)
                    });
                    self.obs.gauge_set(
                        format!("fault.{kind}.active"),
                        now.as_millis(),
                        f64::from(u8::from(active)),
                    );
                }
                self.obs.record_counters(now.as_millis());
            }
        }
    }

    /// Serializes the dynamic run state: the full system plus the
    /// resilience accumulators.
    pub fn save_state(&self, w: &mut bz_state::Writer) {
        use bz_state::Persist;
        self.system.save_state(w);
        self.violation_secs.save(w);
        self.recovered_since.save(w);
        w.put_u64(self.second);
    }

    /// Restores state written by [`ChaosRun::save_state`] into a run
    /// freshly built from the *same* scenario.
    ///
    /// # Errors
    ///
    /// Returns a [`bz_state::StateError`] for truncated or corrupt
    /// payloads, or a checkpoint taken past this run's duration.
    pub fn load_state(&mut self, r: &mut bz_state::Reader<'_>) -> Result<(), bz_state::StateError> {
        use bz_state::Persist;
        self.system.load_state(r)?;
        self.violation_secs = Persist::load(r)?;
        self.recovered_since = Persist::load(r)?;
        let second = r.take_u64()?;
        if second > self.total_s {
            return Err(bz_state::StateError::Invalid {
                what: "ChaosRun",
                reason: format!(
                    "checkpoint is {second}s into a run of only {}s",
                    self.total_s
                ),
            });
        }
        self.second = second;
        Ok(())
    }

    /// Computes the resilience report and exports the `chaos.*` gauges.
    #[must_use]
    pub fn finish(&self) -> ResilienceReport {
        let onset_s = self.onset.map(|t| t.as_secs_f64());
        let last_repair_s = self.repair.map(|t| t.as_secs_f64());
        let time_to_detect_s = onset_s.and_then(|o| {
            self.system
                .supervisor()
                .detections()
                .iter()
                .find(|d| d.fault && d.at_s >= o - 1e-9)
                .map(|d| d.at_s - o)
        });
        let time_to_recover_s =
            last_repair_s.and_then(|r| self.recovered_since.map(|since| since - r));
        let violation_minutes = self.violation_secs.map(|s| s as f64 / 60.0);
        let subspaces_affected = violation_minutes
            .iter()
            .filter(|&&m| m > AFFECTED_THRESHOLD_MIN)
            .count();
        let (detections, recoveries) = {
            let log = self.system.supervisor().detections();
            (
                log.iter().filter(|d| d.fault).count(),
                log.iter().filter(|d| !d.fault).count(),
            )
        };
        let report = ResilienceReport {
            scenario: self.name.clone(),
            onset_s,
            last_repair_s,
            time_to_detect_s,
            time_to_recover_s,
            violation_minutes,
            subspaces_affected,
            condensate_kg: self.system.plant().panel_condensate_total(),
            detections,
            recoveries,
        };
        report.export(&self.obs, self.total_s * 1_000);
        report
    }
}

/// The quantitative outcome of one chaos run.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceReport {
    /// Name of the scenario that produced this report.
    pub scenario: String,
    /// Earliest fault onset, s (`None`: fault-free run).
    pub onset_s: Option<f64>,
    /// Last scheduled repair, s (`None`: no faults or a permanent one).
    pub last_repair_s: Option<f64>,
    /// Onset → first supervisor detection, s (`None`: never detected).
    pub time_to_detect_s: Option<f64>,
    /// Last repair → sustained recovery, s (`None`: never recovered
    /// within the run, or recovery undefined).
    pub time_to_recover_s: Option<f64>,
    /// Minutes each subspace spent more than [`COMFORT_TOLERANCE_K`]
    /// from the preferred temperature while the fault stood.
    pub violation_minutes: [f64; 4],
    /// Subspaces with violation minutes above
    /// [`AFFECTED_THRESHOLD_MIN`].
    pub subspaces_affected: usize,
    /// Total condensate formed on the panels, kg (the safe mode's job is
    /// to keep this at zero even under fault).
    pub condensate_kg: f64,
    /// Supervisor fault detections over the run.
    pub detections: usize,
    /// Supervisor recoveries over the run.
    pub recoveries: usize,
}

impl ResilienceReport {
    /// Records the report through the telemetry layer (`chaos.*` gauges
    /// at the end-of-run timestamp). Unknowable values (no fault, never
    /// detected, never recovered) are simply not exported, keeping the
    /// JSONL valid.
    fn export(&self, obs: &bz_obs::Handle, end_ms: u64) {
        if !obs.is_enabled() {
            return;
        }
        if let Some(ttd) = self.time_to_detect_s {
            obs.gauge_set("chaos.time_to_detect_s", end_ms, ttd);
        }
        if let Some(ttr) = self.time_to_recover_s {
            obs.gauge_set("chaos.time_to_recover_s", end_ms, ttr);
        }
        for (i, minutes) in self.violation_minutes.iter().enumerate() {
            obs.gauge_set(
                format!("chaos.violation_minutes.subsp{}", i + 1),
                end_ms,
                *minutes,
            );
        }
        obs.gauge_set(
            "chaos.subspaces_affected",
            end_ms,
            self.subspaces_affected as f64,
        );
        obs.gauge_set("chaos.condensate_kg", end_ms, self.condensate_kg);
        obs.record_counters(end_ms);
    }

    /// One machine-parsable line (the CI smoke job greps it).
    #[must_use]
    pub fn summary_line(&self) -> String {
        fn opt(v: Option<f64>) -> String {
            v.map_or_else(|| "inf".to_owned(), |v| format!("{v:.1}"))
        }
        format!(
            "chaos-result: scenario={} ttd_s={} ttr_s={} affected={} \
             violation_mins={:.2},{:.2},{:.2},{:.2} condensate_kg={:.6}",
            self.scenario,
            opt(self.time_to_detect_s),
            opt(self.time_to_recover_s),
            self.subspaces_affected,
            self.violation_minutes[0],
            self.violation_minutes[1],
            self.violation_minutes[2],
            self.violation_minutes[3],
            self.condensate_kg,
        )
    }

    /// Human-readable rendering.
    #[must_use]
    pub fn render(&self) -> String {
        fn opt(v: Option<f64>, unit: &str) -> String {
            v.map_or_else(|| "—".to_owned(), |v| format!("{v:.1} {unit}"))
        }
        let mut out = format!("chaos scenario '{}':\n", self.scenario);
        out += &format!(
            "  fault onset {}  last repair {}\n",
            opt(self.onset_s, "s"),
            opt(self.last_repair_s, "s"),
        );
        out += &format!(
            "  time-to-detect {}  time-to-recover {}  ({} detections, {} recoveries)\n",
            opt(self.time_to_detect_s, "s"),
            opt(self.time_to_recover_s, "s"),
            self.detections,
            self.recoveries,
        );
        out += "  comfort violation minutes:";
        for (i, minutes) in self.violation_minutes.iter().enumerate() {
            out += &format!("  Subsp{} {minutes:.1}", i + 1);
        }
        out += &format!(
            "  ({} of 4 subspaces affected)\n  condensate {:.6} kg\n",
            self.subspaces_affected, self.condensate_kg,
        );
        out
    }
}

/// A scenario-file parsing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosError(String);

impl ChaosError {
    fn new(message: impl Into<String>) -> Self {
        Self(message.into())
    }
}

impl fmt::Display for ChaosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ChaosError {}

/// One parsed `faults[]` entry, routed to its layer.
enum ParsedFault {
    Sensor(SensorFaultEvent),
    Actuator(FaultEvent),
    Wsn(WsnFaultEvent),
}

fn parse_fault(entry: &Json) -> Result<ParsedFault, ChaosError> {
    let layer = str_field(entry, "layer")?;
    let kind = str_field(entry, "kind")?;
    let at = time_field(entry, "at_s")?.ok_or_else(|| ChaosError::new("missing field 'at_s'"))?;
    let repaired_at = time_field(entry, "repaired_at_s")?;
    if repaired_at.is_some_and(|r| r < at) {
        return Err(ChaosError::new("'repaired_at_s' precedes 'at_s'"));
    }
    match layer {
        "sensor" => {
            let target = sensor_target(entry)?;
            let fault = match kind {
                "stuck_at" => SensorFault::StuckAt,
                "drift_ramp" => SensorFault::DriftRamp {
                    per_hour: num_field(entry, "per_hour")?,
                },
                "dropout" => SensorFault::Dropout,
                "noise_burst" => SensorFault::NoiseBurst {
                    sd: num_field(entry, "sd")?,
                },
                "calibration_jump" => SensorFault::CalibrationJump {
                    offset: num_field(entry, "offset")?,
                },
                other => return Err(ChaosError::new(format!("unknown sensor kind '{other}'"))),
            };
            Ok(ParsedFault::Sensor(SensorFaultEvent {
                at,
                repaired_at,
                target,
                fault,
            }))
        }
        "wsn" => {
            let node = NodeId::new(index_field(entry, "node", 0xFFFF)? as u16);
            let fault = match kind {
                "node_dead" => WsnFault::NodeDead { node },
                "battery_exhausted" => WsnFault::BatteryExhausted { node },
                "link_loss" => {
                    let loss = num_field(entry, "loss")?;
                    if !(0.0..=1.0).contains(&loss) {
                        return Err(ChaosError::new("'loss' must be in [0, 1]"));
                    }
                    WsnFault::LinkLoss { node, loss }
                }
                other => return Err(ChaosError::new(format!("unknown wsn kind '{other}'"))),
            };
            Ok(ParsedFault::Wsn(WsnFaultEvent {
                at,
                repaired_at,
                fault,
            }))
        }
        "actuator" => {
            let fault = match kind {
                "fan_stuck" => ActuatorFault::FanStuck {
                    airbox: index_field(entry, "airbox", 3)?,
                    level: fan_level(index_field(entry, "level", 4)?)?,
                },
                "coil_pump_dead" => ActuatorFault::CoilPumpDead {
                    airbox: index_field(entry, "airbox", 3)?,
                },
                "supply_pump_dead" => ActuatorFault::SupplyPumpDead {
                    panel: index_field(entry, "panel", 1)?,
                },
                "recycle_pump_dead" => ActuatorFault::RecyclePumpDead {
                    panel: index_field(entry, "panel", 1)?,
                },
                "flap_jammed_closed" => ActuatorFault::FlapJammedClosed {
                    airbox: index_field(entry, "airbox", 3)?,
                },
                other => return Err(ChaosError::new(format!("unknown actuator kind '{other}'"))),
            };
            Ok(ParsedFault::Actuator(FaultEvent {
                at,
                repaired_at,
                fault,
            }))
        }
        other => Err(ChaosError::new(format!("unknown layer '{other}'"))),
    }
}

fn parse_opening(entry: &Json) -> Result<OpeningEvent, ChaosError> {
    let kind = match str_field(entry, "kind")? {
        "door" => OpeningKind::Door,
        "window" => OpeningKind::Window,
        other => return Err(ChaosError::new(format!("unknown opening kind '{other}'"))),
    };
    let at = time_field(entry, "at_s")?.ok_or_else(|| ChaosError::new("missing field 'at_s'"))?;
    let duration_s = num_field(entry, "duration_s")?;
    if !duration_s.is_finite() || duration_s <= 0.0 {
        return Err(ChaosError::new("'duration_s' must be positive"));
    }
    Ok(OpeningEvent {
        at,
        duration: SimDuration::from_secs_f64(duration_s),
        kind,
    })
}

fn sensor_target(entry: &Json) -> Result<SensorTarget, ChaosError> {
    let target = str_field(entry, "target")?;
    match target {
        "ceiling" => Ok(SensorTarget::Ceiling(index_field(entry, "index", 11)?)),
        "room" => Ok(SensorTarget::Room(index_field(entry, "index", 3)?)),
        "co2" => Ok(SensorTarget::Co2(index_field(entry, "index", 3)?)),
        "outlet" => Ok(SensorTarget::Outlet(index_field(entry, "index", 3)?)),
        other => Err(ChaosError::new(format!("unknown sensor target '{other}'"))),
    }
}

fn fan_level(level: usize) -> Result<FanLevel, ChaosError> {
    Ok(match level {
        0 => FanLevel::Off,
        1 => FanLevel::L1,
        2 => FanLevel::L2,
        3 => FanLevel::L3,
        4 => FanLevel::L4,
        other => return Err(ChaosError::new(format!("fan level {other} out of range"))),
    })
}

fn str_field<'a>(entry: &'a Json, name: &str) -> Result<&'a str, ChaosError> {
    entry
        .field(name)
        .ok_or_else(|| ChaosError::new(format!("missing field '{name}'")))?
        .as_str()
        .ok_or_else(|| ChaosError::new(format!("'{name}' must be a string")))
}

fn num_field(entry: &Json, name: &str) -> Result<f64, ChaosError> {
    entry
        .field(name)
        .ok_or_else(|| ChaosError::new(format!("missing field '{name}'")))?
        .as_f64()
        .ok_or_else(|| ChaosError::new(format!("'{name}' must be a number")))
}

/// A non-negative integer field no larger than `max`.
fn index_field(entry: &Json, name: &str, max: usize) -> Result<usize, ChaosError> {
    let value = entry
        .field(name)
        .ok_or_else(|| ChaosError::new(format!("missing field '{name}'")))?;
    let n = integer(value, name, max as f64)?;
    Ok(n as usize)
}

/// Validates that `value` is a non-negative integer ≤ `max`.
fn integer(value: &Json, name: &str, max: f64) -> Result<f64, ChaosError> {
    let n = value
        .as_f64()
        .ok_or_else(|| ChaosError::new(format!("'{name}' must be a number")))?;
    if !n.is_finite() || n < 0.0 || n.fract() != 0.0 || n > max {
        return Err(ChaosError::new(format!(
            "'{name}' must be an integer in [0, {max}]"
        )));
    }
    Ok(n)
}

/// An optional time-in-seconds field; JSON `null` reads as absent.
fn time_field(entry: &Json, name: &str) -> Result<Option<SimTime>, ChaosError> {
    match entry.field(name) {
        None | Some(Json::Null) => Ok(None),
        Some(value) => {
            let s = value
                .as_f64()
                .ok_or_else(|| ChaosError::new(format!("'{name}' must be a number")))?;
            if !s.is_finite() || s < 0.0 {
                return Err(ChaosError::new(format!("'{name}' must be ≥ 0 seconds")));
            }
            Ok(Some(SimTime::ZERO + SimDuration::from_secs_f64(s)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_parses_every_layer_and_kind() {
        let text = r#"{
            "name": "kitchen-sink", "seed": 7, "duration_mins": 20,
            "disturbances": [
                {"kind": "door", "at_s": 60, "duration_s": 15},
                {"kind": "window", "at_s": 120, "duration_s": 30}
            ],
            "faults": [
                {"layer": "sensor", "kind": "stuck_at", "target": "ceiling",
                 "index": 3, "at_s": 100, "repaired_at_s": 200},
                {"layer": "sensor", "kind": "drift_ramp", "target": "room",
                 "index": 1, "per_hour": 0.5, "at_s": 100},
                {"layer": "sensor", "kind": "dropout", "target": "co2",
                 "index": 2, "at_s": 100, "repaired_at_s": null},
                {"layer": "sensor", "kind": "noise_burst", "target": "outlet",
                 "index": 0, "sd": 1.5, "at_s": 100},
                {"layer": "sensor", "kind": "calibration_jump",
                 "target": "room", "index": 0, "offset": -2.0, "at_s": 100},
                {"layer": "wsn", "kind": "node_dead", "node": 21, "at_s": 50},
                {"layer": "wsn", "kind": "battery_exhausted", "node": 7,
                 "at_s": 50, "repaired_at_s": 90},
                {"layer": "wsn", "kind": "link_loss", "node": 3,
                 "loss": 0.4, "at_s": 50},
                {"layer": "actuator", "kind": "fan_stuck", "airbox": 1,
                 "level": 4, "at_s": 10},
                {"layer": "actuator", "kind": "coil_pump_dead", "airbox": 0,
                 "at_s": 10},
                {"layer": "actuator", "kind": "supply_pump_dead", "panel": 1,
                 "at_s": 10},
                {"layer": "actuator", "kind": "recycle_pump_dead", "panel": 0,
                 "at_s": 10},
                {"layer": "actuator", "kind": "flap_jammed_closed",
                 "airbox": 3, "at_s": 10}
            ]
        }"#;
        let scenario = ChaosScenario::from_json(text).unwrap();
        assert_eq!(scenario.name, "kitchen-sink");
        assert_eq!(scenario.seed, 7);
        assert_eq!(scenario.duration, SimDuration::from_mins(20));
        assert_eq!(scenario.sensors.events().len(), 5);
        assert_eq!(scenario.wsn.events().len(), 3);
        assert_eq!(scenario.actuators.events().len(), 5);
        assert_eq!(scenario.disturbances.events().len(), 2);
        assert_eq!(scenario.onset(), Some(SimTime::from_secs(10)));
        // A permanent fault means recovery is undefined.
        assert_eq!(scenario.repair_horizon(), None);
        assert_eq!(
            scenario.sensors.events()[0].target,
            SensorTarget::Ceiling(3)
        );
        assert_eq!(
            scenario.actuators.events()[0].fault,
            ActuatorFault::FanStuck {
                airbox: 1,
                level: FanLevel::L4,
            }
        );
    }

    #[test]
    fn scenario_rejects_unknown_and_out_of_range_inputs() {
        let cases = [
            r#"{"faults": [{"layer": "plumbing", "kind": "x", "at_s": 1}]}"#,
            r#"{"faults": [{"layer": "sensor", "kind": "melted",
                "target": "room", "index": 0, "at_s": 1}]}"#,
            r#"{"faults": [{"layer": "sensor", "kind": "stuck_at",
                "target": "ceiling", "index": 12, "at_s": 1}]}"#,
            r#"{"faults": [{"layer": "sensor", "kind": "stuck_at",
                "target": "room", "index": 0}]}"#,
            r#"{"faults": [{"layer": "wsn", "kind": "link_loss",
                "node": 3, "loss": 1.5, "at_s": 1}]}"#,
            r#"{"faults": [{"layer": "actuator", "kind": "fan_stuck",
                "airbox": 0, "level": 9, "at_s": 1}]}"#,
            r#"{"faults": [{"layer": "actuator", "kind": "supply_pump_dead",
                "panel": 2, "at_s": 1}]}"#,
            r#"{"faults": [{"layer": "sensor", "kind": "stuck_at",
                "target": "room", "index": 0, "at_s": 100,
                "repaired_at_s": 50}]}"#,
            r#"{"duration_mins": 0}"#,
            r#"{"disturbances": [{"kind": "hatch", "at_s": 1,
                "duration_s": 5}]}"#,
        ];
        for text in cases {
            assert!(ChaosScenario::from_json(text).is_err(), "accepted {text}");
        }
    }

    #[test]
    fn bundled_scenario_file_matches_the_builder() {
        let parsed =
            ChaosScenario::from_json(include_str!("../../../scenarios/chaos_basic.json")).unwrap();
        let built = ChaosScenario::bundled_basic();
        assert_eq!(parsed.name, built.name);
        assert_eq!(parsed.seed, built.seed);
        assert_eq!(parsed.duration, built.duration);
        assert_eq!(parsed.sensors.events(), built.sensors.events());
        assert_eq!(parsed.actuators.events(), built.actuators.events());
        assert_eq!(parsed.wsn.events(), built.wsn.events());
        assert_eq!(parsed.disturbances.events(), built.disturbances.events());
    }

    #[test]
    fn onset_and_repair_horizon_track_all_layers() {
        let scenario = ChaosScenario::bundled_basic();
        assert_eq!(scenario.onset(), Some(SimTime::from_secs(2_760)));
        assert_eq!(scenario.repair_horizon(), Some(SimTime::from_secs(4_500)));
        let empty = ChaosScenario {
            name: "empty".to_owned(),
            seed: 1,
            duration: SimDuration::from_mins(1),
            sensors: SensorFaultSchedule::none(),
            actuators: FaultSchedule::none(),
            wsn: WsnFaultSchedule::none(),
            disturbances: DisturbanceSchedule::none(),
        };
        assert_eq!(empty.onset(), None);
        assert_eq!(empty.repair_horizon(), None);
    }

    /// A chaos run checkpointed mid-fault and restored into a fresh
    /// session must finish with a bit-identical report and metric
    /// export — the accumulators (violation seconds, recovery hold)
    /// ride along with the system state.
    #[test]
    fn chaos_run_round_trips_across_a_checkpoint() {
        let mut scenario = ChaosScenario::bundled_basic();
        scenario.duration = SimDuration::from_mins(60);

        let obs_a = bz_obs::Handle::isolated();
        obs_a.enable();
        let mut original = scenario.begin_with_obs(obs_a.clone());
        // Checkpoint 50 minutes in: past onset, mid-fault, accumulators
        // non-trivial.
        for _ in 0..50 {
            original.step_minute();
        }
        let mut w = bz_state::Writer::new();
        original.save_state(&mut w);
        let bytes = w.into_bytes();

        let obs_b = bz_obs::Handle::isolated();
        obs_b.enable();
        let mut restored = scenario.begin_with_obs(obs_b.clone());
        restored
            .load_state(&mut bz_state::Reader::new(&bytes))
            .expect("load");
        while !original.is_done() {
            original.step_minute();
            restored.step_minute();
        }
        assert_eq!(original.finish(), restored.finish());
        let (mut ja, mut jb) = (Vec::new(), Vec::new());
        obs_a.write_jsonl(&mut ja).unwrap();
        obs_b.write_jsonl(&mut jb).unwrap();
        assert_eq!(ja, jb, "metric exports must match");
    }

    #[test]
    fn chaos_checkpoint_past_duration_is_rejected() {
        let mut scenario = ChaosScenario::bundled_basic();
        scenario.duration = SimDuration::from_mins(10);
        let mut run = scenario.begin_with_obs(bz_obs::Handle::isolated());
        for _ in 0..10 {
            run.step_minute();
        }
        let mut w = bz_state::Writer::new();
        run.save_state(&mut w);
        let bytes = w.into_bytes();

        scenario.duration = SimDuration::from_mins(5);
        let mut short = scenario.begin_with_obs(bz_obs::Handle::isolated());
        let err = short
            .load_state(&mut bz_state::Reader::new(&bytes))
            .unwrap_err();
        assert!(err.to_string().contains("into a run of only"), "{err}");
    }

    #[test]
    fn fault_free_run_reports_nothing() {
        let scenario = ChaosScenario {
            name: "calm".to_owned(),
            seed: 11,
            duration: SimDuration::from_mins(5),
            sensors: SensorFaultSchedule::none(),
            actuators: FaultSchedule::none(),
            wsn: WsnFaultSchedule::none(),
            disturbances: DisturbanceSchedule::none(),
        };
        let report = scenario.run_with_obs(bz_obs::Handle::isolated());
        assert_eq!(report.onset_s, None);
        assert_eq!(report.time_to_detect_s, None);
        assert_eq!(report.time_to_recover_s, None);
        assert_eq!(report.violation_minutes, [0.0; 4]);
        assert_eq!(report.subspaces_affected, 0);
        assert!(report
            .summary_line()
            .starts_with("chaos-result: scenario=calm"));
    }
}
