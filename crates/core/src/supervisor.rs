//! Controller-side sensor-health supervision and graceful degradation.
//!
//! The paper's controllers trust whatever arrives over the air; a stuck
//! ceiling sensor would silently pin the dew-point estimate and a seized
//! recycle pump would let a panel slide below the condensation margin.
//! The [`SensorHealthSupervisor`] sits between the network routing layer
//! and the control modules and enforces three defensive layers:
//!
//! 1. **Per-reading validation** — every delivered sample is checked for
//!    non-finite values, physical range, rate-of-change plausibility, and
//!    stuck-at behaviour (bit-identical readings from a noisy quantized
//!    sensor). Rejected readings never reach a controller; the
//!    controllers' own staleness caches then act as last-known-good holds
//!    until the channel recovers or ages out.
//! 2. **Condensation safe mode** — when a panel has fewer than
//!    [`SupervisorConfig::min_trusted_ceiling`] trustworthy fresh ceiling
//!    sensor pairs, its dew-point estimate is no longer credible and the
//!    radiant valves are closed (a stationary loop cannot condense).
//! 3. **Actuator watchdog** — each control cycle the commanded radiant
//!    loop flow is compared against the flow broadcast by Control-C-2's
//!    own meter. A persistent deficit flags the pump as stuck and engages
//!    safe mode; a periodic re-probe window retries the pump so recovery
//!    after a repair is detected in bounded time.
//!
//! Every detection and recovery is timestamped in [`Detection`] records,
//! which the resilience metrics (`bz_core::chaos`) turn into
//! time-to-detect / time-to-recover numbers.

use bz_wsn::message::DataType;

use crate::devices::channels;
use crate::radiant::CEILING_SENSORS;

/// Supervisor tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// Maximum age of an accepted reading before it no longer counts as
    /// fresh for trust purposes, s (matches the controllers' staleness).
    pub staleness_s: f64,
    /// Consecutive bit-identical raw readings before a channel is
    /// declared stuck. Healthy parts quantize at roughly their noise
    /// level, so short identical runs do occur by chance; only a long
    /// identical run (this many readings over [`Self::stuck_window_s`])
    /// is conclusive.
    pub stuck_min_repeats: u32,
    /// Minimum time span the identical readings must cover, s.
    pub stuck_window_s: f64,
    /// Consecutive rejections after which the channel is re-baselined:
    /// the next in-range reading is accepted even if it fails the rate
    /// check (prevents a legitimate step change from locking a channel
    /// out forever).
    pub rebaseline_rejects: u32,
    /// Minimum trustworthy fresh ceiling sensor pairs per panel before
    /// condensation safe mode engages.
    pub min_trusted_ceiling: usize,
    /// Watchdog: commanded flows below this are not probed, m³/s.
    pub pump_min_flow: f64,
    /// Watchdog: sensed volume below this fraction of the commanded
    /// volume over a probe window counts as a deficit.
    pub pump_deficit_ratio: f64,
    /// Watchdog: commanded volume that must accumulate before a probe
    /// window is judged, m³. The loop flow meter is a pulse counter that
    /// resolves ~0.45 L per pulse — single readings at radiant-loop flows
    /// are almost always 0 or 1 pulse, so the watchdog compares volume
    /// integrals and only judges once the commanded volume corresponds to
    /// enough expected pulses for the average to be meaningful.
    pub pump_probe_volume_m3: f64,
    /// Watchdog: consecutive deficit windows before the pump is flagged.
    pub pump_fault_windows: u32,
    /// Watchdog: how long a flagged pump stays locked out before the
    /// supervisor re-probes it, s.
    pub pump_reprobe_s: f64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            staleness_s: 120.0,
            stuck_min_repeats: 12,
            stuck_window_s: 600.0,
            rebaseline_rejects: 5,
            min_trusted_ceiling: 2,
            pump_min_flow: 2.0e-5,
            pump_deficit_ratio: 0.4,
            // ≈11 expected pulses of the VISION-2000 (2.2 pulses/L):
            // relative sampling noise ~30%, so a 40% deficit is ≈2σ.
            pump_probe_volume_m3: 0.025,
            pump_fault_windows: 2,
            pump_reprobe_s: 300.0,
        }
    }
}

/// Why a reading was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// NaN or infinite.
    NonFinite,
    /// Outside the physically possible range for the quantity.
    OutOfRange,
    /// Changed faster than the quantity plausibly can.
    RateSpike,
    /// Bit-identical readings for too long: the element is stuck.
    Stuck,
}

impl RejectReason {
    /// Stable name for metric keys.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::NonFinite => "non_finite",
            Self::OutOfRange => "out_of_range",
            Self::RateSpike => "rate_spike",
            Self::Stuck => "stuck",
        }
    }
}

/// A timestamped supervisor state transition.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// Simulation time of the transition, s.
    pub at_s: f64,
    /// True for a fault detection, false for a recovery.
    pub fault: bool,
    /// What changed (e.g. `channel temperature/103 stuck`,
    /// `pump_fault panel0`).
    pub what: String,
}

/// Physical plausibility bounds per quantity.
///
/// The `slack` term is a dt-independent allowance for sensor noise and
/// quantization: link-layer retries can deliver two broadcasts fractions
/// of a second apart, where even one quantization step would otherwise
/// look like an enormous rate. A jump is only a spike when it exceeds
/// `slack + max_rate · dt`.
fn bounds_for(data_type: DataType, channel: u16) -> Option<Bounds> {
    let bounds = match data_type {
        DataType::Temperature => Some(Bounds::new(-5.0, 55.0, 0.5, 0.3)),
        DataType::SupplyTemperature => Some(Bounds::new(2.0, 45.0, 0.5, 0.3)),
        DataType::OutletDewPoint => Some(Bounds::new(-10.0, 40.0, 0.5, 0.3)),
        DataType::Humidity => Some(Bounds::new(0.0, 100.0, 2.0, 1.5)),
        DataType::Co2 => Some(Bounds::new(50.0, 10_000.0, 100.0, 40.0)),
        // Flow readings legitimately sit at *exactly* zero for long
        // stretches (pulse counting on a stopped loop), which would fool
        // the stuck-at detector; flow plausibility is the watchdog's job.
        DataType::FlowRate => None,
        DataType::ControlTarget | DataType::Actuation => None,
    };
    // Airbox discharge air steps by design — the coil valve and fan
    // level switch between samples — so the rate check would flag every
    // healthy transient on the outlet channels. Range checks remain.
    if is_outlet_channel(channel) {
        return bounds.map(|b| Bounds {
            max_rate: f64::INFINITY,
            ..b
        });
    }
    bounds
}

/// Plausibility envelope of one quantity.
#[derive(Debug, Clone, Copy)]
struct Bounds {
    lo: f64,
    hi: f64,
    /// Maximum physically plausible |rate|, per second.
    max_rate: f64,
    /// dt-independent jump allowance covering noise + quantization.
    slack: f64,
}

impl Bounds {
    fn new(lo: f64, hi: f64, max_rate: f64, slack: f64) -> Self {
        Self {
            lo,
            hi,
            max_rate,
            slack,
        }
    }
}

/// True for the airbox outlet SHT75 broadcast channels.
fn is_outlet_channel(channel: u16) -> bool {
    (channels::OUTLET_BASE..channels::OUTLET_BASE + 4).contains(&channel)
}

/// Per-channel validation state.
#[derive(Debug, Clone, Default)]
struct ChannelState {
    last_accepted: Option<(f64, f64)>,
    last_raw: Option<f64>,
    repeats: u32,
    repeat_since: f64,
    rejects_in_row: u32,
    stuck: bool,
    unhealthy: bool,
}

/// Per-panel pump watchdog state.
///
/// The loop flow meter quantizes to whole turbine pulses (~0.45 L each),
/// so at radiant-loop flows a single broadcast is almost always 0 or
/// exactly one pulse. The watchdog therefore integrates commanded and
/// sensed *volume* over a probe window and judges the ratio only once
/// the commanded volume corresponds to enough expected pulses.
#[derive(Debug, Clone, Default)]
struct PumpWatch {
    /// Latest loop-flow broadcast: (at_s, m³/s).
    sensed: Option<(f64, f64)>,
    /// Time of the previous `observe_applied_flow` call.
    last_observed_s: Option<f64>,
    /// Commanded volume integrated this window, m³.
    window_applied_m3: f64,
    /// Sensed volume integrated this window, m³.
    window_sensed_m3: f64,
    /// Consecutive probe windows judged deficient.
    deficit_windows: u32,
    fault: bool,
    next_probe_s: f64,
}

/// Channels in the static lab plan: 12 ceiling + 4 room + 4 CO₂ +
/// 4 outlet + 1 supply-temperature broadcast channel.
const PLAN_CHANNELS: usize = 25;

/// Quantities [`bounds_for`] tracks, in `DataType`'s derived order:
/// Temperature, Humidity, Co2, SupplyTemperature, OutletDewPoint. The
/// order is load-bearing — slot order must equal `BTreeMap` key order
/// so [`SensorHealthSupervisor::save_state`] can emit the map encoding
/// by walking slots.
const TRACKED_TYPES: [DataType; 5] = [
    DataType::Temperature,
    DataType::Humidity,
    DataType::Co2,
    DataType::SupplyTemperature,
    DataType::OutletDewPoint,
];

/// Rank of `channel` within the static plan, ascending in channel
/// number, or `None` for a channel outside the plan.
fn channel_rank(channel: u16) -> Option<usize> {
    const CEILING_LAST: u16 = channels::CEILING_BASE + 11;
    const ROOM_LAST: u16 = channels::ROOM_BASE + 3;
    const CO2_LAST: u16 = channels::CO2_BASE + 3;
    const OUTLET_LAST: u16 = channels::OUTLET_BASE + 3;
    match channel {
        channels::CEILING_BASE..=CEILING_LAST => Some((channel - channels::CEILING_BASE) as usize),
        channels::ROOM_BASE..=ROOM_LAST => Some(12 + (channel - channels::ROOM_BASE) as usize),
        channels::CO2_BASE..=CO2_LAST => Some(16 + (channel - channels::CO2_BASE) as usize),
        channels::OUTLET_BASE..=OUTLET_LAST => {
            Some(20 + (channel - channels::OUTLET_BASE) as usize)
        }
        channels::SUPPLY_TEMP => Some(24),
        _ => None,
    }
}

/// Inverse of [`channel_rank`].
fn plan_channel(rank: usize) -> u16 {
    #[allow(clippy::cast_possible_truncation)]
    let rank16 = rank as u16;
    match rank {
        0..=11 => channels::CEILING_BASE + rank16,
        12..=15 => channels::ROOM_BASE + (rank16 - 12),
        16..=19 => channels::CO2_BASE + (rank16 - 16),
        20..=23 => channels::OUTLET_BASE + (rank16 - 20),
        _ => channels::SUPPLY_TEMP,
    }
}

/// Rank of `data_type` among [`TRACKED_TYPES`], or `None` for types
/// [`bounds_for`] never tracks.
fn type_rank(data_type: DataType) -> Option<usize> {
    TRACKED_TYPES.iter().position(|t| *t == data_type)
}

/// Dense slot of a tracked `(data_type, channel)` key, or `None` when
/// either half falls outside the static plan.
fn dense_slot(data_type: DataType, channel: u16) -> Option<usize> {
    Some(type_rank(data_type)? * PLAN_CHANNELS + channel_rank(channel)?)
}

/// The `(data_type, channel)` key a dense slot stands for.
fn slot_key(slot: usize) -> (DataType, u16) {
    (
        TRACKED_TYPES[slot / PLAN_CHANNELS],
        plan_channel(slot % PLAN_CHANNELS),
    )
}

/// The supervisor guarding both control modules. See the module docs.
///
/// Channel validation state lives in a dense slot table indexed by
/// `(tracked type, plan channel)`: every delivered sample hits
/// [`SensorHealthSupervisor::validate`], so the per-message map walk of
/// the former `BTreeMap` was measurable in end-to-end throughput. Keys
/// outside the static plan (none in the stock lab, but the validator
/// accepts any addressed broadcast) spill to the `overflow` map, and
/// [`SensorHealthSupervisor::save_state`] re-emits both as the original
/// sorted-map encoding so checkpoint bytes are unchanged.
#[derive(Debug, Clone)]
pub struct SensorHealthSupervisor {
    config: SupervisorConfig,
    dense: Vec<Option<ChannelState>>,
    overflow: std::collections::BTreeMap<(DataType, u16), ChannelState>,
    pumps: [PumpWatch; 2],
    detections: Vec<Detection>,
    obs: bz_obs::Handle,
}

impl SensorHealthSupervisor {
    /// Creates a supervisor recording against the global registry.
    #[must_use]
    pub fn new(config: SupervisorConfig) -> Self {
        Self {
            config,
            dense: vec![None; TRACKED_TYPES.len() * PLAN_CHANNELS],
            overflow: std::collections::BTreeMap::new(),
            pumps: Default::default(),
            detections: Vec::new(),
            obs: bz_obs::Handle::global(),
        }
    }

    /// Redirects this supervisor's metrics to `obs` (per-run isolation).
    #[must_use]
    pub fn with_obs(mut self, obs: bz_obs::Handle) -> Self {
        self.obs = obs;
        self
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &SupervisorConfig {
        &self.config
    }

    /// The detection/recovery log so far.
    #[must_use]
    pub fn detections(&self) -> &[Detection] {
        &self.detections
    }

    /// True while any channel is flagged unhealthy or any pump watchdog
    /// fault is latched.
    #[must_use]
    pub fn anything_flagged(&self) -> bool {
        self.dense
            .iter()
            .flatten()
            .chain(self.overflow.values())
            .any(|c| c.unhealthy)
            || self.pumps.iter().any(|p| p.fault)
    }

    /// Validates one delivered reading. Returns `Ok(())` to pass it to
    /// the consuming controller, or the reason it must be discarded.
    ///
    /// # Errors
    ///
    /// Returns the [`RejectReason`] when the reading is untrustworthy.
    pub fn validate(
        &mut self,
        now_s: f64,
        data_type: DataType,
        channel: u16,
        value: f64,
    ) -> Result<(), RejectReason> {
        let Some(bounds) = bounds_for(data_type, channel) else {
            return Ok(());
        };
        let state = match dense_slot(data_type, channel) {
            Some(slot) => self.dense[slot].get_or_insert_with(ChannelState::default),
            None => self.overflow.entry((data_type, channel)).or_default(),
        };

        let verdict = Self::judge(&self.config, state, now_s, value, bounds);
        match verdict {
            Ok(()) => {
                state.last_accepted = Some((now_s, value));
                state.rejects_in_row = 0;
                if state.unhealthy {
                    state.unhealthy = false;
                    self.detections.push(Detection {
                        at_s: now_s,
                        fault: false,
                        what: format!("channel {data_type}/{channel} recovered"),
                    });
                    self.obs.counter_inc("supervisor.channel.recovered");
                }
                self.obs.counter_inc("supervisor.accepted");
            }
            Err(reason) => {
                state.rejects_in_row += 1;
                if !state.unhealthy {
                    state.unhealthy = true;
                    self.detections.push(Detection {
                        at_s: now_s,
                        fault: true,
                        what: format!("channel {data_type}/{channel} {}", reason.name()),
                    });
                }
                self.obs.counter_inc("supervisor.rejected");
                self.obs
                    .counter_inc(format!("supervisor.rejected.{}", reason.name()));
            }
        }
        verdict
    }

    /// The pure per-reading judgement, split out so `validate` can borrow
    /// the channel map mutably while pushing detections.
    fn judge(
        config: &SupervisorConfig,
        state: &mut ChannelState,
        now_s: f64,
        value: f64,
        bounds: Bounds,
    ) -> Result<(), RejectReason> {
        if !value.is_finite() {
            return Err(RejectReason::NonFinite);
        }

        // Stuck-at tracking runs on raw values regardless of the other
        // checks: the moment the value moves again the latch clears.
        if state.last_raw == Some(value) {
            state.repeats += 1;
            if state.repeats >= config.stuck_min_repeats
                && now_s - state.repeat_since >= config.stuck_window_s
            {
                state.stuck = true;
            }
        } else {
            state.repeats = 1;
            state.repeat_since = now_s;
            state.stuck = false;
        }
        state.last_raw = Some(value);
        if state.stuck {
            return Err(RejectReason::Stuck);
        }

        if !(bounds.lo..=bounds.hi).contains(&value) {
            return Err(RejectReason::OutOfRange);
        }

        if let Some((prev_t, prev_v)) = state.last_accepted {
            let dt = now_s - prev_t;
            // After enough consecutive rejections the old baseline is
            // meaningless: accept the next in-range reading as the new
            // baseline rather than rejecting forever.
            let rebaseline = state.rejects_in_row >= config.rebaseline_rejects;
            if dt > 0.0 && dt <= config.staleness_s && !rebaseline {
                let allowed = bounds.slack + bounds.max_rate * dt;
                if (value - prev_v).abs() > allowed {
                    return Err(RejectReason::RateSpike);
                }
            }
        }
        Ok(())
    }

    /// True while `(data_type, channel)` is trustworthy and fresh at
    /// `now_s`: not flagged, with an accepted reading inside the
    /// staleness window. Channels never heard from are *not* trusted.
    #[must_use]
    pub fn channel_trusted(&self, data_type: DataType, channel: u16, now_s: f64) -> bool {
        let state = match dense_slot(data_type, channel) {
            Some(slot) => self.dense[slot].as_ref(),
            None => self.overflow.get(&(data_type, channel)),
        };
        match state {
            Some(state) => {
                !state.unhealthy
                    && state
                        .last_accepted
                        .is_some_and(|(at, _)| now_s - at <= self.config.staleness_s)
            }
            None => false,
        }
    }

    /// Number of ceiling sensor positions under `panel` whose temperature
    /// *and* humidity channels are both trusted and fresh.
    #[must_use]
    pub fn trusted_ceiling_pairs(&self, panel: usize, now_s: f64) -> usize {
        (0..CEILING_SENSORS)
            .filter(|k| {
                let ch = channels::CEILING_BASE + (panel * CEILING_SENSORS + k) as u16;
                self.channel_trusted(DataType::Temperature, ch, now_s)
                    && self.channel_trusted(DataType::Humidity, ch, now_s)
            })
            .count()
    }

    /// Ingests Control-C-2's loop-flow broadcast for `panel`.
    pub fn observe_loop_flow(&mut self, panel: usize, now_s: f64, flow: f64) {
        if panel < 2 && flow.is_finite() {
            self.pumps[panel].sensed = Some((now_s, flow));
        }
    }

    /// Runs the re-probe clock: a latched pump fault whose lockout has
    /// elapsed is tentatively cleared so the next cycles can retry the
    /// pump. Call once per control cycle, before querying safe mode.
    pub fn begin_control_cycle(&mut self, now_s: f64) {
        for (panel, pump) in self.pumps.iter_mut().enumerate() {
            if pump.fault && now_s >= pump.next_probe_s {
                pump.fault = false;
                // One deficient probe window re-latches immediately; a
                // healthy window clears the streak and the pump stays up.
                pump.deficit_windows = self.config.pump_fault_windows.saturating_sub(1);
                pump.window_applied_m3 = 0.0;
                pump.window_sensed_m3 = 0.0;
                self.detections.push(Detection {
                    at_s: now_s,
                    fault: false,
                    what: format!("pump_probe panel{panel}"),
                });
                self.obs.counter_inc("supervisor.pump.reprobed");
            }
        }
    }

    /// Feeds the watchdog the flow a healthy loop would deliver for the
    /// voltages commanded to `panel` this cycle (zero while safe mode
    /// holds the valves closed). Integrates commanded and sensed volume;
    /// once enough commanded volume has accumulated the ratio is judged,
    /// and consecutive deficient windows latch a pump fault.
    pub fn observe_applied_flow(&mut self, panel: usize, now_s: f64, applied_flow: f64) {
        /// Accumulation pauses across gaps longer than this (missed
        /// cycles carry no flow evidence), s.
        const MAX_CYCLE_GAP_S: f64 = 30.0;

        let Some(pump) = self.pumps.get_mut(panel) else {
            return;
        };
        let dt = pump.last_observed_s.map(|t| now_s - t);
        pump.last_observed_s = Some(now_s);
        if pump.fault {
            return;
        }
        let Some(dt) = dt.filter(|dt| (0.0..=MAX_CYCLE_GAP_S).contains(dt)) else {
            return;
        };
        // Idle cycles (valves closed, trickle commands) carry no
        // information about the pump; the window just pauses.
        if applied_flow < self.config.pump_min_flow {
            return;
        }
        let sensed_fresh = pump
            .sensed
            .filter(|(at, _)| now_s - at <= self.config.staleness_s);
        let Some((_, sensed_flow)) = sensed_fresh else {
            return;
        };

        pump.window_applied_m3 += applied_flow * dt;
        pump.window_sensed_m3 += sensed_flow * dt;
        if pump.window_applied_m3 < self.config.pump_probe_volume_m3 {
            return;
        }
        let deficit =
            pump.window_sensed_m3 < self.config.pump_deficit_ratio * pump.window_applied_m3;
        pump.window_applied_m3 = 0.0;
        pump.window_sensed_m3 = 0.0;
        if deficit {
            pump.deficit_windows += 1;
            if pump.deficit_windows >= self.config.pump_fault_windows {
                pump.fault = true;
                pump.next_probe_s = now_s + self.config.pump_reprobe_s;
                self.detections.push(Detection {
                    at_s: now_s,
                    fault: true,
                    what: format!("pump_fault panel{panel}"),
                });
                self.obs.counter_inc("supervisor.pump.fault_latched");
            }
        } else {
            pump.deficit_windows = 0;
        }
    }

    /// True while the watchdog holds a latched fault on `panel`'s loop.
    #[must_use]
    pub fn pump_fault(&self, panel: usize) -> bool {
        self.pumps.get(panel).is_some_and(|p| p.fault)
    }

    /// Condensation safe mode for `panel`: engaged while the dew-margin
    /// inputs are untrustworthy (too few trusted ceiling pairs) or the
    /// loop pump is flagged stuck. The caller must close the radiant
    /// valves while this holds.
    #[must_use]
    pub fn radiant_safe_mode(&self, panel: usize, now_s: f64) -> bool {
        self.trusted_ceiling_pairs(panel, now_s) < self.config.min_trusted_ceiling
            || self.pump_fault(panel)
    }

    /// Serializes the supervisor's dynamic state: every channel's
    /// validation memory, the pump watchdogs, and the detection log.
    /// Tuning and the obs handle are rebuilt on restore.
    pub fn save_state(&self, w: &mut bz_state::Writer) {
        use bz_state::Persist;
        // Emit the channel table in the exact encoding of the former
        // `BTreeMap<(DataType, u16), ChannelState>` — a length prefix
        // followed by `(key, value)` pairs sorted by key — so checkpoint
        // bytes are identical to pre-dense-table builds in both
        // directions. Dense slots already walk in key order; the (in
        // practice empty) overflow map is merged in by a sort.
        let mut merged: Vec<((DataType, u16), &ChannelState)> = self
            .dense
            .iter()
            .enumerate()
            .filter_map(|(slot, state)| state.as_ref().map(|s| (slot_key(slot), s)))
            .chain(self.overflow.iter().map(|(k, v)| (*k, v)))
            .collect();
        merged.sort_unstable_by_key(|(k, _)| *k);
        w.put_len(merged.len());
        for (key, state) in merged {
            key.save(w);
            state.save(w);
        }
        self.pumps.save(w);
        self.detections.save(w);
    }

    /// Restores the state saved by [`Self::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a decode error if the bytes do not parse.
    pub fn load_state(&mut self, r: &mut bz_state::Reader<'_>) -> Result<(), bz_state::StateError> {
        use bz_state::Persist;
        let channels: std::collections::BTreeMap<(DataType, u16), ChannelState> = Persist::load(r)?;
        self.dense = vec![None; TRACKED_TYPES.len() * PLAN_CHANNELS];
        self.overflow.clear();
        for ((data_type, channel), state) in channels {
            match dense_slot(data_type, channel) {
                Some(slot) => self.dense[slot] = Some(state),
                None => {
                    self.overflow.insert((data_type, channel), state);
                }
            }
        }
        self.pumps = Persist::load(r)?;
        self.detections = Persist::load(r)?;
        Ok(())
    }
}

// --- Checkpoint support --------------------------------------------------

bz_state::persist_struct!(Detection { at_s, fault, what });
bz_state::persist_struct!(ChannelState {
    last_accepted,
    last_raw,
    repeats,
    repeat_since,
    rejects_in_row,
    stuck,
    unhealthy,
});
bz_state::persist_struct!(PumpWatch {
    sensed,
    last_observed_s,
    window_applied_m3,
    window_sensed_m3,
    deficit_windows,
    fault,
    next_probe_s,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn supervisor() -> SensorHealthSupervisor {
        SensorHealthSupervisor::new(SupervisorConfig::default())
            .with_obs(bz_obs::Handle::isolated())
    }

    /// Feeds a plausible slightly-noisy temperature stream.
    fn feed_healthy(s: &mut SensorHealthSupervisor, channel: u16, from_s: u64, to_s: u64) {
        for i in (from_s..to_s).step_by(3) {
            let noise = f64::from((i % 7) as u32) * 0.01;
            let v = 26.0 + noise;
            assert_eq!(
                s.validate(i as f64, DataType::Temperature, channel, v),
                Ok(()),
                "at {i}"
            );
        }
    }

    #[test]
    fn healthy_streams_pass_and_are_trusted() {
        let mut s = supervisor();
        feed_healthy(&mut s, channels::CEILING_BASE, 0, 300);
        assert!(s.channel_trusted(DataType::Temperature, channels::CEILING_BASE, 300.0));
        assert!(!s.anything_flagged());
    }

    #[test]
    fn non_finite_and_out_of_range_are_rejected() {
        let mut s = supervisor();
        assert_eq!(
            s.validate(0.0, DataType::Temperature, 200, f64::NAN),
            Err(RejectReason::NonFinite)
        );
        assert_eq!(
            s.validate(1.0, DataType::Temperature, 200, 140.0),
            Err(RejectReason::OutOfRange)
        );
        assert_eq!(
            s.validate(2.0, DataType::Humidity, 200, -3.0),
            Err(RejectReason::OutOfRange)
        );
    }

    #[test]
    fn rate_spike_is_rejected_then_rebaselined() {
        let mut s = supervisor();
        assert_eq!(s.validate(0.0, DataType::Temperature, 200, 26.0), Ok(()));
        // +10 K in 3 s is not weather, it is a fault.
        assert_eq!(
            s.validate(3.0, DataType::Temperature, 200, 36.0),
            Err(RejectReason::RateSpike)
        );
        // But if the sensor keeps insisting, the supervisor eventually
        // accepts the new level as a fresh baseline.
        let mut accepted_at = None;
        for i in 2..12u32 {
            let t = f64::from(i) * 3.0;
            let v = 36.0 + f64::from(i) * 0.01;
            if s.validate(t, DataType::Temperature, 200, v) == Ok(()) {
                accepted_at = Some(i);
                break;
            }
        }
        assert!(accepted_at.is_some(), "rebaseline must unlock the channel");
    }

    #[test]
    fn stuck_channel_is_flagged_and_recovers() {
        let mut s = supervisor();
        feed_healthy(&mut s, 100, 0, 60);
        // Bit-identical readings for hundreds of samples over >600 s: no
        // healthy quantized-noisy part does that.
        let mut last = Ok(());
        for i in 0..300u32 {
            let t = 60.0 + f64::from(i) * 3.0;
            last = s.validate(t, DataType::Temperature, 100, 25.5);
        }
        assert_eq!(last, Err(RejectReason::Stuck));
        assert!(!s.channel_trusted(DataType::Temperature, 100, 960.0));
        assert!(s.anything_flagged());
        let flagged = s.detections().iter().any(|d| d.fault);
        assert!(flagged);
        // The sensor starts moving again: immediate recovery.
        assert_eq!(s.validate(965.0, DataType::Temperature, 100, 25.61), Ok(()));
        assert!(s.channel_trusted(DataType::Temperature, 100, 965.0));
        let recovered = s.detections().iter().any(|d| !d.fault);
        assert!(recovered);
    }

    #[test]
    fn safe_mode_tracks_trusted_ceiling_pairs() {
        let mut s = supervisor();
        // Nothing heard yet: nothing is trusted, safe mode holds.
        assert!(s.radiant_safe_mode(0, 0.0));
        // Two trusted pairs on panel 0 clear it.
        for k in 0..2u16 {
            let ch = channels::CEILING_BASE + k;
            for i in 0..3u32 {
                let t = f64::from(i) * 3.0;
                let n = f64::from(i) * 0.01;
                assert_eq!(s.validate(t, DataType::Temperature, ch, 26.0 + n), Ok(()));
                assert_eq!(s.validate(t, DataType::Humidity, ch, 55.0 + n), Ok(()));
            }
        }
        assert_eq!(s.trusted_ceiling_pairs(0, 10.0), 2);
        assert!(!s.radiant_safe_mode(0, 10.0));
        // Panel 1 heard nothing: still safe-moded.
        assert!(s.radiant_safe_mode(1, 10.0));
        // Everything ages out: safe mode re-engages.
        assert!(s.radiant_safe_mode(0, 500.0));
    }

    #[test]
    fn pump_watchdog_latches_and_reprobes() {
        let mut s = supervisor();
        let commanded = 1.0e-4;
        // Feeds `cycles` healthy 5 s control cycles with `sensed` flow,
        // starting at `from_s`; returns the time after the last cycle.
        fn feed(
            s: &mut SensorHealthSupervisor,
            from_s: f64,
            cycles: u32,
            commanded: f64,
            sensed: f64,
        ) -> f64 {
            let mut t = from_s;
            for _ in 0..cycles {
                s.observe_loop_flow(0, t, sensed);
                s.observe_applied_flow(0, t, commanded);
                t += 5.0;
            }
            t
        }
        // Two full healthy probe windows (0.025 m³ each at 1e-4 m³/s
        // needs 250 s = 50 cycles): no fault.
        let t = feed(&mut s, 0.0, 120, commanded, 0.9e-4);
        assert!(!s.pump_fault(0));
        // Pump seizes: two deficient probe windows latch the fault.
        let t = feed(&mut s, t, 120, commanded, 1.0e-6);
        assert!(s.pump_fault(0));
        assert!(s.radiant_safe_mode(0, t));
        let latched_at = s
            .detections()
            .iter()
            .rev()
            .find(|d| d.fault)
            .expect("latch recorded")
            .at_s;
        // Before the lockout elapses, nothing changes.
        s.begin_control_cycle(latched_at + 100.0);
        assert!(s.pump_fault(0));
        // After the lockout the watchdog re-probes...
        let probe_at = latched_at + 300.0;
        s.begin_control_cycle(probe_at);
        assert!(!s.pump_fault(0));
        // ...and a repaired pump stays clear through further windows.
        feed(&mut s, probe_at, 120, commanded, 0.95e-4);
        assert!(!s.pump_fault(0));
        // If it seizes again the watchdog latches again.
        feed(&mut s, probe_at + 1_000.0, 120, commanded, 1.0e-6);
        assert!(s.pump_fault(0));
    }

    #[test]
    fn supervisor_state_round_trips() {
        let mut s = supervisor();
        for i in 0..40 {
            let t = f64::from(i) * 3.0;
            let _ = s.validate(t, DataType::Temperature, 7, 26.0);
            let _ = s.validate(
                t,
                DataType::Humidity,
                9,
                if i % 2 == 0 { 55.0 } else { 300.0 },
            );
        }
        let mut w = bz_state::Writer::new();
        s.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored = supervisor();
        restored
            .load_state(&mut bz_state::Reader::new(&bytes))
            .expect("saved supervisor decodes");
        // The stuck-at detector must continue from the same repeat count:
        // both accept/reject identically from here on.
        for i in 40..80 {
            let t = f64::from(i) * 3.0;
            assert_eq!(
                s.validate(t, DataType::Temperature, 7, 26.0),
                restored.validate(t, DataType::Temperature, 7, 26.0),
                "diverged at step {i}"
            );
        }
        assert_eq!(s.detections(), restored.detections());
    }

    #[test]
    fn accepted_values_are_always_finite_and_in_range() {
        let mut s = supervisor();
        let specials = [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1.0e9,
            -1.0e9,
            26.0,
        ];
        for (i, &v) in specials.iter().cycle().take(60).enumerate() {
            let t = i as f64 * 3.0;
            if s.validate(t, DataType::Temperature, 7, v) == Ok(()) {
                assert!(v.is_finite());
                assert!((-5.0..=55.0).contains(&v));
            }
        }
    }

    #[test]
    fn dense_slot_mapping_round_trips_and_orders_like_the_map_key() {
        // Every slot must map back to itself, and walking slots in order
        // must walk `(DataType, u16)` keys in strictly ascending order —
        // that equivalence is what lets `save_state` emit the sorted-map
        // encoding straight from the dense table.
        let mut prev: Option<(DataType, u16)> = None;
        for slot in 0..TRACKED_TYPES.len() * PLAN_CHANNELS {
            let key = slot_key(slot);
            assert_eq!(dense_slot(key.0, key.1), Some(slot), "slot {slot}");
            if let Some(p) = prev {
                assert!(p < key, "slot {slot}: {p:?} !< {key:?}");
            }
            prev = Some(key);
        }
        // Untracked types and off-plan channels must spill to overflow.
        assert_eq!(dense_slot(DataType::FlowRate, channels::CEILING_BASE), None);
        assert_eq!(dense_slot(DataType::Temperature, 99), None);
        assert_eq!(dense_slot(DataType::Temperature, 501), None);
    }

    #[test]
    fn save_bytes_match_the_sorted_map_encoding() {
        // Feed a mix of plan channels and one off-plan channel, then
        // check the persisted channel table is byte-identical to the
        // former `BTreeMap` encoding rebuilt from the public state.
        let mut s = supervisor();
        feed_healthy(&mut s, channels::CEILING_BASE + 3, 0, 60);
        assert_eq!(
            s.validate(1.0, DataType::Humidity, channels::ROOM_BASE, 55.0),
            Ok(())
        );
        assert_eq!(
            s.validate(2.0, DataType::Co2, channels::CO2_BASE + 1, 600.0),
            Ok(())
        );
        assert_eq!(s.validate(3.0, DataType::Temperature, 999, 24.0), Ok(()));

        let mut w = bz_state::Writer::new();
        s.save_state(&mut w);
        let bytes = w.into_bytes();

        // Round-trip restores the identical table (and re-saves to the
        // identical bytes), covering dense and overflow alike.
        let mut restored = supervisor();
        let mut r = bz_state::Reader::new(&bytes);
        restored.load_state(&mut r).expect("load");
        assert!(s.channel_trusted(DataType::Temperature, channels::CEILING_BASE + 3, 60.0));
        assert!(restored.channel_trusted(DataType::Temperature, channels::CEILING_BASE + 3, 60.0));
        assert!(restored.channel_trusted(DataType::Temperature, 999, 4.0));
        let mut w2 = bz_state::Writer::new();
        restored.save_state(&mut w2);
        assert_eq!(bytes, w2.into_bytes());
    }
}
