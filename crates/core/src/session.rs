//! Externally-paced driving of a [`BubbleZeroSystem`].
//!
//! The batch runners (`bzctl trial`, the sweep executor) own their step
//! loop: they advance the system minute by minute until the scenario
//! duration is spent. A control-plane service cannot — each tenant is
//! stepped on demand by whatever requests arrive over the wire. A
//! [`TenantSession`] packages the exact per-minute cadence those runners
//! use (60 simulated seconds, then a counter sample into the session's
//! isolated `bz_obs` registry) behind an externally-paced API, so a
//! tenant driven one request at a time exports **byte-identical** JSONL
//! to the same scenario run offline.
//!
//! The session is checkpointable through the same `bz-state` seam as the
//! system itself: [`TenantSession::save_state`] round-trips through
//! [`TenantSession::load_state`] into a byte-identical continuation.

use bz_thermal::airbox::FanLevel;
use bz_thermal::zone::SubspaceId;

use crate::system::BubbleZeroSystem;

/// Readback of one airbox / CO₂flap actuation pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AirboxReadback {
    /// Coil water pump voltage, V.
    pub coil_pump_v: f64,
    /// Fan speed setting label (`off`, `l1` … `l4`).
    pub fan: &'static str,
    /// Whether the CO₂flap is driven open.
    pub flap_open: bool,
}

/// A point-in-time setpoint/actuation readback for a tenant: the zone
/// conditions the controllers are reacting to and the actuator commands
/// they most recently issued. Everything here is a deterministic function
/// of the simulation state.
#[derive(Debug, Clone, PartialEq)]
pub struct SetpointReadback {
    /// Simulation time of the readback, ms.
    pub now_ms: u64,
    /// Per-subspace zone temperature, °C (S1..S4 order).
    pub zone_temp_c: [f64; 4],
    /// Per-subspace zone dew point, °C (S1..S4 order).
    pub zone_dew_c: [f64; 4],
    /// Per-loop radiant pump voltages `(supply, recycle)`, V.
    pub radiant_v: [(f64, f64); 2],
    /// Per-subspace airbox actuation.
    pub airboxes: [AirboxReadback; 4],
    /// Name of the active control strategy.
    pub strategy: &'static str,
}

/// A closed-loop system plus its scenario duration, stepped from the
/// outside one minute (or one batch of minutes) at a time.
#[derive(Debug)]
pub struct TenantSession {
    system: BubbleZeroSystem,
    obs: bz_obs::Handle,
    total_minutes: u64,
}

impl TenantSession {
    /// Wraps a freshly built system. `obs` must be the handle the system
    /// records into (the one passed to `BubbleZeroSystem::with_obs` /
    /// `with_strategy`) — the session samples counters through it at the
    /// per-minute cadence the offline runners use.
    #[must_use]
    pub fn new(system: BubbleZeroSystem, obs: bz_obs::Handle, total_minutes: u64) -> Self {
        Self {
            system,
            obs,
            total_minutes,
        }
    }

    /// Simulated milliseconds completed so far.
    #[must_use]
    pub fn now_ms(&self) -> u64 {
        self.system.now().as_millis()
    }

    /// Whole simulated minutes completed so far.
    #[must_use]
    pub fn minute(&self) -> u64 {
        self.now_ms() / 60_000
    }

    /// The scenario duration, minutes.
    #[must_use]
    pub fn total_minutes(&self) -> u64 {
        self.total_minutes
    }

    /// True once the scenario duration has fully run.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.minute() >= self.total_minutes
    }

    /// The wrapped system (read-only).
    #[must_use]
    pub fn system(&self) -> &BubbleZeroSystem {
        &self.system
    }

    /// The session's metrics handle.
    #[must_use]
    pub fn obs(&self) -> &bz_obs::Handle {
        &self.obs
    }

    /// Advances one simulated minute — 60 one-second steps, then the
    /// per-minute counter sample that puts trajectories (not just totals)
    /// in the export, exactly as `bzctl trial` and the sweep runner do.
    /// A no-op once the session [`is_done`](Self::is_done).
    pub fn step_minute(&mut self) {
        if self.is_done() {
            return;
        }
        self.system.run_seconds(60);
        self.obs.record_counters(self.system.now().as_millis());
    }

    /// Steps until minute `target` (clamped to the scenario duration) and
    /// returns how many minutes were actually advanced.
    pub fn advance_to_minute(&mut self, target: u64) -> u64 {
        let target = target.min(self.total_minutes);
        let before = self.minute();
        while self.minute() < target {
            self.step_minute();
        }
        self.minute() - before
    }

    /// Records an externally observed sensor reading into the session's
    /// metrics registry as a gauge `ingest.<name>` stamped at the current
    /// simulation time. Ingest is telemetry-only: it never perturbs the
    /// control loop, so a tenant that receives no observations stays
    /// byte-identical to the offline run, and one that does is
    /// deterministic given the same observation sequence at the same
    /// simulated instants.
    pub fn ingest_observation(&mut self, name: &str, value: f64) {
        self.obs
            .gauge_set(format!("ingest.{name}"), self.now_ms(), value);
    }

    /// The current setpoint/actuation readback.
    #[must_use]
    pub fn readback(&self) -> SetpointReadback {
        let plant = self.system.plant();
        let commands = self.system.commands();
        let mut zone_temp_c = [0.0; 4];
        let mut zone_dew_c = [0.0; 4];
        for (i, id) in SubspaceId::ALL.iter().enumerate() {
            zone_temp_c[i] = plant.zone_temperature(*id).get();
            zone_dew_c[i] = plant.zone_dew_point(*id).get();
        }
        let radiant_v = [
            (
                commands.radiant[0].supply_voltage.get(),
                commands.radiant[0].recycle_voltage.get(),
            ),
            (
                commands.radiant[1].supply_voltage.get(),
                commands.radiant[1].recycle_voltage.get(),
            ),
        ];
        let airboxes = commands.airboxes.map(|airbox| AirboxReadback {
            coil_pump_v: airbox.coil_pump_voltage.get(),
            fan: fan_label(airbox.fan),
            flap_open: airbox.flap_open,
        });
        SetpointReadback {
            now_ms: self.now_ms(),
            zone_temp_c,
            zone_dew_c,
            radiant_v,
            airboxes,
            strategy: self.system.strategy_name(),
        }
    }

    /// Serializes the session for checkpointing. The system snapshot
    /// already carries the obs registry, so the metrics trajectory
    /// survives a restore.
    pub fn save_state(&self, w: &mut bz_state::Writer) {
        self.system.save_state(w);
        w.put_u64(self.total_minutes);
    }

    /// Restores state written by [`TenantSession::save_state`] into a
    /// session freshly built from the same configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`bz_state::StateError`] for truncated or corrupt
    /// payloads, or a snapshot taken past this session's duration.
    pub fn load_state(&mut self, r: &mut bz_state::Reader<'_>) -> Result<(), bz_state::StateError> {
        self.system.load_state(r)?;
        let total_minutes = r.take_u64()?;
        if total_minutes != self.total_minutes {
            return Err(bz_state::StateError::Invalid {
                what: "TenantSession",
                reason: format!(
                    "snapshot is of a {total_minutes}-minute run, this session runs {} minutes",
                    self.total_minutes
                ),
            });
        }
        if self.minute() > self.total_minutes {
            return Err(bz_state::StateError::Invalid {
                what: "TenantSession",
                reason: format!(
                    "snapshot is {} minute(s) into a run of only {} minute(s)",
                    self.minute(),
                    self.total_minutes
                ),
            });
        }
        Ok(())
    }
}

/// The wire label of a fan level.
fn fan_label(level: FanLevel) -> &'static str {
    match level {
        FanLevel::Off => "off",
        FanLevel::L1 => "l1",
        FanLevel::L2 => "l2",
        FanLevel::L3 => "l3",
        FanLevel::L4 => "l4",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use bz_thermal::plant::PlantConfig;

    fn session(seed: u64, minutes: u64) -> TenantSession {
        let obs = bz_obs::Handle::isolated();
        let plant = PlantConfig::bubble_zero_lab().with_seed(seed ^ 0x9E37);
        let config = SystemConfig {
            seed,
            ..SystemConfig::paper_deployment(plant)
        };
        let system = BubbleZeroSystem::with_obs(config, obs.clone());
        TenantSession::new(system, obs, minutes)
    }

    fn export(session: &TenantSession) -> Vec<u8> {
        let mut bytes = Vec::new();
        session.obs().write_jsonl(&mut bytes).unwrap();
        bytes
    }

    #[test]
    fn externally_paced_stepping_matches_the_offline_loop() {
        // The offline cadence: run_seconds(60) + record_counters, 3 times.
        let offline = session(7, 3);
        let (mut system, obs) = (offline.system, offline.obs);
        for _ in 0..3 {
            system.run_seconds(60);
            obs.record_counters(system.now().as_millis());
        }
        let mut expected = Vec::new();
        obs.write_jsonl(&mut expected).unwrap();

        // The same scenario driven through the session API, mixed paces.
        let mut paced = session(7, 3);
        paced.step_minute();
        assert_eq!(paced.minute(), 1);
        assert_eq!(paced.advance_to_minute(3), 2);
        assert!(paced.is_done());
        // Further steps past the end are no-ops.
        paced.step_minute();
        assert_eq!(paced.advance_to_minute(99), 0);
        assert_eq!(paced.minute(), 3);
        assert_eq!(export(&paced), expected);
    }

    #[test]
    fn save_restore_continues_byte_identically() {
        let mut uninterrupted = session(11, 4);
        uninterrupted.advance_to_minute(4);
        let expected = export(&uninterrupted);

        let mut first = session(11, 4);
        first.advance_to_minute(2);
        let mut w = bz_state::Writer::new();
        first.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut restored = session(11, 4);
        restored
            .load_state(&mut bz_state::Reader::new(&bytes))
            .unwrap();
        assert_eq!(restored.minute(), 2);
        restored.advance_to_minute(4);
        assert_eq!(export(&restored), expected);
    }

    #[test]
    fn load_rejects_a_snapshot_of_a_different_duration() {
        let mut donor = session(5, 8);
        donor.step_minute();
        let mut w = bz_state::Writer::new();
        donor.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut other = session(5, 4);
        let err = other
            .load_state(&mut bz_state::Reader::new(&bytes))
            .unwrap_err();
        assert!(err.to_string().contains("8-minute"), "{err}");
    }

    #[test]
    fn readback_reports_all_zones_and_actuators() {
        let mut s = session(3, 2);
        s.step_minute();
        let readback = s.readback();
        assert_eq!(readback.now_ms, 60_000);
        assert_eq!(readback.strategy, "reactive");
        assert!(readback.zone_temp_c.iter().all(|t| (0.0..60.0).contains(t)));
        assert!(readback.airboxes.iter().all(|a| a.coil_pump_v >= 0.0));
    }

    #[test]
    fn ingest_lands_in_the_export_as_a_gauge() {
        let mut s = session(3, 2);
        s.step_minute();
        s.ingest_observation("room.temp_c", 24.5);
        let snapshot = s.obs().snapshot();
        assert_eq!(snapshot.gauges["ingest.room.temp_c"], 24.5);
    }
}
