//! The PID controller used by both control modules.
//!
//! §III-B: "To achieve a rapid and robust control of F_mix, we adopt the
//! Proportional-Integral-Derivative (PID) algorithm in the control" — and
//! §III-C designs "a similar PID controller" for the airbox coil flow.
//! This implementation adds the two ingredients any deployed PID needs:
//! output clamping and conditional-integration anti-windup.

/// PID gains and output limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PidConfig {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain, per second.
    pub ki: f64,
    /// Derivative gain, seconds.
    pub kd: f64,
    /// Lower output clamp.
    pub output_min: f64,
    /// Upper output clamp.
    pub output_max: f64,
}

impl PidConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if any gain is negative, a gain is non-finite, or
    /// `output_min > output_max`.
    #[must_use]
    pub fn new(kp: f64, ki: f64, kd: f64, output_min: f64, output_max: f64) -> Self {
        assert!(
            kp >= 0.0 && ki >= 0.0 && kd >= 0.0,
            "gains must be non-negative"
        );
        assert!(
            kp.is_finite() && ki.is_finite() && kd.is_finite(),
            "gains must be finite"
        );
        assert!(output_min <= output_max, "output clamps inverted");
        Self {
            kp,
            ki,
            kd,
            output_min,
            output_max,
        }
    }
}

/// A discrete PID controller with clamping and anti-windup.
///
/// # Example
///
/// ```
/// use bz_core::pid::{Pid, PidConfig};
///
/// // Flow controller: 3.9 K of temperature error should open the valve.
/// let mut pid = Pid::new(PidConfig::new(0.5, 0.01, 0.0, 0.0, 1.0));
/// let output = pid.step(3.9, 1.0);
/// assert!(output > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Pid {
    config: PidConfig,
    integral: f64,
    last_error: Option<f64>,
    obs: bz_obs::Handle,
}

impl Pid {
    /// Creates a controller at rest, counting saturation against the
    /// global `bz_obs` registry.
    #[must_use]
    pub fn new(config: PidConfig) -> Self {
        Self {
            config,
            integral: 0.0,
            last_error: None,
            obs: bz_obs::Handle::global(),
        }
    }

    /// Redirects this controller's metrics to `obs` (per-run isolation).
    #[must_use]
    pub fn with_obs(mut self, obs: bz_obs::Handle) -> Self {
        self.obs = obs;
        self
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &PidConfig {
        &self.config
    }

    /// Advances the controller with the current `error` (setpoint −
    /// measurement convention is the caller's) over `dt_s` seconds and
    /// returns the clamped output.
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is not positive or `error` is not finite.
    pub fn step(&mut self, error: f64, dt_s: f64) -> f64 {
        assert!(dt_s > 0.0 && dt_s.is_finite(), "dt must be positive");
        assert!(error.is_finite(), "error must be finite");

        let derivative = match self.last_error {
            Some(last) => (error - last) / dt_s,
            None => 0.0,
        };
        self.last_error = Some(error);

        // Back-calculation anti-windup: when the output saturates, the
        // integral is reset to the value consistent with the clamped
        // output. Unlike conditional integration, this cannot trap the
        // controller in a limit cycle bouncing between both rails (the
        // integral always lands where the output left off).
        let tentative_integral = self.integral + error * dt_s;
        let unclamped = self.config.kp * error
            + self.config.ki * tentative_integral
            + self.config.kd * derivative;
        let clamped = unclamped.clamp(self.config.output_min, self.config.output_max);
        if clamped != unclamped {
            self.obs.counter_inc("core.pid.saturation");
        }
        if clamped != unclamped && self.config.ki > 0.0 {
            self.integral =
                (clamped - self.config.kp * error - self.config.kd * derivative) / self.config.ki;
        } else {
            self.integral = tentative_integral;
        }
        clamped
    }

    /// Resets the internal state (integral and derivative history).
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.last_error = None;
    }

    /// The accumulated integral term (for inspection in tests).
    #[must_use]
    pub fn integral(&self) -> f64 {
        self.integral
    }

    /// Serializes the controller state (integral, derivative memory). The
    /// gains and the obs handle are rebuilt from config on restore.
    pub fn save_state(&self, w: &mut bz_state::Writer) {
        use bz_state::Persist;
        w.put_f64(self.integral);
        self.last_error.save(w);
    }

    /// Restores the state saved by [`Self::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a decode error if the bytes do not parse.
    pub fn load_state(&mut self, r: &mut bz_state::Reader<'_>) -> Result<(), bz_state::StateError> {
        use bz_state::Persist;
        self.integral = r.take_f64()?;
        self.last_error = Persist::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple(kp: f64, ki: f64, kd: f64) -> Pid {
        Pid::new(PidConfig::new(kp, ki, kd, -10.0, 10.0))
    }

    #[test]
    fn proportional_action() {
        let mut pid = simple(2.0, 0.0, 0.0);
        assert!((pid.step(3.0, 1.0) - 6.0).abs() < 1e-12);
        assert!((pid.step(-1.5, 1.0) + 3.0).abs() < 1e-12);
    }

    #[test]
    fn integral_accumulates() {
        let mut pid = simple(0.0, 1.0, 0.0);
        assert!((pid.step(1.0, 1.0) - 1.0).abs() < 1e-12);
        assert!((pid.step(1.0, 1.0) - 2.0).abs() < 1e-12);
        assert!((pid.step(1.0, 1.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn derivative_reacts_to_change() {
        let mut pid = simple(0.0, 0.0, 2.0);
        // First step has no history: derivative 0.
        assert_eq!(pid.step(1.0, 1.0), 0.0);
        // Error rose by 4 over 2 s → derivative 2 → output 4.
        assert!((pid.step(5.0, 2.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn output_is_clamped() {
        let mut pid = Pid::new(PidConfig::new(100.0, 0.0, 0.0, 0.0, 1.0));
        assert_eq!(pid.step(5.0, 1.0), 1.0);
        assert_eq!(pid.step(-5.0, 1.0), 0.0);
    }

    #[test]
    fn anti_windup_stops_integral_growth_at_saturation() {
        let mut pid = Pid::new(PidConfig::new(0.0, 1.0, 0.0, 0.0, 1.0));
        for _ in 0..100 {
            assert_eq!(pid.step(5.0, 1.0), 1.0);
        }
        // Without anti-windup the integral would be ~500 and take ~100
        // negative-error steps to unwind; with it, recovery is immediate.
        assert!(
            pid.integral() < 6.0,
            "integral wound up to {}",
            pid.integral()
        );
        let recovered = pid.step(-1.0, 1.0);
        assert!(
            recovered < 1.0,
            "controller should leave saturation promptly"
        );
    }

    #[test]
    fn closed_loop_converges_on_first_order_plant() {
        // Plant: dx/dt = (u − x)/τ. PID should drive x to the setpoint.
        let mut pid = Pid::new(PidConfig::new(2.0, 0.25, 0.0, 0.0, 10.0));
        let mut x = 0.0;
        let setpoint = 5.0;
        let tau = 20.0;
        for _ in 0..2_000 {
            let u = pid.step(setpoint - x, 1.0);
            x += (u - x) / tau;
        }
        assert!((x - setpoint).abs() < 0.05, "settled at {x}");
    }

    #[test]
    fn reset_clears_state() {
        let mut pid = simple(1.0, 1.0, 1.0);
        pid.step(3.0, 1.0);
        pid.reset();
        assert_eq!(pid.integral(), 0.0);
        // Derivative history cleared: next step has zero derivative term.
        let out = pid.step(1.0, 1.0);
        assert!((out - 2.0).abs() < 1e-12); // kp·1 + ki·1 + kd·0
    }

    #[test]
    #[should_panic(expected = "gains must be non-negative")]
    fn rejects_negative_gain() {
        let _ = PidConfig::new(-1.0, 0.0, 0.0, 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "clamps inverted")]
    fn rejects_inverted_clamps() {
        let _ = PidConfig::new(1.0, 0.0, 0.0, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn rejects_zero_dt() {
        simple(1.0, 0.0, 0.0).step(1.0, 0.0);
    }
}
