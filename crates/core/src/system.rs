//! The full BubbleZERO closed loop.
//!
//! [`BubbleZeroSystem`] wires the thermal plant, the wireless network, and
//! the two control modules into the system the paper deployed:
//!
//! - battery sensors (ceiling, room, CO₂) sample on the §IV-B periods and
//!   transmit through [`bz_wsn::adaptive::BtAdaptive`] (or a fixed
//!   schedule, for the Fig. 15 comparison), paying for every packet from
//!   an [`bz_wsn::energy::EnergyLedger`];
//! - AC boards broadcast the supply temperature, loop flows, and airbox
//!   outlet conditions on staggered [`bz_wsn::ac_schedule::AcScheduler`]s;
//! - the radiant and ventilation controllers consume **only what arrives
//!   over the simulated air** (plus the pipe sensors wired directly to
//!   their own boards) and produce pump/fan/flap commands;
//! - the plant advances 1 s at a time under those commands.

use bz_psychro::{Celsius, Percent};
use bz_simcore::{EventQueue, Rng, SimDuration, SimTime};
use bz_thermal::plant::{ActuatorCommands, PlantConfig, RadiantLoopCommand, ThermalPlant};
use bz_thermal::sensors::SensorTarget;
use bz_thermal::zone::SubspaceId;
use bz_wsn::ac_schedule::AcScheduler;
use bz_wsn::adaptive::{AdaptiveConfig, BtAdaptive, FixedSchedule};
use bz_wsn::channel::{Delivery, Network, NetworkConfig};
use bz_wsn::energy::{EnergyLedger, EnergyModel};
use bz_wsn::faults::WsnFaultSchedule;
use bz_wsn::histogram::Stability;
use bz_wsn::message::{DataType, Message, NodeId};
use bz_wsn::retry::{ControlRetrier, RetryConfig};
use bz_wsn::sniffer::Sniffer;

use crate::devices::{channels, DeviceRole};
use crate::radiant::{RadiantConfig, RadiantController, RadiantDecision};
use crate::strategy::{ControlStrategy, CycleInputs, ReactiveStrategy};
use crate::supervisor::{SensorHealthSupervisor, SupervisorConfig};
use crate::targets::ComfortTargets;
use crate::ventilation::{VentilationConfig, VentilationController, VentilationDecision};

/// Transmission policy of the battery devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BtMode {
    /// The paper's BT-ADPT adaptive scheme.
    Adaptive,
    /// The fixed comparison scheme: `T_snd = T_spl`.
    Fixed,
}

/// Full-system configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Occupant comfort targets.
    pub targets: ComfortTargets,
    /// Thermal-plant configuration (weather, disturbances, occupancy).
    pub plant: PlantConfig,
    /// Channel/MAC parameters.
    pub network: NetworkConfig,
    /// Radiant controller tuning.
    pub radiant: RadiantConfig,
    /// Ventilation controller tuning.
    pub ventilation: VentilationConfig,
    /// Control-cycle period of both modules.
    pub control_period: SimDuration,
    /// Broadcast period of the AC boards.
    pub ac_period: SimDuration,
    /// Battery transmission policy.
    pub bt_mode: BtMode,
    /// Battery energy model.
    pub energy: EnergyModel,
    /// Whether to log every BT-ADPT variance decision (Fig. 12–14).
    pub record_decisions: bool,
    /// Whether to run a sniffer node capturing every delivered packet
    /// (the paper's §V measurement methodology).
    pub enable_sniffer: bool,
    /// Per-type sampling-period overrides. §IV-B sets 3 s / 2 s / 4 s for
    /// temperature / humidity / CO₂, but the §V-C networking trial runs
    /// temperature at 2 s (Fig. 14/15); scenarios override here.
    pub sampling_overrides: Vec<(DataType, SimDuration)>,
    /// Scripted network faults (dead motes, degraded links).
    pub wsn_faults: WsnFaultSchedule,
    /// Sensor-health supervisor tuning.
    pub supervisor: SupervisorConfig,
    /// Bounded retry policy for failed control-plane sends.
    pub retry: RetryConfig,
    /// Seed for the network and scheduler randomness (the plant has its
    /// own seed inside `plant`).
    pub seed: u64,
}

impl SystemConfig {
    /// The paper's deployment with the given plant scenario.
    #[must_use]
    pub fn paper_deployment(plant: PlantConfig) -> Self {
        Self {
            targets: ComfortTargets::paper_trial(),
            plant,
            network: NetworkConfig::telosb(),
            radiant: RadiantConfig::default(),
            ventilation: VentilationConfig::default(),
            control_period: SimDuration::from_secs(5),
            ac_period: SimDuration::from_secs(2),
            bt_mode: BtMode::Adaptive,
            energy: EnergyModel::telosb_2aa(),
            record_decisions: false,
            enable_sniffer: false,
            sampling_overrides: Vec::new(),
            wsn_faults: WsnFaultSchedule::none(),
            supervisor: SupervisorConfig::default(),
            retry: RetryConfig::default(),
            seed: 0x5EED_0001,
        }
    }

    /// Overrides the sampling period of one data type.
    #[must_use]
    pub fn with_sampling_override(mut self, data_type: DataType, period: SimDuration) -> Self {
        self.sampling_overrides.push((data_type, period));
        self
    }
}

/// What a battery stream measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SensorBinding {
    CeilingTemp { panel: usize, k: usize },
    CeilingHumidity { panel: usize, k: usize },
    RoomTemp(usize),
    RoomHumidity(usize),
    Co2(usize),
}

/// The transmission scheduler of one stream. The adaptive variant is
/// boxed: it carries a sliding window plus a histogram, dwarfing the
/// fixed variant.
#[derive(Debug, Clone)]
enum StreamScheduler {
    Adaptive(Box<BtAdaptive>),
    Fixed(FixedSchedule),
}

/// One battery-powered sensing stream (a device may carry several).
#[derive(Debug)]
struct BtStream {
    node: NodeId,
    device_index: usize,
    binding: SensorBinding,
    data_type: DataType,
    channel: u16,
    scheduler: StreamScheduler,
    sampling_period: SimDuration,
    next_sample: SimTime,
    /// Pre-built `wsn.node.<id>.sent` key so the per-transmission counter
    /// update allocates nothing (see [`bz_obs::Handle::counter_inc_ref`]).
    sent_key: bz_obs::MetricKey,
}

/// One AC periodic broadcast source.
#[derive(Debug)]
struct AcStream {
    node: NodeId,
    kind: AcKind,
    scheduler: AcScheduler,
    next_fire: SimTime,
    /// Pre-built `wsn.node.<id>.sent` key (same role as on [`BtStream`]).
    sent_key: bz_obs::MetricKey,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AcKind {
    /// Control-C-1 broadcasting the radiant tank supply temperature.
    SupplyTemp,
    /// Control-C-2 broadcasting its loop flow (panel index).
    LoopFlow(usize),
    /// Control-V-2 broadcasting its airbox outlet temperature+humidity.
    Outlet(usize),
}

/// A device action pending on the system's event queue. AC fire events
/// are invalidated lazily: a contention reschedule updates the stream's
/// `next_fire` and enqueues a fresh event, and a popped event whose time
/// no longer matches `next_fire` is discarded as stale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SystemEvent {
    /// Battery stream `index` takes (and maybe transmits) a sample.
    BtSample(usize),
    /// AC stream `index` broadcasts.
    AcFire(usize),
}

/// One logged BT-ADPT decision (Fig. 12–14 raw material).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionRecord {
    /// When the sample was processed.
    pub at: SimTime,
    /// Index into the system's battery streams.
    pub stream: usize,
    /// The sliding-window variance.
    pub variance: f64,
    /// The λ in force.
    pub lambda: Option<f64>,
    /// The classification made.
    pub classified: Option<Stability>,
    /// The send period after the decision.
    pub send_period: SimDuration,
    /// Whether the packet was transmitted.
    pub transmitted: bool,
}

/// Summary of one battery device for reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BtDeviceReport {
    /// The mote.
    pub node: NodeId,
    /// Packets transmitted.
    pub transmissions: u64,
    /// Samples taken.
    pub samples: u64,
    /// Energy consumed, J.
    pub consumed_j: f64,
    /// Projected battery lifetime, years.
    pub lifetime_years: Option<f64>,
}

/// The assembled closed-loop system.
#[derive(Debug)]
pub struct BubbleZeroSystem {
    config: SystemConfig,
    plant: ThermalPlant,
    network: Network,
    strategy: Box<dyn ControlStrategy>,
    bt_streams: Vec<BtStream>,
    bt_ledgers: Vec<EnergyLedger>,
    ac_streams: Vec<AcStream>,
    events: EventQueue<SystemEvent>,
    /// Reused scratch buffer for the per-second event drain — cleared and
    /// refilled each tick so steady-state stepping allocates nothing.
    event_buf: Vec<(SimTime, SystemEvent)>,
    /// Reused scratch for the frames the network delivers each second.
    delivery_buf: Vec<Delivery>,
    commands: ActuatorCommands,
    now: SimTime,
    next_control: SimTime,
    last_radiant: [Option<RadiantDecision>; 2],
    last_ventilation: [Option<VentilationDecision>; 4],
    /// Pairing caches for split temperature/humidity messages.
    room_cache: [(Option<Celsius>, Option<Percent>); 4],
    outlet_cache: [(Option<Celsius>, Option<Percent>); 4],
    decision_log: Vec<DecisionRecord>,
    sniffer: Option<Sniffer>,
    supervisor: SensorHealthSupervisor,
    retrier: ControlRetrier,
    obs: bz_obs::Handle,
}

impl BubbleZeroSystem {
    /// Builds the system at time zero, recording metrics against the
    /// global `bz_obs` registry.
    #[must_use]
    pub fn new(config: SystemConfig) -> Self {
        Self::with_obs(config, bz_obs::Handle::global())
    }

    /// Builds the system at time zero with every component recording into
    /// `obs`. Independent handles (see [`bz_obs::Handle::isolated`]) give
    /// concurrent systems fully isolated metric state — the foundation of
    /// the parallel sweep runner's determinism guarantee.
    #[must_use]
    pub fn with_obs(config: SystemConfig, obs: bz_obs::Handle) -> Self {
        Self::with_strategy(config, obs, |reactive| Box::new(reactive))
    }

    /// Builds the system with a custom control strategy. The factory
    /// receives the fully wired reactive stack (so wrapper strategies —
    /// e.g. `bz-predict`'s MPC — can delegate to it) and returns the
    /// strategy to install. Everything else — sensors, network, safety
    /// supervision — is identical to [`Self::with_obs`].
    #[must_use]
    pub fn with_strategy(
        config: SystemConfig,
        obs: bz_obs::Handle,
        make_strategy: impl FnOnce(ReactiveStrategy) -> Box<dyn ControlStrategy>,
    ) -> Self {
        let mut rng = Rng::seed_from(config.seed);
        let plant = ThermalPlant::new(config.plant.clone()).with_obs(obs.clone());
        let network = Network::new(config.network, rng.fork())
            .with_obs(obs.clone())
            .with_faults(config.wsn_faults.clone());

        let strategy = make_strategy(ReactiveStrategy::new(&config, *plant.loop_pump(), &obs));

        // Battery devices: 12 ceiling sensors (T+H streams), 4 room
        // sensors (T+H), 4 CO₂ sensors.
        let mut bt_streams = Vec::new();
        let mut bt_ledgers = Vec::new();
        let overrides = config.sampling_overrides.clone();
        let add_device = |role: DeviceRole,
                          bindings: Vec<(SensorBinding, DataType, u16)>,
                          ledgers: &mut Vec<EnergyLedger>,
                          streams: &mut Vec<BtStream>| {
            let device_index = ledgers.len();
            ledgers.push(EnergyLedger::new(config.energy));
            for (binding, data_type, channel) in bindings {
                let sampling = overrides
                    .iter()
                    .find(|(t, _)| *t == data_type)
                    .map(|(_, p)| *p)
                    .unwrap_or_else(|| AdaptiveConfig::for_type(data_type).sampling_period);
                let scheduler = match config.bt_mode {
                    BtMode::Adaptive => StreamScheduler::Adaptive(Box::new(
                        BtAdaptive::new(AdaptiveConfig::with_sampling(sampling))
                            .with_obs(obs.clone()),
                    )),
                    BtMode::Fixed => StreamScheduler::Fixed(FixedSchedule::new(sampling)),
                };
                streams.push(BtStream {
                    node: role.node_id(),
                    device_index,
                    binding,
                    data_type,
                    channel,
                    scheduler,
                    sampling_period: sampling,
                    // Stagger initial sampling by node id to avoid a
                    // synchronized burst at t=0.
                    next_sample: SimTime::from_millis(u64::from(role.node_id().get()) * 53),
                    sent_key: format!("wsn.node.{}.sent", role.node_id().get()).into(),
                });
            }
        };

        for k in 0..12 {
            let panel = k / 6;
            let local = k % 6;
            add_device(
                DeviceRole::CeilingSensor(k),
                vec![
                    (
                        SensorBinding::CeilingTemp { panel, k: local },
                        DataType::Temperature,
                        channels::CEILING_BASE + k as u16,
                    ),
                    (
                        SensorBinding::CeilingHumidity { panel, k: local },
                        DataType::Humidity,
                        channels::CEILING_BASE + k as u16,
                    ),
                ],
                &mut bt_ledgers,
                &mut bt_streams,
            );
        }
        for s in 0..4 {
            add_device(
                DeviceRole::RoomSensor(s),
                vec![
                    (
                        SensorBinding::RoomTemp(s),
                        DataType::Temperature,
                        channels::ROOM_BASE + s as u16,
                    ),
                    (
                        SensorBinding::RoomHumidity(s),
                        DataType::Humidity,
                        channels::ROOM_BASE + s as u16,
                    ),
                ],
                &mut bt_ledgers,
                &mut bt_streams,
            );
        }
        for s in 0..4 {
            add_device(
                DeviceRole::Co2Sensor(s),
                vec![(
                    SensorBinding::Co2(s),
                    DataType::Co2,
                    channels::CO2_BASE + s as u16,
                )],
                &mut bt_ledgers,
                &mut bt_streams,
            );
        }

        // AC broadcasters.
        let mut ac_streams = Vec::new();
        let mut add_ac = |node: NodeId, kind: AcKind, rng: &mut Rng| {
            let scheduler = AcScheduler::new(config.ac_period, rng.fork());
            ac_streams.push(AcStream {
                node,
                kind,
                scheduler,
                next_fire: SimTime::ZERO,
                sent_key: format!("wsn.node.{}.sent", node.get()).into(),
            });
        };
        add_ac(
            DeviceRole::ControlC1(0).node_id(),
            AcKind::SupplyTemp,
            &mut rng,
        );
        for panel in 0..2 {
            add_ac(
                DeviceRole::ControlC2(panel).node_id(),
                AcKind::LoopFlow(panel),
                &mut rng,
            );
        }
        for a in 0..4 {
            add_ac(
                DeviceRole::ControlV2(a).node_id(),
                AcKind::Outlet(a),
                &mut rng,
            );
        }

        // Seed the event queue: one pending action per stream. From here
        // on, every device action flows through the queue in time order
        // (FIFO among same-millisecond ties).
        let mut events = EventQueue::with_obs(obs.clone());
        for (i, stream) in bt_streams.iter().enumerate() {
            events.schedule(stream.next_sample, SystemEvent::BtSample(i));
        }
        for (i, stream) in ac_streams.iter().enumerate() {
            events.schedule(stream.next_fire, SystemEvent::AcFire(i));
        }

        let config2_sniffer = config.enable_sniffer.then(Sniffer::new);
        let supervisor = SensorHealthSupervisor::new(config.supervisor).with_obs(obs.clone());
        let retrier = ControlRetrier::new(config.retry).with_obs(obs.clone());
        Self {
            config,
            plant,
            network,
            strategy,
            bt_streams,
            bt_ledgers,
            ac_streams,
            events,
            event_buf: Vec::new(),
            delivery_buf: Vec::new(),
            commands: ActuatorCommands::all_off(),
            now: SimTime::ZERO,
            next_control: SimTime::ZERO,
            last_radiant: [None; 2],
            last_ventilation: [None; 4],
            room_cache: Default::default(),
            outlet_cache: Default::default(),
            decision_log: Vec::new(),
            sniffer: config2_sniffer,
            supervisor,
            retrier,
            obs,
        }
    }

    /// The observability handle this system records into.
    #[must_use]
    pub fn obs(&self) -> &bz_obs::Handle {
        &self.obs
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The thermal plant (ground truth + sensors).
    #[must_use]
    pub fn plant(&self) -> &ThermalPlant {
        &self.plant
    }

    /// The wireless network (sniffer view).
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The most recent radiant decisions (one per panel).
    #[must_use]
    pub fn last_radiant_decisions(&self) -> &[Option<RadiantDecision>; 2] {
        &self.last_radiant
    }

    /// The most recent ventilation decisions (one per subspace).
    #[must_use]
    pub fn last_ventilation_decisions(&self) -> &[Option<VentilationDecision>; 4] {
        &self.last_ventilation
    }

    /// The commands currently applied to the plant.
    #[must_use]
    pub fn commands(&self) -> &ActuatorCommands {
        &self.commands
    }

    /// Changes the occupant comfort targets on both control modules (the
    /// occupant turned the thermostat).
    pub fn set_targets(&mut self, targets: ComfortTargets) {
        self.config.targets = targets;
        self.strategy.set_targets(targets);
    }

    /// The installed control strategy's name (`"reactive"` unless a
    /// custom strategy was installed via [`Self::with_strategy`]).
    #[must_use]
    pub fn strategy_name(&self) -> &'static str {
        self.strategy.name()
    }

    /// The installed control strategy (diagnostics).
    #[must_use]
    pub fn strategy(&self) -> &dyn ControlStrategy {
        self.strategy.as_ref()
    }

    /// Read access to a ventilation controller (diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `subspace` is out of range.
    #[must_use]
    pub fn ventilation_controller(&self, subspace: usize) -> &VentilationController {
        self.strategy.reactive().ventilation_controller(subspace)
    }

    /// Read access to a radiant controller (diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `panel` is out of range.
    #[must_use]
    pub fn radiant_controller(&self, panel: usize) -> &RadiantController {
        self.strategy.reactive().radiant_controller(panel)
    }

    /// The sniffer capture, if `enable_sniffer` was set.
    #[must_use]
    pub fn sniffer(&self) -> Option<&Sniffer> {
        self.sniffer.as_ref()
    }

    /// The sensor-health supervisor (detection log, safe-mode state).
    #[must_use]
    pub fn supervisor(&self) -> &SensorHealthSupervisor {
        &self.supervisor
    }

    /// The BT-ADPT decision log (empty unless `record_decisions`).
    #[must_use]
    pub fn decision_log(&self) -> &[DecisionRecord] {
        &self.decision_log
    }

    /// Takes ownership of the decision log, leaving it empty.
    pub fn take_decision_log(&mut self) -> Vec<DecisionRecord> {
        std::mem::take(&mut self.decision_log)
    }

    /// Resets the plant's integrated energy meters (start of a
    /// steady-state COP window).
    pub fn plant_mut_reset_meters(&mut self) {
        self.plant.reset_meters();
    }

    /// Number of battery streams (for interpreting the decision log).
    #[must_use]
    pub fn bt_stream_count(&self) -> usize {
        self.bt_streams.len()
    }

    /// Number of device actions pending on the event queue (one per live
    /// stream, plus any stale contention-superseded AC firings).
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// The data type carried by battery stream `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn bt_stream_type(&self, index: usize) -> DataType {
        self.bt_streams[index].data_type
    }

    /// The battery stream carrying the room-temperature samples of a
    /// subspace (`None` if out of range). Fig. 14 zooms in on subspace 1's.
    #[must_use]
    pub fn room_temperature_stream(&self, subspace: usize) -> Option<usize> {
        self.bt_streams
            .iter()
            .position(|s| s.binding == SensorBinding::RoomTemp(subspace))
    }

    /// Current send period of battery stream `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn bt_stream_send_period(&self, index: usize) -> SimDuration {
        match &self.bt_streams[index].scheduler {
            StreamScheduler::Adaptive(a) => a.send_period(),
            StreamScheduler::Fixed(f) => f.send_period(),
        }
    }

    /// Per-device battery reports.
    #[must_use]
    pub fn bt_device_reports(&self) -> Vec<BtDeviceReport> {
        let mut nodes: Vec<Option<NodeId>> = vec![None; self.bt_ledgers.len()];
        for stream in &self.bt_streams {
            nodes[stream.device_index] = Some(stream.node);
        }
        self.bt_ledgers
            .iter()
            .enumerate()
            .map(|(i, ledger)| BtDeviceReport {
                node: nodes[i].expect("every ledger has a stream"),
                transmissions: ledger.transmissions(),
                samples: ledger.samples(),
                consumed_j: ledger.consumed_j(),
                lifetime_years: ledger.projected_lifetime_years(),
            })
            .collect()
    }

    /// Advances the whole system by `steps` whole seconds.
    pub fn run_seconds(&mut self, steps: u64) {
        for _ in 0..steps {
            self.step_second();
        }
    }

    /// Advances the whole system by one second.
    pub fn step_second(&mut self) {
        let step_span = self.obs.span("core.step_second", self.now.as_millis());
        let next = self.now + SimDuration::from_secs(1);

        // --- Device events (battery sampling, AC broadcasts) ---------------
        // Drain everything strictly before `next` in global time order;
        // each handled event reschedules its stream's next occurrence.
        let deadline = SimTime::from_millis(next.as_millis() - 1);
        if self.config.plant.scalar_reference {
            // Reference path: the original one-pop-at-a-time loop.
            while let Some((at, event)) = self.events.pop_due(deadline) {
                self.handle_event(event, at);
            }
        } else {
            // Fast path: batch-pop all due events into a reused buffer,
            // then handle them. Every sampling/broadcast period in the
            // deployment is >= 1 s, so handlers reschedule strictly past
            // `deadline` and one drain per tick sees everything the
            // reference loop would, in the same order; the outer loop
            // catches the (config-space only) sub-second case.
            let mut buf = std::mem::take(&mut self.event_buf);
            loop {
                buf.clear();
                if self.events.drain_due_into(deadline, &mut buf) == 0 {
                    break;
                }
                // Coalesced sensor-read scheduling: all of this batch's
                // humidity-bearing reads see the same zone/outlet air (the
                // plant only steps at second boundaries), so their RH
                // truths are computed in one batched psychrometric pass
                // and the per-event reads below just fan them out. Slots
                // we mark but never read (dead motes, fault fallbacks) are
                // wasted work, not wrong answers; reads we fail to mark
                // fall back to the identical scalar computation.
                let mut rooms = [false; 4];
                let mut halves = [false; 4];
                let mut outlets = [false; 4];
                let mut any = false;
                for &(at, event) in &buf {
                    match event {
                        SystemEvent::BtSample(i) => match self.bt_streams[i].binding {
                            SensorBinding::RoomHumidity(s) => {
                                rooms[s] = true;
                                any = true;
                            }
                            SensorBinding::CeilingHumidity { panel, k } => {
                                halves[panel * 2 + k / 3] = true;
                                any = true;
                            }
                            _ => {}
                        },
                        SystemEvent::AcFire(i) => {
                            if at == self.ac_streams[i].next_fire {
                                if let AcKind::Outlet(a) = self.ac_streams[i].kind {
                                    outlets[a] = true;
                                    any = true;
                                }
                            }
                        }
                    }
                }
                if any {
                    self.plant.coalesce_reads(rooms, halves, outlets);
                }
                for &(at, event) in &buf {
                    self.handle_event(event, at);
                }
            }
            self.event_buf = buf;
        }

        self.now = next;

        // --- Deliveries and contention feedback -----------------------------
        let mut deliveries = std::mem::take(&mut self.delivery_buf);
        deliveries.clear();
        self.network.advance_into(self.now, &mut deliveries);
        for delivery in &deliveries {
            if let Some(sniffer) = &mut self.sniffer {
                sniffer.capture(delivery);
            }
            self.route(delivery.message, delivery.at);
        }
        self.delivery_buf = deliveries;
        let failures = self.network.take_failures();
        for (message, failure) in failures {
            for (i, ac) in self.ac_streams.iter_mut().enumerate() {
                if ac.node == message.source() {
                    ac.scheduler.report_failure(failure);
                    let after = self.now + SimDuration::from_millis(1);
                    ac.next_fire = ac.scheduler.next_fire(after);
                    // The previously queued firing is now stale; enqueue
                    // the adapted one.
                    self.events.schedule(ac.next_fire, SystemEvent::AcFire(i));
                }
            }
            // Control-plane frames additionally get a bounded resend;
            // data-plane samples stay fire-and-forget (paper CSMA).
            self.retrier.on_failure(self.now, message, failure);
        }
        for message in self.retrier.due(self.now) {
            self.network.send(self.now, message);
        }

        // --- Control cycle ----------------------------------------------------
        if self.now >= self.next_control {
            let tick_span = self.obs.span("core.control_tick", self.now.as_millis());
            self.run_control_cycle();
            self.next_control = self.now + self.config.control_period;
            self.obs.gauge_set(
                "simcore.event_queue.depth",
                self.now.as_millis(),
                self.events.len() as f64,
            );
            tick_span.exit(self.now.as_millis());
        }

        // --- Plant ---------------------------------------------------------
        self.plant.step(SimDuration::from_secs(1), &self.commands);
        step_span.exit(self.now.as_millis());
    }

    /// Handles one due device event and reschedules its stream.
    fn handle_event(&mut self, event: SystemEvent, at: SimTime) {
        match event {
            SystemEvent::BtSample(i) => {
                self.sample_bt_stream(i, at);
                let period = self.bt_streams[i].sampling_period;
                self.bt_streams[i].next_sample = at + period;
                self.events.schedule(at + period, SystemEvent::BtSample(i));
            }
            SystemEvent::AcFire(i) => {
                if at != self.ac_streams[i].next_fire {
                    // Stale: a contention reschedule superseded this
                    // firing while it sat on the queue.
                    return;
                }
                self.fire_ac_stream(i, at);
                let after = at + SimDuration::from_millis(1);
                let fire = self.ac_streams[i].scheduler.next_fire(after);
                self.ac_streams[i].next_fire = fire;
                self.events.schedule(fire, SystemEvent::AcFire(i));
            }
        }
    }

    /// The plant-side sensing element behind a stream binding.
    fn sensor_target(binding: SensorBinding) -> SensorTarget {
        match binding {
            SensorBinding::CeilingTemp { panel, k }
            | SensorBinding::CeilingHumidity { panel, k } => SensorTarget::Ceiling(panel * 6 + k),
            SensorBinding::RoomTemp(s) | SensorBinding::RoomHumidity(s) => SensorTarget::Room(s),
            SensorBinding::Co2(s) => SensorTarget::Co2(s),
        }
    }

    fn sample_bt_stream(&mut self, index: usize, at: SimTime) {
        let binding = self.bt_streams[index].binding;
        let device = self.bt_streams[index].device_index;
        // A dead or battery-exhausted mote does nothing at all: no
        // sampling, no transmission, no energy draw beyond what it has
        // already spent.
        if self
            .network
            .faults()
            .node_dead(self.bt_streams[index].node, at)
            || self.bt_ledgers[device].exhausted()
        {
            return;
        }
        // A dropped-out sensing element answers nothing: the mote pays
        // for the attempted sampling but has no value to process or send.
        if self.plant.sensor_dropped_out(Self::sensor_target(binding)) {
            self.bt_ledgers[device].record_sample(at);
            return;
        }
        // Single-channel reads: each binding measures one channel of a
        // two-channel sensor, so the unused sibling draw is skipped (the
        // plant falls back to the full pair read whenever fault injection
        // or scalar-reference mode needs it — bit-identity is proven by
        // the plant's parity tests).
        let value = match binding {
            SensorBinding::CeilingTemp { panel, k } => {
                self.plant.read_ceiling_sensor_temp(panel, k).get()
            }
            SensorBinding::CeilingHumidity { panel, k } => {
                self.plant.read_ceiling_sensor_rh(panel, k).get()
            }
            SensorBinding::RoomTemp(s) => {
                self.plant.read_room_temp(SubspaceId::from_index(s)).get()
            }
            SensorBinding::RoomHumidity(s) => {
                self.plant.read_room_rh(SubspaceId::from_index(s)).get()
            }
            SensorBinding::Co2(s) => self.plant.read_co2(SubspaceId::from_index(s)).get(),
        };

        self.bt_ledgers[device].record_sample(at);

        let (transmit, record) = match &mut self.bt_streams[index].scheduler {
            StreamScheduler::Adaptive(scheduler) => {
                let outcome = scheduler.on_sample(at, value);
                let record = outcome.variance.map(|variance| DecisionRecord {
                    at,
                    stream: index,
                    variance,
                    lambda: outcome.lambda,
                    classified: outcome.classified,
                    send_period: outcome.send_period,
                    transmitted: outcome.transmit,
                });
                (outcome.transmit, record)
            }
            StreamScheduler::Fixed(scheduler) => (scheduler.on_sample(), None),
        };
        if self.config.record_decisions {
            if let Some(record) = record {
                self.decision_log.push(record);
            }
        }

        if transmit {
            self.bt_ledgers[device].record_transmission(at);
            let stream = &self.bt_streams[index];
            let message =
                Message::on_channel(stream.node, stream.data_type, stream.channel, value, at);
            self.obs.counter_inc_ref(&stream.sent_key);
            self.network.send(at, message);
        }
    }

    fn fire_ac_stream(&mut self, index: usize, at: SimTime) {
        let node = self.ac_streams[index].node;
        self.obs.counter_inc_ref(&self.ac_streams[index].sent_key);
        match self.ac_streams[index].kind {
            AcKind::SupplyTemp => {
                let value = self.plant.read_supply_temp().get();
                self.network.send(
                    at,
                    Message::on_channel(
                        node,
                        DataType::SupplyTemperature,
                        channels::SUPPLY_TEMP,
                        value,
                        at,
                    ),
                );
            }
            AcKind::LoopFlow(panel) => {
                let value = self.plant.read_mixed_flow(panel);
                self.network.send(
                    at,
                    Message::on_channel(node, DataType::FlowRate, panel as u16, value, at),
                );
            }
            AcKind::Outlet(a) => {
                let (t, h) = self.plant.read_airbox_outlet(a);
                let channel = channels::OUTLET_BASE + a as u16;
                self.network.send(
                    at,
                    Message::on_channel(node, DataType::Temperature, channel, t.get(), at),
                );
                self.network.send(
                    at,
                    Message::on_channel(node, DataType::Humidity, channel, h.get(), at),
                );
            }
        }
    }

    /// Routes a delivered broadcast into the consumers that filter for its
    /// type (§IV-A's receive-side filtering).
    fn route(&mut self, message: Message, at: SimTime) {
        let now_s = at.as_secs_f64();
        let channel = message.channel();
        // Every delivered reading passes the sensor-health supervisor
        // before any controller sees it; a rejected reading is dropped and
        // the consumer's own staleness cache serves as the
        // last-known-good hold.
        if self
            .supervisor
            .validate(now_s, message.data_type(), channel, message.value())
            .is_err()
        {
            return;
        }
        match message.data_type() {
            DataType::Temperature => {
                if let Some(k) = channel.checked_sub(channels::CEILING_BASE) {
                    if k < 12 {
                        let panel = (k / 6) as usize;
                        self.strategy.observe_ceiling_temperature(
                            panel,
                            (k % 6) as usize,
                            now_s,
                            Celsius::new(message.value()),
                        );
                        return;
                    }
                }
                if let Some(s) = channel.checked_sub(channels::ROOM_BASE) {
                    if s < 4 {
                        let s = s as usize;
                        let value = Celsius::new(message.value());
                        self.room_cache[s].0 = Some(value);
                        self.strategy.observe_room_temperature(s, now_s, value);
                        self.push_room_pair(s, now_s);
                        return;
                    }
                }
                if let Some(a) = channel.checked_sub(channels::OUTLET_BASE) {
                    if a < 4 {
                        let a = a as usize;
                        self.outlet_cache[a].0 = Some(Celsius::new(message.value()));
                        self.push_outlet_pair(a, now_s);
                    }
                }
            }
            DataType::Humidity => {
                if let Some(k) = channel.checked_sub(channels::CEILING_BASE) {
                    if k < 12 {
                        let panel = (k / 6) as usize;
                        self.strategy.observe_ceiling_humidity(
                            panel,
                            (k % 6) as usize,
                            now_s,
                            Percent::new(message.value()),
                        );
                        return;
                    }
                }
                if let Some(s) = channel.checked_sub(channels::ROOM_BASE) {
                    if s < 4 {
                        let s = s as usize;
                        self.room_cache[s].1 = Some(Percent::new(message.value()));
                        self.push_room_pair(s, now_s);
                        return;
                    }
                }
                if let Some(a) = channel.checked_sub(channels::OUTLET_BASE) {
                    if a < 4 {
                        let a = a as usize;
                        self.outlet_cache[a].1 = Some(Percent::new(message.value()));
                        self.push_outlet_pair(a, now_s);
                    }
                }
            }
            DataType::Co2 => {
                if let Some(s) = channel.checked_sub(channels::CO2_BASE) {
                    if s < 4 {
                        self.strategy.observe_co2(
                            s as usize,
                            now_s,
                            bz_psychro::Ppm::new(message.value()),
                        );
                    }
                }
            }
            DataType::SupplyTemperature => {
                self.strategy
                    .observe_supply_temperature(now_s, Celsius::new(message.value()));
            }
            // Control-C-2's loop-flow broadcast feeds the actuator
            // watchdog (commanded vs sensed flow).
            DataType::FlowRate if channel < 2 => {
                self.supervisor
                    .observe_loop_flow(channel as usize, now_s, message.value());
            }
            // The remaining types are log-only in this deployment
            // (consumed by the sniffer, not by a controller).
            _ => {}
        }
    }

    fn push_room_pair(&mut self, s: usize, now_s: f64) {
        if let (Some(t), Some(h)) = self.room_cache[s] {
            self.strategy.observe_room(s, now_s, t, h);
        }
    }

    fn push_outlet_pair(&mut self, a: usize, now_s: f64) {
        if let (Some(t), Some(h)) = self.outlet_cache[a] {
            self.strategy.observe_outlet(a, now_s, t, h);
        }
    }

    fn run_control_cycle(&mut self) {
        let now_s = self.now.as_secs_f64();
        let dt_s = self.config.control_period.as_secs_f64();

        // Re-probe any latched pump faults whose lockout has elapsed.
        self.supervisor.begin_control_cycle(now_s);

        // Hand the strategy its per-cycle inputs: the occupancy-sensor
        // stream (schedule-derived, like a PIR array would report) and the
        // supervisor's current trust verdicts on the room-temperature
        // channels, which gate predictive model identification.
        let occupancy = std::array::from_fn(|s| {
            self.config
                .plant
                .occupancy
                .headcount(SubspaceId::from_index(s), self.now)
        });
        let room_trusted = std::array::from_fn(|s| {
            self.supervisor.channel_trusted(
                DataType::Temperature,
                channels::ROOM_BASE + s as u16,
                now_s,
            )
        });
        self.strategy.begin_cycle(&CycleInputs {
            now_s,
            dt_s,
            occupancy,
            room_trusted,
        });

        for panel in 0..2 {
            // Pipe sensors are wired straight into Control-C-1.
            let supply = self.plant.read_supply_temp();
            let ret = self.plant.read_return_temp(panel);
            let mixed = self.plant.read_mixed_temp(panel);
            self.strategy.set_pipe_readings(panel, supply, ret);
            self.strategy.observe_mixed_temp(panel, mixed);
            let decision = self.strategy.decide_radiant(panel, now_s, dt_s);
            // Condensation safe mode: while the panel's dew-margin inputs
            // are untrustworthy or its pump watchdog is latched, the
            // valves stay closed regardless of what the controller wants.
            let safe_mode = self.supervisor.radiant_safe_mode(panel, now_s);
            let command = if safe_mode {
                RadiantLoopCommand::default()
            } else {
                decision.command
            };
            // The watchdog expects the flow a *healthy* loop would deliver
            // for the commanded voltages — the PID's raw flow target can
            // exceed the pumps' rated flow, which is not a fault.
            let pump = bz_thermal::hydronics::Pump::radiant_loop();
            let applied_flow =
                pump.flow(command.supply_voltage) + pump.flow(command.recycle_voltage);
            self.commands.radiant[panel] = command;
            self.supervisor
                .observe_applied_flow(panel, now_s, applied_flow);
            if self.obs.is_enabled() {
                self.obs.gauge_set(
                    format!("supervisor.safe_mode.panel{panel}"),
                    self.now.as_millis(),
                    f64::from(u8::from(safe_mode)),
                );
            }
            self.last_radiant[panel] = Some(decision);
        }
        for s in 0..4 {
            let decision = self.strategy.decide_ventilation(s, now_s, dt_s);
            self.commands.airboxes[s] = decision.actuation;
            self.last_ventilation[s] = Some(decision);
        }
    }

    // --- Checkpoint support ------------------------------------------------

    /// Serializes the system's entire dynamic state: clock, plant,
    /// network, control strategy, per-stream schedulers, energy ledgers,
    /// event queue, caches, logs, supervisor, retrier, and the metric
    /// registry. Everything derivable from [`SystemConfig`] — stream
    /// wiring, node ids, metric keys, pump curves — is *not* written;
    /// restore rebuilds it through the normal constructor.
    pub fn save_state(&self, w: &mut bz_state::Writer) {
        use bz_state::Persist;
        self.config.targets.save(w);
        self.now.save(w);
        self.next_control.save(w);
        self.plant.save_state(w);
        self.network.save_state(w);
        self.strategy.save_state(w);
        w.put_len(self.bt_streams.len());
        for stream in &self.bt_streams {
            stream.scheduler.save_state(w);
            stream.next_sample.save(w);
        }
        w.put_len(self.bt_ledgers.len());
        for ledger in &self.bt_ledgers {
            ledger.save_state(w);
        }
        w.put_len(self.ac_streams.len());
        for stream in &self.ac_streams {
            stream.scheduler.save_state(w);
            stream.next_fire.save(w);
        }
        self.events.save_state(w);
        self.commands.save(w);
        self.last_radiant.save(w);
        self.last_ventilation.save(w);
        self.room_cache.save(w);
        self.outlet_cache.save(w);
        self.decision_log.save(w);
        self.sniffer.save(w);
        self.supervisor.save_state(w);
        self.retrier.save_state(w);
        self.obs.save_state(w);
    }

    /// Restores the state saved by [`Self::save_state`] into a system
    /// freshly built from the *same* [`SystemConfig`] (and the same
    /// strategy type). After a successful load the system continues
    /// bit-identically to the run that produced the checkpoint.
    ///
    /// # Errors
    ///
    /// Returns a decode error if the bytes do not parse, or
    /// [`bz_state::StateError::Invalid`] if the checkpoint's stream
    /// inventory or scheduler kinds disagree with this system's
    /// configuration — restoring into a differently configured system
    /// would silently corrupt the run, so it is rejected up front.
    pub fn load_state(&mut self, r: &mut bz_state::Reader<'_>) -> Result<(), bz_state::StateError> {
        use bz_state::Persist;
        self.config.targets = Persist::load(r)?;
        self.strategy.set_targets(self.config.targets);
        self.now = Persist::load(r)?;
        self.next_control = Persist::load(r)?;
        self.plant.load_state(r)?;
        self.network.load_state(r)?;
        self.strategy.load_state(r)?;
        let n_bt = r.take_len()?;
        if n_bt != self.bt_streams.len() {
            return Err(bz_state::StateError::Invalid {
                what: "BubbleZeroSystem",
                reason: format!(
                    "checkpoint has {n_bt} battery streams, this configuration has {}",
                    self.bt_streams.len()
                ),
            });
        }
        for stream in &mut self.bt_streams {
            stream.scheduler.load_state(r)?;
            stream.next_sample = Persist::load(r)?;
        }
        let n_ledgers = r.take_len()?;
        if n_ledgers != self.bt_ledgers.len() {
            return Err(bz_state::StateError::Invalid {
                what: "BubbleZeroSystem",
                reason: format!(
                    "checkpoint has {n_ledgers} battery ledgers, this configuration has {}",
                    self.bt_ledgers.len()
                ),
            });
        }
        for ledger in &mut self.bt_ledgers {
            ledger.load_state(r)?;
        }
        let n_ac = r.take_len()?;
        if n_ac != self.ac_streams.len() {
            return Err(bz_state::StateError::Invalid {
                what: "BubbleZeroSystem",
                reason: format!(
                    "checkpoint has {n_ac} AC streams, this configuration has {}",
                    self.ac_streams.len()
                ),
            });
        }
        for stream in &mut self.ac_streams {
            stream.scheduler.load_state(r)?;
            stream.next_fire = Persist::load(r)?;
        }
        self.events.load_state(r)?;
        self.commands = Persist::load(r)?;
        self.last_radiant = Persist::load(r)?;
        self.last_ventilation = Persist::load(r)?;
        self.room_cache = Persist::load(r)?;
        self.outlet_cache = Persist::load(r)?;
        self.decision_log = Persist::load(r)?;
        self.sniffer = Persist::load(r)?;
        self.supervisor.load_state(r)?;
        self.retrier.load_state(r)?;
        self.obs.load_state(r)?;
        // Scratch buffers hold no cross-tick state; start them empty.
        self.event_buf.clear();
        self.delivery_buf.clear();
        Ok(())
    }
}

impl StreamScheduler {
    /// Kind tag (0 = adaptive, 1 = fixed) followed by the scheduler state.
    fn save_state(&self, w: &mut bz_state::Writer) {
        use bz_state::Persist;
        match self {
            Self::Adaptive(a) => {
                w.put_u8(0);
                a.save_state(w);
            }
            Self::Fixed(f) => {
                w.put_u8(1);
                f.save(w);
            }
        }
    }

    /// Restores in place; the checkpoint's kind must match the live
    /// variant (i.e. the restoring process must run the same `bt_mode`).
    fn load_state(&mut self, r: &mut bz_state::Reader<'_>) -> Result<(), bz_state::StateError> {
        use bz_state::Persist;
        let tag = r.take_u8()?;
        match (tag, self) {
            (0, Self::Adaptive(a)) => a.load_state(r),
            (1, Self::Fixed(f)) => {
                *f = Persist::load(r)?;
                Ok(())
            }
            (0 | 1, _) => Err(bz_state::StateError::Invalid {
                what: "StreamScheduler",
                reason: "scheduler kind in checkpoint does not match bt_mode".into(),
            }),
            (tag, _) => Err(bz_state::StateError::BadTag {
                what: "StreamScheduler",
                tag: u64::from(tag),
            }),
        }
    }
}

impl bz_state::Persist for SystemEvent {
    fn save(&self, w: &mut bz_state::Writer) {
        match self {
            Self::BtSample(i) => {
                w.put_u8(0);
                w.put_u64(*i as u64);
            }
            Self::AcFire(i) => {
                w.put_u8(1);
                w.put_u64(*i as u64);
            }
        }
    }

    fn load(r: &mut bz_state::Reader<'_>) -> Result<Self, bz_state::StateError> {
        let tag = r.take_u8()?;
        let index = usize::try_from(r.take_u64()?).map_err(|_| bz_state::StateError::Invalid {
            what: "SystemEvent",
            reason: "stream index exceeds usize".into(),
        })?;
        match tag {
            0 => Ok(Self::BtSample(index)),
            1 => Ok(Self::AcFire(index)),
            tag => Err(bz_state::StateError::BadTag {
                what: "SystemEvent",
                tag: u64::from(tag),
            }),
        }
    }
}

bz_state::persist_struct!(DecisionRecord {
    at,
    stream,
    variance,
    lambda,
    classified,
    send_period,
    transmitted,
});

#[cfg(test)]
mod tests {
    use super::*;
    use bz_thermal::disturbance::DisturbanceSchedule;

    fn quick_system() -> BubbleZeroSystem {
        BubbleZeroSystem::new(SystemConfig::paper_deployment(
            PlantConfig::bubble_zero_lab(),
        ))
    }

    #[test]
    fn inventory_is_wired() {
        let system = quick_system();
        // 12 ceiling ×2 + 4 room ×2 + 4 CO₂ = 36 battery streams.
        assert_eq!(system.bt_stream_count(), 36);
        // 20 battery devices.
        assert_eq!(system.bt_device_reports().len(), 20);
    }

    #[test]
    fn controllers_receive_data_over_the_air() {
        let mut system = quick_system();
        system.run_seconds(30);
        // After 30 s every controller should have made a live decision.
        for decision in system.last_radiant_decisions() {
            let d = decision.expect("radiant decided");
            assert!(d.ceiling_dew.is_some(), "ceiling data should have arrived");
        }
        for decision in system.last_ventilation_decisions() {
            let d = decision.expect("ventilation decided");
            assert!(d.room_dew.is_some(), "room data should have arrived");
        }
        assert!(system.network().stats().delivered > 50);
    }

    #[test]
    fn closed_loop_cools_and_dries() {
        let mut system = quick_system();
        // 45 simulated minutes.
        system.run_seconds(45 * 60);
        for id in SubspaceId::ALL {
            let t = system.plant().zone_temperature(id).get();
            let dew = system.plant().zone_dew_point(id).get();
            assert!(t < 27.5, "{id} temperature {t}");
            assert!(dew < 24.0, "{id} dew {dew}");
        }
    }

    #[test]
    fn no_condensation_under_closed_loop_control() {
        let mut system = quick_system();
        system.run_seconds(40 * 60);
        assert_eq!(
            system.plant().panel_condensate_total(),
            0.0,
            "anti-condensation control must hold"
        );
    }

    #[test]
    fn battery_devices_pay_for_packets() {
        let mut system = quick_system();
        system.run_seconds(120);
        let reports = system.bt_device_reports();
        for report in &reports {
            assert!(report.samples > 0, "{report:?}");
            assert!(report.consumed_j > 0.0);
        }
        let total_tx: u64 = reports.iter().map(|r| r.transmissions).sum();
        assert!(total_tx > 0);
    }

    #[test]
    fn fixed_mode_transmits_more() {
        let adaptive_cfg = SystemConfig {
            record_decisions: false,
            ..SystemConfig::paper_deployment(PlantConfig::bubble_zero_lab())
        };
        let fixed_cfg = SystemConfig {
            bt_mode: BtMode::Fixed,
            ..adaptive_cfg.clone()
        };
        let mut adaptive = BubbleZeroSystem::new(adaptive_cfg);
        let mut fixed = BubbleZeroSystem::new(fixed_cfg);
        // Run past the BT-ADPT warm-up so the periods have stretched.
        adaptive.run_seconds(1_200);
        fixed.run_seconds(1_200);
        let tx_adaptive: u64 = adaptive
            .bt_device_reports()
            .iter()
            .map(|r| r.transmissions)
            .sum();
        let tx_fixed: u64 = fixed
            .bt_device_reports()
            .iter()
            .map(|r| r.transmissions)
            .sum();
        // The 20-minute window is dominated by the pull-down transient,
        // during which BT-ADPT legitimately transmits fast; the long-run
        // ratio (Fig. 15) is far lower and asserted by the fig15 harness.
        // The margin is loose enough to hold under every noise kernel
        // (V1 lands near 0.68, V2 near 0.72).
        assert!(
            (tx_adaptive as f64) < tx_fixed as f64 * 0.75,
            "adaptive {tx_adaptive} vs fixed {tx_fixed}"
        );
    }

    #[test]
    fn decision_log_records_when_enabled() {
        let config = SystemConfig {
            record_decisions: true,
            ..SystemConfig::paper_deployment(PlantConfig::bubble_zero_lab())
        };
        let mut system = BubbleZeroSystem::new(config);
        system.run_seconds(60);
        assert!(!system.decision_log().is_empty());
        let record = system.decision_log()[0];
        assert!(record.variance >= 0.0);
        assert!(record.stream < system.bt_stream_count());
    }

    #[test]
    fn sniffer_captures_when_enabled() {
        let config = SystemConfig {
            enable_sniffer: true,
            ..SystemConfig::paper_deployment(PlantConfig::bubble_zero_lab())
        };
        let mut system = BubbleZeroSystem::new(config);
        system.run_seconds(60);
        let sniffer = system.sniffer().expect("enabled");
        assert_eq!(sniffer.len() as u64, system.network().stats().delivered);
        assert!(sniffer.traffic_by_type().len() >= 3);
        // Disabled by default.
        let without = BubbleZeroSystem::new(SystemConfig::paper_deployment(
            PlantConfig::bubble_zero_lab(),
        ));
        assert!(without.sniffer().is_none());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let config = SystemConfig::paper_deployment(
            PlantConfig::bubble_zero_lab()
                .with_disturbances(DisturbanceSchedule::figure10_afternoon()),
        );
        let mut a = BubbleZeroSystem::new(config.clone());
        let mut b = BubbleZeroSystem::new(config);
        a.run_seconds(300);
        b.run_seconds(300);
        for id in SubspaceId::ALL {
            assert_eq!(a.plant().zone_state(id), b.plant().zone_state(id));
        }
        assert_eq!(a.network().stats(), b.network().stats());
    }
}
