//! Retention and recovery over a directory of checkpoint files.
//!
//! Checkpoints are named `ckpt-<tick:012>.bzck` (tick in simulation
//! milliseconds, zero-padded so lexical order equals numeric order).
//! [`CheckpointDir::latest_good`] scans newest-first, validating each file
//! and collecting a diagnostic for every corrupt, torn, or mismatched one
//! it skips — the caller gets the best usable checkpoint *and* the full
//! story of what was wrong with the rest.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::checkpoint::{Checkpoint, CheckpointError};

/// Filename prefix for checkpoint files.
pub const FILE_PREFIX: &str = "ckpt-";
/// Filename extension for checkpoint files.
pub const FILE_EXT: &str = "bzck";

/// A directory holding the checkpoints of one run.
#[derive(Debug, Clone)]
pub struct CheckpointDir {
    root: PathBuf,
}

/// A checkpoint file that was skipped during a scan, with the reason.
#[derive(Debug)]
pub struct SkippedCheckpoint {
    /// The file that was skipped.
    pub path: PathBuf,
    /// Why it was unusable.
    pub error: CheckpointError,
}

/// The result of scanning a checkpoint directory for the newest good file.
#[derive(Debug)]
pub struct ScanOutcome {
    /// The newest checkpoint that validated, if any.
    pub best: Option<(PathBuf, Checkpoint)>,
    /// Files that were present but unusable, newest first.
    pub skipped: Vec<SkippedCheckpoint>,
}

impl CheckpointDir {
    /// Opens (creating if needed) a checkpoint directory.
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the directory cannot be created.
    pub fn create(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    /// Wraps an existing directory without touching the filesystem.
    #[must_use]
    pub fn open(root: impl Into<PathBuf>) -> Self {
        Self { root: root.into() }
    }

    /// The directory path.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The canonical file path for a checkpoint taken at `tick_ms`.
    #[must_use]
    pub fn file_for_tick(&self, tick_ms: u64) -> PathBuf {
        self.root
            .join(format!("{FILE_PREFIX}{tick_ms:012}.{FILE_EXT}"))
    }

    /// Parses the tick out of a checkpoint filename, if it is one.
    #[must_use]
    pub fn tick_of(path: &Path) -> Option<u64> {
        let name = path.file_name()?.to_str()?;
        let stem = name
            .strip_prefix(FILE_PREFIX)?
            .strip_suffix(&format!(".{FILE_EXT}"))?;
        stem.parse().ok()
    }

    /// All checkpoint files present, sorted oldest first by tick.
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the directory cannot be read.
    pub fn list(&self) -> io::Result<Vec<(u64, PathBuf)>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let path = entry?.path();
            if let Some(tick) = Self::tick_of(&path) {
                out.push((tick, path));
            }
        }
        out.sort();
        Ok(out)
    }

    /// Scans for the newest checkpoint that validates, skipping (and
    /// reporting) corrupt, torn, or version-mismatched files.
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the directory cannot be read;
    /// per-file validation failures are reported in the outcome, not as
    /// an error.
    pub fn latest_good(&self) -> io::Result<ScanOutcome> {
        let mut files = self.list()?;
        files.reverse(); // newest first
        let mut skipped = Vec::new();
        for (_, path) in files {
            match Checkpoint::read(&path) {
                Ok(ckpt) => {
                    return Ok(ScanOutcome {
                        best: Some((path, ckpt)),
                        skipped,
                    });
                }
                Err(error) => skipped.push(SkippedCheckpoint { path, error }),
            }
        }
        Ok(ScanOutcome {
            best: None,
            skipped,
        })
    }

    /// Deletes all but the newest `keep` checkpoint files. Returns the
    /// paths removed.
    ///
    /// # Errors
    ///
    /// Returns the underlying error if listing or deleting fails.
    pub fn prune(&self, keep: usize) -> io::Result<Vec<PathBuf>> {
        let files = self.list()?;
        let excess = files.len().saturating_sub(keep);
        let mut removed = Vec::with_capacity(excess);
        for (_, path) in files.into_iter().take(excess) {
            fs::remove_file(&path)?;
            removed.push(path);
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::CheckpointMeta;
    use std::io::Write as _;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bz-state-dir-{name}"));
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ckpt(tick_ms: u64) -> Checkpoint {
        Checkpoint {
            meta: CheckpointMeta {
                kind: "trial".to_owned(),
                tick_ms,
                config_crc: 7,
                label: "t".to_owned(),
            },
            payload: tick_ms.to_le_bytes().to_vec(),
        }
    }

    #[test]
    fn naming_round_trips() {
        let dir = CheckpointDir::open("/tmp/x");
        let path = dir.file_for_tick(300_000);
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            "ckpt-000000300000.bzck"
        );
        assert_eq!(CheckpointDir::tick_of(&path), Some(300_000));
        assert_eq!(CheckpointDir::tick_of(Path::new("notes.txt")), None);
    }

    #[test]
    fn latest_good_skips_corrupt_newest() {
        let root = scratch("skip");
        let dir = CheckpointDir::create(&root).unwrap();
        ckpt(60_000)
            .write_atomic(&dir.file_for_tick(60_000))
            .unwrap();
        ckpt(120_000)
            .write_atomic(&dir.file_for_tick(120_000))
            .unwrap();
        // Corrupt the newest in place: flip one payload byte.
        let newest = dir.file_for_tick(120_000);
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&newest, bytes).unwrap();

        let outcome = dir.latest_good().unwrap();
        let (best_path, best) = outcome.best.expect("older good file found");
        assert_eq!(best.meta.tick_ms, 60_000);
        assert_eq!(CheckpointDir::tick_of(&best_path), Some(60_000));
        assert_eq!(outcome.skipped.len(), 1);
        assert!(matches!(
            outcome.skipped[0].error,
            CheckpointError::ChecksumMismatch { .. }
        ));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn latest_good_skips_truncated_file() {
        let root = scratch("trunc");
        let dir = CheckpointDir::create(&root).unwrap();
        ckpt(60_000)
            .write_atomic(&dir.file_for_tick(60_000))
            .unwrap();
        // Simulate a torn non-atomic write at the final name.
        let torn = dir.file_for_tick(120_000);
        let bytes = ckpt(120_000).encode();
        let mut f = fs::File::create(&torn).unwrap();
        f.write_all(&bytes[..bytes.len() / 2]).unwrap();
        drop(f);

        let outcome = dir.latest_good().unwrap();
        assert_eq!(outcome.best.as_ref().unwrap().1.meta.tick_ms, 60_000);
        assert!(matches!(
            outcome.skipped[0].error,
            CheckpointError::Truncated { .. } | CheckpointError::ChecksumMismatch { .. }
        ));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn empty_dir_scans_clean() {
        let root = scratch("empty");
        let dir = CheckpointDir::create(&root).unwrap();
        let outcome = dir.latest_good().unwrap();
        assert!(outcome.best.is_none());
        assert!(outcome.skipped.is_empty());
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn prune_keeps_newest() {
        let root = scratch("prune");
        let dir = CheckpointDir::create(&root).unwrap();
        for tick in [1, 2, 3, 4, 5u64] {
            let tick = tick * 60_000;
            ckpt(tick).write_atomic(&dir.file_for_tick(tick)).unwrap();
        }
        let removed = dir.prune(2).unwrap();
        assert_eq!(removed.len(), 3);
        let left: Vec<u64> = dir.list().unwrap().into_iter().map(|(t, _)| t).collect();
        assert_eq!(left, vec![240_000, 300_000]);
        fs::remove_dir_all(&root).ok();
    }
}
