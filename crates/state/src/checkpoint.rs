//! The on-disk checkpoint envelope.
//!
//! ```text
//! offset  size  field
//! 0       4     magic "BZCK"
//! 4       4     format version (u32 LE)
//! 8       8     meta length M (u64 LE)
//! 16      M     meta (codec bytes of CheckpointMeta)
//! 16+M    8     payload length P (u64 LE)
//! 24+M    P     payload (codec bytes of the checkpointed state)
//! 24+M+P  8     CRC-64/XZ over bytes [0, 24+M+P) (u64 LE)
//! ```
//!
//! Writes are atomic: the bytes go to a `.tmp` sibling first, the file is
//! `fsync`ed, then renamed over the final path (and the directory synced),
//! so a reader can never observe a half-written checkpoint under its
//! final name. Corruption that slips past the filesystem — a flipped bit,
//! a truncated tail, a version from a different build — is caught by the
//! layered validation in [`Checkpoint::decode`] and reported with a
//! diagnostic [`CheckpointError`] naming the failure.

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use crate::codec::{Persist, Reader, StateError, Writer};
use crate::crc64;
use crate::persist_struct;

/// First bytes of every checkpoint file.
pub const MAGIC: [u8; 4] = *b"BZCK";

/// Current envelope format version. Bump on any wire-format change; older
/// readers reject newer files (and vice versa) with a clear error instead
/// of misinterpreting bytes.
///
/// History: 1 — initial release; 2 — `Rng` payloads gained a noise-kernel
/// tag (round-2 noise campaign), so v1 snapshots would misparse and are
/// rejected/skipped instead.
pub const FORMAT_VERSION: u32 = 2;

/// Self-describing header stored ahead of the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// What kind of run produced this checkpoint (`"trial"`, `"chaos"`,
    /// `"mpc"`, `"endurance"`, `"sweep-run"`, …).
    pub kind: String,
    /// Simulation time of the snapshot, ms since run start.
    pub tick_ms: u64,
    /// CRC-64 of the run configuration's codec bytes. Resume refuses a
    /// checkpoint whose configuration differs from the resuming command's.
    pub config_crc: u64,
    /// Free-form label (scenario name, run label, seed).
    pub label: String,
}

persist_struct!(CheckpointMeta {
    kind,
    tick_ms,
    config_crc,
    label,
});

/// Why a checkpoint file could not be read.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem-level failure.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// The file does not start with [`MAGIC`].
    BadMagic {
        /// The file involved.
        path: PathBuf,
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The file's format version is not [`FORMAT_VERSION`].
    VersionMismatch {
        /// The file involved.
        path: PathBuf,
        /// Version recorded in the file.
        found: u32,
        /// Version this build understands.
        supported: u32,
    },
    /// The file ends before its declared length (a torn write).
    Truncated {
        /// The file involved.
        path: PathBuf,
        /// Bytes the envelope declared.
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
    /// The trailing CRC-64 does not match the file contents.
    ChecksumMismatch {
        /// The file involved.
        path: PathBuf,
        /// CRC recorded in the file.
        recorded: u64,
        /// CRC computed over the contents.
        computed: u64,
    },
    /// The meta header or payload failed to decode.
    Decode {
        /// The file involved.
        path: PathBuf,
        /// The codec error.
        source: StateError,
    },
    /// The checkpoint's configuration does not match the resuming run's.
    ConfigMismatch {
        /// The file involved.
        path: PathBuf,
        /// CRC stored in the checkpoint.
        recorded: u64,
        /// CRC of the resuming configuration.
        expected: u64,
    },
}

impl CheckpointError {
    fn io(path: &Path, source: io::Error) -> Self {
        Self::Io {
            path: path.to_owned(),
            source,
        }
    }

    /// The file the error refers to.
    #[must_use]
    pub fn path(&self) -> &Path {
        match self {
            Self::Io { path, .. }
            | Self::BadMagic { path, .. }
            | Self::VersionMismatch { path, .. }
            | Self::Truncated { path, .. }
            | Self::ChecksumMismatch { path, .. }
            | Self::Decode { path, .. }
            | Self::ConfigMismatch { path, .. } => path,
        }
    }
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { path, source } => write!(f, "{}: {source}", path.display()),
            Self::BadMagic { path, found } => write!(
                f,
                "{}: not a checkpoint file (magic {found:02x?}, expected {MAGIC:02x?})",
                path.display()
            ),
            Self::VersionMismatch {
                path,
                found,
                supported,
            } => write!(
                f,
                "{}: checkpoint format v{found} is not supported (this build reads v{supported})",
                path.display()
            ),
            Self::Truncated {
                path,
                expected,
                found,
            } => write!(
                f,
                "{}: truncated checkpoint (torn write?): envelope declares {expected} byte(s), \
                 file has {found}",
                path.display()
            ),
            Self::ChecksumMismatch {
                path,
                recorded,
                computed,
            } => write!(
                f,
                "{}: checksum mismatch (recorded {recorded:016x}, computed {computed:016x}) — \
                 the file is corrupt",
                path.display()
            ),
            Self::Decode { path, source } => {
                write!(f, "{}: undecodable checkpoint: {source}", path.display())
            }
            Self::ConfigMismatch {
                path,
                recorded,
                expected,
            } => write!(
                f,
                "{}: checkpoint was taken under a different configuration \
                 (config crc {recorded:016x}, resuming run has {expected:016x})",
                path.display()
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            Self::Decode { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A decoded checkpoint: its header plus the opaque payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// The header.
    pub meta: CheckpointMeta,
    /// The codec bytes of the checkpointed state.
    pub payload: Vec<u8>,
}

impl Checkpoint {
    /// Serializes the envelope to its byte representation.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut meta = Writer::new();
        self.meta.save(&mut meta);
        let meta = meta.into_bytes();

        let mut out = Vec::with_capacity(32 + meta.len() + self.payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(meta.len() as u64).to_le_bytes());
        out.extend_from_slice(&meta);
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.payload);
        let crc = crc64::checksum(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Validates and decodes an envelope. `path` is used only for error
    /// reporting.
    ///
    /// # Errors
    ///
    /// Returns the specific [`CheckpointError`] for bad magic, version
    /// mismatch, truncation, checksum mismatch, or undecodable meta.
    pub fn decode(path: &Path, bytes: &[u8]) -> Result<Self, CheckpointError> {
        let need = |expected: usize| -> Result<(), CheckpointError> {
            if bytes.len() < expected {
                Err(CheckpointError::Truncated {
                    path: path.to_owned(),
                    expected,
                    found: bytes.len(),
                })
            } else {
                Ok(())
            }
        };
        need(16)?;
        if bytes[0..4] != MAGIC {
            return Err(CheckpointError::BadMagic {
                path: path.to_owned(),
                found: bytes[0..4].try_into().expect("4 bytes"),
            });
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(CheckpointError::VersionMismatch {
                path: path.to_owned(),
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let meta_len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
        need(16 + meta_len + 8)?;
        let payload_start = 16 + meta_len + 8;
        let payload_len = u64::from_le_bytes(
            bytes[16 + meta_len..payload_start]
                .try_into()
                .expect("8 bytes"),
        ) as usize;
        let total = payload_start + payload_len + 8;
        need(total)?;
        if bytes.len() > total {
            return Err(CheckpointError::Decode {
                path: path.to_owned(),
                source: StateError::Invalid {
                    what: "checkpoint envelope",
                    reason: format!(
                        "{} trailing byte(s) after the declared envelope",
                        bytes.len() - total
                    ),
                },
            });
        }
        let recorded = u64::from_le_bytes(bytes[total - 8..total].try_into().expect("8 bytes"));
        let computed = crc64::checksum(&bytes[..total - 8]);
        if recorded != computed {
            return Err(CheckpointError::ChecksumMismatch {
                path: path.to_owned(),
                recorded,
                computed,
            });
        }
        let mut reader = Reader::new(&bytes[16..16 + meta_len]);
        let meta = CheckpointMeta::load(&mut reader).map_err(|source| CheckpointError::Decode {
            path: path.to_owned(),
            source,
        })?;
        Ok(Self {
            meta,
            payload: bytes[payload_start..payload_start + payload_len].to_vec(),
        })
    }

    /// Atomically writes the envelope to `path`: temp sibling → `fsync` →
    /// rename → directory sync. A crash at any point leaves either the
    /// previous file (or nothing) at `path`, never a torn checkpoint.
    ///
    /// # Errors
    ///
    /// Returns an I/O error from any step, tagged with the file involved.
    pub fn write_atomic(&self, path: &Path) -> Result<(), CheckpointError> {
        let bytes = self.encode();
        let tmp = tmp_sibling(path);
        let mut file = fs::File::create(&tmp).map_err(|e| CheckpointError::io(&tmp, e))?;
        file.write_all(&bytes)
            .map_err(|e| CheckpointError::io(&tmp, e))?;
        file.sync_all().map_err(|e| CheckpointError::io(&tmp, e))?;
        drop(file);
        fs::rename(&tmp, path).map_err(|e| CheckpointError::io(path, e))?;
        // Persist the rename itself. Failures here are not fatal to the
        // data (the rename is already on the journal on most filesystems)
        // but we surface them anyway.
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            let dir = fs::File::open(parent).map_err(|e| CheckpointError::io(parent, e))?;
            dir.sync_all().map_err(|e| CheckpointError::io(parent, e))?;
        }
        Ok(())
    }

    /// Reads and validates the envelope at `path`.
    ///
    /// # Errors
    ///
    /// Returns the specific [`CheckpointError`] describing what is wrong
    /// with the file.
    pub fn read(path: &Path) -> Result<Self, CheckpointError> {
        let bytes = fs::read(path).map_err(|e| CheckpointError::io(path, e))?;
        Self::decode(path, &bytes)
    }

    /// Serializes the envelope for transmission over a network connection.
    /// The bytes are exactly the on-disk format ([`Checkpoint::encode`]),
    /// so a snapshot downloaded from a server can be written to a file
    /// and inspected or resumed like any local checkpoint.
    #[must_use]
    pub fn to_wire_bytes(&self) -> Vec<u8> {
        self.encode()
    }

    /// Validates and decodes an envelope that arrived over a network
    /// connection; errors carry [`WIRE_PATH`] instead of a file path.
    ///
    /// # Errors
    ///
    /// Exactly the validation layers of [`Checkpoint::decode`]: magic,
    /// format version, truncation, CRC-64, and meta decode.
    pub fn from_wire_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        Self::decode(Path::new(WIRE_PATH), bytes)
    }
}

/// Pseudo-path reported in [`CheckpointError`]s for envelopes that came
/// over the wire rather than from a file.
pub const WIRE_PATH: &str = "(wire)";

/// The temp-file sibling a checkpoint is staged in before the rename.
#[must_use]
pub fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().map_or_else(
        || std::ffi::OsString::from("checkpoint"),
        std::ffi::OsStr::to_os_string,
    );
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            meta: CheckpointMeta {
                kind: "trial".to_owned(),
                tick_ms: 300_000,
                config_crc: 0xABCD,
                label: "trial-s0001".to_owned(),
            },
            payload: vec![1, 2, 3, 4, 5],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let ckpt = sample();
        let bytes = ckpt.encode();
        let back = Checkpoint::decode(Path::new("x.bzck"), &bytes).unwrap();
        assert_eq!(back, ckpt);
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            let err = Checkpoint::decode(Path::new("x.bzck"), &bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated { .. } | CheckpointError::ChecksumMismatch { .. }
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x40;
            assert!(
                Checkpoint::decode(Path::new("x.bzck"), &flipped).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn version_bump_is_a_clear_error() {
        let mut bytes = sample().encode();
        bytes[4] = (FORMAT_VERSION + 1) as u8;
        // Re-seal the CRC so only the version differs.
        let total = bytes.len();
        let crc = crc64::checksum(&bytes[..total - 8]);
        bytes[total - 8..].copy_from_slice(&crc.to_le_bytes());
        let err = Checkpoint::decode(Path::new("x.bzck"), &bytes).unwrap_err();
        assert!(
            matches!(err, CheckpointError::VersionMismatch { found, .. } if found == FORMAT_VERSION + 1),
            "{err}"
        );
        assert!(err.to_string().contains("not supported"));
    }

    #[test]
    fn bad_magic_is_a_clear_error() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        let total = bytes.len();
        let crc = crc64::checksum(&bytes[..total - 8]);
        bytes[total - 8..].copy_from_slice(&crc.to_le_bytes());
        let err = Checkpoint::decode(Path::new("x.bzck"), &bytes).unwrap_err();
        assert!(matches!(err, CheckpointError::BadMagic { .. }), "{err}");
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = std::env::temp_dir().join("bz-state-atomic");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt-000000300000.bzck");
        let ckpt = sample();
        ckpt.write_atomic(&path).unwrap();
        assert_eq!(Checkpoint::read(&path).unwrap(), ckpt);
        assert!(!tmp_sibling(&path).exists(), "temp file must be gone");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wire_round_trip_matches_the_disk_format() {
        let ckpt = sample();
        let wire = ckpt.to_wire_bytes();
        assert_eq!(wire, ckpt.encode(), "wire bytes are the disk format");
        assert_eq!(Checkpoint::from_wire_bytes(&wire).unwrap(), ckpt);
        let mut corrupt = wire;
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0xFF;
        let err = Checkpoint::from_wire_bytes(&corrupt).unwrap_err();
        assert!(err.to_string().contains(WIRE_PATH), "{err}");
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample().encode();
        bytes.extend_from_slice(b"junk");
        let err = Checkpoint::decode(Path::new("x.bzck"), &bytes).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }
}
