//! Crash-safe checkpointing substrate.
//!
//! Three layers, each usable on its own:
//!
//! - [`codec`] — a deterministic little-endian binary codec
//!   ([`Writer`]/[`Reader`]) plus the [`Persist`] trait that every
//!   state-bearing type in the workspace implements. Floats round-trip
//!   through their IEEE-754 bit patterns, so a restored value is
//!   *bit-identical* to the saved one — the foundation of the
//!   byte-identical-resume guarantee.
//! - [`checkpoint`] — the on-disk envelope: magic, format version, a
//!   small self-describing [`CheckpointMeta`] header, the payload, and a
//!   trailing CRC-64 over everything before it. Files are written
//!   atomically (temp file in the same directory → `fsync` → rename), so
//!   a crash mid-write can tear only the temp file, never a checkpoint
//!   that readers might pick up.
//! - [`dir`] — retention and recovery over a directory of checkpoints:
//!   newest-good selection that skips corrupt or torn files with a
//!   diagnostic for each, and pruning to a bounded retention window.
//!
//! See `docs/CHECKPOINTS.md` for the format and the resume semantics.

pub mod checkpoint;
pub mod codec;
pub mod crc64;
pub mod dir;

pub use checkpoint::{
    Checkpoint, CheckpointError, CheckpointMeta, FORMAT_VERSION, MAGIC, WIRE_PATH,
};
pub use codec::{Persist, Reader, StateError, Writer};
pub use dir::{CheckpointDir, ScanOutcome, SkippedCheckpoint};
