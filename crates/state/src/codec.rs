//! The deterministic binary state codec and the [`Persist`] trait.
//!
//! Encoding rules: all integers are little-endian fixed width, `usize`
//! travels as `u64`, `f64` travels as its IEEE-754 bit pattern (restored
//! values are bit-identical, including negative zero and NaN payloads),
//! strings and byte slices are length-prefixed, `Option` is a one-byte
//! tag, and collections are a length followed by their elements in
//! iteration order. There is no alignment and no padding, so the bytes a
//! given value produces are a pure function of the value.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// A decode failure. Every variant carries enough context to say *what*
/// failed to decode and *where* in the buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// The buffer ended before the requested bytes.
    UnexpectedEof {
        /// What was being decoded.
        what: &'static str,
        /// Byte offset at which the read started.
        at: usize,
        /// Bytes requested.
        wanted: usize,
        /// Bytes remaining.
        remaining: usize,
    },
    /// A tag byte (enum discriminant, Option marker) had no meaning.
    BadTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u64,
    },
    /// A decoded value failed a semantic check.
    Invalid {
        /// The type being decoded.
        what: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnexpectedEof {
                what,
                at,
                wanted,
                remaining,
            } => write!(
                f,
                "truncated state while decoding {what}: wanted {wanted} byte(s) at offset {at}, \
                 {remaining} remaining"
            ),
            Self::BadTag { what, tag } => write!(f, "invalid tag {tag} while decoding {what}"),
            Self::Invalid { what, reason } => write!(f, "invalid {what}: {reason}"),
        }
    }
}

impl std::error::Error for StateError {}

/// Serializes values into a growable byte buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far (borrowed).
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Number of bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`, little-endian two's complement.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn put_len(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes an `f64` as its exact bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Writes a length-prefixed string.
    pub fn put_str(&mut self, v: &str) {
        self.put_len(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Writes a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_len(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes any [`Persist`] value.
    pub fn put<T: Persist>(&mut self, v: &T) {
        v.save(self);
    }
}

/// Deserializes values from a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `data`, positioned at the start.
    #[must_use]
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Current byte offset.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when every byte has been consumed.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.data.len()
    }

    fn take_raw(&mut self, what: &'static str, n: usize) -> Result<&'a [u8], StateError> {
        if self.remaining() < n {
            return Err(StateError::UnexpectedEof {
                what,
                at: self.pos,
                wanted: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one raw byte.
    pub fn take_u8(&mut self) -> Result<u8, StateError> {
        Ok(self.take_raw("u8", 1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16, StateError> {
        Ok(u16::from_le_bytes(
            self.take_raw("u16", 2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, StateError> {
        Ok(u32::from_le_bytes(
            self.take_raw("u32", 4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, StateError> {
        Ok(u64::from_le_bytes(
            self.take_raw("u64", 8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a little-endian `i64`.
    pub fn take_i64(&mut self) -> Result<i64, StateError> {
        Ok(i64::from_le_bytes(
            self.take_raw("i64", 8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a length (`u64`), checked against the bytes remaining so a
    /// corrupt length cannot trigger an enormous allocation.
    pub fn take_len(&mut self) -> Result<usize, StateError> {
        let len = self.take_u64()?;
        if len > self.remaining() as u64 {
            return Err(StateError::Invalid {
                what: "length prefix",
                reason: format!("{len} exceeds the {} bytes remaining", self.remaining()),
            });
        }
        Ok(len as usize)
    }

    /// Reads an `f64` from its exact bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, StateError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a `bool`, rejecting bytes other than 0 and 1.
    pub fn take_bool(&mut self) -> Result<bool, StateError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(StateError::BadTag {
                what: "bool",
                tag: u64::from(tag),
            }),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_string(&mut self) -> Result<String, StateError> {
        let len = self.take_len()?;
        let bytes = self.take_raw("string", len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| StateError::Invalid {
            what: "string",
            reason: e.to_string(),
        })
    }

    /// Reads a length-prefixed byte vector.
    pub fn take_bytes(&mut self) -> Result<Vec<u8>, StateError> {
        let len = self.take_len()?;
        Ok(self.take_raw("bytes", len)?.to_vec())
    }

    /// Reads any [`Persist`] value.
    pub fn take<T: Persist>(&mut self) -> Result<T, StateError> {
        T::load(self)
    }
}

/// A type whose full dynamic state round-trips through the codec.
///
/// The contract: `load(save(x)) == x` for every observable behavior —
/// a restored simulation must produce the exact byte stream the original
/// would have from the checkpoint instant on.
pub trait Persist: Sized {
    /// Appends this value's encoding to `w`.
    fn save(&self, w: &mut Writer);

    /// Decodes one value from `r`.
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] on truncation, bad tags, or semantically
    /// invalid values.
    fn load(r: &mut Reader<'_>) -> Result<Self, StateError>;
}

macro_rules! persist_primitive {
    ($ty:ty, $put:ident, $take:ident) => {
        impl Persist for $ty {
            fn save(&self, w: &mut Writer) {
                w.$put(*self);
            }
            fn load(r: &mut Reader<'_>) -> Result<Self, StateError> {
                r.$take()
            }
        }
    };
}

persist_primitive!(u8, put_u8, take_u8);
persist_primitive!(u16, put_u16, take_u16);
persist_primitive!(u32, put_u32, take_u32);
persist_primitive!(u64, put_u64, take_u64);
persist_primitive!(i64, put_i64, take_i64);
persist_primitive!(f64, put_f64, take_f64);
persist_primitive!(bool, put_bool, take_bool);

impl Persist for usize {
    fn save(&self, w: &mut Writer) {
        w.put_u64(*self as u64);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, StateError> {
        let v = r.take_u64()?;
        usize::try_from(v).map_err(|_| StateError::Invalid {
            what: "usize",
            reason: format!("{v} does not fit this platform's usize"),
        })
    }
}

impl Persist for u128 {
    fn save(&self, w: &mut Writer) {
        w.put_u64((*self >> 64) as u64);
        w.put_u64(*self as u64);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, StateError> {
        let hi = r.take_u64()?;
        let lo = r.take_u64()?;
        Ok((u128::from(hi) << 64) | u128::from(lo))
    }
}

impl Persist for String {
    fn save(&self, w: &mut Writer) {
        w.put_str(self);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, StateError> {
        r.take_string()
    }
}

impl Persist for () {
    fn save(&self, _: &mut Writer) {}
    fn load(_: &mut Reader<'_>) -> Result<Self, StateError> {
        Ok(())
    }
}

impl<T: Persist> Persist for Option<T> {
    fn save(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.save(w);
            }
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, StateError> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::load(r)?)),
            tag => Err(StateError::BadTag {
                what: "Option",
                tag: u64::from(tag),
            }),
        }
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn save(&self, w: &mut Writer) {
        w.put_len(self.len());
        for item in self {
            item.save(w);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, StateError> {
        let len = r.take_len()?;
        let mut out = Vec::with_capacity(len.min(r.remaining().max(1)));
        for _ in 0..len {
            out.push(T::load(r)?);
        }
        Ok(out)
    }
}

impl<T: Persist> Persist for VecDeque<T> {
    fn save(&self, w: &mut Writer) {
        w.put_len(self.len());
        for item in self {
            item.save(w);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, StateError> {
        Ok(Vec::<T>::load(r)?.into())
    }
}

impl<K: Persist + Ord, V: Persist> Persist for BTreeMap<K, V> {
    fn save(&self, w: &mut Writer) {
        w.put_len(self.len());
        for (k, v) in self {
            k.save(w);
            v.save(w);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, StateError> {
        let len = r.take_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::load(r)?;
            let v = V::load(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Persist, const N: usize> Persist for [T; N] {
    fn save(&self, w: &mut Writer) {
        for item in self {
            item.save(w);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, StateError> {
        let mut items = Vec::with_capacity(N);
        for _ in 0..N {
            items.push(T::load(r)?);
        }
        items.try_into().map_err(|_| StateError::Invalid {
            what: "array",
            reason: "length mismatch".to_owned(),
        })
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn save(&self, w: &mut Writer) {
        self.0.save(w);
        self.1.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, StateError> {
        Ok((A::load(r)?, B::load(r)?))
    }
}

impl<A: Persist, B: Persist, C: Persist> Persist for (A, B, C) {
    fn save(&self, w: &mut Writer) {
        self.0.save(w);
        self.1.save(w);
        self.2.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, StateError> {
        Ok((A::load(r)?, B::load(r)?, C::load(r)?))
    }
}

/// Implements [`Persist`] for a struct by listing **all** of its fields.
///
/// The generated `load` builds the struct with a struct literal, so a
/// field missing from the list is a *compile error* — the macro cannot
/// silently drop state.
///
/// ```
/// struct Pid { kp: f64, integral: f64, last_error: f64 }
/// bz_state::persist_struct!(Pid { kp, integral, last_error });
/// ```
#[macro_export]
macro_rules! persist_struct {
    ($ty:ident { $($field:ident),* $(,)? }) => {
        impl $crate::Persist for $ty {
            fn save(&self, w: &mut $crate::Writer) {
                $( $crate::Persist::save(&self.$field, w); )*
            }
            fn load(r: &mut $crate::Reader<'_>) -> Result<Self, $crate::StateError> {
                Ok(Self { $( $field: $crate::Persist::load(r)? ),* })
            }
        }
    };
}

/// Implements [`Persist`] for a fieldless enum as a stable `u8` tag per
/// listed variant (the listing order is the wire order — append only).
#[macro_export]
macro_rules! persist_unit_enum {
    ($ty:ident { $($variant:ident),* $(,)? }) => {
        impl $crate::Persist for $ty {
            fn save(&self, w: &mut $crate::Writer) {
                let mut tag: u8 = 0;
                $(
                    if let Self::$variant = self {
                        w.put_u8(tag);
                        return;
                    }
                    tag = tag.wrapping_add(1);
                )*
                let _ = tag;
                unreachable!("variant not listed in persist_unit_enum!");
            }
            fn load(r: &mut $crate::Reader<'_>) -> Result<Self, $crate::StateError> {
                let tag = r.take_u8()?;
                let mut i: u8 = 0;
                $(
                    if tag == i { return Ok(Self::$variant); }
                    i += 1;
                )*
                let _ = i;
                Err($crate::StateError::BadTag { what: stringify!($ty), tag: u64::from(tag) })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Persist + PartialEq + std::fmt::Debug>(value: T) {
        let mut w = Writer::new();
        value.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = T::load(&mut r).expect("decodes");
        assert_eq!(back, value);
        assert!(r.is_exhausted(), "trailing bytes after {value:?}");
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u16::MAX);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX);
        round_trip(-42i64);
        round_trip(usize::MAX);
        round_trip(u128::MAX - 7);
        round_trip(true);
        round_trip(String::from("wsn.node.21.sent"));
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for v in [
            0.0,
            -0.0,
            1.5,
            f64::MIN_POSITIVE,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let mut w = Writer::new();
            v.save(&mut w);
            let bytes = w.into_bytes();
            let back = f64::load(&mut Reader::new(&bytes)).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
        // NaN payloads survive too.
        let nan = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut w = Writer::new();
        nan.save(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(
            f64::load(&mut Reader::new(&bytes)).unwrap().to_bits(),
            nan.to_bits()
        );
    }

    #[test]
    fn collections_round_trip() {
        round_trip(vec![1u64, 2, 3]);
        round_trip(VecDeque::from(vec![(1u64, 2.5f64), (3, 4.5)]));
        round_trip(BTreeMap::from([
            (String::from("a"), 1u64),
            (String::from("b"), 2),
        ]));
        round_trip([1.0f64, 2.0, 3.0]);
        round_trip(Some(vec![Some(7u64), None]));
        round_trip((1u64, String::from("x"), -3i64));
    }

    #[test]
    fn truncation_is_a_clean_error() {
        let mut w = Writer::new();
        vec![1u64, 2, 3].save(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let err = Vec::<u64>::load(&mut Reader::new(&bytes[..cut]));
            assert!(err.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn hostile_length_prefix_is_rejected_without_allocating() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX); // claims ~1.8e19 elements
        let bytes = w.into_bytes();
        let err = Vec::<u8>::load(&mut Reader::new(&bytes)).unwrap_err();
        assert!(matches!(err, StateError::Invalid { .. }), "{err}");
    }

    #[test]
    fn bad_tags_are_descriptive() {
        let err = Option::<u8>::load(&mut Reader::new(&[9])).unwrap_err();
        assert_eq!(
            err,
            StateError::BadTag {
                what: "Option",
                tag: 9
            }
        );
        let err = bool::load(&mut Reader::new(&[2])).unwrap_err();
        assert!(err.to_string().contains("invalid tag 2"));
    }

    #[derive(Debug, PartialEq)]
    struct Demo {
        a: u64,
        b: f64,
        c: Vec<u16>,
    }
    persist_struct!(Demo { a, b, c });

    #[derive(Debug, PartialEq)]
    enum Mode {
        Off,
        Auto,
        Manual,
    }
    persist_unit_enum!(Mode { Off, Auto, Manual });

    #[test]
    fn macros_cover_structs_and_enums() {
        round_trip(Demo {
            a: 7,
            b: -1.25,
            c: vec![1, 2],
        });
        round_trip(Mode::Off);
        round_trip(Mode::Manual);
        let err = Mode::load(&mut Reader::new(&[3])).unwrap_err();
        assert!(err.to_string().contains("Mode"));
    }
}
