//! CRC-64/XZ (ECMA-182 polynomial, reflected), table-driven.
//!
//! Guards every checkpoint file against bit rot and torn writes. The
//! table is built once at first use; the implementation matches the
//! widely deployed `xz` CRC-64 so external tooling can cross-check files.

use std::sync::OnceLock;

const POLY: u64 = 0xC96C_5795_D787_0F42;

fn table() -> &'static [u64; 256] {
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u64; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u64;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 == 1 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    })
}

/// The CRC-64/XZ checksum of `data`.
#[must_use]
pub fn checksum(data: &[u8]) -> u64 {
    let table = table();
    let mut crc = u64::MAX;
    for &byte in data {
        let index = ((crc ^ u64::from(byte)) & 0xFF) as usize;
        crc = (crc >> 8) ^ table[index];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // The standard CRC-64/XZ check value for "123456789".
        assert_eq!(checksum(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn empty_input() {
        assert_eq!(checksum(b""), 0);
    }

    #[test]
    fn single_bit_flip_changes_the_sum() {
        let base = checksum(b"checkpoint payload");
        let mut flipped = b"checkpoint payload".to_vec();
        flipped[3] ^= 0x01;
        assert_ne!(checksum(&flipped), base);
    }
}
