//! Histogram-based variance clustering (Algorithm 1) and its exact oracle.
//!
//! The adaptive transmission scheme needs a threshold λ that separates
//! "stable" variances from "transition" variances. The optimal λ minimizes
//! the total intra-cluster distance over the history of observed variances,
//! but storing every variance is not practical on an MSP430. §IV-B instead
//! bins variances into an `N`-slot histogram between the observed extremes
//! and runs the clustering over slot centers weighted by their counters —
//! constant memory and constant compute for any fixed `N`.
//!
//! [`ExactClusterer`] keeps the full history (the simulation can afford
//! what the mote cannot) and serves as the ground-truth oracle for the
//! Fig. 12(a)/Fig. 13 accuracy measurements.

/// Classification of a variance sample against a threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stability {
    /// Below the threshold: the signal is in its stable state.
    Stable,
    /// At or above the threshold: the signal is in a transition state.
    Transition,
}

/// Classifies a variance against a threshold.
#[must_use]
pub fn classify(variance: f64, lambda: f64) -> Stability {
    if variance < lambda {
        Stability::Stable
    } else {
        Stability::Transition
    }
}

/// The constant-memory histogram of §IV-B.
///
/// # Example
///
/// ```
/// use bz_wsn::histogram::{classify, Stability, VarianceHistogram};
///
/// let mut histogram = VarianceHistogram::new(40);
/// for _ in 0..100 {
///     histogram.observe(0.001); // stable sensor noise
/// }
/// for _ in 0..10 {
///     histogram.observe(5.0); // door-event transitions
/// }
/// let lambda = histogram.threshold().expect("two distinct values seen");
/// assert_eq!(classify(0.001, lambda), Stability::Stable);
/// assert_eq!(classify(5.0, lambda), Stability::Transition);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VarianceHistogram {
    n_slots: usize,
    var_min: f64,
    var_max: f64,
    counts: Vec<u64>,
    observed: u64,
}

impl VarianceHistogram {
    /// Creates a histogram with `n_slots` slots (the paper's `N`).
    ///
    /// # Panics
    ///
    /// Panics if `n_slots < 2`.
    #[must_use]
    pub fn new(n_slots: usize) -> Self {
        assert!(n_slots >= 2, "need at least two slots to cluster");
        Self {
            n_slots,
            var_min: f64::INFINITY,
            var_max: f64::NEG_INFINITY,
            counts: vec![0; n_slots],
            observed: 0,
        }
    }

    /// Number of slots `N`.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.n_slots
    }

    /// Number of variances observed since the last reset.
    #[must_use]
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Smallest variance observed so far (∞ before any observation).
    #[must_use]
    pub fn var_min(&self) -> f64 {
        self.var_min
    }

    /// Largest variance observed so far (−∞ before any observation).
    #[must_use]
    pub fn var_max(&self) -> f64 {
        self.var_max
    }

    /// Width of one slot, or 0 while the range is degenerate.
    #[must_use]
    pub fn slot_width(&self) -> f64 {
        if self.var_max > self.var_min {
            (self.var_max - self.var_min) / self.n_slots as f64
        } else {
            0.0
        }
    }

    /// Center of 1-based slot `i` (the paper's `c_i`).
    #[must_use]
    pub fn slot_center(&self, i: usize) -> f64 {
        debug_assert!((1..=self.n_slots).contains(&i));
        self.var_min + (i as f64 - 0.5) * self.slot_width()
    }

    fn slot_of(&self, variance: f64) -> usize {
        let width = self.slot_width();
        if width == 0.0 {
            return 0;
        }
        // Plain truncation instead of `.floor()`: they differ only on
        // negative non-integers, and every negative index clamps to slot
        // 0 either way — skipping the libm call is observationally
        // identical.
        let idx = ((variance - self.var_min) / width) as isize;
        idx.clamp(0, self.n_slots as isize - 1) as usize
    }

    /// Records a variance observation. If it falls outside the current
    /// `[var_min, var_max]` range the histogram is re-binned: existing
    /// counters are rounded to the new slot centers, exactly the
    /// approximation-error mechanism the paper discusses for Fig. 13.
    ///
    /// # Panics
    ///
    /// Panics if `variance` is negative or not finite.
    pub fn observe(&mut self, variance: f64) {
        assert!(
            variance.is_finite() && variance >= 0.0,
            "variance must be finite and non-negative, got {variance}"
        );
        self.observed += 1;

        if variance < self.var_min || variance > self.var_max {
            let new_min = self.var_min.min(variance);
            let new_max = self.var_max.max(variance);
            self.rebin(new_min, new_max);
        }
        let slot = self.slot_of(variance);
        self.counts[slot] += 1;
    }

    /// Re-bins existing counters onto a new range by mapping each old slot
    /// center to its nearest new slot.
    fn rebin(&mut self, new_min: f64, new_max: f64) {
        let old_counts = std::mem::replace(&mut self.counts, vec![0; self.n_slots]);
        let old_min = self.var_min;
        let old_width = self.slot_width();
        self.var_min = new_min;
        self.var_max = new_max;
        if old_width > 0.0 {
            for (i, count) in old_counts.into_iter().enumerate() {
                if count > 0 {
                    let center = old_min + (i as f64 + 0.5) * old_width;
                    let slot = self.slot_of(center);
                    self.counts[slot] += count;
                }
            }
        } else {
            // Degenerate old range: everything sat at old_min.
            let total: u64 = old_counts.iter().sum();
            if total > 0 && old_min.is_finite() {
                let slot = self.slot_of(old_min);
                self.counts[slot] += total;
            }
        }
    }

    /// Algorithm 1: enumerate the `N − 1` candidate splits, compute the
    /// total intra-cluster distance of each (counters weighted against
    /// *unweighted* cluster centers of slot positions, exactly as the
    /// paper defines `cc1`/`cc2`), and return
    /// `λ = var_min + j* · Δvar` for the best split.
    ///
    /// Returns `None` until at least two distinct variance values have
    /// been observed (the range is degenerate before that).
    #[must_use]
    pub fn threshold(&self) -> Option<f64> {
        if self.slot_width() == 0.0 {
            return None;
        }
        let n = self.n_slots;
        let mut best_j = 1;
        let mut best_sum = f64::INFINITY;
        for j in 1..n {
            // cc1 = mean of slot centers 1..=j; cc2 = mean of centers j+1..=N.
            let cc1: f64 = (1..=j).map(|k| self.slot_center(k)).sum::<f64>() / j as f64;
            let cc2: f64 = ((j + 1)..=n).map(|k| self.slot_center(k)).sum::<f64>() / (n - j) as f64;
            let sum1: f64 = (1..=j)
                .map(|k| self.counts[k - 1] as f64 * (self.slot_center(k) - cc1).abs())
                .sum();
            let sum2: f64 = ((j + 1)..=n)
                .map(|k| self.counts[k - 1] as f64 * (self.slot_center(k) - cc2).abs())
                .sum();
            if sum1 + sum2 < best_sum {
                best_sum = sum1 + sum2;
                best_j = j;
            }
        }
        Some(self.var_min + best_j as f64 * self.slot_width())
    }

    /// Zeroes the counters while keeping the learned range — the paper's
    /// periodic cleanup ("each U_i can be reset to be zero to eliminate
    /// approximation errors cumulated in the past week").
    pub fn reset_counters(&mut self) {
        self.counts.fill(0);
        self.observed = 0;
    }

    /// The raw counters (for inspection/tests).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

/// The exact clustering oracle: stores every variance and finds the split
/// minimizing Algorithm 1's objective evaluated on the *exact* values —
/// i.e. the `N → ∞` limit of the histogram method, in which the cluster
/// centers become the midpoints of the two value ranges (the unweighted
/// mean of infinitely many slot centers). Comparing a finite-`N`
/// histogram against this oracle isolates the *discretization* error of
/// the approximation, which is precisely what the paper's Fig. 12(a) and
/// Fig. 13 accuracy curves quantify.
#[derive(Debug, Clone, Default)]
pub struct ExactClusterer {
    values: Vec<f64>,
}

impl ExactClusterer {
    /// Creates an empty oracle.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a variance.
    ///
    /// # Panics
    ///
    /// Panics if `variance` is negative or not finite.
    pub fn observe(&mut self, variance: f64) {
        assert!(variance.is_finite() && variance >= 0.0);
        self.values.push(variance);
    }

    /// Number of stored variances.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing has been observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The optimal threshold, or `None` until two distinct values exist.
    /// λ is placed midway between the two clusters' boundary members.
    ///
    /// Objective (the `N → ∞` limit of Algorithm 1): for a candidate
    /// split `t`, the clusters are `[var_min, t]` and `[t, var_max]` with
    /// centers at the midpoints of those ranges; the cost is the summed
    /// L1 distance of every stored value to its cluster's center.
    #[must_use]
    pub fn threshold(&self) -> Option<f64> {
        if self.values.len() < 2 {
            return None;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = sorted.len();
        if sorted[0] == sorted[n - 1] {
            return None;
        }
        // Prefix sums for O(log n) cost evaluation of any
        // contiguous-range L1 distance to a given center.
        let prefix: Vec<f64> = sorted
            .iter()
            .scan(0.0, |acc, &v| {
                *acc += v;
                Some(*acc)
            })
            .collect();
        let range_sum = |lo: usize, hi: usize| -> f64 {
            // Sum of sorted[lo..=hi].
            prefix[hi] - if lo == 0 { 0.0 } else { prefix[lo - 1] }
        };
        // L1 distance of sorted[lo..=hi] to `center`.
        let cost_to_center = |lo: usize, hi: usize, center: f64| -> f64 {
            let split = sorted[lo..=hi].partition_point(|&v| v <= center) + lo;
            let below = split.saturating_sub(lo) as f64;
            let below_sum = if split == lo {
                0.0
            } else {
                range_sum(lo, split - 1)
            };
            let above = (hi + 1 - split) as f64;
            let above_sum = range_sum(lo, hi) - below_sum;
            (below * center - below_sum) + (above_sum - above * center)
        };

        let vmin = sorted[0];
        let vmax = sorted[n - 1];
        let mut best = f64::INFINITY;
        let mut best_t = None;
        for s in 0..n - 1 {
            if sorted[s] == sorted[s + 1] {
                continue; // identical boundary values cannot be separated
            }
            let t = (sorted[s] + sorted[s + 1]) / 2.0;
            let cc1 = (vmin + t) / 2.0;
            let cc2 = (t + vmax) / 2.0;
            let cost = cost_to_center(0, s, cc1) + cost_to_center(s + 1, n - 1, cc2);
            if cost < best {
                best = cost;
                best_t = Some(t);
            }
        }
        best_t
    }
}

// --- Checkpoint support --------------------------------------------------

bz_state::persist_unit_enum!(Stability { Stable, Transition });
bz_state::persist_struct!(VarianceHistogram {
    n_slots,
    var_min,
    var_max,
    counts,
    observed,
});

#[cfg(test)]
mod tests {
    use super::*;

    /// A bimodal variance stream like a real sensor produces: a dense
    /// cluster of tiny stable-state variances and a sparse cluster of
    /// large transition variances.
    fn bimodal_stream() -> Vec<f64> {
        let mut v = Vec::new();
        for i in 0..300 {
            v.push(0.001 + 0.0005 * f64::from(i % 7)); // stable: ~0.001–0.004
        }
        for i in 0..30 {
            v.push(0.8 + 0.05 * f64::from(i % 5)); // transitions: ~0.8–1.0
        }
        v
    }

    #[test]
    fn classify_boundaries() {
        assert_eq!(classify(0.1, 0.5), Stability::Stable);
        assert_eq!(classify(0.5, 0.5), Stability::Transition);
        assert_eq!(classify(0.9, 0.5), Stability::Transition);
    }

    #[test]
    fn histogram_needs_two_distinct_values() {
        let mut h = VarianceHistogram::new(40);
        assert_eq!(h.threshold(), None);
        h.observe(0.5);
        assert_eq!(h.threshold(), None);
        h.observe(0.5);
        assert_eq!(h.threshold(), None);
        h.observe(0.9);
        assert!(h.threshold().is_some());
    }

    #[test]
    fn histogram_separates_bimodal_clusters() {
        let mut h = VarianceHistogram::new(40);
        for v in bimodal_stream() {
            h.observe(v);
        }
        let lambda = h.threshold().unwrap();
        assert!(
            lambda > 0.01 && lambda < 0.8,
            "λ = {lambda} should fall between the clusters"
        );
        // Every stable sample classifies stable, every burst transition.
        assert_eq!(classify(0.004, lambda), Stability::Stable);
        assert_eq!(classify(0.8, lambda), Stability::Transition);
    }

    #[test]
    fn histogram_matches_paper_worked_example() {
        // Figure 9: varmax=10, varmin=0, N=5, counters U = [5,10,3,7,5].
        // The example computes total distance 28 at j=3; j=3 is in fact
        // the optimum for these counters, so λ = 0 + 3·2 = 6.
        let mut h = VarianceHistogram::new(5);
        // Anchor the range.
        h.observe(0.0);
        h.observe(10.0);
        // Remove the anchors' counts by resetting, keeping the range.
        h.reset_counters();
        for (slot, count) in [(1.0_f64, 5), (3.0, 10), (5.0, 3), (7.0, 7), (9.0, 5)] {
            for _ in 0..count {
                h.observe(slot);
            }
        }
        assert_eq!(h.counts(), &[5, 10, 3, 7, 5]);
        let lambda = h.threshold().unwrap();
        assert!((lambda - 6.0).abs() < 1e-9, "λ = {lambda}");
    }

    #[test]
    fn rebinning_preserves_total_count() {
        let mut h = VarianceHistogram::new(10);
        for v in [0.1, 0.2, 0.3, 0.15, 0.25] {
            h.observe(v);
        }
        let before: u64 = h.counts().iter().sum();
        // Force a range expansion.
        h.observe(5.0);
        let after: u64 = h.counts().iter().sum();
        assert_eq!(after, before + 1);
        assert_eq!(h.var_max(), 5.0);
    }

    #[test]
    fn counter_reset_keeps_range() {
        let mut h = VarianceHistogram::new(10);
        h.observe(0.0);
        h.observe(2.0);
        h.reset_counters();
        assert_eq!(h.observed(), 0);
        assert_eq!(h.var_min(), 0.0);
        assert_eq!(h.var_max(), 2.0);
        assert!(h.counts().iter().all(|&c| c == 0));
    }

    #[test]
    #[should_panic(expected = "at least two slots")]
    fn histogram_rejects_tiny_n() {
        let _ = VarianceHistogram::new(1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn histogram_rejects_negative_variance() {
        VarianceHistogram::new(10).observe(-0.1);
    }

    #[test]
    fn oracle_needs_two_distinct_values() {
        let mut o = ExactClusterer::new();
        assert_eq!(o.threshold(), None);
        o.observe(1.0);
        assert_eq!(o.threshold(), None);
        o.observe(1.0);
        assert_eq!(o.threshold(), None);
        o.observe(3.0);
        assert!(o.threshold().is_some());
        assert_eq!(o.len(), 3);
        assert!(!o.is_empty());
    }

    #[test]
    fn oracle_separates_the_mode_centers() {
        let mut o = ExactClusterer::new();
        for v in bimodal_stream() {
            o.observe(v);
        }
        let lambda = o.threshold().unwrap();
        // The range-centered objective may place λ near the edge of the
        // dense cluster, but it must classify the two mode centers apart.
        assert_eq!(classify(0.002, lambda), Stability::Stable, "λ = {lambda}");
        assert_eq!(classify(0.9, lambda), Stability::Transition, "λ = {lambda}");
    }

    #[test]
    fn histogram_approaches_oracle_with_large_n() {
        let stream = bimodal_stream();
        let mut oracle = ExactClusterer::new();
        let mut coarse = VarianceHistogram::new(4);
        let mut fine = VarianceHistogram::new(64);
        for &v in &stream {
            oracle.observe(v);
            coarse.observe(v);
            fine.observe(v);
        }
        let l_oracle = oracle.threshold().unwrap();
        let l_fine = fine.threshold().unwrap();
        let l_coarse = coarse.threshold().unwrap();
        // Every λ must separate the two modes, i.e. classify both mode
        // centers the same way the oracle does. (Algorithm 1 optimizes a
        // slightly different objective — unweighted slot centers — so its
        // λ need not converge numerically to the oracle's, only agree in
        // its decisions; that agreement is what Fig. 12(a) measures.)
        for lambda in [l_fine, l_coarse] {
            for v in [0.002, 0.9] {
                assert_eq!(classify(v, lambda), classify(v, l_oracle));
            }
        }
    }

    #[test]
    fn oracle_two_point_split_is_midpoint() {
        let mut o = ExactClusterer::new();
        o.observe(1.0);
        o.observe(3.0);
        assert!((o.threshold().unwrap() - 2.0).abs() < 1e-12);
    }
}
