//! MSP430-class resource cost model for the histogram clustering.
//!
//! Fig. 12(b)/(c) of the paper report the RAM footprint and CPU time of
//! Algorithm 1 as functions of the histogram size `N` on the TelosB's
//! MSP430 (10 KB RAM, ~8 MHz, no hardware floating point): ~130 bytes and
//! ~1600 ms at `N = 60`. This module models those costs so the Fig. 12
//! harness can regenerate the curves.

/// TelosB MSP430F1611 clock frequency, Hz.
pub const MSP430_CLOCK_HZ: f64 = 8_000_000.0;

/// Total RAM of the MSP430F1611, bytes (the paper's "out of 10K bytes").
pub const MSP430_RAM_BYTES: usize = 10_240;

/// RAM occupied by the histogram state for size `n`: one 16-bit counter
/// per slot plus `var_min`/`var_max` (two 4-byte floats) and bookkeeping.
#[must_use]
pub fn histogram_ram_bytes(n: usize) -> usize {
    2 * n + 10
}

/// Emulated-software-float CPU cycles for one full Algorithm 1 pass at
/// histogram size `n`.
///
/// The algorithm enumerates `N − 1` splits; each split recomputes two
/// cluster centers and two weighted intra-cluster sums over all `N` slots,
/// i.e. Θ(N²) float operations. On an MSP430 a software-emulated float
/// add/multiply costs several hundred cycles; the constants below are
/// calibrated to the paper's ~1600 ms at `N = 60`.
#[must_use]
pub fn clustering_cycles(n: usize) -> u64 {
    let n = n as u64;
    const SETUP: u64 = 20_000;
    const PER_SPLIT: u64 = 9_000; // loop control + final comparison
    const PER_CELL: u64 = 3_300; // soft-float ops per (split, slot) pair
    SETUP + (n - 1) * PER_SPLIT + n * n * PER_CELL
}

/// Wall-clock CPU time of one Algorithm 1 pass at histogram size `n`, ms.
#[must_use]
pub fn clustering_time_ms(n: usize) -> f64 {
    clustering_cycles(n) as f64 / MSP430_CLOCK_HZ * 1_000.0
}

/// True when the histogram state fits comfortably next to the TinyOS
/// image (which leaves roughly 4 KB of RAM free for the application).
#[must_use]
pub fn fits_on_mote(n: usize) -> bool {
    histogram_ram_bytes(n) <= MSP430_RAM_BYTES / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ram_matches_paper_at_n60() {
        // "when N = 60, it takes 130 bytes ... to store the entire
        // histogram" — Fig. 12(b).
        assert_eq!(histogram_ram_bytes(60), 130);
    }

    #[test]
    fn cpu_time_matches_paper_at_n60() {
        // "... and 1600 ms to complete clustering" — Fig. 12(c).
        let ms = clustering_time_ms(60);
        assert!((ms - 1_600.0).abs() < 120.0, "got {ms} ms");
    }

    #[test]
    fn costs_grow_monotonically() {
        let mut last_ram = 0;
        let mut last_ms = 0.0;
        for n in (5..=70).step_by(5) {
            let ram = histogram_ram_bytes(n);
            let ms = clustering_time_ms(n);
            assert!(ram > last_ram);
            assert!(ms > last_ms);
            last_ram = ram;
            last_ms = ms;
        }
    }

    #[test]
    fn cpu_cost_is_quadratic() {
        // Doubling N should roughly quadruple the dominant term.
        let r = clustering_cycles(80) as f64 / clustering_cycles(40) as f64;
        assert!(r > 3.2 && r < 4.2, "ratio {r}");
    }

    #[test]
    fn everything_fits_on_the_mote_at_paper_sizes() {
        for n in [5, 20, 40, 60, 70] {
            assert!(fits_on_mote(n), "N = {n} should fit");
        }
    }
}
