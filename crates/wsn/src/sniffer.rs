//! The sniffer: packet-level capture for offline analysis.
//!
//! §V: "We install TelosB based sniffer nodes to collect all network
//! packets and log all control data with time stamps, based on which we
//! conduct full analysis on the system performance." This module is that
//! instrument: it records every delivered frame with its timestamp,
//! source, type, and MAC delay, and answers the aggregate questions the
//! paper's analysis asks (per-type traffic shares, per-stream
//! inter-arrival statistics).

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{self, Write};

use bz_simcore::{SimDuration, SimTime};

use crate::channel::Delivery;
use crate::message::{DataType, NodeId};

/// One captured frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketRecord {
    /// Delivery completion time.
    pub at: SimTime,
    /// Emitting node.
    pub source: NodeId,
    /// Message type.
    pub data_type: DataType,
    /// Logical channel within the type.
    pub channel: u16,
    /// Carried value.
    pub value: f64,
    /// MAC delay from send request to delivery.
    pub delay: SimDuration,
}

/// Summary of one `(source, type, channel)` stream's capture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamSummary {
    /// Packets captured.
    pub packets: usize,
    /// Mean inter-arrival time, s (`None` with fewer than two packets).
    pub mean_interarrival_s: Option<f64>,
    /// Longest gap between consecutive packets, s.
    pub max_gap_s: Option<f64>,
}

/// A promiscuous capture of everything the broadcast bus delivered.
#[derive(Debug, Clone, Default)]
pub struct Sniffer {
    log: Vec<PacketRecord>,
}

impl Sniffer {
    /// Creates an empty capture.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a delivery from the channel.
    pub fn capture(&mut self, delivery: &Delivery) {
        self.log.push(PacketRecord {
            at: delivery.at,
            source: delivery.message.source(),
            data_type: delivery.message.data_type(),
            channel: delivery.message.channel(),
            value: delivery.message.value(),
            delay: delivery.delay,
        });
    }

    /// Number of captured packets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// True when nothing has been captured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// The raw capture, in delivery order.
    #[must_use]
    pub fn records(&self) -> &[PacketRecord] {
        &self.log
    }

    /// Packets captured per message type.
    #[must_use]
    pub fn traffic_by_type(&self) -> HashMap<DataType, usize> {
        let mut counts = HashMap::new();
        for record in &self.log {
            *counts.entry(record.data_type).or_insert(0) += 1;
        }
        counts
    }

    /// Per-stream summaries keyed by `(source, type, channel)`.
    #[must_use]
    pub fn stream_summaries(&self) -> HashMap<(NodeId, DataType, u16), StreamSummary> {
        let mut arrivals: HashMap<(NodeId, DataType, u16), Vec<SimTime>> = HashMap::new();
        for record in &self.log {
            arrivals
                .entry((record.source, record.data_type, record.channel))
                .or_default()
                .push(record.at);
        }
        arrivals
            .into_iter()
            .map(|(key, times)| {
                let gaps: Vec<f64> = times
                    .windows(2)
                    .map(|w| w[1].since(w[0]).as_secs_f64())
                    .collect();
                let summary = StreamSummary {
                    packets: times.len(),
                    mean_interarrival_s: (!gaps.is_empty())
                        .then(|| gaps.iter().sum::<f64>() / gaps.len() as f64),
                    max_gap_s: gaps.iter().copied().fold(None, |acc: Option<f64>, g| {
                        Some(acc.map_or(g, |a| a.max(g)))
                    }),
                };
                (key, summary)
            })
            .collect()
    }

    /// Mean MAC delay over the capture, ms.
    #[must_use]
    pub fn mean_delay_ms(&self) -> Option<f64> {
        if self.log.is_empty() {
            return None;
        }
        Some(
            self.log
                .iter()
                .map(|r| r.delay.as_secs_f64() * 1_000.0)
                .sum::<f64>()
                / self.log.len() as f64,
        )
    }

    /// Writes the capture as CSV
    /// (`time_s,source,type,channel,value,delay_ms` rows).
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from `out`.
    pub fn write_csv<W: Write>(&self, mut out: W) -> io::Result<()> {
        let mut buffer = String::from("time_s,source,type,channel,value,delay_ms\n");
        for r in &self.log {
            let _ = writeln!(
                buffer,
                "{:.3},{},{},{},{:.6},{:.1}",
                r.at.as_secs_f64(),
                r.source.get(),
                r.data_type,
                r.channel,
                r.value,
                r.delay.as_secs_f64() * 1_000.0,
            );
        }
        out.write_all(buffer.as_bytes())
    }
}

// --- Checkpoint support --------------------------------------------------

bz_state::persist_struct!(PacketRecord {
    at,
    source,
    data_type,
    channel,
    value,
    delay,
});
bz_state::persist_struct!(Sniffer { log });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Network, NetworkConfig};
    use crate::message::Message;
    use bz_simcore::Rng;

    fn captured_traffic() -> Sniffer {
        let config = NetworkConfig {
            residual_loss: 0.0,
            ..NetworkConfig::telosb()
        };
        let mut network = Network::new(config, Rng::seed_from(5));
        let mut sniffer = Sniffer::new();
        for i in 0..20u64 {
            let at = SimTime::from_secs(i * 2);
            network.send(
                at,
                Message::on_channel(NodeId::new(1), DataType::Temperature, 0, 25.0, at),
            );
            if i % 4 == 0 {
                network.send(
                    at,
                    Message::on_channel(NodeId::new(2), DataType::Co2, 3, 520.0, at),
                );
            }
        }
        for delivery in network.advance(SimTime::from_secs(60)) {
            sniffer.capture(&delivery);
        }
        sniffer
    }

    #[test]
    fn captures_everything_delivered() {
        let sniffer = captured_traffic();
        assert_eq!(sniffer.len(), 25);
        assert!(!sniffer.is_empty());
        assert_eq!(sniffer.records().len(), 25);
    }

    #[test]
    fn traffic_by_type_counts() {
        let sniffer = captured_traffic();
        let traffic = sniffer.traffic_by_type();
        assert_eq!(traffic[&DataType::Temperature], 20);
        assert_eq!(traffic[&DataType::Co2], 5);
    }

    #[test]
    fn stream_summaries_compute_interarrivals() {
        let sniffer = captured_traffic();
        let summaries = sniffer.stream_summaries();
        let temp = summaries[&(NodeId::new(1), DataType::Temperature, 0)];
        assert_eq!(temp.packets, 20);
        // Sent every 2 s; MAC delay jitter is milliseconds.
        assert!((temp.mean_interarrival_s.unwrap() - 2.0).abs() < 0.1);
        assert!(temp.max_gap_s.unwrap() < 2.5);
        let co2 = summaries[&(NodeId::new(2), DataType::Co2, 3)];
        assert_eq!(co2.packets, 5);
        assert!((co2.mean_interarrival_s.unwrap() - 8.0).abs() < 0.2);
    }

    #[test]
    fn empty_capture_behaves() {
        let sniffer = Sniffer::new();
        assert!(sniffer.is_empty());
        assert_eq!(sniffer.mean_delay_ms(), None);
        assert!(sniffer.traffic_by_type().is_empty());
        assert!(sniffer.stream_summaries().is_empty());
    }

    #[test]
    fn csv_has_one_row_per_packet() {
        let sniffer = captured_traffic();
        let mut out = Vec::new();
        sniffer.write_csv(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 26); // header + 25 rows
        assert!(text.starts_with("time_s,source,type,channel,value,delay_ms"));
        assert!(text.contains("temperature"));
    }

    #[test]
    fn delay_statistics_are_positive() {
        let sniffer = captured_traffic();
        let delay = sniffer.mean_delay_ms().unwrap();
        assert!(delay >= 1.0, "MAC delay should be at least the airtime");
        assert!(delay < 50.0);
    }
}
