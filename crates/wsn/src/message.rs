//! Typed broadcast messages.
//!
//! "We let the suppliers categorize and address its data messages to
//! certain 'types', e.g., temperature, humidity, CO₂ concentration, etc,
//! and broadcast data to the wireless channel. All potential consumers
//! fetch data messages from the wireless channel and filter out messages
//! with undesired types." (§IV-A)

use std::fmt;

use bz_simcore::SimTime;

/// Identifier of a network node (a TelosB mote).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u16);

impl NodeId {
    /// Creates a node id.
    #[must_use]
    pub const fn new(id: u16) -> Self {
        Self(id)
    }

    /// The raw id.
    #[must_use]
    pub const fn get(self) -> u16 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// The message "types" of §IV-A by which packets are addressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DataType {
    /// Room/pipe temperature samples, °C.
    Temperature,
    /// Relative-humidity samples, %.
    Humidity,
    /// CO₂ concentration samples, ppm.
    Co2,
    /// Water flow-rate samples, m³/s.
    FlowRate,
    /// Radiant tank supply temperature (T_supp), °C — produced by
    /// Control-C-1, consumed by Control-V-1 (§III-C).
    SupplyTemperature,
    /// Airbox outlet dew point (T_a_dew), °C.
    OutletDewPoint,
    /// A computed control target being disseminated between boards.
    ControlTarget,
    /// An actuation command (fan level, pump voltage) to a driver board.
    Actuation,
}

impl DataType {
    /// All message types.
    pub const ALL: [DataType; 8] = [
        Self::Temperature,
        Self::Humidity,
        Self::Co2,
        Self::FlowRate,
        Self::SupplyTemperature,
        Self::OutletDewPoint,
        Self::ControlTarget,
        Self::Actuation,
    ];

    /// True for control-plane types: computed values and commands the
    /// control loops depend on, as opposed to periodic sensor samples. A
    /// lost sample is replaced by the next one a few seconds later, so
    /// data-plane sends stay fire-and-forget (the paper's plain CSMA
    /// behaviour); control-plane sends are worth a bounded retry.
    #[must_use]
    pub fn is_control_plane(self) -> bool {
        matches!(
            self,
            Self::SupplyTemperature | Self::OutletDewPoint | Self::ControlTarget | Self::Actuation
        )
    }

    /// Application payload size for this type, bytes (type tag, source
    /// channel index, timestamp, and an IEEE-754 value).
    #[must_use]
    pub fn payload_bytes(self) -> usize {
        match self {
            // Sensor samples: tag + channel + 4-byte time + 4-byte value.
            Self::Temperature | Self::Humidity | Self::Co2 | Self::FlowRate => 10,
            // Computed values carry a target id as well.
            Self::SupplyTemperature | Self::OutletDewPoint | Self::ControlTarget => 12,
            // Commands carry actuator id + mode + value.
            Self::Actuation => 14,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Self::Temperature => "temperature",
            Self::Humidity => "humidity",
            Self::Co2 => "co2",
            Self::FlowRate => "flow-rate",
            Self::SupplyTemperature => "supply-temperature",
            Self::OutletDewPoint => "outlet-dew-point",
            Self::ControlTarget => "control-target",
            Self::Actuation => "actuation",
        };
        f.write_str(name)
    }
}

/// A broadcast application message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Message {
    source: NodeId,
    data_type: DataType,
    /// Logical channel within the type (e.g. which subspace's temperature).
    channel: u16,
    value: f64,
    created_at: SimTime,
}

impl Message {
    /// Creates a message on logical channel 0.
    #[must_use]
    pub fn new(source: NodeId, data_type: DataType, value: f64, created_at: SimTime) -> Self {
        Self::on_channel(source, data_type, 0, value, created_at)
    }

    /// Creates a message on a specific logical channel (e.g. subspace
    /// index or panel index).
    #[must_use]
    pub fn on_channel(
        source: NodeId,
        data_type: DataType,
        channel: u16,
        value: f64,
        created_at: SimTime,
    ) -> Self {
        Self {
            source,
            data_type,
            channel,
            value,
            created_at,
        }
    }

    /// The emitting node.
    #[must_use]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The message type used for filtering.
    #[must_use]
    pub fn data_type(&self) -> DataType {
        self.data_type
    }

    /// The logical channel within the type.
    #[must_use]
    pub fn channel(&self) -> u16 {
        self.channel
    }

    /// The carried value.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.value
    }

    /// When the supplier generated the value.
    #[must_use]
    pub fn created_at(&self) -> SimTime {
        self.created_at
    }

    /// Application payload size, bytes.
    #[must_use]
    pub fn payload_bytes(&self) -> usize {
        self.data_type.payload_bytes()
    }
}

// --- Checkpoint support --------------------------------------------------

impl bz_state::Persist for NodeId {
    fn save(&self, w: &mut bz_state::Writer) {
        w.put_u16(self.0);
    }

    fn load(r: &mut bz_state::Reader<'_>) -> Result<Self, bz_state::StateError> {
        Ok(Self(r.take_u16()?))
    }
}

bz_state::persist_unit_enum!(DataType {
    Temperature,
    Humidity,
    Co2,
    FlowRate,
    SupplyTemperature,
    OutletDewPoint,
    ControlTarget,
    Actuation,
});
bz_state::persist_struct!(Message {
    source,
    data_type,
    channel,
    value,
    created_at,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trip_and_display() {
        let id = NodeId::new(17);
        assert_eq!(id.get(), 17);
        assert_eq!(id.to_string(), "node17");
    }

    #[test]
    fn payload_sizes_fit_an_802154_frame() {
        for t in DataType::ALL {
            assert!(t.payload_bytes() <= 102, "{t} too large");
            assert!(t.payload_bytes() >= 8);
        }
    }

    #[test]
    fn message_accessors() {
        let m = Message::on_channel(
            NodeId::new(4),
            DataType::Humidity,
            2,
            55.5,
            SimTime::from_secs(9),
        );
        assert_eq!(m.source(), NodeId::new(4));
        assert_eq!(m.data_type(), DataType::Humidity);
        assert_eq!(m.channel(), 2);
        assert_eq!(m.value(), 55.5);
        assert_eq!(m.created_at(), SimTime::from_secs(9));
        assert_eq!(m.payload_bytes(), DataType::Humidity.payload_bytes());
    }

    #[test]
    fn display_names_are_distinct() {
        let mut names: Vec<String> = DataType::ALL.iter().map(ToString::to_string).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), DataType::ALL.len());
    }
}
