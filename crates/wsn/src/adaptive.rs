//! BT-ADPT: adaptive sensory-data transmission for battery devices (§IV-B).
//!
//! Battery devices sample fast (the paper sets 3 s / 2 s / 4 s periods for
//! temperature / humidity / CO₂) but transmit adaptively: the send period
//! `T_snd = w · T_spl` stretches by doubling `w` up to 32 while the signal
//! is stable and snaps back to `w = 1` the instant the sliding-window
//! variance crosses the learned threshold λ. Sampling costs 0.3 mW while
//! transmitting costs 54 mW, so every stretched period is battery life.

use bz_simcore::stats::SlidingWindow;
use bz_simcore::{SimDuration, SimTime};

use crate::histogram::{classify, Stability, VarianceHistogram};
use crate::message::DataType;

/// Tuning of one BT-ADPT instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Sampling period `T_spl`.
    pub sampling_period: SimDuration,
    /// Maximum send-period multiplier (the paper's `w ≤ 32`).
    pub max_w: u32,
    /// Number of successive stable samples required before doubling `w`
    /// (the paper: "after 10 successive T_spls").
    pub stable_runs_to_double: u32,
    /// Sliding-window length for the variance, samples.
    pub window_len: usize,
    /// Histogram size `N` for the λ clustering.
    pub histogram_slots: usize,
    /// How often λ is recomputed (the paper: every 20 minutes).
    pub lambda_update_period: SimDuration,
    /// How often the histogram counters are zeroed to flush accumulated
    /// re-binning error (the paper: "after Algorithm 1 runs for a long
    /// time, e.g., one week, each U_i can be reset to be zero").
    pub counter_reset_period: SimDuration,
}

impl AdaptiveConfig {
    /// The §IV-B defaults for a given data type (temperature 3 s,
    /// humidity 2 s, CO₂ 4 s; everything else samples at 2 s).
    #[must_use]
    pub fn for_type(data_type: DataType) -> Self {
        let sampling = match data_type {
            DataType::Temperature => SimDuration::from_secs(3),
            DataType::Humidity => SimDuration::from_secs(2),
            DataType::Co2 => SimDuration::from_secs(4),
            _ => SimDuration::from_secs(2),
        };
        Self::with_sampling(sampling)
    }

    /// Defaults with an explicit sampling period (§V-C's networking trial
    /// drives temperature at 2 s).
    #[must_use]
    pub fn with_sampling(sampling_period: SimDuration) -> Self {
        Self {
            sampling_period,
            max_w: 32,
            stable_runs_to_double: 10,
            window_len: 10,
            histogram_slots: 40,
            lambda_update_period: SimDuration::from_mins(20),
            counter_reset_period: SimDuration::from_hours(7 * 24),
        }
    }

    /// Same configuration with a different histogram size (the Fig. 12
    /// parameter sweep).
    #[must_use]
    pub fn with_histogram_slots(mut self, n: usize) -> Self {
        self.histogram_slots = n;
        self
    }
}

/// What happened when a sample was processed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleOutcome {
    /// Whether the device transmits this sample's packet now.
    pub transmit: bool,
    /// The sliding-window variance computed at this sample (None until the
    /// window has at least two samples).
    pub variance: Option<f64>,
    /// The classification against the current λ (None until λ exists).
    pub classified: Option<Stability>,
    /// The λ in force when the decision was made.
    pub lambda: Option<f64>,
    /// The send period in force *after* this sample.
    pub send_period: SimDuration,
}

/// The adaptive scheduler state for one (device, data type) stream.
///
/// # Example
///
/// A stable signal stretches the send period; a step change snaps it back:
///
/// ```
/// use bz_simcore::{SimDuration, SimTime};
/// use bz_wsn::adaptive::{AdaptiveConfig, BtAdaptive};
///
/// let mut scheduler = BtAdaptive::new(AdaptiveConfig::with_sampling(
///     SimDuration::from_secs(2),
/// ));
/// for i in 0..600u64 {
///     // A brief excursion early on lets the histogram learn λ.
///     let value = if i == 5 { 30.0 } else { 25.0 };
///     scheduler.on_sample(SimTime::from_secs(2 * i), value);
/// }
/// assert_eq!(scheduler.send_period(), SimDuration::from_secs(64));
/// ```
#[derive(Debug, Clone)]
pub struct BtAdaptive {
    config: AdaptiveConfig,
    window: SlidingWindow,
    histogram: VarianceHistogram,
    lambda: Option<f64>,
    lambda_refreshed_at: SimTime,
    counters_reset_at: SimTime,
    w: u32,
    stable_run: u32,
    next_send: SimTime,
    transmissions: u64,
    samples: u64,
    obs: bz_obs::Handle,
}

impl BtAdaptive {
    /// Creates a scheduler; the first sample always transmits. Period
    /// changes are recorded against the global `bz_obs` registry.
    #[must_use]
    pub fn new(config: AdaptiveConfig) -> Self {
        Self {
            window: SlidingWindow::new(config.window_len),
            histogram: VarianceHistogram::new(config.histogram_slots),
            lambda: None,
            lambda_refreshed_at: SimTime::ZERO,
            counters_reset_at: SimTime::ZERO,
            w: 1,
            stable_run: 0,
            next_send: SimTime::ZERO,
            transmissions: 0,
            samples: 0,
            config,
            obs: bz_obs::Handle::global(),
        }
    }

    /// Redirects this scheduler's metrics to `obs` (per-run isolation).
    #[must_use]
    pub fn with_obs(mut self, obs: bz_obs::Handle) -> Self {
        self.obs = obs;
        self
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// Current send period `T_snd = w · T_spl`.
    #[must_use]
    pub fn send_period(&self) -> SimDuration {
        self.config.sampling_period * u64::from(self.w)
    }

    /// Current multiplier `w`.
    #[must_use]
    pub fn w(&self) -> u32 {
        self.w
    }

    /// The λ currently in force (None until learned).
    #[must_use]
    pub fn lambda(&self) -> Option<f64> {
        self.lambda
    }

    /// Total packets transmitted.
    #[must_use]
    pub fn transmissions(&self) -> u64 {
        self.transmissions
    }

    /// Total samples taken.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Access to the histogram (for the Fig. 12 accuracy studies).
    #[must_use]
    pub fn histogram(&self) -> &VarianceHistogram {
        &self.histogram
    }

    /// Processes one sensor sample taken at `now` (call every `T_spl`).
    pub fn on_sample(&mut self, now: SimTime, value: f64) -> SampleOutcome {
        self.samples += 1;
        self.window.push(value);
        let variance = if self.window.len() >= 2 {
            self.window.variance()
        } else {
            None
        };

        // Weekly counter flush (§IV-B): zero the histogram counters while
        // keeping the learned range, discarding accumulated re-binning
        // error. λ survives until enough new data relearns it.
        if now.since(self.counters_reset_at) >= self.config.counter_reset_period {
            self.histogram.reset_counters();
            self.counters_reset_at = now;
        }

        let mut classified = None;
        if let Some(var) = variance {
            let range_before = (self.histogram.var_min(), self.histogram.var_max());
            self.histogram.observe(var);
            let range_changed =
                (self.histogram.var_min(), self.histogram.var_max()) != range_before;

            // Periodic λ refresh; also refresh on a range change (the
            // histogram was re-binned, invalidating the old clustering)
            // and bootstrap as soon as λ is learnable. Range changes are
            // rare after warm-up, so this stays within the paper's energy
            // budget for λ updates.
            let due = now.since(self.lambda_refreshed_at) >= self.config.lambda_update_period;
            if self.lambda.is_none() || due || range_changed {
                if let Some(lambda) = self.histogram.threshold() {
                    self.lambda = Some(lambda);
                    self.lambda_refreshed_at = now;
                }
            }

            if let Some(lambda) = self.lambda {
                let state = classify(var, lambda);
                classified = Some(state);
                let w_before = self.w;
                match state {
                    Stability::Transition => {
                        // Snap back: T_snd = T_spl and send immediately.
                        self.w = 1;
                        self.stable_run = 0;
                        self.next_send = now;
                    }
                    Stability::Stable => {
                        self.stable_run += 1;
                        if self.stable_run >= self.config.stable_runs_to_double
                            && self.w < self.config.max_w
                        {
                            self.w = (self.w * 2).min(self.config.max_w);
                            self.stable_run = 0;
                        }
                    }
                }
                if self.w != w_before {
                    self.obs.counter_inc("wsn.btadpt.period_changes");
                    self.obs
                        .observe("wsn.btadpt.send_period_s", self.send_period().as_secs_f64());
                }
            }
        }

        let transmit = now >= self.next_send;
        if transmit {
            self.transmissions += 1;
            self.next_send = now + self.send_period();
        }

        SampleOutcome {
            transmit,
            variance,
            classified,
            lambda: self.lambda,
            send_period: self.send_period(),
        }
    }
}

/// The paper's "Fixed" comparison scheme: transmit every sample.
#[derive(Debug, Clone)]
pub struct FixedSchedule {
    sampling_period: SimDuration,
    transmissions: u64,
}

impl FixedSchedule {
    /// Creates a fixed scheduler with the given sampling (= send) period.
    #[must_use]
    pub fn new(sampling_period: SimDuration) -> Self {
        Self {
            sampling_period,
            transmissions: 0,
        }
    }

    /// The constant send period.
    #[must_use]
    pub fn send_period(&self) -> SimDuration {
        self.sampling_period
    }

    /// Processes a sample: always transmits.
    pub fn on_sample(&mut self) -> bool {
        self.transmissions += 1;
        true
    }

    /// Total packets transmitted.
    #[must_use]
    pub fn transmissions(&self) -> u64 {
        self.transmissions
    }
}

// --- Checkpoint support --------------------------------------------------

bz_state::persist_struct!(FixedSchedule {
    sampling_period,
    transmissions,
});

impl BtAdaptive {
    /// Serializes the dynamic scheduler state (window, histogram, λ,
    /// counters). Configuration and the obs handle are rebuilt on restore.
    pub fn save_state(&self, w: &mut bz_state::Writer) {
        use bz_state::Persist;
        self.window.save(w);
        self.histogram.save(w);
        self.lambda.save(w);
        self.lambda_refreshed_at.save(w);
        self.counters_reset_at.save(w);
        w.put_u32(self.w);
        w.put_u32(self.stable_run);
        self.next_send.save(w);
        w.put_u64(self.transmissions);
        w.put_u64(self.samples);
    }

    /// Restores the dynamic state saved by [`Self::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a decode error if the bytes do not parse.
    pub fn load_state(&mut self, r: &mut bz_state::Reader<'_>) -> Result<(), bz_state::StateError> {
        use bz_state::Persist;
        self.window = Persist::load(r)?;
        self.histogram = Persist::load(r)?;
        self.lambda = Persist::load(r)?;
        self.lambda_refreshed_at = Persist::load(r)?;
        self.counters_reset_at = Persist::load(r)?;
        self.w = r.take_u32()?;
        self.stable_run = r.take_u32()?;
        self.next_send = Persist::load(r)?;
        self.transmissions = r.take_u64()?;
        self.samples = r.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bz_simcore::Rng;

    /// Drives a scheduler with a stable signal plus optional bursts;
    /// returns the outcomes.
    fn drive(
        scheduler: &mut BtAdaptive,
        steps: usize,
        mut signal: impl FnMut(usize, &mut Rng) -> f64,
    ) -> Vec<(SimTime, SampleOutcome)> {
        let mut rng = Rng::seed_from(1234);
        let period = scheduler.config().sampling_period;
        let mut out = Vec::with_capacity(steps);
        for i in 0..steps {
            let now = SimTime::ZERO + period * i as u64;
            let value = signal(i, &mut rng);
            out.push((now, scheduler.on_sample(now, value)));
        }
        out
    }

    fn stable_signal(rng: &mut Rng) -> f64 {
        25.0 + rng.normal(0.0, 0.02)
    }

    #[test]
    fn w_grows_to_max_on_stable_signal() {
        let mut s = BtAdaptive::new(AdaptiveConfig::with_sampling(SimDuration::from_secs(2)));
        // Prime with one burst so the histogram can learn a λ that puts
        // tiny variances in the stable cluster.
        drive(&mut s, 20, |i, rng| {
            if i < 3 {
                25.0 + 3.0 * f64::from(i as u32)
            } else {
                stable_signal(rng)
            }
        });
        drive(&mut s, 600, |_, rng| stable_signal(rng));
        assert_eq!(s.w(), 32, "w should reach the maximum");
        assert_eq!(s.send_period(), SimDuration::from_secs(64));
    }

    #[test]
    fn transition_snaps_back_to_fast_sending() {
        let mut s = BtAdaptive::new(AdaptiveConfig::with_sampling(SimDuration::from_secs(2)));
        drive(&mut s, 20, |i, _| {
            if i < 3 {
                25.0 + 3.0 * f64::from(i as u32)
            } else {
                25.0
            }
        });
        drive(&mut s, 600, |_, rng| stable_signal(rng));
        assert_eq!(s.w(), 32);
        // A door opens: the signal jumps several degrees.
        let outcomes = drive(&mut s, 6, |i, _| 25.0 + 2.0 * f64::from(i as u32 + 1));
        assert_eq!(s.w(), 1, "transition must reset w");
        // The snap-back transmits promptly — within a few samples of the
        // onset (the paper measures an average detection delay of 2.7 s
        // at a 2 s sampling period, i.e. one-to-two samples).
        assert!(
            outcomes.iter().take(4).any(|(_, o)| o.transmit),
            "transition should trigger a prompt transmission"
        );
    }

    #[test]
    fn first_sample_transmits() {
        let mut s = BtAdaptive::new(AdaptiveConfig::with_sampling(SimDuration::from_secs(2)));
        let outcome = s.on_sample(SimTime::ZERO, 25.0);
        assert!(outcome.transmit);
        assert_eq!(s.transmissions(), 1);
    }

    #[test]
    fn stable_stream_transmits_far_less_than_fixed() {
        let mut adaptive =
            BtAdaptive::new(AdaptiveConfig::with_sampling(SimDuration::from_secs(2)));
        let mut fixed = FixedSchedule::new(SimDuration::from_secs(2));
        let steps = 3_000; // 100 minutes at 2 s
        drive(&mut adaptive, steps, |i, rng| {
            if i % 900 == 10 {
                40.0 // a brief excursion every ~30 min keeps λ honest
            } else {
                stable_signal(rng)
            }
        });
        for _ in 0..steps {
            fixed.on_sample();
        }
        assert_eq!(fixed.transmissions(), steps as u64);
        let ratio = adaptive.transmissions() as f64 / fixed.transmissions() as f64;
        assert!(
            ratio < 0.25,
            "adaptive sent {} of {} packets (ratio {ratio})",
            adaptive.transmissions(),
            fixed.transmissions()
        );
    }

    #[test]
    fn send_period_stays_within_bounds() {
        let config = AdaptiveConfig::with_sampling(SimDuration::from_secs(2));
        let mut s = BtAdaptive::new(config);
        let outcomes = drive(&mut s, 2_000, |i, rng| {
            if i % 400 == 7 {
                35.0
            } else {
                stable_signal(rng)
            }
        });
        for (_, o) in outcomes {
            let p = o.send_period.as_millis();
            assert!(p >= 2_000, "period {p} below T_spl");
            assert!(p <= 64_000, "period {p} above 32·T_spl");
        }
    }

    #[test]
    fn lambda_refreshes_periodically() {
        let mut config = AdaptiveConfig::with_sampling(SimDuration::from_secs(2));
        config.lambda_update_period = SimDuration::from_secs(20);
        let mut s = BtAdaptive::new(config);
        drive(&mut s, 30, |i, _| if i % 7 == 0 { 30.0 } else { 25.0 });
        let early = s.lambda();
        assert!(early.is_some());
        // Shift the signal regime: much larger excursions dominate the
        // histogram; after the refresh period λ should move.
        drive(
            &mut s,
            300,
            |i, _| {
                if i % 5 == 0 {
                    25.0 + 20.0
                } else {
                    25.0
                }
            },
        );
        assert_ne!(s.lambda(), early, "λ should track the new regime");
    }

    #[test]
    fn decision_metadata_is_reported() {
        let mut s = BtAdaptive::new(AdaptiveConfig::with_sampling(SimDuration::from_secs(2)));
        // Mostly flat with two isolated excursions: the flat stretches
        // classify stable, the excursion windows classify transition.
        let outcomes = drive(
            &mut s,
            80,
            |i, _| {
                if i == 25 || i == 55 {
                    35.0
                } else {
                    25.0
                }
            },
        );
        let with_variance = outcomes
            .iter()
            .filter(|(_, o)| o.variance.is_some())
            .count();
        assert!(with_variance >= 78, "variance reported once window fills");
        assert!(outcomes
            .iter()
            .any(|(_, o)| o.classified == Some(Stability::Transition)));
        assert!(outcomes
            .iter()
            .any(|(_, o)| o.classified == Some(Stability::Stable)));
    }

    #[test]
    fn for_type_uses_paper_sampling_periods() {
        assert_eq!(
            AdaptiveConfig::for_type(DataType::Temperature).sampling_period,
            SimDuration::from_secs(3)
        );
        assert_eq!(
            AdaptiveConfig::for_type(DataType::Humidity).sampling_period,
            SimDuration::from_secs(2)
        );
        assert_eq!(
            AdaptiveConfig::for_type(DataType::Co2).sampling_period,
            SimDuration::from_secs(4)
        );
    }

    #[test]
    fn weekly_counter_reset_flushes_history() {
        let mut config = AdaptiveConfig::with_sampling(SimDuration::from_secs(2));
        config.counter_reset_period = SimDuration::from_secs(100);
        let mut s = BtAdaptive::new(config);
        // Populate the histogram.
        for i in 0..40u64 {
            let now = SimTime::from_secs(i * 2);
            let value = if i % 9 == 0 { 30.0 } else { 25.0 };
            s.on_sample(now, value);
        }
        assert!(s.histogram().observed() > 0);
        // Cross the reset boundary: counters flush, range survives.
        let range = (s.histogram().var_min(), s.histogram().var_max());
        s.on_sample(SimTime::from_secs(200), 25.0);
        assert!(s.histogram().observed() <= 1);
        assert_eq!((s.histogram().var_min(), s.histogram().var_max()), range);
        // λ is still in force (kept from before the flush).
        assert!(s.lambda().is_some());
    }

    #[test]
    fn fixed_schedule_always_transmits() {
        let mut f = FixedSchedule::new(SimDuration::from_secs(2));
        for _ in 0..10 {
            assert!(f.on_sample());
        }
        assert_eq!(f.transmissions(), 10);
        assert_eq!(f.send_period(), SimDuration::from_secs(2));
    }
}
