//! Sample aggregation — the paper's third future-work item.
//!
//! §VII: future work includes "optimized aggregation of sensing and
//! control information, so as to support building level deployment".
//! An 802.15.4 frame carries up to ~102 application bytes, while one
//! sensor sample needs ~10: a mote (or a wing relay) that batches several
//! pending samples into one frame amortizes the fixed PHY/MAC overhead
//! and — more importantly for battery devices — the ~2 mJ radio wake-up
//! cost per transmission.
//!
//! The aggregator keeps per-type pending queues with a deadline: samples
//! are flushed when the frame fills or when the oldest pending sample
//! would exceed its latency budget, so control timeliness (the paper's
//! recurring constraint) bounds the batching.

use bz_simcore::{SimDuration, SimTime};

use crate::message::Message;

/// Maximum application payload of one 802.15.4 frame, bytes.
pub const MAX_FRAME_PAYLOAD: usize = 102;

/// An aggregated frame ready for transmission.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateFrame {
    /// The batched samples, oldest first.
    pub samples: Vec<Message>,
    /// Total application payload, bytes (samples + 2-byte batch header).
    pub payload_bytes: usize,
    /// When the frame was flushed.
    pub flushed_at: SimTime,
}

impl AggregateFrame {
    /// Age of the oldest sample at flush time.
    #[must_use]
    pub fn worst_staleness(&self) -> SimDuration {
        self.samples
            .first()
            .map(|m| self.flushed_at.since(m.created_at()))
            .unwrap_or(SimDuration::ZERO)
    }
}

/// Batching statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AggregateStats {
    /// Samples offered to the aggregator.
    pub samples_in: u64,
    /// Frames flushed.
    pub frames_out: u64,
    /// Frames that would have been sent without aggregation (one per
    /// sample).
    pub frames_saved: u64,
}

impl AggregateStats {
    /// Mean samples per transmitted frame.
    #[must_use]
    pub fn batching_factor(&self) -> f64 {
        if self.frames_out == 0 {
            0.0
        } else {
            self.samples_in as f64 / self.frames_out as f64
        }
    }
}

/// A latency-bounded frame aggregator.
///
/// # Example
///
/// ```
/// use bz_simcore::{SimDuration, SimTime};
/// use bz_wsn::aggregate::Aggregator;
/// use bz_wsn::message::{DataType, Message, NodeId};
///
/// let mut agg = Aggregator::new(SimDuration::from_secs(2));
/// let t0 = SimTime::ZERO;
/// assert!(agg.offer(Message::new(NodeId::new(1), DataType::Temperature, 25.0, t0)).is_none());
/// // Two seconds later the latency budget forces a flush.
/// let frame = agg.poll(SimTime::from_secs(2)).expect("deadline reached");
/// assert_eq!(frame.samples.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Aggregator {
    latency_budget: SimDuration,
    pending: Vec<Message>,
    pending_bytes: usize,
    stats: AggregateStats,
}

/// Per-frame batch header, bytes (count + type map).
const BATCH_HEADER_BYTES: usize = 2;

impl Aggregator {
    /// Creates an aggregator that never holds a sample longer than
    /// `latency_budget`.
    ///
    /// # Panics
    ///
    /// Panics if the budget is zero.
    #[must_use]
    pub fn new(latency_budget: SimDuration) -> Self {
        assert!(!latency_budget.is_zero(), "latency budget must be positive");
        Self {
            latency_budget,
            pending: Vec::new(),
            pending_bytes: BATCH_HEADER_BYTES,
            stats: AggregateStats::default(),
        }
    }

    /// Number of samples currently pending.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> AggregateStats {
        self.stats
    }

    /// Offers a sample. Returns a full frame if this sample filled it.
    pub fn offer(&mut self, sample: Message) -> Option<AggregateFrame> {
        self.stats.samples_in += 1;
        let sample_bytes = sample.payload_bytes();
        let flushed = if self.pending_bytes + sample_bytes > MAX_FRAME_PAYLOAD {
            // The new sample wouldn't fit: flush what's pending first.
            Some(self.flush(sample.created_at()))
        } else {
            None
        };
        self.pending.push(sample);
        self.pending_bytes += sample_bytes;
        flushed.flatten()
    }

    /// Flushes if the oldest pending sample has reached its latency
    /// budget at `now`.
    pub fn poll(&mut self, now: SimTime) -> Option<AggregateFrame> {
        let oldest = self.pending.first()?;
        if now.since(oldest.created_at()) >= self.latency_budget {
            self.flush(now)
        } else {
            None
        }
    }

    /// Unconditionally flushes whatever is pending.
    pub fn flush(&mut self, now: SimTime) -> Option<AggregateFrame> {
        if self.pending.is_empty() {
            return None;
        }
        let samples = std::mem::take(&mut self.pending);
        let payload_bytes = self.pending_bytes;
        self.pending_bytes = BATCH_HEADER_BYTES;
        self.stats.frames_out += 1;
        self.stats.frames_saved += samples.len() as u64 - 1;
        Some(AggregateFrame {
            samples,
            payload_bytes,
            flushed_at: now,
        })
    }
}

/// Airtime saved by aggregation, as a fraction, for a stream of
/// `sample_payload`-byte samples batched `k` per frame with
/// `overhead_bytes` of PHY/MAC framing per transmission.
#[must_use]
pub fn airtime_savings(sample_payload: usize, overhead_bytes: usize, k: usize) -> f64 {
    assert!(k >= 1);
    let individual = k * (sample_payload + overhead_bytes);
    let batched = BATCH_HEADER_BYTES + k * sample_payload + overhead_bytes;
    1.0 - batched as f64 / individual as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{DataType, NodeId};

    fn sample(at_s: u64, channel: u16) -> Message {
        Message::on_channel(
            NodeId::new(7),
            DataType::Temperature,
            channel,
            25.0,
            SimTime::from_secs(at_s),
        )
    }

    #[test]
    fn flushes_on_latency_budget() {
        let mut agg = Aggregator::new(SimDuration::from_secs(3));
        assert!(agg.offer(sample(0, 0)).is_none());
        assert!(agg.offer(sample(1, 1)).is_none());
        assert!(agg.poll(SimTime::from_secs(2)).is_none());
        let frame = agg.poll(SimTime::from_secs(3)).expect("deadline");
        assert_eq!(frame.samples.len(), 2);
        assert_eq!(frame.worst_staleness(), SimDuration::from_secs(3));
        assert_eq!(agg.pending(), 0);
    }

    #[test]
    fn flushes_when_the_frame_fills() {
        let mut agg = Aggregator::new(SimDuration::from_hours(1));
        // Temperature samples are 10 bytes; 10 fit (2 + 100 ≤ 102), the
        // 11th forces a flush of the first ten.
        let mut flushed = None;
        for i in 0..11u64 {
            if let Some(frame) = agg.offer(sample(i, i as u16)) {
                flushed = Some((i, frame));
            }
        }
        let (at, frame) = flushed.expect("the 11th sample overflows");
        assert_eq!(at, 10);
        assert_eq!(frame.samples.len(), 10);
        assert!(frame.payload_bytes <= MAX_FRAME_PAYLOAD);
        assert_eq!(agg.pending(), 1, "the overflowing sample stays pending");
    }

    #[test]
    fn stats_count_savings() {
        let mut agg = Aggregator::new(SimDuration::from_secs(10));
        for i in 0..6u64 {
            let _ = agg.offer(sample(i, i as u16));
        }
        let _ = agg.flush(SimTime::from_secs(6));
        let stats = agg.stats();
        assert_eq!(stats.samples_in, 6);
        assert_eq!(stats.frames_out, 1);
        assert_eq!(stats.frames_saved, 5);
        assert!((stats.batching_factor() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_flush_is_none() {
        let mut agg = Aggregator::new(SimDuration::from_secs(1));
        assert!(agg.flush(SimTime::ZERO).is_none());
        assert!(agg.poll(SimTime::from_secs(100)).is_none());
    }

    #[test]
    fn airtime_savings_grow_with_batch_size() {
        // 10-byte samples, 23-byte overhead (the TelosB numbers).
        let k1 = airtime_savings(10, 23, 1);
        let k4 = airtime_savings(10, 23, 4);
        let k10 = airtime_savings(10, 23, 10);
        assert!(k1 <= 0.0 + 1e-12, "no batching, tiny header cost: {k1}");
        assert!(k4 > 0.4, "got {k4}");
        assert!(k10 > k4);
        assert!(k10 > 0.55, "got {k10}");
    }

    #[test]
    #[should_panic(expected = "latency budget")]
    fn zero_budget_is_rejected() {
        let _ = Aggregator::new(SimDuration::ZERO);
    }
}
