//! 802.15.4-style wireless sensor network substrate.
//!
//! §IV of the paper builds a TelosB/802.15.4 network in which:
//!
//! - data suppliers **broadcast typed messages** (temperature, humidity,
//!   CO₂, …) rather than routing to a sink; consumers filter the channel
//!   for the types they need ([`message`], [`channel`]);
//! - **battery-powered devices duty-cycle** their transmissions with the
//!   adaptive scheme of §IV-B: the send period stretches to 32× the
//!   sampling period while the sensed signal is stable and snaps back the
//!   moment a sliding-window variance crosses a threshold λ
//!   ([`adaptive`]);
//! - λ itself is learned online by clustering historical variances with a
//!   **constant-memory histogram approximation** (Algorithm 1,
//!   [`histogram`]), traded off against an exact clustering oracle;
//! - **AC-powered devices stagger** their periodic transmissions to
//!   alleviate contention ([`ac_schedule`]);
//! - battery lifetime follows from a measured-power energy model
//!   (0.3 mW sampling, 54 mW transmitting — [`energy`]), and the
//!   MSP430-class cost of the clustering is modeled in [`platform`];
//! - the paper's stated future work — multi-hop, type-based multicast for
//!   building-scale deployments — is implemented in [`multihop`].
//!
//! # Example
//!
//! ```
//! use bz_simcore::{Rng, SimTime};
//! use bz_wsn::channel::{Network, NetworkConfig};
//! use bz_wsn::message::{DataType, Message, NodeId};
//!
//! let mut network = Network::new(NetworkConfig::telosb(), Rng::seed_from(7));
//! let msg = Message::new(NodeId::new(3), DataType::Temperature, 25.0, SimTime::ZERO);
//! network.send(SimTime::ZERO, msg);
//! let delivered = network.advance(SimTime::from_millis(50));
//! assert_eq!(delivered.len(), 1);
//! assert_eq!(delivered[0].message.data_type(), DataType::Temperature);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ac_schedule;
pub mod adaptive;
pub mod aggregate;
pub mod channel;
pub mod energy;
pub mod faults;
pub mod histogram;
pub mod message;
pub mod multihop;
pub mod platform;
pub mod retry;
pub mod sniffer;
pub mod timesync;
