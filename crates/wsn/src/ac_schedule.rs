//! Contention-aware transmission scheduling for AC-powered devices.
//!
//! AC devices have no energy budget, so they transmit on fixed periods —
//! but BubbleZERO packs dozens of them into one collision domain, and
//! naive deployments leave them phase-aligned (all boards boot together
//! and fire on the same second). §IV has the AC devices "adapt their
//! transmission schedules to alleviate channel contentions": when a
//! device's frame collides or finds the channel persistently busy, it
//! re-draws its phase offset within the period, desynchronizing the
//! population. Lower contention also means fewer retransmissions audible
//! to battery devices, indirectly saving their energy.

use bz_simcore::{Rng, SimDuration, SimTime};

use crate::channel::TxFailure;

/// A periodic transmission schedule with an adjustable phase.
#[derive(Debug, Clone)]
pub struct AcScheduler {
    period: SimDuration,
    offset: SimDuration,
    adaptive: bool,
    rng: Rng,
    reshuffles: u64,
}

impl AcScheduler {
    /// Creates a schedule firing every `period`, starting at phase zero
    /// (worst case: all devices aligned), with adaptation enabled.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn new(period: SimDuration, rng: Rng) -> Self {
        assert!(!period.is_zero(), "schedule period must be positive");
        Self {
            period,
            offset: SimDuration::ZERO,
            adaptive: true,
            rng,
            reshuffles: 0,
        }
    }

    /// Same schedule with adaptation disabled (the naive baseline).
    #[must_use]
    pub fn non_adaptive(mut self) -> Self {
        self.adaptive = false;
        self
    }

    /// The transmission period.
    #[must_use]
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// The current phase offset within the period.
    #[must_use]
    pub fn offset(&self) -> SimDuration {
        self.offset
    }

    /// How many times the phase has been re-drawn.
    #[must_use]
    pub fn reshuffles(&self) -> u64 {
        self.reshuffles
    }

    /// The first firing instant at or after `now`.
    #[must_use]
    pub fn next_fire(&self, now: SimTime) -> SimTime {
        let period = self.period.as_millis();
        let offset = self.offset.as_millis() % period;
        let now_ms = now.as_millis();
        let k = now_ms.saturating_sub(offset).div_ceil(period);
        let mut fire = offset + k * period;
        if fire < now_ms {
            fire += period;
        }
        SimTime::from_millis(fire)
    }

    /// Feeds back the outcome of this device's last transmission. On
    /// contention failures an adaptive schedule re-draws its phase
    /// uniformly within the period; fading losses don't reshuffle (moving
    /// in time does not help against fading).
    pub fn report_failure(&mut self, failure: TxFailure) {
        if !self.adaptive {
            return;
        }
        match failure {
            TxFailure::Collision | TxFailure::ChannelBusy => {
                self.offset = SimDuration::from_millis(self.rng.below(self.period.as_millis()));
                self.reshuffles += 1;
            }
            TxFailure::Fading => {}
        }
    }

    /// Serializes the dynamic schedule state (phase, random stream,
    /// reshuffle count). The period and adaptation flag are construction
    /// parameters, rebuilt on restore.
    pub fn save_state(&self, w: &mut bz_state::Writer) {
        use bz_state::Persist;
        self.offset.save(w);
        self.rng.save(w);
        w.put_u64(self.reshuffles);
    }

    /// Restores the dynamic state saved by [`Self::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a decode error if the bytes do not parse.
    pub fn load_state(&mut self, r: &mut bz_state::Reader<'_>) -> Result<(), bz_state::StateError> {
        use bz_state::Persist;
        self.offset = Persist::load(r)?;
        self.rng = Persist::load(r)?;
        self.reshuffles = r.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Network, NetworkConfig};
    use crate::message::{DataType, Message, NodeId};

    #[test]
    fn next_fire_respects_phase() {
        let s = AcScheduler::new(SimDuration::from_secs(1), Rng::seed_from(1));
        assert_eq!(s.next_fire(SimTime::ZERO), SimTime::ZERO);
        assert_eq!(s.next_fire(SimTime::from_millis(1)), SimTime::from_secs(1));
        assert_eq!(s.next_fire(SimTime::from_secs(1)), SimTime::from_secs(1));
    }

    #[test]
    fn reshuffle_moves_offset_within_period() {
        let mut s = AcScheduler::new(SimDuration::from_secs(1), Rng::seed_from(2));
        s.report_failure(TxFailure::Collision);
        assert!(s.offset() < s.period());
        assert_eq!(s.reshuffles(), 1);
    }

    #[test]
    fn non_adaptive_never_moves() {
        let mut s = AcScheduler::new(SimDuration::from_secs(1), Rng::seed_from(3)).non_adaptive();
        s.report_failure(TxFailure::Collision);
        s.report_failure(TxFailure::ChannelBusy);
        assert_eq!(s.offset(), SimDuration::ZERO);
        assert_eq!(s.reshuffles(), 0);
    }

    #[test]
    fn fading_does_not_reshuffle() {
        let mut s = AcScheduler::new(SimDuration::from_secs(1), Rng::seed_from(4));
        s.report_failure(TxFailure::Fading);
        assert_eq!(s.reshuffles(), 0);
    }

    /// End-to-end: a population of aligned AC devices on a shared channel,
    /// with and without schedule adaptation. Adaptation must improve the
    /// delivery ratio — this is the mechanism behind the paper's claim
    /// that it "reduces the packet loss and delay".
    fn run_population(adaptive: bool) -> f64 {
        let config = NetworkConfig {
            residual_loss: 0.0,
            ..NetworkConfig::telosb()
        };
        let mut network = Network::new(config, Rng::seed_from(100));
        let mut seed = Rng::seed_from(200);
        let period = SimDuration::from_millis(250);
        let mut schedulers: Vec<AcScheduler> = (0..24)
            .map(|_| {
                let s = AcScheduler::new(period, seed.fork());
                if adaptive {
                    s
                } else {
                    s.non_adaptive()
                }
            })
            .collect();
        let mut next: Vec<SimTime> = schedulers
            .iter()
            .map(|s| s.next_fire(SimTime::ZERO))
            .collect();

        let horizon = SimTime::from_secs(120);
        let mut now = SimTime::ZERO;
        while now < horizon {
            for (i, sched) in schedulers.iter().enumerate() {
                if next[i] <= now {
                    let msg = Message::on_channel(
                        NodeId::new(i as u16),
                        DataType::Temperature,
                        i as u16,
                        25.0,
                        now,
                    );
                    network.send(now, msg);
                    next[i] = sched.next_fire(now + SimDuration::from_millis(1));
                }
            }
            let _ = network.advance(now);
            for (msg, failure) in network.take_failures() {
                let idx = msg.source().get() as usize;
                schedulers[idx].report_failure(failure);
                next[idx] = schedulers[idx].next_fire(now + SimDuration::from_millis(1));
            }
            now += SimDuration::from_millis(1);
        }
        let _ = network.advance(horizon + SimDuration::from_secs(1));
        network.stats().delivery_ratio()
    }

    #[test]
    fn adaptation_improves_delivery_under_contention() {
        let naive = run_population(false);
        let adaptive = run_population(true);
        assert!(
            naive < 0.9,
            "aligned schedules should contend badly, got {naive}"
        );
        assert!(
            adaptive > naive + 0.1,
            "adaptive {adaptive} should clearly beat naive {naive}"
        );
        assert!(
            adaptive > 0.95,
            "adaptive should nearly eliminate loss, got {adaptive}"
        );
    }
}
