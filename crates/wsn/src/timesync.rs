//! On-demand time synchronization for the mote clocks.
//!
//! Every analysis in §V leans on timestamps ("log all control data with
//! time stamps"), and the paper cites on-demand time synchronization with
//! predictable accuracy for exactly this purpose. Real TelosB crystals
//! drift tens of parts per million, so a mote's local clock wanders off
//! the sink's by seconds per day unless corrected. This module models
//! drifting mote clocks and the classic two-way timestamp exchange
//! (request out, reply back, four timestamps) that estimates offset while
//! cancelling the symmetric part of the MAC delay.

use bz_simcore::{Rng, SimDuration, SimTime};

/// A mote's local oscillator: a fixed frequency error (ppm) plus a fixed
/// boot-time offset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftingClock {
    /// Frequency error in parts per million (positive runs fast).
    drift_ppm: f64,
    /// Offset at global time zero, in seconds.
    boot_offset_s: f64,
}

impl DriftingClock {
    /// Creates a clock with the given drift and boot offset.
    #[must_use]
    pub fn new(drift_ppm: f64, boot_offset_s: f64) -> Self {
        Self {
            drift_ppm,
            boot_offset_s,
        }
    }

    /// Draws a realistic TelosB crystal: ±40 ppm drift, up to ±1 s boot
    /// offset.
    #[must_use]
    pub fn typical_telosb(rng: &mut Rng) -> Self {
        Self {
            drift_ppm: rng.uniform(-40.0, 40.0),
            boot_offset_s: rng.uniform(-1.0, 1.0),
        }
    }

    /// The frequency error, ppm.
    #[must_use]
    pub fn drift_ppm(&self) -> f64 {
        self.drift_ppm
    }

    /// Local reading at global time `now`, in seconds.
    #[must_use]
    pub fn read_s(&self, now: SimTime) -> f64 {
        let t = now.as_secs_f64();
        self.boot_offset_s + t * (1.0 + self.drift_ppm * 1.0e-6)
    }

    /// Error of the local clock against global time at `now`, seconds.
    #[must_use]
    pub fn error_s(&self, now: SimTime) -> f64 {
        self.read_s(now) - now.as_secs_f64()
    }
}

/// Result of one two-way synchronization exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyncExchange {
    /// Estimated offset of the mote clock ahead of the reference, s.
    pub estimated_offset_s: f64,
    /// Round-trip time observed by the initiator, s.
    pub round_trip_s: f64,
}

/// Performs one two-way exchange at global time `now` between a reference
/// node (true time) and a mote with `clock`, where the two one-way MAC
/// delays are `delay_out` and `delay_back`.
///
/// Timestamps: reference sends at `t1`, mote receives at `t2` (local),
/// mote replies at `t3` (local), reference receives at `t4`. The standard
/// estimate `offset = ((t2 − t1) + (t3 − t4)) / 2` cancels the symmetric
/// delay component; asymmetry leaks into the error — the "predictable
/// accuracy" bound the cited work formalizes.
#[must_use]
pub fn two_way_exchange(
    clock: &DriftingClock,
    now: SimTime,
    delay_out: SimDuration,
    delay_back: SimDuration,
) -> SyncExchange {
    let t1 = now.as_secs_f64();
    let arrive = now + delay_out;
    let t2 = clock.read_s(arrive);
    // The mote replies immediately (processing time folded into delays).
    let t3 = clock.read_s(arrive);
    let t4 = (arrive + delay_back).as_secs_f64();
    SyncExchange {
        estimated_offset_s: ((t2 - t1) + (t3 - t4)) / 2.0,
        round_trip_s: (t4 - t1),
    }
}

/// A mote-side synchronization agent: periodically re-estimates its
/// offset (and, from consecutive exchanges, its drift) so timestamps can
/// be corrected to reference time.
#[derive(Debug, Clone)]
pub struct SyncAgent {
    clock: DriftingClock,
    /// Latest offset estimate, s.
    offset_estimate_s: Option<f64>,
    /// Estimated drift from the last two exchanges, ppm.
    drift_estimate_ppm: Option<f64>,
    /// Local time of the last exchange, s.
    last_exchange_local_s: Option<f64>,
}

impl SyncAgent {
    /// Creates an agent for a mote with the given clock.
    #[must_use]
    pub fn new(clock: DriftingClock) -> Self {
        Self {
            clock,
            offset_estimate_s: None,
            drift_estimate_ppm: None,
            last_exchange_local_s: None,
        }
    }

    /// The underlying clock model.
    #[must_use]
    pub fn clock(&self) -> &DriftingClock {
        &self.clock
    }

    /// Runs an exchange at global `now` with the given one-way delays and
    /// folds the result into the agent's estimates.
    pub fn synchronize(
        &mut self,
        now: SimTime,
        delay_out: SimDuration,
        delay_back: SimDuration,
    ) -> SyncExchange {
        let exchange = two_way_exchange(&self.clock, now, delay_out, delay_back);
        let local_now = self.clock.read_s(now + delay_out);
        if let (Some(previous_offset), Some(previous_local)) =
            (self.offset_estimate_s, self.last_exchange_local_s)
        {
            let elapsed_local = local_now - previous_local;
            if elapsed_local > 1.0 {
                let drift = (exchange.estimated_offset_s - previous_offset) / elapsed_local * 1.0e6;
                self.drift_estimate_ppm = Some(drift);
            }
        }
        self.offset_estimate_s = Some(exchange.estimated_offset_s);
        self.last_exchange_local_s = Some(local_now);
        exchange
    }

    /// Corrects a local timestamp (seconds on the mote clock) to reference
    /// time using the current offset and drift estimates. Returns the raw
    /// local time if no exchange has happened yet.
    #[must_use]
    pub fn correct_s(&self, local_s: f64) -> f64 {
        let Some(offset) = self.offset_estimate_s else {
            return local_s;
        };
        let mut corrected = local_s - offset;
        if let (Some(drift_ppm), Some(anchor)) =
            (self.drift_estimate_ppm, self.last_exchange_local_s)
        {
            corrected -= (local_s - anchor) * drift_ppm * 1.0e-6;
        }
        corrected
    }

    /// The latest drift estimate, ppm.
    #[must_use]
    pub fn drift_estimate_ppm(&self) -> Option<f64> {
        self.drift_estimate_ppm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(millis: u64) -> SimDuration {
        SimDuration::from_millis(millis)
    }

    #[test]
    fn clock_drifts_as_specified() {
        let clock = DriftingClock::new(40.0, 0.5);
        // After one day a 40 ppm clock gains ~3.46 s on top of its offset.
        let day = SimTime::from_hours(24);
        let error = clock.error_s(day);
        assert!((error - (0.5 + 3.456)).abs() < 1e-3, "error {error}");
    }

    #[test]
    fn symmetric_exchange_recovers_the_offset_exactly() {
        let clock = DriftingClock::new(25.0, 0.8);
        let now = SimTime::from_hours(2);
        let exchange = two_way_exchange(&clock, now, ms(5), ms(5));
        let truth = clock.error_s(now + ms(5));
        assert!(
            (exchange.estimated_offset_s - truth).abs() < 1e-6,
            "estimate {} vs truth {truth}",
            exchange.estimated_offset_s
        );
        assert!((exchange.round_trip_s - 0.010).abs() < 1e-9);
    }

    #[test]
    fn asymmetry_bounds_the_error() {
        // Classic result: the offset error is at most half the delay
        // asymmetry.
        let clock = DriftingClock::new(0.0, 0.0);
        let now = SimTime::from_secs(100);
        let exchange = two_way_exchange(&clock, now, ms(2), ms(10));
        let asymmetry = 0.008;
        assert!(
            exchange.estimated_offset_s.abs() <= asymmetry / 2.0 + 1e-9,
            "error {} beyond bound",
            exchange.estimated_offset_s
        );
    }

    #[test]
    fn agent_corrects_timestamps_after_sync() {
        let clock = DriftingClock::new(30.0, -0.4);
        let mut agent = SyncAgent::new(clock);
        let now = SimTime::from_hours(1);
        agent.synchronize(now, ms(4), ms(4));
        // A sample taken shortly after the exchange.
        let sample_global = now + SimDuration::from_secs(10);
        let local = clock.read_s(sample_global);
        let corrected = agent.correct_s(local);
        assert!(
            (corrected - sample_global.as_secs_f64()).abs() < 2.0e-3,
            "corrected {corrected} vs true {}",
            sample_global.as_secs_f64()
        );
    }

    #[test]
    fn drift_estimate_converges_over_two_exchanges() {
        let clock = DriftingClock::new(35.0, 0.1);
        let mut agent = SyncAgent::new(clock);
        agent.synchronize(SimTime::from_mins(10), ms(5), ms(5));
        assert_eq!(agent.drift_estimate_ppm(), None);
        agent.synchronize(SimTime::from_mins(40), ms(5), ms(5));
        let drift = agent.drift_estimate_ppm().expect("two exchanges");
        assert!((drift - 35.0).abs() < 2.0, "estimated {drift} ppm");
    }

    #[test]
    fn drift_corrected_timestamps_stay_accurate_between_syncs() {
        let clock = DriftingClock::new(35.0, 0.1);
        let mut agent = SyncAgent::new(clock);
        agent.synchronize(SimTime::from_mins(10), ms(5), ms(5));
        agent.synchronize(SimTime::from_mins(40), ms(5), ms(5));
        // Twenty minutes later, an uncorrected clock would be ~42 ms
        // further off; the drift-corrected timestamp stays in the
        // low-millisecond range.
        let later = SimTime::from_mins(60);
        let corrected = agent.correct_s(clock.read_s(later));
        let error = (corrected - later.as_secs_f64()).abs();
        assert!(error < 0.01, "residual error {error}");
    }

    #[test]
    fn uncorrected_agent_passes_timestamps_through() {
        let clock = DriftingClock::new(10.0, 0.2);
        let agent = SyncAgent::new(clock);
        assert_eq!(agent.correct_s(123.456), 123.456);
    }

    #[test]
    fn typical_telosb_is_seed_deterministic() {
        let a = DriftingClock::typical_telosb(&mut Rng::seed_from(9));
        let b = DriftingClock::typical_telosb(&mut Rng::seed_from(9));
        assert_eq!(a, b);
        assert!(a.drift_ppm().abs() <= 40.0);
    }
}
