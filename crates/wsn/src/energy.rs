//! Battery energy accounting and lifetime projection.
//!
//! The paper's energy profile: reading an on-board sensor costs ~0.3 mW
//! while transmitting costs ~54 mW, and "the battery powered nodes can
//! sustain longer than 3.2 years with 2 common AA batteries" under the
//! adaptive schedule, versus "0.7 years merely" with the fixed 2 s period.
//! This module reproduces that arithmetic from first principles: a
//! per-transmission energy (radio wake-up + CSMA + frame airtime at
//! 54 mW), a sampling energy, and a sleep-state base load.

use bz_simcore::{SimDuration, SimTime};

/// Seconds per year (Julian).
pub const SECONDS_PER_YEAR: f64 = 31_557_600.0;

/// Power and energy constants of a TelosB-class battery device.
///
/// # Example
///
/// The paper's headline lifetime comparison:
///
/// ```
/// use bz_simcore::SimDuration;
/// use bz_wsn::energy::EnergyModel;
///
/// let model = EnergyModel::telosb_2aa();
/// let fixed = model.lifetime_years(
///     SimDuration::from_secs(2),
///     SimDuration::from_secs(2),
/// );
/// let adaptive = model.lifetime_years(
///     SimDuration::from_secs(2),
///     SimDuration::from_secs(48),
/// );
/// assert!((fixed - 0.7).abs() < 0.1);
/// assert!((adaptive - 3.2).abs() < 0.3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Radio power while transmitting, W (the paper's 54 mW).
    pub tx_power_w: f64,
    /// Total radio-active time per transmission, s: wake-up, CSMA,
    /// the ~4 ms frame, and the acknowledgement window.
    pub tx_duration_s: f64,
    /// Power while sampling a sensor, W (the paper's 0.3 mW).
    pub sample_power_w: f64,
    /// Duration of one sensor sampling, s.
    pub sample_duration_s: f64,
    /// Always-on sleep/LPL base load, W.
    pub base_power_w: f64,
    /// Usable battery energy, J (2 AA cells ≈ 2500 mAh at 3 V).
    pub battery_j: f64,
}

impl EnergyModel {
    /// TelosB with 2×AA, calibrated so a fixed 2 s schedule yields
    /// ~0.7 years and the adaptive schedule's ~48 s mean period yields
    /// ~3.2 years, as reported in §V-C.
    #[must_use]
    pub fn telosb_2aa() -> Self {
        Self {
            tx_power_w: 54.0e-3,
            tx_duration_s: 0.037,
            sample_power_w: 0.3e-3,
            sample_duration_s: 0.010,
            base_power_w: 0.222e-3,
            battery_j: 27_000.0,
        }
    }

    /// Energy of one transmission, J.
    #[must_use]
    pub fn tx_energy_j(&self) -> f64 {
        self.tx_power_w * self.tx_duration_s
    }

    /// Energy of one sensor sampling, J.
    #[must_use]
    pub fn sample_energy_j(&self) -> f64 {
        self.sample_power_w * self.sample_duration_s
    }

    /// Average power of a device that samples every `sampling_period` and
    /// transmits every `send_period`, W.
    ///
    /// # Panics
    ///
    /// Panics if either period is zero.
    #[must_use]
    pub fn average_power_w(&self, sampling_period: SimDuration, send_period: SimDuration) -> f64 {
        assert!(!sampling_period.is_zero() && !send_period.is_zero());
        self.base_power_w
            + self.sample_energy_j() / sampling_period.as_secs_f64()
            + self.tx_energy_j() / send_period.as_secs_f64()
    }

    /// Projected battery lifetime in years at the given duty cycle.
    #[must_use]
    pub fn lifetime_years(&self, sampling_period: SimDuration, send_period: SimDuration) -> f64 {
        self.battery_j / self.average_power_w(sampling_period, send_period) / SECONDS_PER_YEAR
    }
}

/// A per-device energy ledger, integrated event by event during a trial.
#[derive(Debug, Clone)]
pub struct EnergyLedger {
    model: EnergyModel,
    consumed_j: f64,
    base_accounted_until: SimTime,
    transmissions: u64,
    samples: u64,
}

impl EnergyLedger {
    /// Creates a ledger starting at time zero with a full battery.
    #[must_use]
    pub fn new(model: EnergyModel) -> Self {
        Self {
            model,
            consumed_j: 0.0,
            base_accounted_until: SimTime::ZERO,
            transmissions: 0,
            samples: 0,
        }
    }

    /// The model in use.
    #[must_use]
    pub fn model(&self) -> &EnergyModel {
        &self.model
    }

    /// Accounts base load up to `now` (idempotent for non-advancing calls).
    pub fn advance(&mut self, now: SimTime) {
        let dt = now.since(self.base_accounted_until).as_secs_f64();
        self.consumed_j += self.model.base_power_w * dt;
        self.base_accounted_until = self.base_accounted_until.max(now);
    }

    /// Records one sensor sampling at `now`.
    pub fn record_sample(&mut self, now: SimTime) {
        self.advance(now);
        self.consumed_j += self.model.sample_energy_j();
        self.samples += 1;
    }

    /// Records one transmission at `now`.
    pub fn record_transmission(&mut self, now: SimTime) {
        self.advance(now);
        self.consumed_j += self.model.tx_energy_j();
        self.transmissions += 1;
    }

    /// Total energy consumed so far, J.
    #[must_use]
    pub fn consumed_j(&self) -> f64 {
        self.consumed_j
    }

    /// True once the accounted consumption exceeds the usable battery
    /// energy — the mote browns out and goes silent until a battery swap.
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.consumed_j >= self.model.battery_j
    }

    /// Transmissions recorded.
    #[must_use]
    pub fn transmissions(&self) -> u64 {
        self.transmissions
    }

    /// Samples recorded.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Extrapolated battery lifetime in years, based on the average power
    /// drawn between time zero and the last accounted instant. `None`
    /// until any time has been accounted.
    #[must_use]
    pub fn projected_lifetime_years(&self) -> Option<f64> {
        let elapsed = self.base_accounted_until.as_secs_f64();
        if elapsed <= 0.0 {
            return None;
        }
        let avg_power = self.consumed_j / elapsed;
        Some(self.model.battery_j / avg_power / SECONDS_PER_YEAR)
    }

    /// Serializes the dynamic ledger state (consumption, counters). The
    /// energy model is rebuilt from config on restore.
    pub fn save_state(&self, w: &mut bz_state::Writer) {
        use bz_state::Persist;
        w.put_f64(self.consumed_j);
        self.base_accounted_until.save(w);
        w.put_u64(self.transmissions);
        w.put_u64(self.samples);
    }

    /// Restores the dynamic state saved by [`Self::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a decode error if the bytes do not parse.
    pub fn load_state(&mut self, r: &mut bz_state::Reader<'_>) -> Result<(), bz_state::StateError> {
        use bz_state::Persist;
        self.consumed_j = r.take_f64()?;
        self.base_accounted_until = Persist::load(r)?;
        self.transmissions = r.take_u64()?;
        self.samples = r.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnergyModel {
        EnergyModel::telosb_2aa()
    }

    #[test]
    fn fixed_schedule_lifetime_matches_paper() {
        // Fixed T_snd = T_spl = 2 s → ~0.7 years.
        let years = model().lifetime_years(SimDuration::from_secs(2), SimDuration::from_secs(2));
        assert!((years - 0.7).abs() < 0.07, "got {years}");
    }

    #[test]
    fn adaptive_schedule_lifetime_matches_paper() {
        // Adaptive average T_snd ≈ 48 s → ~3.2 years.
        let years = model().lifetime_years(SimDuration::from_secs(2), SimDuration::from_secs(48));
        assert!((years - 3.2).abs() < 0.3, "got {years}");
    }

    #[test]
    fn always_on_radio_would_last_under_a_week() {
        // Sanity against the paper's "otherwise, batteries last less than
        // one week" for an always-on radio (RX draw ≈ TX draw on CC2420).
        let m = model();
        let always_on_w = m.tx_power_w;
        let days = m.battery_j / always_on_w / 86_400.0;
        assert!(days < 7.0, "got {days} days");
    }

    #[test]
    fn tx_dominates_sampling() {
        let m = model();
        // The premise of duty-cycling transmissions rather than sampling.
        assert!(m.tx_energy_j() > 100.0 * m.sample_energy_j());
    }

    #[test]
    fn average_power_decomposes() {
        let m = model();
        let p = m.average_power_w(SimDuration::from_secs(2), SimDuration::from_secs(64));
        let expected = m.base_power_w + m.sample_energy_j() / 2.0 + m.tx_energy_j() / 64.0;
        assert!((p - expected).abs() < 1e-15);
    }

    #[test]
    fn ledger_matches_closed_form() {
        let m = model();
        let mut ledger = EnergyLedger::new(m);
        // One hour: sample every 2 s, transmit every 64 s.
        let mut t = SimTime::ZERO;
        for i in 1..=1_800u64 {
            t = SimTime::from_secs(i * 2);
            ledger.record_sample(t);
            if i % 32 == 0 {
                ledger.record_transmission(t);
            }
        }
        ledger.advance(t);
        let avg = ledger.consumed_j() / t.as_secs_f64();
        let closed = m.average_power_w(SimDuration::from_secs(2), SimDuration::from_secs(64));
        assert!((avg - closed).abs() / closed < 0.02, "{avg} vs {closed}");
        assert_eq!(ledger.samples(), 1_800);
        assert_eq!(ledger.transmissions(), 56);
    }

    #[test]
    fn ledger_projection_consistency() {
        let m = model();
        let mut ledger = EnergyLedger::new(m);
        assert_eq!(ledger.projected_lifetime_years(), None);
        for i in 1..=100u64 {
            ledger.record_sample(SimTime::from_secs(i * 2));
            ledger.record_transmission(SimTime::from_secs(i * 2));
        }
        let years = ledger.projected_lifetime_years().unwrap();
        let closed = m.lifetime_years(SimDuration::from_secs(2), SimDuration::from_secs(2));
        assert!(
            (years - closed).abs() / closed < 0.05,
            "{years} vs {closed}"
        );
    }

    #[test]
    fn advance_is_monotone_and_idempotent() {
        let mut ledger = EnergyLedger::new(model());
        ledger.advance(SimTime::from_secs(100));
        let e1 = ledger.consumed_j();
        ledger.advance(SimTime::from_secs(100));
        assert_eq!(ledger.consumed_j(), e1);
        // Going "backwards" accounts nothing more.
        ledger.advance(SimTime::from_secs(50));
        assert_eq!(ledger.consumed_j(), e1);
    }

    #[test]
    fn lifetime_ratio_adaptive_vs_fixed() {
        // The headline claim: ~4.5× longer life from the adaptation.
        let m = model();
        let fixed = m.lifetime_years(SimDuration::from_secs(2), SimDuration::from_secs(2));
        let adaptive = m.lifetime_years(SimDuration::from_secs(2), SimDuration::from_secs(48));
        let ratio = adaptive / fixed;
        assert!((ratio - 3.2 / 0.7).abs() < 0.6, "ratio {ratio}");
    }
}
