//! Network-layer fault injection: dead motes and degraded links.
//!
//! The paper's §V deployment lessons include motes that die outright,
//! batteries that run flat mid-trial, and individual radios whose link
//! quality collapses (antenna knocked, mote moved behind a cabinet). This
//! module scripts those failures deterministically, mirroring
//! `bz_thermal::faults` for actuators and `bz_thermal::sensors` for
//! sensing elements.

use bz_simcore::SimTime;

use crate::message::NodeId;

/// A network-layer malfunction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WsnFault {
    /// The mote stops entirely: no sampling, no transmissions.
    NodeDead {
        /// Which mote.
        node: NodeId,
    },
    /// The battery hits its cutoff voltage: electrically the same silence
    /// as [`WsnFault::NodeDead`], but `repaired_at` models a battery swap.
    BatteryExhausted {
        /// Which mote.
        node: NodeId,
    },
    /// Persistent elevated loss on this mote's link (on top of the
    /// channel's residual fading).
    LinkLoss {
        /// Which mote.
        node: NodeId,
        /// Per-frame loss probability in `[0, 1]`.
        loss: f64,
    },
}

impl WsnFault {
    /// Stable name for metric keys (`fault.<kind>.active`).
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            Self::NodeDead { .. } => "node_dead",
            Self::BatteryExhausted { .. } => "battery_exhausted",
            Self::LinkLoss { .. } => "link_loss",
        }
    }

    /// The mote this fault attaches to.
    #[must_use]
    pub fn node(&self) -> NodeId {
        match *self {
            Self::NodeDead { node }
            | Self::BatteryExhausted { node }
            | Self::LinkLoss { node, .. } => node,
        }
    }
}

/// One scheduled network fault window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WsnFaultEvent {
    /// When the fault appears.
    pub at: SimTime,
    /// When it is repaired (`None` = never).
    pub repaired_at: Option<SimTime>,
    /// What breaks.
    pub fault: WsnFault,
}

impl WsnFaultEvent {
    /// True if the fault is active at `now`.
    #[must_use]
    pub fn is_active(&self, now: SimTime) -> bool {
        now >= self.at && self.repaired_at.is_none_or(|r| now < r)
    }
}

/// A deterministic network-fault schedule.
///
/// All queries are order-independent — node death is an OR over active
/// events, link loss a max — so permuting the event list never changes
/// behaviour.
#[derive(Debug, Clone, Default)]
pub struct WsnFaultSchedule {
    events: Vec<WsnFaultEvent>,
}

impl WsnFaultSchedule {
    /// Builds a schedule from events.
    #[must_use]
    pub fn new(events: Vec<WsnFaultEvent>) -> Self {
        Self { events }
    }

    /// No faults.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// The scheduled events.
    #[must_use]
    pub fn events(&self) -> &[WsnFaultEvent] {
        &self.events
    }

    /// True if any fault is active at `now`.
    #[must_use]
    pub fn any_active(&self, now: SimTime) -> bool {
        self.events.iter().any(|e| e.is_active(now))
    }

    /// True if `node` is silent (dead or battery-exhausted) at `now`.
    #[must_use]
    pub fn node_dead(&self, node: NodeId, now: SimTime) -> bool {
        self.events.iter().any(|e| {
            e.is_active(now)
                && matches!(
                    e.fault,
                    WsnFault::NodeDead { node: n } | WsnFault::BatteryExhausted { node: n }
                        if n == node
                )
        })
    }

    /// Extra per-frame loss probability for `node`'s link at `now` (the
    /// max over active elevations; 0.0 when healthy).
    #[must_use]
    pub fn link_loss(&self, node: NodeId, now: SimTime) -> f64 {
        self.events
            .iter()
            .filter(|e| e.is_active(now))
            .filter_map(|e| match e.fault {
                WsnFault::LinkLoss { node: n, loss } if n == node => Some(loss),
                _ => None,
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dead_and_exhausted_nodes_are_silent_within_their_windows() {
        let schedule = WsnFaultSchedule::new(vec![
            WsnFaultEvent {
                at: SimTime::from_mins(10),
                repaired_at: None,
                fault: WsnFault::NodeDead {
                    node: NodeId::new(7),
                },
            },
            WsnFaultEvent {
                at: SimTime::from_mins(5),
                repaired_at: Some(SimTime::from_mins(15)),
                fault: WsnFault::BatteryExhausted {
                    node: NodeId::new(8),
                },
            },
        ]);
        assert!(!schedule.node_dead(NodeId::new(7), SimTime::from_mins(9)));
        assert!(schedule.node_dead(NodeId::new(7), SimTime::from_mins(10)));
        assert!(schedule.node_dead(NodeId::new(8), SimTime::from_mins(14)));
        // Battery swap brings node 8 back.
        assert!(!schedule.node_dead(NodeId::new(8), SimTime::from_mins(15)));
        assert!(!schedule.node_dead(NodeId::new(9), SimTime::from_mins(12)));
    }

    #[test]
    fn link_loss_takes_the_max_of_overlapping_elevations() {
        let mk = |loss: f64| WsnFaultEvent {
            at: SimTime::ZERO,
            repaired_at: None,
            fault: WsnFault::LinkLoss {
                node: NodeId::new(3),
                loss,
            },
        };
        let forward = WsnFaultSchedule::new(vec![mk(0.2), mk(0.6)]);
        let reverse = WsnFaultSchedule::new(vec![mk(0.6), mk(0.2)]);
        let now = SimTime::from_secs(1);
        assert_eq!(forward.link_loss(NodeId::new(3), now), 0.6);
        assert_eq!(reverse.link_loss(NodeId::new(3), now), 0.6);
        assert_eq!(forward.link_loss(NodeId::new(4), now), 0.0);
    }
}
