//! Multi-hop, type-based multicast — the paper's stated future work.
//!
//! §IV-A: "When multi-hop communication must be concerned in large-scale
//! environments, we can potentially extend our design by forming 'type'
//! based multicast groups and routing messages with existing ad-hoc
//! multicast approaches. We leave it as an important future work of this
//! paper." — and §VII again names multihop networking as the path to
//! "building level deployment".
//!
//! This module implements that extension: a geometric radio topology, a
//! per-source shortest-path (BFS) tree, and multicast forwarding pruned to
//! the branches that lead to subscribers of the message's type. The
//! figure of merit is the number of transmissions per disseminated sample
//! compared against network-wide flooding — the savings that make
//! building-scale deployments of the typed-broadcast architecture viable.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::message::{DataType, NodeId};

/// A node with a fixed position, m.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// The node.
    pub node: NodeId,
    /// X coordinate, m.
    pub x: f64,
    /// Y coordinate, m.
    pub y: f64,
}

/// Outcome of routing one sample to a type's subscribers.
#[derive(Debug, Clone, PartialEq)]
pub struct MulticastOutcome {
    /// Subscribers actually reached.
    pub reached: Vec<NodeId>,
    /// Subscribers with no path from the source.
    pub unreachable: Vec<NodeId>,
    /// Number of radio transmissions performed (source + forwarders).
    pub transmissions: usize,
    /// Longest hop count to any reached subscriber.
    pub max_hops: usize,
}

/// A multi-hop deployment: placed nodes, a radio range, and per-node
/// type subscriptions.
///
/// # Example
///
/// ```
/// use bz_wsn::message::{DataType, NodeId};
/// use bz_wsn::multihop::MultihopNetwork;
///
/// let mut net = MultihopNetwork::new(50.0);
/// net.place(NodeId::new(1), 0.0, 0.0);
/// net.place(NodeId::new(2), 40.0, 0.0);
/// net.place(NodeId::new(3), 80.0, 0.0);
/// net.subscribe(NodeId::new(3), DataType::Temperature);
/// let out = net.multicast(NodeId::new(1), DataType::Temperature).unwrap();
/// assert_eq!(out.reached, vec![NodeId::new(3)]);
/// assert_eq!(out.max_hops, 2); // relayed through node 2
/// ```
#[derive(Debug, Clone, Default)]
pub struct MultihopNetwork {
    placements: Vec<Placement>,
    range_m: f64,
    subscriptions: HashMap<NodeId, HashSet<DataType>>,
}

impl MultihopNetwork {
    /// Creates an empty deployment with the given radio range (the paper's
    /// TelosB motes reach ~50 m indoors).
    ///
    /// # Panics
    ///
    /// Panics if `range_m` is not positive.
    #[must_use]
    pub fn new(range_m: f64) -> Self {
        assert!(range_m > 0.0, "radio range must be positive");
        Self {
            placements: Vec::new(),
            range_m,
            subscriptions: HashMap::new(),
        }
    }

    /// Places (or moves) a node.
    pub fn place(&mut self, node: NodeId, x: f64, y: f64) {
        if let Some(existing) = self.placements.iter_mut().find(|p| p.node == node) {
            existing.x = x;
            existing.y = y;
        } else {
            self.placements.push(Placement { node, x, y });
        }
    }

    /// Subscribes `node` to messages of `data_type`.
    pub fn subscribe(&mut self, node: NodeId, data_type: DataType) {
        self.subscriptions
            .entry(node)
            .or_default()
            .insert(data_type);
    }

    /// Number of placed nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.placements.len()
    }

    /// True when no nodes are placed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }

    /// Nodes within radio range of `node` (excluding itself).
    #[must_use]
    pub fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let Some(origin) = self.placements.iter().find(|p| p.node == node) else {
            return Vec::new();
        };
        self.placements
            .iter()
            .filter(|p| p.node != node)
            .filter(|p| {
                let dx = p.x - origin.x;
                let dy = p.y - origin.y;
                (dx * dx + dy * dy).sqrt() <= self.range_m
            })
            .map(|p| p.node)
            .collect()
    }

    /// BFS hop distances and parents from `source`.
    fn bfs(&self, source: NodeId) -> HashMap<NodeId, (usize, Option<NodeId>)> {
        let mut visited: HashMap<NodeId, (usize, Option<NodeId>)> = HashMap::new();
        let mut queue = VecDeque::new();
        visited.insert(source, (0, None));
        queue.push_back(source);
        while let Some(current) = queue.pop_front() {
            let (hops, _) = visited[&current];
            for neighbor in self.neighbors(current) {
                visited.entry(neighbor).or_insert_with(|| {
                    queue.push_back(neighbor);
                    (hops + 1, Some(current))
                });
            }
        }
        visited
    }

    /// True if every placed node can reach every other.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        match self.placements.first() {
            None => true,
            Some(first) => self.bfs(first.node).len() == self.placements.len(),
        }
    }

    /// Routes one `data_type` sample from `source` to all subscribers over
    /// the pruned shortest-path tree. Returns `None` if `source` is not
    /// placed.
    #[must_use]
    pub fn multicast(&self, source: NodeId, data_type: DataType) -> Option<MulticastOutcome> {
        if !self.placements.iter().any(|p| p.node == source) {
            return None;
        }
        let tree = self.bfs(source);
        let subscribers: Vec<NodeId> = self
            .subscriptions
            .iter()
            .filter(|(node, types)| **node != source && types.contains(&data_type))
            .map(|(node, _)| *node)
            .collect();

        let mut reached = Vec::new();
        let mut unreachable = Vec::new();
        // The set of nodes that must transmit: the source plus every
        // interior node on a path to some reachable subscriber.
        let mut transmitters: HashSet<NodeId> = HashSet::new();
        let mut max_hops = 0;
        for &subscriber in &subscribers {
            match tree.get(&subscriber) {
                None => unreachable.push(subscriber),
                Some(&(hops, _)) => {
                    reached.push(subscriber);
                    max_hops = max_hops.max(hops);
                    // Walk the parent chain: every node except the
                    // subscriber itself forwards once.
                    let mut cursor = subscriber;
                    while let Some(&(_, Some(parent))) = tree.get(&cursor) {
                        transmitters.insert(parent);
                        cursor = parent;
                    }
                }
            }
        }
        reached.sort_by_key(|n| n.get());
        unreachable.sort_by_key(|n| n.get());
        let transmissions = if reached.is_empty() {
            0
        } else {
            transmitters.len()
        };
        Some(MulticastOutcome {
            reached,
            unreachable,
            transmissions,
            max_hops,
        })
    }

    /// The flooding baseline: every node that hears the sample rebroadcasts
    /// it once (classic network-wide flood with duplicate suppression).
    /// Returns the number of transmissions and the network radius from
    /// `source`, or `None` if `source` is not placed.
    #[must_use]
    pub fn flood(&self, source: NodeId) -> Option<(usize, usize)> {
        if !self.placements.iter().any(|p| p.node == source) {
            return None;
        }
        let tree = self.bfs(source);
        let radius = tree.values().map(|&(hops, _)| hops).max().unwrap_or(0);
        // Every reached node transmits exactly once (including the source).
        Some((tree.len(), radius))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3×4 building-floor grid, 20 m node spacing, 25 m radio range —
    /// only orthogonal neighbors hear each other.
    fn grid() -> MultihopNetwork {
        let mut net = MultihopNetwork::new(25.0);
        for row in 0..3u16 {
            for col in 0..4u16 {
                net.place(
                    NodeId::new(row * 4 + col),
                    f64::from(col) * 20.0,
                    f64::from(row) * 20.0,
                );
            }
        }
        net
    }

    #[test]
    fn grid_is_connected_with_orthogonal_links() {
        let net = grid();
        assert_eq!(net.len(), 12);
        assert!(net.is_connected());
        // A corner node has exactly two neighbors.
        assert_eq!(net.neighbors(NodeId::new(0)).len(), 2);
        // An interior node has four.
        assert_eq!(net.neighbors(NodeId::new(5)).len(), 4);
    }

    #[test]
    fn multicast_reaches_subscriber_across_hops() {
        let mut net = grid();
        // Source at one corner (0,0), subscriber at the far corner (11).
        net.subscribe(NodeId::new(11), DataType::Temperature);
        let out = net
            .multicast(NodeId::new(0), DataType::Temperature)
            .unwrap();
        assert_eq!(out.reached, vec![NodeId::new(11)]);
        assert!(out.unreachable.is_empty());
        // Manhattan distance 3+2 = 5 hops.
        assert_eq!(out.max_hops, 5);
        // A single path: 5 transmitters (source + 4 relays).
        assert_eq!(out.transmissions, 5);
    }

    #[test]
    fn pruned_tree_beats_flooding() {
        let mut net = grid();
        net.subscribe(NodeId::new(11), DataType::Temperature);
        net.subscribe(NodeId::new(7), DataType::Temperature);
        let multicast = net
            .multicast(NodeId::new(0), DataType::Temperature)
            .unwrap();
        let (flood_tx, _) = net.flood(NodeId::new(0)).unwrap();
        assert_eq!(flood_tx, 12, "flooding transmits at every node");
        assert!(
            multicast.transmissions < flood_tx / 2,
            "pruning should save more than half: {} vs {flood_tx}",
            multicast.transmissions
        );
    }

    #[test]
    fn non_subscribed_types_cost_nothing() {
        let mut net = grid();
        net.subscribe(NodeId::new(11), DataType::Co2);
        let out = net
            .multicast(NodeId::new(0), DataType::Temperature)
            .unwrap();
        assert!(out.reached.is_empty());
        assert_eq!(out.transmissions, 0);
    }

    #[test]
    fn partitioned_subscriber_is_reported_unreachable() {
        let mut net = grid();
        // An island node far outside radio range.
        net.place(NodeId::new(99), 500.0, 500.0);
        net.subscribe(NodeId::new(99), DataType::Humidity);
        net.subscribe(NodeId::new(5), DataType::Humidity);
        assert!(!net.is_connected());
        let out = net.multicast(NodeId::new(0), DataType::Humidity).unwrap();
        assert_eq!(out.reached, vec![NodeId::new(5)]);
        assert_eq!(out.unreachable, vec![NodeId::new(99)]);
    }

    #[test]
    fn single_hop_degenerates_to_one_broadcast() {
        // Everyone in range of everyone: the paper's original deployment.
        let mut net = MultihopNetwork::new(100.0);
        for i in 0..5u16 {
            net.place(NodeId::new(i), f64::from(i) * 10.0, 0.0);
        }
        for i in 1..5u16 {
            net.subscribe(NodeId::new(i), DataType::FlowRate);
        }
        let out = net.multicast(NodeId::new(0), DataType::FlowRate).unwrap();
        assert_eq!(out.reached.len(), 4);
        assert_eq!(out.max_hops, 1);
        assert_eq!(
            out.transmissions, 1,
            "a single broadcast serves all subscribers, as in the lab"
        );
    }

    #[test]
    fn source_is_not_its_own_subscriber() {
        let mut net = grid();
        net.subscribe(NodeId::new(0), DataType::Temperature);
        let out = net
            .multicast(NodeId::new(0), DataType::Temperature)
            .unwrap();
        assert!(out.reached.is_empty());
    }

    #[test]
    fn unknown_source_is_none() {
        let net = grid();
        assert!(net.multicast(NodeId::new(77), DataType::Co2).is_none());
        assert!(net.flood(NodeId::new(77)).is_none());
    }

    #[test]
    fn placing_twice_moves_the_node() {
        let mut net = MultihopNetwork::new(25.0);
        net.place(NodeId::new(1), 0.0, 0.0);
        net.place(NodeId::new(2), 20.0, 0.0);
        assert_eq!(net.neighbors(NodeId::new(1)).len(), 1);
        net.place(NodeId::new(2), 500.0, 0.0);
        assert_eq!(net.len(), 2);
        assert!(net.neighbors(NodeId::new(1)).is_empty());
    }

    #[test]
    #[should_panic(expected = "range must be positive")]
    fn zero_range_is_rejected() {
        let _ = MultihopNetwork::new(0.0);
    }
}
