//! The shared 802.15.4 broadcast channel with CSMA/CA contention.
//!
//! All BubbleZERO devices are within single-hop range ("TelosB motes can
//! reliably communicate up to 50 m in the indoor environment"), so the
//! channel is a single collision domain. A transmission occupies the
//! medium for its frame airtime at 250 kbps; senders perform carrier
//! sensing with binary-exponential backoff; overlapping transmissions
//! corrupt each other (no capture effect); residual losses model fading
//! and interference.

use bz_simcore::{Rng, SimDuration, SimTime};

use crate::faults::WsnFaultSchedule;
use crate::message::Message;

/// Channel and MAC parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// PHY bit rate, bits/s (802.15.4: 250 kbps).
    pub bitrate_bps: u64,
    /// PHY + MAC framing overhead added to every payload, bytes
    /// (preamble, SFD, length, MAC header, FCS).
    pub overhead_bytes: usize,
    /// Probability that an uncollided frame is still lost (fading, ...).
    pub residual_loss: f64,
    /// Maximum CSMA backoff attempts before the frame is dropped.
    pub max_backoffs: u32,
    /// One backoff unit, ms (the 802.15.4 unit period quantized to the
    /// simulation clock).
    pub backoff_unit_ms: u64,
}

impl NetworkConfig {
    /// TelosB / CC2420-style defaults.
    #[must_use]
    pub fn telosb() -> Self {
        Self {
            bitrate_bps: 250_000,
            overhead_bytes: 23,
            residual_loss: 0.02,
            max_backoffs: 4,
            backoff_unit_ms: 1,
        }
    }

    /// Airtime of a frame carrying `payload_bytes`.
    #[must_use]
    pub fn airtime(&self, payload_bytes: usize) -> SimDuration {
        let bits = ((payload_bytes + self.overhead_bytes) * 8) as u64;
        // Ceiling division so sub-millisecond frames still occupy a tick.
        let micros = bits * 1_000_000 / self.bitrate_bps;
        SimDuration::from_millis(micros.div_ceil(1_000).max(1))
    }
}

/// Why a frame failed to arrive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxFailure {
    /// Another transmission overlapped and corrupted this frame.
    Collision,
    /// The CSMA backoff budget was exhausted against a busy channel.
    ChannelBusy,
    /// Random residual loss.
    Fading,
}

/// A frame delivered to the broadcast bus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// When the frame finished arriving.
    pub at: SimTime,
    /// The carried message.
    pub message: Message,
    /// MAC delay: time from the send request to complete delivery.
    pub delay: SimDuration,
}

/// Aggregate channel statistics (the paper's sniffer-node view).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChannelStats {
    /// Frames offered by senders.
    pub offered: u64,
    /// Frames delivered to the bus.
    pub delivered: u64,
    /// Frames lost to collisions.
    pub collided: u64,
    /// Frames dropped after exhausting CSMA backoffs.
    pub busy_drops: u64,
    /// Frames lost to residual fading.
    pub faded: u64,
    /// Sum of delivery delays, ms (for the mean delay).
    pub total_delay_ms: u64,
    /// Maximum delivery delay, ms.
    pub max_delay_ms: u64,
    /// Number of CSMA backoff events performed.
    pub backoffs: u64,
}

impl ChannelStats {
    /// Delivery ratio over everything offered.
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.delivered as f64 / self.offered as f64
        }
    }

    /// Mean delivery delay, ms.
    #[must_use]
    pub fn mean_delay_ms(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_delay_ms as f64 / self.delivered as f64
        }
    }
}

/// An in-flight or queued frame.
#[derive(Debug, Clone, Copy)]
struct Flight {
    start: SimTime,
    end: SimTime,
    requested: SimTime,
    message: Message,
    corrupted: bool,
    faded: bool,
}

/// The broadcast network.
///
/// Use [`Network::send`] to offer frames and [`Network::advance`] to move
/// simulated time forward and collect the frames that completed.
#[derive(Debug, Clone)]
pub struct Network {
    config: NetworkConfig,
    rng: Rng,
    in_flight: Vec<Flight>,
    stats: ChannelStats,
    failures: Vec<(Message, TxFailure)>,
    faults: WsnFaultSchedule,
    obs: bz_obs::Handle,
    /// Reused scratch for the frames completing in one `advance` call,
    /// so steady-state advancing allocates nothing.
    done_buf: Vec<Flight>,
}

impl Network {
    /// Creates a network with its own random stream, recording packet
    /// counters against the global `bz_obs` registry.
    #[must_use]
    pub fn new(config: NetworkConfig, rng: Rng) -> Self {
        Self {
            config,
            rng,
            in_flight: Vec::new(),
            stats: ChannelStats::default(),
            failures: Vec::new(),
            faults: WsnFaultSchedule::none(),
            obs: bz_obs::Handle::global(),
            done_buf: Vec::new(),
        }
    }

    /// Redirects this network's metrics to `obs` (per-run isolation).
    #[must_use]
    pub fn with_obs(mut self, obs: bz_obs::Handle) -> Self {
        self.obs = obs;
        self
    }

    /// Installs a network fault schedule (dead motes, degraded links).
    #[must_use]
    pub fn with_faults(mut self, faults: WsnFaultSchedule) -> Self {
        self.faults = faults;
        self
    }

    /// The installed fault schedule.
    #[must_use]
    pub fn faults(&self) -> &WsnFaultSchedule {
        &self.faults
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// True while any frame occupies the medium at `at`.
    #[must_use]
    pub fn busy_at(&self, at: SimTime) -> bool {
        self.in_flight.iter().any(|f| f.start <= at && at < f.end)
    }

    /// Offers a frame to the channel at `now` using CSMA/CA. Returns
    /// `true` if a transmission was started (its fate — collision,
    /// fading — resolves when [`Network::advance`] passes its end time),
    /// `false` if the backoff budget was exhausted.
    pub fn send(&mut self, now: SimTime, message: Message) -> bool {
        // A dead mote has no radio: the frame vanishes before it touches
        // the medium. No failure report either — nothing observes its own
        // death, which is exactly why the controller side needs a
        // staleness supervisor.
        if self.faults.node_dead(message.source(), now) {
            self.obs.counter_inc("wsn.packets.dropped_dead_node");
            return false;
        }
        self.stats.offered += 1;
        self.obs.counter_inc("wsn.packets.sent");
        let airtime = self.config.airtime(message.payload_bytes());

        // CSMA: find a start instant at which the channel is clear, with
        // binary-exponential backoff on each busy assessment.
        let mut candidate = now;
        let mut attempt: u32 = 0;
        loop {
            if self.busy_at(candidate) {
                if attempt >= self.config.max_backoffs {
                    self.stats.busy_drops += 1;
                    self.obs.counter_inc("wsn.packets.dropped_busy");
                    self.failures.push((message, TxFailure::ChannelBusy));
                    return false;
                }
                // Wait for the medium, then back off a random number of
                // unit periods in [1, 2^(attempt+2)].
                let horizon = self
                    .in_flight
                    .iter()
                    .filter(|f| f.start <= candidate && candidate < f.end)
                    .map(|f| f.end)
                    .max()
                    .unwrap_or(candidate);
                let window = 1u64 << (attempt + 2).min(6);
                let slots = 1 + self.rng.below(window);
                candidate = horizon + SimDuration::from_millis(slots * self.config.backoff_unit_ms);
                attempt += 1;
                self.stats.backoffs += 1;
                self.obs.counter_inc("wsn.backoffs");
            } else {
                break;
            }
        }

        let end = candidate + airtime;
        let mut corrupted = false;
        // Any overlap with a concurrently started frame corrupts both —
        // carrier sensing cannot see a frame that starts in the same slot.
        for other in &mut self.in_flight {
            let overlap = other.start < end && candidate < other.end;
            if overlap {
                other.corrupted = true;
                corrupted = true;
            }
        }
        let mut faded = self.rng.chance(self.config.residual_loss);
        // Per-link loss elevation (antenna knocked, mote moved): an extra
        // independent loss draw on top of the channel-wide residual. The
        // elevation is the max over active fault windows, so event order
        // never matters.
        let extra_loss = self.faults.link_loss(message.source(), now);
        if !faded && extra_loss > 0.0 {
            faded = self.rng.chance(extra_loss);
        }
        self.in_flight.push(Flight {
            start: candidate,
            end,
            requested: now,
            message,
            corrupted,
            faded,
        });
        true
    }

    /// Advances channel time to `now`, resolving every frame whose
    /// airtime has completed. Returns the successful deliveries in
    /// completion order.
    pub fn advance(&mut self, now: SimTime) -> Vec<Delivery> {
        let mut deliveries = Vec::new();
        self.advance_into(now, &mut deliveries);
        deliveries
    }

    /// Like [`Network::advance`], but appends the deliveries to `out`
    /// (which the caller clears between ticks) instead of allocating a
    /// fresh vector — the form the per-second simulation loop uses to
    /// stay allocation-free.
    pub fn advance_into(&mut self, now: SimTime, out: &mut Vec<Delivery>) {
        let mut done = std::mem::take(&mut self.done_buf);
        done.clear();
        self.in_flight.retain(|f| {
            if f.end <= now {
                done.push(*f);
                false
            } else {
                true
            }
        });
        done.sort_by_key(|f| f.end);

        for &f in &done {
            if f.corrupted {
                self.stats.collided += 1;
                self.obs.counter_inc("wsn.packets.collided");
                self.failures.push((f.message, TxFailure::Collision));
            } else if f.faded {
                self.stats.faded += 1;
                self.obs.counter_inc("wsn.packets.dropped_fading");
                self.failures.push((f.message, TxFailure::Fading));
            } else {
                let delay = f.end.since(f.requested);
                self.stats.delivered += 1;
                self.obs.counter_inc("wsn.packets.delivered");
                self.obs
                    .observe("wsn.delivery_delay_ms", delay.as_millis() as f64);
                self.stats.total_delay_ms += delay.as_millis();
                self.stats.max_delay_ms = self.stats.max_delay_ms.max(delay.as_millis());
                out.push(Delivery {
                    at: f.end,
                    message: f.message,
                    delay,
                });
            }
        }
        self.done_buf = done;
    }

    /// Sniffer statistics so far.
    #[must_use]
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Drains the per-frame failure reports accumulated since the last
    /// call. Senders use these to adapt their schedules (§IV: AC devices
    /// "adapt their transmission schedules to alleviate channel
    /// contentions").
    pub fn take_failures(&mut self) -> Vec<(Message, TxFailure)> {
        std::mem::take(&mut self.failures)
    }

    /// Serializes the dynamic channel state: the random stream, frames on
    /// the air, statistics, and unclaimed failure reports. Configuration,
    /// the fault schedule, and the obs handle are rebuilt on restore.
    pub fn save_state(&self, w: &mut bz_state::Writer) {
        use bz_state::Persist;
        self.rng.save(w);
        self.in_flight.save(w);
        self.stats.save(w);
        self.failures.save(w);
    }

    /// Restores the dynamic state saved by [`Self::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a decode error if the bytes do not parse.
    pub fn load_state(&mut self, r: &mut bz_state::Reader<'_>) -> Result<(), bz_state::StateError> {
        use bz_state::Persist;
        self.rng = Persist::load(r)?;
        self.in_flight = Persist::load(r)?;
        self.stats = Persist::load(r)?;
        self.failures = Persist::load(r)?;
        self.done_buf.clear();
        Ok(())
    }
}

// --- Checkpoint support --------------------------------------------------

bz_state::persist_unit_enum!(TxFailure {
    Collision,
    ChannelBusy,
    Fading,
});
bz_state::persist_struct!(ChannelStats {
    offered,
    delivered,
    collided,
    busy_drops,
    faded,
    total_delay_ms,
    max_delay_ms,
    backoffs,
});
bz_state::persist_struct!(Flight {
    start,
    end,
    requested,
    message,
    corrupted,
    faded,
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{DataType, NodeId};

    fn lossless() -> NetworkConfig {
        NetworkConfig {
            residual_loss: 0.0,
            ..NetworkConfig::telosb()
        }
    }

    fn msg(node: u16, at: SimTime) -> Message {
        Message::new(NodeId::new(node), DataType::Temperature, 25.0, at)
    }

    #[test]
    fn airtime_is_plausible() {
        let cfg = NetworkConfig::telosb();
        // 10-byte payload + 23 overhead = 33 bytes = 264 bits ≈ 1.06 ms.
        let t = cfg.airtime(10);
        assert_eq!(t.as_millis(), 2); // ceil to the ms clock
                                      // A max-length frame (~127 bytes) is ~4 ms.
        let t_max = cfg.airtime(104);
        assert!(t_max.as_millis() >= 4 && t_max.as_millis() <= 5);
    }

    #[test]
    fn single_frame_is_delivered() {
        let mut net = Network::new(lossless(), Rng::seed_from(1));
        assert!(net.send(SimTime::ZERO, msg(1, SimTime::ZERO)));
        let out = net.advance(SimTime::from_millis(100));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].message.source(), NodeId::new(1));
        assert!(out[0].delay.as_millis() >= 1);
        assert_eq!(net.stats().delivered, 1);
        assert_eq!(net.stats().collided, 0);
    }

    #[test]
    fn simultaneous_sends_collide_or_backoff() {
        // Two frames offered in the same millisecond: the second sender's
        // carrier sense sees the first (already "on air"), so it backs
        // off and both should eventually deliver.
        let mut net = Network::new(lossless(), Rng::seed_from(2));
        net.send(SimTime::ZERO, msg(1, SimTime::ZERO));
        net.send(SimTime::ZERO, msg(2, SimTime::ZERO));
        let out = net.advance(SimTime::from_millis(200));
        assert_eq!(out.len(), 2, "CSMA should serialize both");
        assert!(net.stats().backoffs >= 1);
    }

    #[test]
    fn heavy_synchronized_load_causes_losses() {
        let mut net = Network::new(lossless(), Rng::seed_from(3));
        // 40 devices all transmitting in the same instant, repeatedly.
        for round in 0..50u64 {
            let t = SimTime::from_millis(round * 100);
            for node in 0..40u16 {
                net.send(t, msg(node, t));
            }
        }
        let _ = net.advance(SimTime::from_secs(60));
        let s = net.stats();
        assert_eq!(s.offered, 2_000);
        assert!(
            s.collided + s.busy_drops > 0,
            "synchronized bursts must contend: {s:?}"
        );
        assert!(s.delivery_ratio() < 1.0);
    }

    #[test]
    fn staggered_load_delivers_everything() {
        let mut net = Network::new(lossless(), Rng::seed_from(4));
        // Same 40 devices, but staggered 10 ms apart — far beyond airtime.
        for round in 0..10u64 {
            for node in 0..40u64 {
                let t = SimTime::from_millis(round * 1_000 + node * 10);
                net.send(t, msg(node as u16, t));
            }
        }
        let out = net.advance(SimTime::from_secs(60));
        assert_eq!(out.len(), 400);
        assert!((net.stats().delivery_ratio() - 1.0).abs() < 1e-12);
        assert_eq!(net.stats().collided, 0);
    }

    #[test]
    fn residual_loss_takes_its_share() {
        let cfg = NetworkConfig {
            residual_loss: 0.5,
            ..NetworkConfig::telosb()
        };
        let mut net = Network::new(cfg, Rng::seed_from(5));
        for i in 0..1_000u64 {
            let t = SimTime::from_millis(i * 20);
            net.send(t, msg(1, t));
        }
        let out = net.advance(SimTime::from_secs(60));
        let ratio = out.len() as f64 / 1_000.0;
        assert!((ratio - 0.5).abs() < 0.06, "ratio {ratio}");
        assert_eq!(net.stats().faded + net.stats().delivered, 1_000);
    }

    #[test]
    fn busy_at_reflects_airtime() {
        let mut net = Network::new(lossless(), Rng::seed_from(6));
        net.send(SimTime::ZERO, msg(1, SimTime::ZERO));
        assert!(net.busy_at(SimTime::ZERO + SimDuration::from_millis(1)));
        assert!(!net.busy_at(SimTime::from_millis(50)));
    }

    #[test]
    fn advance_is_incremental() {
        let mut net = Network::new(lossless(), Rng::seed_from(7));
        net.send(SimTime::ZERO, msg(1, SimTime::ZERO));
        net.send(SimTime::from_millis(500), msg(2, SimTime::from_millis(500)));
        let first = net.advance(SimTime::from_millis(100));
        assert_eq!(first.len(), 1);
        let second = net.advance(SimTime::from_secs(1));
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].message.source(), NodeId::new(2));
    }

    #[test]
    fn stats_delay_accounting() {
        let mut net = Network::new(lossless(), Rng::seed_from(8));
        net.send(SimTime::ZERO, msg(1, SimTime::ZERO));
        let _ = net.advance(SimTime::from_secs(1));
        assert!(net.stats().mean_delay_ms() >= 1.0);
        assert!(net.stats().max_delay_ms >= 1);
    }

    #[test]
    fn exhausted_backoff_budget_drops_the_frame() {
        let cfg = NetworkConfig {
            residual_loss: 0.0,
            max_backoffs: 0,
            ..NetworkConfig::telosb()
        };
        let mut net = Network::new(cfg, Rng::seed_from(9));
        assert!(net.send(SimTime::ZERO, msg(1, SimTime::ZERO)));
        // The second sender finds the medium busy and has no backoff
        // budget: the frame is dropped immediately.
        assert!(!net.send(SimTime::ZERO, msg(2, SimTime::ZERO)));
        let out = net.advance(SimTime::from_secs(1));
        assert_eq!(out.len(), 1);
        assert_eq!(net.stats().busy_drops, 1);
        let failures = net.take_failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].1, TxFailure::ChannelBusy);
    }

    #[test]
    fn dead_node_frames_vanish_without_failure_reports() {
        use crate::faults::{WsnFault, WsnFaultEvent, WsnFaultSchedule};
        let faults = WsnFaultSchedule::new(vec![WsnFaultEvent {
            at: SimTime::from_secs(10),
            repaired_at: None,
            fault: WsnFault::NodeDead {
                node: NodeId::new(1),
            },
        }]);
        let mut net = Network::new(lossless(), Rng::seed_from(11)).with_faults(faults);
        // Before death: delivered normally.
        assert!(net.send(SimTime::ZERO, msg(1, SimTime::ZERO)));
        // After death: silently dropped, not even offered.
        assert!(!net.send(SimTime::from_secs(10), msg(1, SimTime::from_secs(10))));
        // Other nodes unaffected.
        assert!(net.send(SimTime::from_secs(10), msg(2, SimTime::from_secs(10))));
        let out = net.advance(SimTime::from_secs(20));
        assert_eq!(out.len(), 2);
        assert_eq!(net.stats().offered, 2);
        assert!(net.take_failures().is_empty(), "death is silent");
    }

    #[test]
    fn link_loss_elevation_hits_only_the_degraded_node() {
        use crate::faults::{WsnFault, WsnFaultEvent, WsnFaultSchedule};
        let faults = WsnFaultSchedule::new(vec![WsnFaultEvent {
            at: SimTime::ZERO,
            repaired_at: None,
            fault: WsnFault::LinkLoss {
                node: NodeId::new(1),
                loss: 0.8,
            },
        }]);
        let mut net = Network::new(lossless(), Rng::seed_from(12)).with_faults(faults);
        for i in 0..500u64 {
            let t = SimTime::from_millis(i * 40);
            net.send(t, msg(1, t));
            net.send(t + SimDuration::from_millis(20), msg(2, t));
        }
        let out = net.advance(SimTime::from_secs(60));
        let from_degraded = out
            .iter()
            .filter(|d| d.message.source() == NodeId::new(1))
            .count();
        let from_healthy = out
            .iter()
            .filter(|d| d.message.source() == NodeId::new(2))
            .count();
        let ratio = from_degraded as f64 / 500.0;
        assert!((ratio - 0.2).abs() < 0.06, "degraded ratio {ratio}");
        assert_eq!(from_healthy, 500, "healthy node sees no extra loss");
    }

    #[test]
    fn advance_into_matches_advance() {
        let run = |into: bool| {
            let mut net = Network::new(NetworkConfig::telosb(), Rng::seed_from(13));
            let mut all = Vec::new();
            for i in 0..200u64 {
                let t = SimTime::from_millis(i * 7);
                net.send(t, msg((i % 10) as u16, t));
                if i % 20 == 19 {
                    if into {
                        net.advance_into(t, &mut all);
                    } else {
                        all.extend(net.advance(t));
                    }
                }
            }
            if into {
                net.advance_into(SimTime::from_secs(10), &mut all);
            } else {
                all.extend(net.advance(SimTime::from_secs(10)));
            }
            (all, *net.stats())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn deterministic_with_same_seed() {
        let run = |seed: u64| {
            let mut net = Network::new(NetworkConfig::telosb(), Rng::seed_from(seed));
            for i in 0..200u64 {
                let t = SimTime::from_millis(i * 7);
                net.send(t, msg((i % 10) as u16, t));
            }
            let out = net.advance(SimTime::from_secs(10));
            (out.len(), *net.stats())
        };
        assert_eq!(run(42), run(42));
    }
}
