//! Bounded retry-with-backoff for failed control-plane sends.
//!
//! Periodic sensor samples are fire-and-forget — a lost sample is
//! superseded by the next one a few seconds later, so the paper's plain
//! CSMA behaviour is the right call on the data plane. Computed
//! control-plane values (supply temperature, dew targets, actuation
//! commands) are different: consumers hold them for whole control periods,
//! so one lost frame can skew a loop for minutes. This module consumes the
//! failure reports drained from [`Network::take_failures`] and schedules a
//! bounded, exponentially backed-off resend for control-plane frames only
//! (see [`DataType::is_control_plane`]).
//!
//! [`Network::take_failures`]: crate::channel::Network::take_failures
//! [`DataType::is_control_plane`]: crate::message::DataType::is_control_plane

use bz_simcore::{SimDuration, SimTime};

use crate::channel::TxFailure;
use crate::message::Message;

/// Retry policy parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryConfig {
    /// Maximum resends per original frame.
    pub max_retries: u32,
    /// Backoff before the first resend; doubles per attempt.
    pub base_backoff: SimDuration,
}

impl Default for RetryConfig {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_backoff: SimDuration::from_millis(50),
        }
    }
}

/// A resend waiting for its backoff to elapse.
#[derive(Debug, Clone, Copy)]
struct PendingRetry {
    due: SimTime,
    message: Message,
}

/// Consumes control-plane send failures and emits bounded resends.
///
/// Feed every drained failure to [`ControlRetrier::on_failure`]; each
/// step, drain [`ControlRetrier::due`] and offer the returned frames back
/// to the network. Attempts are tracked per original frame (keyed by its
/// creation time), so a frame that keeps losing eventually gives up.
#[derive(Debug, Clone)]
pub struct ControlRetrier {
    config: RetryConfig,
    pending: Vec<PendingRetry>,
    /// Attempt counts per failed frame, keyed by the frame itself.
    attempts: Vec<(Message, u32)>,
    obs: bz_obs::Handle,
}

impl ControlRetrier {
    /// Creates a retrier recording counters against the global registry.
    #[must_use]
    pub fn new(config: RetryConfig) -> Self {
        Self {
            config,
            pending: Vec::new(),
            attempts: Vec::new(),
            obs: bz_obs::Handle::global(),
        }
    }

    /// Redirects this retrier's counters to `obs` (per-run isolation).
    #[must_use]
    pub fn with_obs(mut self, obs: bz_obs::Handle) -> Self {
        self.obs = obs;
        self
    }

    /// Reports one failed send. Control-plane frames are scheduled for a
    /// backed-off resend (returns `true`) until their retry budget is
    /// exhausted; data-plane frames are ignored (returns `false`).
    pub fn on_failure(&mut self, now: SimTime, message: Message, _failure: TxFailure) -> bool {
        if !message.data_type().is_control_plane() {
            return false;
        }
        // Forget frames so old their value is stale anyway; this also
        // bounds the attempt table.
        self.attempts
            .retain(|(m, _)| now.since(m.created_at()) < SimDuration::from_secs(60));
        let attempt = match self.attempts.iter_mut().find(|(m, _)| *m == message) {
            Some((_, count)) => {
                *count += 1;
                *count
            }
            None => {
                self.attempts.push((message, 1));
                1
            }
        };
        if attempt > self.config.max_retries {
            self.obs.counter_inc("wsn.retry.gave_up");
            return false;
        }
        let backoff_ms = self.config.base_backoff.as_millis() << (attempt - 1).min(16);
        self.pending.push(PendingRetry {
            due: now + SimDuration::from_millis(backoff_ms),
            message,
        });
        self.obs.counter_inc("wsn.retry.scheduled");
        true
    }

    /// Drains the resends whose backoff has elapsed by `now`, in due
    /// order.
    pub fn due(&mut self, now: SimTime) -> Vec<Message> {
        let mut ready: Vec<PendingRetry> = Vec::new();
        self.pending.retain(|p| {
            if p.due <= now {
                ready.push(*p);
                false
            } else {
                true
            }
        });
        ready.sort_by_key(|p| p.due);
        for _ in &ready {
            self.obs.counter_inc("wsn.retry.resent");
        }
        ready.into_iter().map(|p| p.message).collect()
    }

    /// Resends still waiting for their backoff.
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Serializes the dynamic retry state (pending resends, attempt
    /// table). Configuration and the obs handle are rebuilt on restore.
    pub fn save_state(&self, w: &mut bz_state::Writer) {
        use bz_state::Persist;
        self.pending.save(w);
        self.attempts.save(w);
    }

    /// Restores the dynamic state saved by [`Self::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a decode error if the bytes do not parse.
    pub fn load_state(&mut self, r: &mut bz_state::Reader<'_>) -> Result<(), bz_state::StateError> {
        use bz_state::Persist;
        self.pending = Persist::load(r)?;
        self.attempts = Persist::load(r)?;
        Ok(())
    }
}

// --- Checkpoint support --------------------------------------------------

bz_state::persist_struct!(PendingRetry { due, message });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{DataType, NodeId};

    fn control_msg(at: SimTime) -> Message {
        Message::new(NodeId::new(50), DataType::SupplyTemperature, 17.5, at)
    }

    #[test]
    fn data_plane_failures_are_ignored() {
        let mut retrier = ControlRetrier::new(RetryConfig::default());
        let sample = Message::new(NodeId::new(1), DataType::Temperature, 25.0, SimTime::ZERO);
        assert!(!retrier.on_failure(SimTime::ZERO, sample, TxFailure::Collision));
        assert_eq!(retrier.pending_len(), 0);
    }

    #[test]
    fn control_plane_failures_back_off_exponentially() {
        let mut retrier = ControlRetrier::new(RetryConfig::default());
        let msg = control_msg(SimTime::ZERO);
        assert!(retrier.on_failure(SimTime::ZERO, msg, TxFailure::ChannelBusy));
        // Not due before the base backoff.
        assert!(retrier.due(SimTime::from_millis(49)).is_empty());
        let first = retrier.due(SimTime::from_millis(50));
        assert_eq!(first, vec![msg]);
        // Second failure of the same frame: backoff doubles.
        let now = SimTime::from_millis(60);
        assert!(retrier.on_failure(now, msg, TxFailure::Collision));
        assert!(retrier.due(SimTime::from_millis(60 + 99)).is_empty());
        assert_eq!(retrier.due(SimTime::from_millis(60 + 100)), vec![msg]);
    }

    #[test]
    fn retry_budget_is_bounded() {
        let config = RetryConfig {
            max_retries: 2,
            ..RetryConfig::default()
        };
        let obs = bz_obs::Handle::isolated();
        let mut retrier = ControlRetrier::new(config).with_obs(obs.clone());
        let msg = control_msg(SimTime::ZERO);
        assert!(retrier.on_failure(SimTime::from_millis(1), msg, TxFailure::Collision));
        assert!(retrier.on_failure(SimTime::from_millis(2), msg, TxFailure::Collision));
        assert!(!retrier.on_failure(SimTime::from_millis(3), msg, TxFailure::Collision));
        let counters = obs.snapshot().counters;
        assert_eq!(counters["wsn.retry.scheduled"], 2);
        assert_eq!(counters["wsn.retry.gave_up"], 1);
    }

    #[test]
    fn stale_frames_fall_out_of_the_attempt_table() {
        let config = RetryConfig {
            max_retries: 1,
            ..RetryConfig::default()
        };
        let mut retrier = ControlRetrier::new(config);
        let msg = control_msg(SimTime::ZERO);
        assert!(retrier.on_failure(SimTime::ZERO, msg, TxFailure::Collision));
        // Over a minute later the table has been pruned, so the same frame
        // gets a fresh budget rather than an instant give-up.
        assert!(retrier.on_failure(SimTime::from_secs(90), msg, TxFailure::Collision));
    }
}
