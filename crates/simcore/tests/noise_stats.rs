//! Statistical-equivalence suite for the versioned noise kernels.
//!
//! The byte-identity contract is *per noise version* (docs/PERFORMANCE.md):
//! V1 and V2 emit different bit streams by design, so the cross-version
//! guarantee is distributional, not bytewise. This suite is the evidence
//! for that guarantee: both kernels must match the exact standard-normal
//! law (moments + one-sample Kolmogorov–Smirnov against Φ) and each other
//! (two-sample KS), with every check run on deterministic seeds so a
//! failure is a real regression, never flake.

use bz_simcore::{NoiseKernel, Rng};

fn draw(kernel: NoiseKernel, seed: u64, n: usize) -> Vec<f64> {
    let mut rng = Rng::seed_from(seed).with_kernel(kernel);
    (0..n).map(|_| rng.standard_normal()).collect()
}

/// Abramowitz & Stegun 7.1.26 — |error| ≤ 1.5e-7, far below the KS
/// tolerances used here.
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal CDF Φ.
fn phi(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn sorted(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    xs
}

/// One-sample KS statistic against Φ.
fn ks_against_normal(samples: &[f64]) -> f64 {
    let n = samples.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in samples.iter().enumerate() {
        let cdf = phi(x);
        let hi = (i + 1) as f64 / n - cdf;
        let lo = cdf - i as f64 / n;
        d = d.max(hi).max(lo);
    }
    d
}

/// Two-sample KS statistic between two sorted samples.
fn ks_two_sample(a: &[f64], b: &[f64]) -> f64 {
    let (mut i, mut j) = (0usize, 0usize);
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let mut d = 0.0f64;
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            i += 1;
        } else {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d
}

struct Moments {
    mean: f64,
    var: f64,
    skew: f64,
    excess_kurtosis: f64,
}

fn moments(samples: &[f64]) -> Moments {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let mut m2 = 0.0;
    let mut m3 = 0.0;
    let mut m4 = 0.0;
    for &x in samples {
        let d = x - mean;
        m2 += d * d;
        m3 += d * d * d;
        m4 += d * d * d * d;
    }
    m2 /= n;
    m3 /= n;
    m4 /= n;
    Moments {
        mean,
        var: m2,
        skew: m3 / m2.powf(1.5),
        excess_kurtosis: m4 / (m2 * m2) - 3.0,
    }
}

/// ~6-sigma envelopes for n = 200_000 samples of N(0, 1): wide enough to
/// never flake on a fixed seed, tight enough that a wrong table or a
/// mis-scaled magnitude fails immediately.
fn assert_standard_moments(kernel: NoiseKernel, m: &Moments) {
    assert!(m.mean.abs() < 0.014, "{kernel} mean {}", m.mean);
    assert!((m.var - 1.0).abs() < 0.02, "{kernel} var {}", m.var);
    assert!(m.skew.abs() < 0.035, "{kernel} skew {}", m.skew);
    assert!(
        m.excess_kurtosis.abs() < 0.07,
        "{kernel} kurtosis {}",
        m.excess_kurtosis
    );
}

#[test]
fn both_kernels_match_standard_normal_moments() {
    for kernel in [NoiseKernel::V1, NoiseKernel::V2] {
        for seed in [0xA11CE, 0xB0B, 0xC0FFEE] {
            let samples = draw(kernel, seed, 200_000);
            assert_standard_moments(kernel, &moments(&samples));
        }
    }
}

#[test]
fn both_kernels_pass_ks_against_the_exact_normal_cdf() {
    // alpha = 0.001 critical value for n = 100_000 is 1.95 / sqrt(n)
    // ≈ 0.00617; allow a little headroom for the erf approximation.
    for kernel in [NoiseKernel::V1, NoiseKernel::V2] {
        for seed in [0x5EED_0001, 0xFEED] {
            let samples = sorted(draw(kernel, seed, 100_000));
            let d = ks_against_normal(&samples);
            assert!(d < 0.0065, "{kernel} seed {seed:#x}: KS D = {d}");
        }
    }
}

#[test]
fn v1_and_v2_are_distributionally_interchangeable() {
    // Two-sample KS on disjoint seeds; alpha = 0.001 critical value for
    // n = m = 100_000 is 1.95 * sqrt(2 / n) ≈ 0.0087.
    let v1 = sorted(draw(NoiseKernel::V1, 0x1111, 100_000));
    let v2 = sorted(draw(NoiseKernel::V2, 0x2222, 100_000));
    let d = ks_two_sample(&v1, &v2);
    assert!(d < 0.009, "V1 vs V2 KS D = {d}");
}

#[test]
fn v2_tail_is_reachable_and_sane() {
    let mut rng = Rng::seed_from(0x7A11).with_kernel(NoiseKernel::V2);
    let mut max_abs = 0.0f64;
    for _ in 0..1_000_000 {
        max_abs = max_abs.max(rng.standard_normal().abs());
    }
    // Expected extreme of 1e6 normal draws is ~sqrt(2 ln n) ≈ 5.26; the
    // ziggurat tail path must produce values beyond the base layer
    // (3.442...) but nothing absurd.
    assert!(max_abs > 4.0, "tail never reached: max |x| = {max_abs}");
    assert!(max_abs < 8.0, "tail overshoots: max |x| = {max_abs}");
}

#[test]
fn v2_emits_finite_symmetric_samples() {
    let samples = draw(NoiseKernel::V2, 0x51DE, 200_000);
    let negatives = samples.iter().filter(|x| **x < 0.0).count();
    assert!(samples.iter().all(|x| x.is_finite()));
    // Sign balance within a 6-sigma binomial envelope.
    let n = samples.len() as f64;
    let imbalance = (negatives as f64 - n / 2.0).abs();
    assert!(imbalance < 6.0 * (n / 4.0).sqrt(), "imbalance {imbalance}");
}
