//! Property tests for the kernel's checkpoint support: restoring a saved
//! [`Rng`] or [`EventQueue`] must reproduce the exact future the original
//! would have had — stream position for the generator, pop order for the
//! queue — at arbitrary offsets into a run.

use bz_simcore::{EventQueue, Rng, SimTime};
use bz_state::{Persist, Reader, Writer};
use proptest::prelude::*;

fn round_trip_rng(rng: &Rng) -> Rng {
    let mut w = Writer::new();
    rng.save(&mut w);
    let bytes = w.into_bytes();
    Rng::load(&mut Reader::new(&bytes)).expect("saved rng decodes")
}

proptest! {
    #[test]
    fn rng_round_trip_preserves_stream_position(
        seed in 0u64..u64::MAX,
        warmup in 0usize..2_000,
        tail in 1usize..64,
    ) {
        let mut original = Rng::seed_from(seed);
        // Advance to an arbitrary mid-run position through a mix of draw
        // kinds, as a real simulation would.
        for i in 0..warmup {
            match i % 4 {
                0 => { let _ = original.next_u64(); }
                1 => { let _ = original.next_f64(); }
                2 => { let _ = original.standard_normal(); }
                _ => { let _ = original.below(97); }
            }
        }
        let mut restored = round_trip_rng(&original);
        prop_assert_eq!(&restored, &original);
        // The futures stay locked together draw for draw.
        for _ in 0..tail {
            prop_assert_eq!(restored.next_u64(), original.next_u64());
        }
    }

    #[test]
    fn event_queue_round_trip_preserves_pop_order(
        schedule in proptest::collection::vec((0u64..600_000, 0u64..4_096), 0..64),
        popped_before in 0usize..16,
    ) {
        let mut original: EventQueue<u64> = EventQueue::with_obs(bz_obs::Handle::isolated());
        for (i, &(at_ms, payload)) in schedule.iter().enumerate() {
            original.schedule(SimTime::from_millis(at_ms), payload.wrapping_add(i as u64));
        }
        // Pop part of the queue so the snapshot lands mid-run, with the
        // sequence allocator ahead of the surviving entries.
        for _ in 0..popped_before.min(schedule.len()) {
            let _ = original.pop();
        }

        let mut w = Writer::new();
        original.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored: EventQueue<u64> = EventQueue::with_obs(bz_obs::Handle::isolated());
        restored.load_state(&mut Reader::new(&bytes)).expect("saved queue decodes");

        prop_assert_eq!(restored.len(), original.len());
        // Drain both: times AND payloads must agree at every step, which
        // pins down FIFO tie-breaking among simultaneous events.
        loop {
            let expected = original.pop();
            let got = restored.pop();
            prop_assert_eq!(got, expected);
            if expected.is_none() {
                break;
            }
        }
        // New scheduling after a restore continues the sequence allocator,
        // so later ties still pop in schedule order.
        let t = SimTime::from_millis(999_999);
        restored.schedule(t, 111);
        restored.schedule(t, 222);
        prop_assert_eq!(restored.pop(), Some((t, 111)));
        prop_assert_eq!(restored.pop(), Some((t, 222)));
    }

    #[test]
    fn corrupted_rng_bytes_never_panic(
        seed in 0u64..u64::MAX,
        cut in 0usize..33,
        flip in 0usize..32,
    ) {
        let mut w = Writer::new();
        Rng::seed_from(seed).save(&mut w);
        let mut bytes = w.into_bytes();
        let flip = flip % bytes.len();
        bytes[flip] ^= 0x80;
        let cut = cut.min(bytes.len());
        // Whatever survives truncation+corruption either decodes to a
        // usable generator or errors cleanly; it must never panic.
        let _ = Rng::load(&mut Reader::new(&bytes[..cut]));
    }
}
