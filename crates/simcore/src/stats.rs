//! Streaming statistics used across the reproduction.
//!
//! The adaptive transmission scheme of §IV-B computes a *population*
//! variance `var(X) = E[X²] − (E[X])²` over a sliding window of recent
//! sensor samples; [`SlidingWindow`] implements exactly that definition so
//! the networking code matches the paper. [`Welford`] provides a numerically
//! stable streaming mean/variance for metrics, and [`Cdf`] backs the
//! Fig. 15 distribution plots.

use std::collections::VecDeque;

/// A fixed-capacity sliding window computing the paper's population
/// variance `E[X²] − (E[X])²` over the most recent `capacity` samples.
///
/// The window keeps running sums so pushing a sample is O(1); a periodic
/// exact recomputation guards against floating-point drift on very long
/// runs.
///
/// # Example
///
/// ```
/// use bz_simcore::stats::SlidingWindow;
///
/// let mut window = SlidingWindow::new(4);
/// for x in [1.0, 1.0, 1.0, 1.0] {
///     window.push(x);
/// }
/// assert_eq!(window.variance(), Some(0.0));
/// window.push(5.0); // evicts one of the 1.0s
/// assert!(window.variance().unwrap() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    capacity: usize,
    samples: VecDeque<f64>,
    sum: f64,
    sum_sq: f64,
    pushes_since_rebuild: usize,
}

/// How often the running sums are recomputed exactly from the stored
/// samples (cheap insurance against drift; windows are small).
const REBUILD_PERIOD: usize = 4_096;

impl SlidingWindow {
    /// Creates a window holding at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        Self {
            capacity,
            samples: VecDeque::with_capacity(capacity),
            sum: 0.0,
            sum_sq: 0.0,
            pushes_since_rebuild: 0,
        }
    }

    /// Pushes a sample, evicting the oldest if the window is full.
    pub fn push(&mut self, value: f64) {
        if self.samples.len() == self.capacity {
            if let Some(evicted) = self.samples.pop_front() {
                self.sum -= evicted;
                self.sum_sq -= evicted * evicted;
            }
        }
        self.samples.push_back(value);
        self.sum += value;
        self.sum_sq += value * value;

        self.pushes_since_rebuild += 1;
        if self.pushes_since_rebuild >= REBUILD_PERIOD {
            self.rebuild();
        }
    }

    fn rebuild(&mut self) {
        self.sum = self.samples.iter().sum();
        self.sum_sq = self.samples.iter().map(|x| x * x).sum();
        self.pushes_since_rebuild = 0;
    }

    /// Number of samples currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been pushed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// True when the window has reached its capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.samples.len() == self.capacity
    }

    /// Mean of the samples currently in the window, or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.sum / self.samples.len() as f64)
        }
    }

    /// The paper's population variance `E[X²] − (E[X])²` over the window,
    /// or `None` when empty. Clamped at zero against rounding.
    #[must_use]
    pub fn variance(&self) -> Option<f64> {
        let n = self.samples.len() as f64;
        if self.samples.is_empty() {
            None
        } else {
            Some((self.sum_sq / n - (self.sum / n).powi(2)).max(0.0))
        }
    }

    /// Drops all samples.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.sum = 0.0;
        self.sum_sq = 0.0;
        self.pushes_since_rebuild = 0;
    }
}

/// Welford's online mean/variance accumulator (numerically stable, for
/// unbounded streams — metrics, energy accounting, benchmark summaries).
#[derive(Debug, Clone, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Number of samples seen.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples seen, or `None` if none.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance of the samples seen, or `None` if none.
    #[must_use]
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| (self.m2 / self.count as f64).max(0.0))
    }

    /// Population standard deviation, or `None` if no samples.
    #[must_use]
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }
}

impl Extend<f64> for Welford {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for value in iter {
            self.push(value);
        }
    }
}

/// An empirical cumulative distribution function built from a finite
/// sample set; backs the Fig. 15 send-period CDF.
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples. Non-finite samples are rejected.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains non-finite values.
    #[must_use]
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().collect();
        assert!(!sorted.is_empty(), "CDF requires at least one sample");
        assert!(
            sorted.iter().all(|x| x.is_finite()),
            "CDF samples must be finite"
        );
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Self { sorted }
    }

    /// Fraction of samples ≤ `x`, in `[0, 1]`.
    #[must_use]
    pub fn at(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile for `q ∈ [0, 1]` (nearest-rank method).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if q == 0.0 {
            return self.sorted[0];
        }
        let rank = (q * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// Mean of the underlying samples.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Minimum sample.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum sample.
    #[must_use]
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false — construction rejects empty sample sets.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates the CDF as `(value, cumulative_fraction)` steps, suitable
    /// for plotting or CSV export.
    pub fn steps(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(move |(i, &v)| (v, (i + 1) as f64 / n))
    }
}

bz_state::persist_struct!(SlidingWindow {
    capacity,
    samples,
    sum,
    sum_sq,
    pushes_since_rebuild,
});

bz_state::persist_struct!(Welford { count, mean, m2 });

/// Mean of a slice; `None` when empty. Convenience for sensor fusion code
/// ("T_room is computed by averaging temperature readings from a set of
/// sensors" — §III-B).
#[must_use]
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sliding_window_matches_naive_variance() {
        let mut window = SlidingWindow::new(5);
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut naive: VecDeque<f64> = VecDeque::new();
        for &x in &data {
            window.push(x);
            if naive.len() == 5 {
                naive.pop_front();
            }
            naive.push_back(x);
            let n = naive.len() as f64;
            let mean = naive.iter().sum::<f64>() / n;
            let expected = naive.iter().map(|v| v * v).sum::<f64>() / n - mean * mean;
            let got = window.variance().unwrap();
            assert!((got - expected).abs() < 1e-9, "{got} vs {expected}");
        }
    }

    #[test]
    fn sliding_window_eviction() {
        let mut w = SlidingWindow::new(2);
        w.push(1.0);
        w.push(2.0);
        w.push(3.0); // evicts 1.0
        assert!((w.mean().unwrap() - 2.5).abs() < 1e-12);
        assert!(w.is_full());
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn sliding_window_empty_and_clear() {
        let mut w = SlidingWindow::new(3);
        assert!(w.is_empty());
        assert_eq!(w.variance(), None);
        assert_eq!(w.mean(), None);
        w.push(1.0);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.variance(), None);
    }

    #[test]
    fn sliding_window_constant_signal_has_zero_variance() {
        let mut w = SlidingWindow::new(10);
        for _ in 0..100 {
            w.push(25.0);
        }
        assert_eq!(w.variance(), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn sliding_window_rejects_zero_capacity() {
        let _ = SlidingWindow::new(0);
    }

    #[test]
    fn sliding_window_survives_rebuild_period() {
        let mut w = SlidingWindow::new(3);
        for i in 0..(REBUILD_PERIOD * 2 + 5) {
            w.push(i as f64);
        }
        // Last three values are k-2, k-1, k: variance of {0,1,2} = 2/3.
        // The paper's E[X²]−(E[X])² form cancels catastrophically at large
        // magnitudes, so allow a generous absolute tolerance here.
        assert!((w.variance().unwrap() - 2.0 / 3.0).abs() < 1e-4);
    }

    #[test]
    fn welford_matches_closed_form() {
        let mut acc = Welford::new();
        acc.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(acc.count(), 8);
        assert!((acc.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((acc.variance().unwrap() - 4.0).abs() < 1e-12);
        assert!((acc.std_dev().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn welford_empty() {
        let acc = Welford::new();
        assert_eq!(acc.mean(), None);
        assert_eq!(acc.variance(), None);
        assert_eq!(acc.std_dev(), None);
    }

    #[test]
    fn cdf_basic() {
        let cdf = Cdf::from_samples([2.0, 2.0, 2.0, 64.0]);
        assert!((cdf.at(1.9) - 0.0).abs() < 1e-12);
        assert!((cdf.at(2.0) - 0.75).abs() < 1e-12);
        assert!((cdf.at(64.0) - 1.0).abs() < 1e-12);
        assert!((cdf.mean() - 17.5).abs() < 1e-12);
        assert_eq!(cdf.min(), 2.0);
        assert_eq!(cdf.max(), 64.0);
        assert_eq!(cdf.len(), 4);
    }

    #[test]
    fn cdf_quantiles() {
        let cdf = Cdf::from_samples((1..=100).map(f64::from));
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(0.5), 50.0);
        assert_eq!(cdf.quantile(1.0), 100.0);
    }

    #[test]
    fn cdf_steps_are_monotone() {
        let cdf = Cdf::from_samples([5.0, 1.0, 3.0]);
        let steps: Vec<(f64, f64)> = cdf.steps().collect();
        assert_eq!(steps.len(), 3);
        assert!(steps
            .windows(2)
            .all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
        assert!((steps.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn cdf_rejects_empty() {
        let _ = Cdf::from_samples(std::iter::empty());
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn cdf_rejects_nan() {
        let _ = Cdf::from_samples([1.0, f64::NAN]);
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), None);
        assert!((mean(&[24.0, 26.0]).unwrap() - 25.0).abs() < 1e-12);
    }
}
