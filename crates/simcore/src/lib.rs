//! Deterministic simulation kernel for the BubbleZERO reproduction.
//!
//! Everything in this workspace — the building physics, the controllers, and
//! the wireless network — advances on the same discrete millisecond clock
//! defined here. The kernel is deliberately single-threaded and fully
//! deterministic: two runs with the same seed produce bit-identical traces,
//! which is what makes the paper's figures reproducible and the integration
//! tests meaningful.
//!
//! The pieces:
//!
//! - [`SimTime`] / [`SimDuration`] — the simulation clock (millisecond ticks).
//! - [`EventQueue`] — a deterministic time-ordered queue with FIFO
//!   tie-breaking for simultaneous events.
//! - [`Rng`] — a seedable xoshiro256** generator with the handful of
//!   distributions the simulators need. No OS entropy is ever consulted.
//! - [`TraceRecorder`] — named time series with CSV export, the backing
//!   store for every figure harness.
//! - [`stats`] — streaming mean/variance, the paper's sliding-window
//!   variance, CDFs and percentiles.
//!
//! # Example
//!
//! ```
//! use bz_simcore::{EventQueue, SimDuration, SimTime};
//!
//! let mut queue = EventQueue::new();
//! queue.schedule(SimTime::ZERO + SimDuration::from_secs(2), "sample");
//! queue.schedule(SimTime::ZERO + SimDuration::from_secs(1), "boot");
//! let (t, event) = queue.pop().unwrap();
//! assert_eq!(event, "boot");
//! assert_eq!(t, SimTime::from_secs(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod events;
pub mod noise;
pub mod numeric;
mod rng;
pub mod stats;
mod time;
mod trace;

pub use events::EventQueue;
pub use noise::NoiseKernel;
pub use numeric::{fast_floor, fast_round};
pub use rng::Rng;
pub use time::{SimDuration, SimTime};
pub use trace::{Sample, Series, TraceRecorder};
