//! Seedable deterministic random number generation.
//!
//! The kernel ships its own xoshiro256** implementation rather than pulling
//! in an external generator: the simulators need reproducibility above all
//! else, and owning the generator guarantees the bit stream never changes
//! under a dependency upgrade. No OS entropy is ever consulted — a run is a
//! pure function of its seed.

/// A deterministic xoshiro256** pseudo-random generator.
///
/// # Example
///
/// ```
/// use bz_simcore::Rng;
///
/// let mut a = Rng::seed_from(42);
/// let mut b = Rng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed, expanding it through
    /// SplitMix64 as the xoshiro authors recommend.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let state = [next(), next(), next(), next()];
        Self { state }
    }

    /// Forks an independent generator whose stream is decorrelated from
    /// this one. Use this to give each simulated device its own stream so
    /// adding a device never perturbs the others.
    #[must_use]
    pub fn fork(&mut self) -> Self {
        Self::seed_from(self.next_u64() ^ 0xA5A5_5A5A_DEAD_BEEF)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform dyadic rational in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid uniform range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift rejection-free bounded sampling (Lemire); the tiny
        // modulo bias is irrelevant at simulation scales but we reject the
        // biased zone anyway to keep the stream statistics clean.
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let low = m as u64;
            if low >= bound && low < bound.wrapping_neg() {
                return (m >> 64) as u64;
            }
            if low >= bound.wrapping_neg().wrapping_rem(bound) {
                return (m >> 64) as u64;
            }
        }
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// A standard normal sample via Box–Muller (one value per call; the
    /// sibling is discarded for simplicity).
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Advances the state exactly as `count` discarded
    /// [`standard_normal`](Self::standard_normal) draws would, without
    /// paying for the `ln`/`sqrt`/`cos` evaluation.
    ///
    /// Box–Muller consumes exactly two raw draws per sample with no
    /// rejection, so skipping is a fixed stride: callers that compute a
    /// value only to throw it away (e.g. a sensor read whose sibling
    /// channel is unused) can skip instead and leave the stream — and
    /// therefore every later draw — bit-identical.
    pub fn skip_normals(&mut self, count: usize) {
        for _ in 0..count {
            self.next_u64();
            self.next_u64();
        }
    }

    /// A normal sample with the given `mean` and standard deviation `sd`.
    ///
    /// # Panics
    ///
    /// Panics if `sd` is negative.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        assert!(sd >= 0.0, "standard deviation must be non-negative");
        mean + sd * self.standard_normal()
    }

    /// An exponential sample with the given `mean` (e.g. inter-arrival
    /// times of disturbance events).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "mean must be positive");
        -mean * (1.0 - self.next_f64()).ln()
    }
}

impl bz_state::Persist for Rng {
    fn save(&self, w: &mut bz_state::Writer) {
        self.state.save(w);
    }

    fn load(r: &mut bz_state::Reader<'_>) -> Result<Self, bz_state::StateError> {
        let state = <[u64; 4]>::load(r)?;
        if state == [0; 4] {
            // The all-zero state is xoshiro's one fixed point: every draw
            // would return the same value forever. No reachable stream
            // position encodes to it, so reject rather than restore a
            // degenerate generator.
            return Err(bz_state::StateError::Invalid {
                what: "Rng",
                reason: "all-zero xoshiro state".to_owned(),
            });
        }
        Ok(Self { state })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::seed_from(7);
        let mut b = Rng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_decorrelates() {
        let mut parent = Rng::seed_from(9);
        let mut child = parent.fork();
        let matches = (0..64)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = Rng::seed_from(4);
        for _ in 0..10_000 {
            let x = rng.uniform(-3.0, 7.0);
            assert!((-3.0..7.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound_and_covers_range() {
        let mut rng = Rng::seed_from(5);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let x = rng.below(8);
            assert!(x < 8);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::seed_from(6);
        assert!((0..100).all(|_| !rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = Rng::seed_from(8);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn skip_normals_matches_discarded_draws_exactly() {
        let mut skipped = Rng::seed_from(13);
        let mut drawn = Rng::seed_from(13);
        skipped.skip_normals(3);
        for _ in 0..3 {
            let _ = drawn.standard_normal();
        }
        assert_eq!(skipped, drawn);
        // And the streams stay locked together afterwards.
        for _ in 0..16 {
            assert_eq!(skipped.next_u64(), drawn.next_u64());
        }
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut rng = Rng::seed_from(11);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.exponential(30.0)).sum::<f64>() / f64::from(n);
        assert!((mean - 30.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_panics() {
        let _ = Rng::seed_from(1).below(0);
    }

    #[test]
    #[should_panic(expected = "invalid uniform range")]
    fn uniform_rejects_inverted() {
        let _ = Rng::seed_from(1).uniform(2.0, 1.0);
    }
}
